//! Structure-of-arrays physics batch for large fleets.
//!
//! [`PhysicsBatch`] owns the *hot* per-node scalar state — die/sink
//! temperatures, fan duty and RPM, CPU utilization/activity, thermal-monitor
//! condition, meter accumulators — as contiguous lanes (`Vec<f64>`,
//! `Vec<u8>`, …), so the per-tick RC-thermal update, CMOS power evaluation
//! and fan response run as tight loops over slices instead of chasing
//! pointers through a `Vec` of ~kilobyte node structs. The *cold* state
//! (control planes, recorders, fault plans, journals) stays in the scalar
//! [`Node`] and its owner; the two sides meet at explicit [`load`] /
//! [`store`] sync points.
//!
//! # Bit-identical by construction
//!
//! Every arithmetic step in [`tick_node`] delegates to the same
//! `pub(crate)` raw functions the scalar path uses ([`thermal::step_raw`],
//! [`cpu::power_raw`], [`fan::step_raw`], [`power::observe_raw`],
//! [`adt7467::static_curve_duty_raw`]) with operands in the same order, and
//! [`load`]/[`store`] copy the memo caches (conductance, sub-step, fan lag)
//! bit-exactly. A batched tick therefore produces *the same f64 bits* as
//! [`Node::tick`] on every lane — this is pinned by the scalar-vs-batched
//! equivalence tests.
//!
//! # Passthrough nodes
//!
//! Nodes whose semantics the lanes cannot replicate — active fault sources,
//! per-tick control daemons — are flagged *passthrough*: the batch carries
//! their slot but never ticks it, and the owner keeps driving the scalar
//! [`Node`] for them. [`all_fast`] lets the owner take a pure-lane route
//! when a whole shard is batchable.
//!
//! [`load`]: PhysicsBatch::load
//! [`store`]: PhysicsBatch::store
//! [`tick_node`]: PhysicsBatch::tick_node
//! [`all_fast`]: PhysicsBatch::all_fast
//! [`Node::tick`]: crate::node::Node::tick
//! [`thermal::step_raw`]: crate::thermal
//! [`cpu::power_raw`]: crate::cpu
//! [`fan::step_raw`]: crate::fan
//! [`power::observe_raw`]: crate::power
//! [`adt7467::static_curve_duty_raw`]: crate::adt7467

use unitherm_metrics::RunningStats;

use crate::adt7467::{self, Adt7467, PwmMode};
use crate::cpu::{self, ThermalCondition};
use crate::fan;
use crate::node::{Node, ADT7467_ADDR};
use crate::power;
use crate::thermal;
use crate::units::DutyCycle;

/// Lane encoding of [`ThermalCondition`].
const COND_NOMINAL: u8 = 0;
const COND_THROTTLED: u8 = 1;
const COND_SHUTDOWN: u8 = 2;

#[inline]
fn cond_to_u8(c: ThermalCondition) -> u8 {
    match c {
        ThermalCondition::Nominal => COND_NOMINAL,
        ThermalCondition::Throttled => COND_THROTTLED,
        ThermalCondition::ShutDown => COND_SHUTDOWN,
    }
}

#[inline]
fn cond_from_u8(c: u8) -> ThermalCondition {
    match c {
        COND_NOMINAL => ThermalCondition::Nominal,
        COND_THROTTLED => ThermalCondition::Throttled,
        _ => ThermalCondition::ShutDown,
    }
}

/// Structure-of-arrays mirror of the hot physics state of a node range.
///
/// See the [module docs](self) for the hot/cold split and the determinism
/// contract. Indices are positions within the owning range (a shard's
/// contiguous slice of the fleet), not global node ids.
#[derive(Debug, Default)]
pub struct PhysicsBatch {
    len: usize,
    /// Nodes the batch must not tick (scalar path stays authoritative).
    passthrough: Vec<bool>,
    passthrough_count: usize,
    /// Ticks elapsed — advances in lockstep with every member node.
    ticks: u64,
    /// Simulation time — accumulates `+= dt` exactly like each `Node`.
    time_s: f64,
    /// Batched ticks not yet flushed into per-node skip counters.
    skipped: Vec<u64>,

    // --- thermal lanes (state + config + memo caches) ---
    die_c: Vec<f64>,
    sink_c: Vec<f64>,
    ambient_c: Vec<f64>,
    g_ds: Vec<f64>,
    c_die: Vec<f64>,
    c_sink: Vec<f64>,
    g_nat: Vec<f64>,
    g_air: Vec<f64>,
    k_exp: Vec<f64>,
    cond_cache: Vec<(f64, f64)>,
    substep_cache: Vec<(f64, f64, usize, f64)>,

    // --- fan lanes ---
    fan_duty_pct: Vec<u8>,
    fan_rpm: Vec<f64>,
    fan_failed: Vec<bool>,
    fan_stuck: Vec<bool>,
    fan_max_rpm: Vec<f64>,
    fan_stall: Vec<f64>,
    fan_tau: Vec<f64>,
    fan_max_w: Vec<f64>,
    fan_lag_cache: Vec<(f64, f64)>,

    // --- ADT7467 lanes ---
    chip_auto: Vec<bool>,
    chip_measured: Vec<f64>,
    chip_pwm: Vec<u8>,
    chip_pwm_min: Vec<u8>,
    chip_pwm_max: Vec<u8>,
    chip_tmin: Vec<u8>,
    chip_tmax: Vec<u8>,

    // --- CPU lanes ---
    cpu_cond: Vec<u8>,
    throttle_events: Vec<u64>,
    util: Vec<f64>,
    activity: Vec<f64>,
    sleep_gate: Vec<f64>,
    top_v: Vec<f64>,
    top_f: Vec<f64>,
    req_v: Vec<f64>,
    req_f: Vec<f64>,
    min_v: Vec<f64>,
    min_f: Vec<f64>,
    leak_ref_w: Vec<f64>,
    leak_coeff: Vec<f64>,
    leak_tref: Vec<f64>,
    dyn_max_w: Vec<f64>,
    mon_throttle_c: Vec<f64>,
    mon_shutdown_c: Vec<f64>,
    mon_hyst_c: Vec<f64>,

    // --- meter / board lanes ---
    psu_eff: Vec<f64>,
    base_w: Vec<f64>,
    m_period: Vec<f64>,
    m_since: Vec<f64>,
    m_window: Vec<f64>,
    m_total_e: Vec<f64>,
    m_total_t: Vec<f64>,
    m_stats: Vec<RunningStats>,
    m_last: Vec<Option<f64>>,

    /// Scratch lane: per-slot CPU power for the current tick, filled by the
    /// CPU pass of [`PhysicsBatch::tick_all`] and consumed by the thermal
    /// and meter passes. Not part of any node's state.
    cpu_power: Vec<f64>,
}

impl PhysicsBatch {
    /// Builds a batch mirroring `nodes`, loading every slot.
    ///
    /// All nodes must share the same tick count and simulation time (the
    /// fleet advances in lockstep); the batch adopts them.
    pub fn from_nodes<'a, I>(nodes: I) -> Self
    where
        I: IntoIterator<Item = &'a Node>,
    {
        let mut b = Self::default();
        for node in nodes {
            if b.len == 0 {
                b.ticks = node.ticks;
                b.time_s = node.time_s;
            } else {
                debug_assert_eq!(b.ticks, node.ticks, "batch nodes must be in lockstep");
            }
            b.push_slot();
            b.load(b.len - 1, node);
        }
        b
    }

    /// Appends one zeroed slot to every lane.
    fn push_slot(&mut self) {
        self.len += 1;
        self.passthrough.push(false);
        self.skipped.push(0);
        self.die_c.push(0.0);
        self.sink_c.push(0.0);
        self.ambient_c.push(0.0);
        self.g_ds.push(0.0);
        self.c_die.push(0.0);
        self.c_sink.push(0.0);
        self.g_nat.push(0.0);
        self.g_air.push(0.0);
        self.k_exp.push(0.0);
        self.cond_cache.push((f64::NAN, 0.0));
        self.substep_cache.push((f64::NAN, f64::NAN, 0, 0.0));
        self.fan_duty_pct.push(0);
        self.fan_rpm.push(0.0);
        self.fan_failed.push(false);
        self.fan_stuck.push(false);
        self.fan_max_rpm.push(0.0);
        self.fan_stall.push(0.0);
        self.fan_tau.push(0.0);
        self.fan_max_w.push(0.0);
        self.fan_lag_cache.push((f64::NAN, 0.0));
        self.chip_auto.push(false);
        self.chip_measured.push(0.0);
        self.chip_pwm.push(0);
        self.chip_pwm_min.push(0);
        self.chip_pwm_max.push(0);
        self.chip_tmin.push(0);
        self.chip_tmax.push(0);
        self.cpu_cond.push(COND_NOMINAL);
        self.throttle_events.push(0);
        self.util.push(0.0);
        self.activity.push(0.0);
        self.sleep_gate.push(1.0);
        self.top_v.push(0.0);
        self.top_f.push(0.0);
        self.req_v.push(0.0);
        self.req_f.push(0.0);
        self.min_v.push(0.0);
        self.min_f.push(0.0);
        self.leak_ref_w.push(0.0);
        self.leak_coeff.push(0.0);
        self.leak_tref.push(0.0);
        self.dyn_max_w.push(0.0);
        self.mon_throttle_c.push(0.0);
        self.mon_shutdown_c.push(0.0);
        self.mon_hyst_c.push(0.0);
        self.psu_eff.push(1.0);
        self.base_w.push(0.0);
        self.m_period.push(1.0);
        self.m_since.push(0.0);
        self.m_window.push(0.0);
        self.m_total_e.push(0.0);
        self.m_total_t.push(0.0);
        self.m_stats.push(RunningStats::default());
        self.m_last.push(None);
        self.cpu_power.push(0.0);
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ticks elapsed (lockstep with every member node).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Simulation time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Marks slot `i` passthrough: the scalar `Node` stays authoritative and
    /// the batch never ticks it.
    pub fn set_passthrough(&mut self, i: usize, on: bool) {
        if self.passthrough[i] != on {
            self.passthrough[i] = on;
            if on {
                self.passthrough_count += 1;
            } else {
                self.passthrough_count -= 1;
            }
        }
    }

    /// True when slot `i` is passthrough.
    pub fn is_passthrough(&self, i: usize) -> bool {
        self.passthrough[i]
    }

    /// True when no slot is passthrough (pure-lane fast route is valid).
    pub fn all_fast(&self) -> bool {
        self.passthrough_count == 0
    }

    /// Copies all hot state from `node` into slot `i` (bit-exact, including
    /// memo caches). Call after any scalar-side mutation — daemon actuation,
    /// sampling — so the lanes resume from exactly the scalar state.
    pub fn load(&mut self, i: usize, node: &Node) {
        let t = &node.thermal;
        self.die_c[i] = t.die_c;
        self.sink_c[i] = t.sink_c;
        self.ambient_c[i] = t.cfg.ambient_c;
        self.g_ds[i] = t.cfg.die_sink_conductance_w_per_k;
        self.c_die[i] = t.cfg.die_capacity_j_per_k;
        self.c_sink[i] = t.cfg.sink_capacity_j_per_k;
        self.g_nat[i] = t.cfg.natural_conductance_w_per_k;
        self.g_air[i] = t.cfg.airflow_conductance_w_per_k;
        self.k_exp[i] = t.cfg.airflow_exponent;
        self.cond_cache[i] = t.conductance_cache;
        self.substep_cache[i] = t.substep_cache;

        let f = &node.fan;
        self.fan_duty_pct[i] = f.duty.percent();
        self.fan_rpm[i] = f.rpm;
        self.fan_failed[i] = f.failed;
        self.fan_stuck[i] = f.pwm_stuck;
        self.fan_max_rpm[i] = f.cfg.max_rpm;
        self.fan_stall[i] = f.cfg.stall_fraction;
        self.fan_tau[i] = f.cfg.time_constant_s;
        self.fan_max_w[i] = f.cfg.max_power_w;
        self.fan_lag_cache[i] = f.lag_cache;

        let chip: &Adt7467 =
            node.bus.device(ADT7467_ADDR).expect("node carries an ADT7467 at its fixed address");
        self.chip_auto[i] = chip.mode == PwmMode::Automatic;
        self.chip_measured[i] = chip.measured_temp_c;
        self.chip_pwm[i] = chip.pwm_current;
        self.chip_pwm_min[i] = chip.pwm_min;
        self.chip_pwm_max[i] = chip.pwm_max;
        self.chip_tmin[i] = chip.tmin_c;
        self.chip_tmax[i] = chip.tmax_c;

        let c = &node.cpu;
        self.cpu_cond[i] = cond_to_u8(c.condition);
        self.throttle_events[i] = c.throttle_events;
        self.util[i] = c.utilization;
        self.activity[i] = c.activity;
        self.sleep_gate[i] = c.sleep_gate;
        let top = c.cfg.pstates[0];
        let req = c.cfg.pstates[c.requested];
        let min = *c.cfg.pstates.last().expect("non-empty pstates");
        self.top_v[i] = top.voltage_v;
        self.top_f[i] = f64::from(top.freq_mhz);
        self.req_v[i] = req.voltage_v;
        self.req_f[i] = f64::from(req.freq_mhz);
        self.min_v[i] = min.voltage_v;
        self.min_f[i] = f64::from(min.freq_mhz);
        self.leak_ref_w[i] = c.cfg.leakage_power_ref_w;
        self.leak_coeff[i] = c.cfg.leakage_temp_coeff_per_k;
        self.leak_tref[i] = c.cfg.leakage_ref_temp_c;
        self.dyn_max_w[i] = c.cfg.dynamic_power_max_w;
        self.mon_throttle_c[i] = c.cfg.emergency_throttle_c;
        self.mon_shutdown_c[i] = c.cfg.emergency_shutdown_c;
        self.mon_hyst_c[i] = c.cfg.emergency_hysteresis_c;

        let m = &node.meter;
        self.psu_eff[i] = m.psu_efficiency;
        self.base_w[i] = node.cfg.board.base_power_w;
        self.m_period[i] = m.sample_period_s;
        self.m_since[i] = m.since_sample_s;
        self.m_window[i] = m.window_energy_j;
        self.m_total_e[i] = m.total_energy_j;
        self.m_total_t[i] = m.total_time_s;
        self.m_stats[i] = m.stats;
        self.m_last[i] = m.last_sample_w;
    }

    /// Writes slot `i`'s mutable state back into `node` (bit-exact,
    /// including memo caches and the lockstep tick/time counters). Call
    /// before any scalar-side read or mutation — sampling, reporting.
    ///
    /// Configuration lanes and states the batch never changes (fan
    /// failed/stuck flags, chip registers other than the duty output, the
    /// requested P-state) are not written back; they cannot have diverged.
    pub fn store(&self, i: usize, node: &mut Node) {
        node.ticks = self.ticks;
        node.time_s = self.time_s;

        let t = &mut node.thermal;
        t.die_c = self.die_c[i];
        t.sink_c = self.sink_c[i];
        t.cfg.ambient_c = self.ambient_c[i];
        t.conductance_cache = self.cond_cache[i];
        t.substep_cache = self.substep_cache[i];

        let f = &mut node.fan;
        f.duty = DutyCycle::new(self.fan_duty_pct[i]);
        f.rpm = self.fan_rpm[i];
        f.lag_cache = self.fan_lag_cache[i];

        let chip: &mut Adt7467 = node
            .bus
            .device_mut(ADT7467_ADDR)
            .expect("node carries an ADT7467 at its fixed address");
        chip.measured_temp_c = self.chip_measured[i];
        chip.pwm_current = self.chip_pwm[i];

        let c = &mut node.cpu;
        c.condition = cond_from_u8(self.cpu_cond[i]);
        c.throttle_events = self.throttle_events[i];
        c.utilization = self.util[i];
        c.activity = self.activity[i];

        let m = &mut node.meter;
        m.since_sample_s = self.m_since[i];
        m.window_energy_j = self.m_window[i];
        m.total_energy_j = self.m_total_e[i];
        m.total_time_s = self.m_total_t[i];
        m.stats = self.m_stats[i];
        m.last_sample_w = self.m_last[i];
    }

    /// Re-syncs slot `i` from `node` after a control-plane decision point,
    /// copying only the lanes an actuator can write: fan duty and fault
    /// latches, the ADT7467 registers and mode, the CPU's requested P-state,
    /// thermal condition, sleep gate, and load. Cheaper than a full
    /// [`PhysicsBatch::load`] at every sample tick; all other lanes are
    /// already bit-exact because [`PhysicsBatch::store`] just wrote them and
    /// sampling cannot touch them. Debug builds verify that claim against
    /// the full node state, so a future actuator that grows new side
    /// effects fails loudly under `cargo test` instead of silently
    /// diverging in release.
    pub fn reload_control(&mut self, i: usize, node: &Node) {
        let f = &node.fan;
        self.fan_duty_pct[i] = f.duty.percent();
        self.fan_failed[i] = f.failed;
        self.fan_stuck[i] = f.pwm_stuck;

        let chip: &Adt7467 =
            node.bus.device(ADT7467_ADDR).expect("node carries an ADT7467 at its fixed address");
        self.chip_auto[i] = chip.mode == PwmMode::Automatic;
        self.chip_pwm[i] = chip.pwm_current;
        self.chip_pwm_min[i] = chip.pwm_min;
        self.chip_pwm_max[i] = chip.pwm_max;
        self.chip_tmin[i] = chip.tmin_c;
        self.chip_tmax[i] = chip.tmax_c;

        let c = &node.cpu;
        self.cpu_cond[i] = cond_to_u8(c.condition);
        self.sleep_gate[i] = c.sleep_gate;
        self.util[i] = c.utilization;
        self.activity[i] = c.activity;
        let req = c.cfg.pstates[c.requested];
        self.req_v[i] = req.voltage_v;
        self.req_f[i] = f64::from(req.freq_mhz);

        #[cfg(debug_assertions)]
        self.assert_slot_in_sync(i, node);
    }

    /// Debug-build check backing [`PhysicsBatch::reload_control`]: every
    /// lane that method does *not* copy must already match `node` bit for
    /// bit. Comparisons go through `to_bits` because memo caches idle at
    /// NaN sentinels.
    #[cfg(debug_assertions)]
    fn assert_slot_in_sync(&self, i: usize, node: &Node) {
        fn eq(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits()
        }
        let t = &node.thermal;
        assert!(eq(self.die_c[i], t.die_c), "die_c lane out of sync");
        assert!(eq(self.sink_c[i], t.sink_c), "sink_c lane out of sync");
        assert!(eq(self.ambient_c[i], t.cfg.ambient_c), "ambient_c lane out of sync");
        assert!(eq(self.g_ds[i], t.cfg.die_sink_conductance_w_per_k), "g_ds lane out of sync");
        assert!(eq(self.c_die[i], t.cfg.die_capacity_j_per_k), "c_die lane out of sync");
        assert!(eq(self.c_sink[i], t.cfg.sink_capacity_j_per_k), "c_sink lane out of sync");
        assert!(eq(self.g_nat[i], t.cfg.natural_conductance_w_per_k), "g_nat lane out of sync");
        assert!(eq(self.g_air[i], t.cfg.airflow_conductance_w_per_k), "g_air lane out of sync");
        assert!(eq(self.k_exp[i], t.cfg.airflow_exponent), "k_exp lane out of sync");
        assert!(
            eq(self.cond_cache[i].0, t.conductance_cache.0)
                && eq(self.cond_cache[i].1, t.conductance_cache.1),
            "conductance cache lane out of sync"
        );
        let s = &self.substep_cache[i];
        assert!(
            eq(s.0, t.substep_cache.0)
                && eq(s.1, t.substep_cache.1)
                && s.2 == t.substep_cache.2
                && eq(s.3, t.substep_cache.3),
            "substep cache lane out of sync"
        );

        let f = &node.fan;
        assert!(eq(self.fan_rpm[i], f.rpm), "fan rpm lane out of sync");
        assert!(eq(self.fan_max_rpm[i], f.cfg.max_rpm), "fan max rpm lane out of sync");
        assert!(eq(self.fan_stall[i], f.cfg.stall_fraction), "fan stall lane out of sync");
        assert!(eq(self.fan_tau[i], f.cfg.time_constant_s), "fan tau lane out of sync");
        assert!(eq(self.fan_max_w[i], f.cfg.max_power_w), "fan max power lane out of sync");
        assert!(
            eq(self.fan_lag_cache[i].0, f.lag_cache.0)
                && eq(self.fan_lag_cache[i].1, f.lag_cache.1),
            "fan lag cache lane out of sync"
        );

        let chip: &Adt7467 =
            node.bus.device(ADT7467_ADDR).expect("node carries an ADT7467 at its fixed address");
        assert!(eq(self.chip_measured[i], chip.measured_temp_c), "chip measured lane out of sync");

        let c = &node.cpu;
        assert_eq!(self.throttle_events[i], c.throttle_events, "throttle events lane out of sync");
        let top = c.cfg.pstates[0];
        let min = *c.cfg.pstates.last().expect("non-empty pstates");
        assert!(eq(self.top_v[i], top.voltage_v), "top voltage lane out of sync");
        assert!(eq(self.top_f[i], f64::from(top.freq_mhz)), "top freq lane out of sync");
        assert!(eq(self.min_v[i], min.voltage_v), "min voltage lane out of sync");
        assert!(eq(self.min_f[i], f64::from(min.freq_mhz)), "min freq lane out of sync");
        assert!(eq(self.leak_ref_w[i], c.cfg.leakage_power_ref_w), "leakage ref lane out of sync");
        assert!(
            eq(self.leak_coeff[i], c.cfg.leakage_temp_coeff_per_k),
            "leakage coeff lane out of sync"
        );
        assert!(eq(self.leak_tref[i], c.cfg.leakage_ref_temp_c), "leakage tref lane out of sync");
        assert!(eq(self.dyn_max_w[i], c.cfg.dynamic_power_max_w), "dyn power lane out of sync");
        assert!(
            eq(self.mon_throttle_c[i], c.cfg.emergency_throttle_c),
            "throttle threshold lane out of sync"
        );
        assert!(
            eq(self.mon_shutdown_c[i], c.cfg.emergency_shutdown_c),
            "shutdown threshold lane out of sync"
        );
        assert!(
            eq(self.mon_hyst_c[i], c.cfg.emergency_hysteresis_c),
            "hysteresis lane out of sync"
        );

        let m = &node.meter;
        assert!(eq(self.psu_eff[i], m.psu_efficiency), "psu efficiency lane out of sync");
        assert!(eq(self.base_w[i], node.cfg.board.base_power_w), "base power lane out of sync");
        assert!(eq(self.m_period[i], m.sample_period_s), "meter period lane out of sync");
        assert!(eq(self.m_since[i], m.since_sample_s), "meter since lane out of sync");
        assert!(eq(self.m_window[i], m.window_energy_j), "meter window lane out of sync");
        assert!(eq(self.m_total_e[i], m.total_energy_j), "meter energy lane out of sync");
        assert!(eq(self.m_total_t[i], m.total_time_s), "meter time lane out of sync");
        assert_eq!(
            self.m_last[i].map(f64::to_bits),
            m.last_sample_w.map(f64::to_bits),
            "meter last sample lane out of sync"
        );
    }

    /// Advances the lockstep tick/time counters — call exactly once per
    /// simulation tick, before [`PhysicsBatch::tick_node`] /
    /// [`PhysicsBatch::tick_all`]. Mirrors the `ticks += 1; time_s += dt`
    /// prologue of `Node::tick` so stored-back nodes agree with scalar ones.
    pub fn begin_tick(&mut self, dt_s: f64) {
        assert!(dt_s > 0.0, "time step must be positive");
        self.ticks += 1;
        self.time_s += dt_s;
    }

    /// Relative execution speed for slot `i` — same law as
    /// `Node::speed_factor` (0 when shut down; throttled runs the lowest
    /// P-state).
    pub fn speed_factor(&self, i: usize) -> f64 {
        let cond = self.cpu_cond[i];
        if cond == COND_SHUTDOWN {
            return 0.0;
        }
        let eff_f = if cond == COND_NOMINAL { self.req_f[i] } else { self.min_f[i] };
        eff_f / self.top_f[i] * self.sleep_gate[i]
    }

    /// Sets utilization and switching activity for slot `i` (same clamp as
    /// `Cpu::set_load`).
    pub fn set_load(&mut self, i: usize, utilization: f64, activity: f64) {
        (self.util[i], self.activity[i]) = cpu::clamp_load(utilization, activity);
    }

    /// Sets the intake-air temperature on every slot (rack coupling).
    /// Passthrough slots are written too — harmless, as they are never
    /// ticked and reloaded before use.
    pub fn set_ambient_all(&mut self, ambient_c: f64) {
        assert!(ambient_c.is_finite(), "ambient temperature must be finite");
        for a in &mut self.ambient_c {
            *a = ambient_c;
        }
    }

    /// Borrows every lane `tick_slot` touches as plain local slices.
    ///
    /// Indexing the `Vec` fields through `&mut self` forces the compiler to
    /// reload each lane's base pointer and length around every store (a
    /// store through one lane's data pointer could, for all it can prove,
    /// alias another lane's metadata). Hoisting the lanes into a stack
    /// struct of slices once per call turns ~45 reload+check sequences per
    /// slot into plain register-addressed slice indexing — this is where
    /// the batch's throughput comes from.
    fn hot(&mut self) -> HotLanes<'_> {
        HotLanes {
            skipped: &mut self.skipped,
            die_c: &mut self.die_c,
            sink_c: &mut self.sink_c,
            ambient_c: &self.ambient_c,
            g_ds: &self.g_ds,
            c_die: &self.c_die,
            c_sink: &self.c_sink,
            g_nat: &self.g_nat,
            g_air: &self.g_air,
            k_exp: &self.k_exp,
            cond_cache: &mut self.cond_cache,
            substep_cache: &mut self.substep_cache,
            fan_duty_pct: &mut self.fan_duty_pct,
            fan_rpm: &mut self.fan_rpm,
            fan_failed: &self.fan_failed,
            fan_stuck: &self.fan_stuck,
            fan_max_rpm: &self.fan_max_rpm,
            fan_stall: &self.fan_stall,
            fan_tau: &self.fan_tau,
            fan_max_w: &self.fan_max_w,
            fan_lag_cache: &mut self.fan_lag_cache,
            chip_auto: &self.chip_auto,
            chip_measured: &mut self.chip_measured,
            chip_pwm: &mut self.chip_pwm,
            chip_pwm_min: &self.chip_pwm_min,
            chip_pwm_max: &self.chip_pwm_max,
            chip_tmin: &self.chip_tmin,
            chip_tmax: &self.chip_tmax,
            cpu_cond: &mut self.cpu_cond,
            throttle_events: &mut self.throttle_events,
            activity: &self.activity,
            sleep_gate: &self.sleep_gate,
            top_v: &self.top_v,
            top_f: &self.top_f,
            req_v: &self.req_v,
            req_f: &self.req_f,
            min_v: &self.min_v,
            min_f: &self.min_f,
            leak_ref_w: &self.leak_ref_w,
            leak_coeff: &self.leak_coeff,
            leak_tref: &self.leak_tref,
            dyn_max_w: &self.dyn_max_w,
            mon_throttle_c: &self.mon_throttle_c,
            mon_shutdown_c: &self.mon_shutdown_c,
            mon_hyst_c: &self.mon_hyst_c,
            psu_eff: &self.psu_eff,
            base_w: &self.base_w,
            m_period: &self.m_period,
            m_since: &mut self.m_since,
            m_window: &mut self.m_window,
            m_total_e: &mut self.m_total_e,
            m_total_t: &mut self.m_total_t,
            m_stats: &mut self.m_stats,
            m_last: &mut self.m_last,
        }
    }

    /// One batched physics tick for slot `i` — the exact `Node::tick` chain
    /// (chip remote diode → fan → CPU power → RC thermal → thermal monitor →
    /// meter) via the shared raw functions. The caller must have called
    /// [`PhysicsBatch::begin_tick`] for this tick, and must only tick
    /// non-passthrough slots (fast slots have no fault sources by
    /// construction, so the fault-delivery prologue of `Node::tick` is a
    /// no-op for them).
    #[inline]
    pub fn tick_node(&mut self, i: usize, dt_s: f64) {
        debug_assert!(!self.passthrough[i], "passthrough slots tick on the scalar path");
        tick_slot(&mut self.hot(), i, dt_s);
    }

    /// Pure-lane tick over every slot — only valid when [`all_fast`] holds.
    /// The caller must have called [`PhysicsBatch::begin_tick`].
    ///
    /// [`all_fast`]: PhysicsBatch::all_fast
    pub fn tick_all(&mut self, dt_s: f64) {
        debug_assert!(self.all_fast(), "tick_all requires a fully batchable range");
        let len = self.len;
        // Same per-node operation order as [`tick_slot`], restructured into
        // one loop per physics stage. Nodes are independent within a tick,
        // so interleaving stage N of node A with stage M of node B cannot
        // change any node's arithmetic — each slot still sees the exact
        // `Node::tick` sequence, bit for bit. The narrow loops keep live
        // state in registers and let the compiler vectorize the straight-
        // line stages (the fused loop spills constantly: ~50 live lanes).

        // Stage 1: monitoring chip — temp sensor, auto PWM curve, duty latch.
        {
            let skipped = &mut self.skipped[..len];
            let die_c = &self.die_c[..len];
            // Validate the whole lane up front (the scalar path asserts
            // per node mid-tick; a non-finite die aborts the run either
            // way) so the main loop below is branch-free and vectorizes.
            for &die in die_c {
                assert!(die.is_finite(), "measured temperature must be finite");
            }
            let chip_measured = &mut self.chip_measured[..len];
            let chip_auto = &self.chip_auto[..len];
            let chip_pwm = &mut self.chip_pwm[..len];
            let chip_pwm_min = &self.chip_pwm_min[..len];
            let chip_pwm_max = &self.chip_pwm_max[..len];
            let chip_tmin = &self.chip_tmin[..len];
            let chip_tmax = &self.chip_tmax[..len];
            let fan_stuck = &self.fan_stuck[..len];
            let fan_duty_pct = &mut self.fan_duty_pct[..len];
            for i in 0..len {
                skipped[i] += 1;
                let die = die_c[i];
                chip_measured[i] = die;
                // The curve only matters in automatic mode, and software
                // fan schemes (the common fleet configuration) run the
                // chip in manual mode — keep the branch so manual slots
                // skip the whole evaluation. Fleets are uniform in mode,
                // so the branch predicts essentially perfectly.
                let pwm = if chip_auto[i] {
                    adt7467::static_curve_duty_raw(
                        chip_pwm_min[i],
                        chip_pwm_max[i],
                        chip_tmin[i],
                        chip_tmax[i],
                        die,
                    )
                    .to_register()
                } else {
                    chip_pwm[i]
                };
                chip_pwm[i] = pwm;
                let duty = DutyCycle::from_register(pwm).percent();
                fan_duty_pct[i] = if fan_stuck[i] { fan_duty_pct[i] } else { duty };
            }
        }

        // Stage 2: fan rotor lag toward the commanded duty.
        {
            let fan_failed = &self.fan_failed[..len];
            let fan_duty_pct = &self.fan_duty_pct[..len];
            let fan_stall = &self.fan_stall[..len];
            let fan_max_rpm = &self.fan_max_rpm[..len];
            let fan_rpm = &mut self.fan_rpm[..len];
            let fan_tau = &self.fan_tau[..len];
            let fan_lag_cache = &mut self.fan_lag_cache[..len];
            // Tabulated `DutyCycle::new(p).fraction()` — bit-identical,
            // skips the per-slot divide.
            let frac_lut = DutyCycle::percent_fraction_lut();
            for i in 0..len {
                let target = fan::target_rpm_raw(
                    fan_failed[i],
                    frac_lut[usize::from(fan_duty_pct[i])],
                    fan_stall[i],
                    fan_max_rpm[i],
                );
                fan::step_raw(&mut fan_rpm[i], target, dt_s, fan_tau[i], &mut fan_lag_cache[i]);
            }
        }

        // Stage 3: CPU power at the pre-step die temperature (scratch lane).
        {
            let cpu_power = &mut self.cpu_power[..len];
            let cpu_cond = &self.cpu_cond[..len];
            let req_v = &self.req_v[..len];
            let req_f = &self.req_f[..len];
            let min_v = &self.min_v[..len];
            let min_f = &self.min_f[..len];
            let top_v = &self.top_v[..len];
            let top_f = &self.top_f[..len];
            let leak_ref_w = &self.leak_ref_w[..len];
            let leak_coeff = &self.leak_coeff[..len];
            let leak_tref = &self.leak_tref[..len];
            let dyn_max_w = &self.dyn_max_w[..len];
            let activity = &self.activity[..len];
            let sleep_gate = &self.sleep_gate[..len];
            let die_c = &self.die_c[..len];
            for i in 0..len {
                let cond = cpu_cond[i];
                let (eff_v, eff_f) =
                    if cond == COND_NOMINAL { (req_v[i], req_f[i]) } else { (min_v[i], min_f[i]) };
                cpu_power[i] = cpu::power_raw(
                    cond == COND_SHUTDOWN,
                    top_v[i],
                    top_f[i],
                    eff_v,
                    eff_f,
                    leak_ref_w[i],
                    leak_coeff[i],
                    leak_tref[i],
                    dyn_max_w[i],
                    activity[i],
                    sleep_gate[i],
                    die_c[i],
                );
            }
        }

        // Stage 4: RC-thermal step under the new airflow.
        {
            let fan_rpm = &self.fan_rpm[..len];
            let fan_max_rpm = &self.fan_max_rpm[..len];
            let die_c = &mut self.die_c[..len];
            let sink_c = &mut self.sink_c[..len];
            let ambient_c = &self.ambient_c[..len];
            let g_ds = &self.g_ds[..len];
            let c_die = &self.c_die[..len];
            let c_sink = &self.c_sink[..len];
            let g_nat = &self.g_nat[..len];
            let g_air = &self.g_air[..len];
            let k_exp = &self.k_exp[..len];
            let cond_cache = &mut self.cond_cache[..len];
            let substep_cache = &mut self.substep_cache[..len];
            let cpu_power = &self.cpu_power[..len];
            for i in 0..len {
                let airflow = (fan_rpm[i] / fan_max_rpm[i]).clamp(0.0, 1.0);
                thermal::step_raw(
                    &mut die_c[i],
                    &mut sink_c[i],
                    ambient_c[i],
                    g_ds[i],
                    c_die[i],
                    c_sink[i],
                    g_nat[i],
                    g_air[i],
                    k_exp[i],
                    &mut cond_cache[i],
                    &mut substep_cache[i],
                    dt_s,
                    cpu_power[i],
                    airflow,
                );
            }
        }

        // Stage 5: thermal-monitor state machine on the post-step die.
        {
            let cpu_cond = &mut self.cpu_cond[..len];
            let throttle_events = &mut self.throttle_events[..len];
            let die_c = &self.die_c[..len];
            let mon_throttle_c = &self.mon_throttle_c[..len];
            let mon_shutdown_c = &self.mon_shutdown_c[..len];
            let mon_hyst_c = &self.mon_hyst_c[..len];
            for i in 0..len {
                let mut cond = cond_from_u8(cpu_cond[i]);
                cpu::monitor_raw(
                    &mut cond,
                    &mut throttle_events[i],
                    die_c[i],
                    mon_throttle_c[i],
                    mon_shutdown_c[i],
                    mon_hyst_c[i],
                );
                cpu_cond[i] = cond_to_u8(cond);
            }
        }

        // Stage 6: wall-power metering of the DC draw.
        {
            let cpu_power = &self.cpu_power[..len];
            let fan_rpm = &self.fan_rpm[..len];
            let fan_max_rpm = &self.fan_max_rpm[..len];
            let fan_max_w = &self.fan_max_w[..len];
            let base_w = &self.base_w[..len];
            let psu_eff = &self.psu_eff[..len];
            let m_period = &self.m_period[..len];
            let m_since = &mut self.m_since[..len];
            let m_window = &mut self.m_window[..len];
            let m_total_e = &mut self.m_total_e[..len];
            let m_total_t = &mut self.m_total_t[..len];
            let m_stats = &mut self.m_stats[..len];
            let m_last = &mut self.m_last[..len];
            for i in 0..len {
                let dc_power = cpu_power[i]
                    + fan::power_raw(fan_rpm[i], fan_max_rpm[i], fan_max_w[i])
                    + base_w[i];
                power::observe_raw(
                    psu_eff[i],
                    m_period[i],
                    &mut m_since[i],
                    &mut m_window[i],
                    &mut m_total_e[i],
                    &mut m_total_t[i],
                    &mut m_stats[i],
                    &mut m_last[i],
                    dt_s,
                    dc_power,
                );
            }
        }
    }

    /// CPU power for slot `i` at a given die temperature — the exact
    /// `Cpu::power_w` law over lanes.
    #[inline]
    fn cpu_power_w(&self, i: usize, die_temp_c: f64) -> f64 {
        let cond = self.cpu_cond[i];
        let (eff_v, eff_f) = if cond == COND_NOMINAL {
            (self.req_v[i], self.req_f[i])
        } else {
            (self.min_v[i], self.min_f[i])
        };
        cpu::power_raw(
            cond == COND_SHUTDOWN,
            self.top_v[i],
            self.top_f[i],
            eff_v,
            eff_f,
            self.leak_ref_w[i],
            self.leak_coeff[i],
            self.leak_tref[i],
            self.dyn_max_w[i],
            self.activity[i],
            self.sleep_gate[i],
            die_temp_c,
        )
    }

    /// Heat dissipated into the air by slot `i`, W — the exact
    /// `Node::heat_output_w` law (post-tick condition and die temperature).
    pub fn heat_output_w(&self, i: usize) -> f64 {
        self.cpu_power_w(i, self.die_c[i])
            + fan::power_raw(self.fan_rpm[i], self.fan_max_rpm[i], self.fan_max_w[i])
            + self.base_w[i]
    }

    /// Writes [`PhysicsBatch::heat_output_w`] of every slot into `out`
    /// (pure-lane companion of [`PhysicsBatch::tick_all`]).
    ///
    /// Same expressions per slot as [`PhysicsBatch::heat_output_w`], but
    /// over pinned slices — calling `heat_output_w` in a loop re-derives
    /// every lane pointer through `&self` per slot, which is the dominant
    /// cost of this pass on large fleets.
    pub fn write_heat(&self, out: &mut [f64]) {
        let len = self.len;
        let out = &mut out[..len];
        let cpu_cond = &self.cpu_cond[..len];
        let req_v = &self.req_v[..len];
        let req_f = &self.req_f[..len];
        let min_v = &self.min_v[..len];
        let min_f = &self.min_f[..len];
        let top_v = &self.top_v[..len];
        let top_f = &self.top_f[..len];
        let leak_ref_w = &self.leak_ref_w[..len];
        let leak_coeff = &self.leak_coeff[..len];
        let leak_tref = &self.leak_tref[..len];
        let dyn_max_w = &self.dyn_max_w[..len];
        let activity = &self.activity[..len];
        let sleep_gate = &self.sleep_gate[..len];
        let die_c = &self.die_c[..len];
        let fan_rpm = &self.fan_rpm[..len];
        let fan_max_rpm = &self.fan_max_rpm[..len];
        let fan_max_w = &self.fan_max_w[..len];
        let base_w = &self.base_w[..len];
        for i in 0..len {
            let cond = cpu_cond[i];
            let (eff_v, eff_f) =
                if cond == COND_NOMINAL { (req_v[i], req_f[i]) } else { (min_v[i], min_f[i]) };
            out[i] = cpu::power_raw(
                cond == COND_SHUTDOWN,
                top_v[i],
                top_f[i],
                eff_v,
                eff_f,
                leak_ref_w[i],
                leak_coeff[i],
                leak_tref[i],
                dyn_max_w[i],
                activity[i],
                sleep_gate[i],
                die_c[i],
            ) + fan::power_raw(fan_rpm[i], fan_max_rpm[i], fan_max_w[i])
                + base_w[i];
        }
    }

    /// Drains the batched-tick counter for slot `i`: the number of
    /// `tick_node` calls since the last drain. The owner folds this into the
    /// node's `ticks_skipped` counter at sync points — each batched tick is
    /// exactly one control-plane tick that observed nothing, matching the
    /// scalar path's per-tick early-out accounting.
    pub fn take_skipped(&mut self, i: usize) -> u64 {
        std::mem::take(&mut self.skipped[i])
    }
}

/// The lanes [`tick_slot`] touches, borrowed out of the batch as plain
/// slices (see [`PhysicsBatch::hot`] for why this exists).
struct HotLanes<'a> {
    skipped: &'a mut [u64],
    die_c: &'a mut [f64],
    sink_c: &'a mut [f64],
    ambient_c: &'a [f64],
    g_ds: &'a [f64],
    c_die: &'a [f64],
    c_sink: &'a [f64],
    g_nat: &'a [f64],
    g_air: &'a [f64],
    k_exp: &'a [f64],
    cond_cache: &'a mut [(f64, f64)],
    substep_cache: &'a mut [(f64, f64, usize, f64)],
    fan_duty_pct: &'a mut [u8],
    fan_rpm: &'a mut [f64],
    fan_failed: &'a [bool],
    fan_stuck: &'a [bool],
    fan_max_rpm: &'a [f64],
    fan_stall: &'a [f64],
    fan_tau: &'a [f64],
    fan_max_w: &'a [f64],
    fan_lag_cache: &'a mut [(f64, f64)],
    chip_auto: &'a [bool],
    chip_measured: &'a mut [f64],
    chip_pwm: &'a mut [u8],
    chip_pwm_min: &'a [u8],
    chip_pwm_max: &'a [u8],
    chip_tmin: &'a [u8],
    chip_tmax: &'a [u8],
    cpu_cond: &'a mut [u8],
    throttle_events: &'a mut [u64],
    activity: &'a [f64],
    sleep_gate: &'a [f64],
    top_v: &'a [f64],
    top_f: &'a [f64],
    req_v: &'a [f64],
    req_f: &'a [f64],
    min_v: &'a [f64],
    min_f: &'a [f64],
    leak_ref_w: &'a [f64],
    leak_coeff: &'a [f64],
    leak_tref: &'a [f64],
    dyn_max_w: &'a [f64],
    mon_throttle_c: &'a [f64],
    mon_shutdown_c: &'a [f64],
    mon_hyst_c: &'a [f64],
    psu_eff: &'a [f64],
    base_w: &'a [f64],
    m_period: &'a [f64],
    m_since: &'a mut [f64],
    m_window: &'a mut [f64],
    m_total_e: &'a mut [f64],
    m_total_t: &'a mut [f64],
    m_stats: &'a mut [RunningStats],
    m_last: &'a mut [Option<f64>],
}

/// The per-slot tick body shared by [`PhysicsBatch::tick_node`] and
/// [`PhysicsBatch::tick_all`] — the exact `Node::tick` operation order over
/// lanes.
#[inline]
fn tick_slot(l: &mut HotLanes<'_>, i: usize, dt_s: f64) {
    l.skipped[i] += 1;

    // The chip's remote diode tracks the die continuously.
    let die = l.die_c[i];
    assert!(die.is_finite(), "measured temperature must be finite");
    l.chip_measured[i] = die;
    if l.chip_auto[i] {
        l.chip_pwm[i] = adt7467::static_curve_duty_raw(
            l.chip_pwm_min[i],
            l.chip_pwm_max[i],
            l.chip_tmin[i],
            l.chip_tmax[i],
            die,
        )
        .to_register();
    }
    if !l.fan_stuck[i] {
        l.fan_duty_pct[i] = DutyCycle::from_register(l.chip_pwm[i]).percent();
    }

    let target = fan::target_rpm_raw(
        l.fan_failed[i],
        DutyCycle::new(l.fan_duty_pct[i]).fraction(),
        l.fan_stall[i],
        l.fan_max_rpm[i],
    );
    fan::step_raw(&mut l.fan_rpm[i], target, dt_s, l.fan_tau[i], &mut l.fan_lag_cache[i]);

    // CPU power at the pre-step die temperature, like Node::tick.
    let cond = l.cpu_cond[i];
    let (eff_v, eff_f) =
        if cond == COND_NOMINAL { (l.req_v[i], l.req_f[i]) } else { (l.min_v[i], l.min_f[i]) };
    let cpu_power = cpu::power_raw(
        cond == COND_SHUTDOWN,
        l.top_v[i],
        l.top_f[i],
        eff_v,
        eff_f,
        l.leak_ref_w[i],
        l.leak_coeff[i],
        l.leak_tref[i],
        l.dyn_max_w[i],
        l.activity[i],
        l.sleep_gate[i],
        die,
    );

    let airflow = (l.fan_rpm[i] / l.fan_max_rpm[i]).clamp(0.0, 1.0);
    thermal::step_raw(
        &mut l.die_c[i],
        &mut l.sink_c[i],
        l.ambient_c[i],
        l.g_ds[i],
        l.c_die[i],
        l.c_sink[i],
        l.g_nat[i],
        l.g_air[i],
        l.k_exp[i],
        &mut l.cond_cache[i],
        &mut l.substep_cache[i],
        dt_s,
        cpu_power,
        airflow,
    );

    let mut cond = cond_from_u8(l.cpu_cond[i]);
    cpu::monitor_raw(
        &mut cond,
        &mut l.throttle_events[i],
        l.die_c[i],
        l.mon_throttle_c[i],
        l.mon_shutdown_c[i],
        l.mon_hyst_c[i],
    );
    l.cpu_cond[i] = cond_to_u8(cond);

    let dc_power =
        cpu_power + fan::power_raw(l.fan_rpm[i], l.fan_max_rpm[i], l.fan_max_w[i]) + l.base_w[i];
    power::observe_raw(
        l.psu_eff[i],
        l.m_period[i],
        &mut l.m_since[i],
        &mut l.m_window[i],
        &mut l.m_total_e[i],
        &mut l.m_total_t[i],
        &mut l.m_stats[i],
        &mut l.m_last[i],
        dt_s,
        dc_power,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;

    /// Drives a scalar node and a 1-slot batch through the same tick
    /// sequence and asserts bit-identical state after store-back.
    fn assert_lockstep(mut cfg_mutate: impl FnMut(&mut NodeConfig), util: f64, ticks: u32) {
        let mut cfg = NodeConfig::default();
        cfg_mutate(&mut cfg);
        let mut scalar = Node::new(cfg.clone(), 42);
        let mut batched = Node::new(cfg, 42);
        scalar.set_utilization(util);
        batched.set_utilization(util);

        let mut batch = PhysicsBatch::from_nodes([&batched]);
        let dt = 0.05;
        for _ in 0..ticks {
            scalar.tick(dt);
            batch.begin_tick(dt);
            batch.tick_node(0, dt);
        }
        batch.store(0, &mut batched);

        assert_eq!(scalar.state(), batched.state());
        assert_eq!(scalar.ticks(), batched.ticks());
        assert_eq!(scalar.time_s().to_bits(), batched.time_s().to_bits());
        assert_eq!(scalar.meter().energy_j().to_bits(), batched.meter().energy_j().to_bits());
        assert_eq!(scalar.heat_output_w().to_bits(), batched.heat_output_w().to_bits());
        assert_eq!(batch.take_skipped(0), u64::from(ticks));
    }

    #[test]
    fn idle_node_is_bit_identical() {
        assert_lockstep(|_| {}, 0.0, 500);
    }

    #[test]
    fn burn_node_is_bit_identical() {
        assert_lockstep(|_| {}, 1.0, 2_000);
    }

    #[test]
    fn throttling_node_is_bit_identical() {
        // Cap the fan via a tiny Tmax span so the monitor engages.
        assert_lockstep(
            |cfg| {
                cfg.thermal.airflow_conductance_w_per_k = 0.4;
            },
            1.0,
            5_000,
        );
    }

    #[test]
    fn speed_factor_matches_scalar() {
        let node = Node::new(NodeConfig::default(), 7);
        let batch = PhysicsBatch::from_nodes([&node]);
        assert_eq!(batch.speed_factor(0).to_bits(), node.speed_factor().to_bits());
    }

    #[test]
    fn passthrough_bookkeeping() {
        let node = Node::new(NodeConfig::default(), 7);
        let mut batch = PhysicsBatch::from_nodes([&node]);
        assert!(batch.all_fast());
        batch.set_passthrough(0, true);
        batch.set_passthrough(0, true); // idempotent
        assert!(batch.is_passthrough(0));
        assert!(!batch.all_fast());
        batch.set_passthrough(0, false);
        assert!(batch.all_fast());
    }
}
