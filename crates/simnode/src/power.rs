//! Wall-power meter model ("Watts up? Pro ES").
//!
//! The paper measures whole-system power at the wall outlet. The meter model
//! aggregates the DC loads (CPU + fan + board), divides by PSU efficiency to
//! obtain AC wall power, integrates energy continuously, and produces
//! 1 Hz-style sampled readings like the real instrument.

use unitherm_metrics::RunningStats;

/// Raw meter accumulation, shared verbatim by [`PowerMeter::observe`] and
/// the SoA batch path (`crate::batch`). Operates on caller-owned state so
/// the batch can run it over contiguous lanes.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn observe_raw(
    psu_efficiency: f64,
    sample_period_s: f64,
    since_sample_s: &mut f64,
    window_energy_j: &mut f64,
    total_energy_j: &mut f64,
    total_time_s: &mut f64,
    stats: &mut RunningStats,
    last_sample_w: &mut Option<f64>,
    dt_s: f64,
    dc_power_w: f64,
) -> Option<f64> {
    assert!(dt_s > 0.0, "time step must be positive");
    assert!(dc_power_w >= 0.0, "power cannot be negative");
    let wall_w = dc_power_w / psu_efficiency;
    *total_energy_j += wall_w * dt_s;
    *total_time_s += dt_s;
    *window_energy_j += wall_w * dt_s;
    *since_sample_s += dt_s;
    if *since_sample_s + 1e-9 >= sample_period_s {
        let sample = *window_energy_j / *since_sample_s;
        *window_energy_j = 0.0;
        *since_sample_s = 0.0;
        stats.push(sample);
        *last_sample_w = Some(sample);
        Some(sample)
    } else {
        None
    }
}

/// A sampling wall-power meter.
#[derive(Debug, Clone)]
pub struct PowerMeter {
    pub(crate) psu_efficiency: f64,
    pub(crate) sample_period_s: f64,
    /// Time accumulated since the last emitted sample.
    pub(crate) since_sample_s: f64,
    /// Energy accumulated since the last emitted sample (J, wall side).
    pub(crate) window_energy_j: f64,
    /// Total wall energy in joules.
    pub(crate) total_energy_j: f64,
    /// Total observation time in seconds.
    pub(crate) total_time_s: f64,
    /// Statistics over emitted samples.
    pub(crate) stats: RunningStats,
    pub(crate) last_sample_w: Option<f64>,
}

impl PowerMeter {
    /// Creates a meter with the given PSU efficiency and sampling period.
    pub fn new(psu_efficiency: f64, sample_period_s: f64) -> Self {
        assert!(psu_efficiency > 0.0 && psu_efficiency <= 1.0, "PSU efficiency must be in (0,1]");
        assert!(sample_period_s > 0.0, "sample period must be positive");
        Self {
            psu_efficiency,
            sample_period_s,
            since_sample_s: 0.0,
            window_energy_j: 0.0,
            total_energy_j: 0.0,
            total_time_s: 0.0,
            stats: RunningStats::new(),
            last_sample_w: None,
        }
    }

    /// Accumulates `dt_s` seconds of the given DC load; returns a new sample
    /// (average wall power over the sample window) each time a sampling
    /// period completes.
    pub fn observe(&mut self, dt_s: f64, dc_power_w: f64) -> Option<f64> {
        observe_raw(
            self.psu_efficiency,
            self.sample_period_s,
            &mut self.since_sample_s,
            &mut self.window_energy_j,
            &mut self.total_energy_j,
            &mut self.total_time_s,
            &mut self.stats,
            &mut self.last_sample_w,
            dt_s,
            dc_power_w,
        )
    }

    /// Total wall energy observed, in joules.
    pub fn energy_j(&self) -> f64 {
        self.total_energy_j
    }

    /// True average wall power over the whole observation, in watts.
    pub fn average_power_w(&self) -> f64 {
        if self.total_time_s > 0.0 {
            self.total_energy_j / self.total_time_s
        } else {
            0.0
        }
    }

    /// The most recent emitted sample.
    pub fn last_sample_w(&self) -> Option<f64> {
        self.last_sample_w
    }

    /// Statistics over emitted samples.
    pub fn sample_stats(&self) -> RunningStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_energy_through_psu() {
        let mut m = PowerMeter::new(0.8, 1.0);
        for _ in 0..100 {
            m.observe(0.1, 80.0); // 80 W DC = 100 W wall
        }
        assert!((m.energy_j() - 1000.0).abs() < 1e-6);
        assert!((m.average_power_w() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn emits_samples_at_period() {
        let mut m = PowerMeter::new(1.0, 1.0);
        let mut samples = 0;
        for _ in 0..25 {
            if m.observe(0.25, 50.0).is_some() {
                samples += 1;
            }
        }
        assert_eq!(samples, 6, "25 × 0.25 s = 6.25 s ⇒ 6 one-second samples");
        assert_eq!(m.last_sample_w(), Some(50.0));
    }

    #[test]
    fn sample_averages_window() {
        let mut m = PowerMeter::new(1.0, 1.0);
        // Half the window at 100 W, half at 0 W ⇒ 50 W sample.
        for _ in 0..5 {
            m.observe(0.1, 100.0);
        }
        let mut out = None;
        for _ in 0..5 {
            out = m.observe(0.1, 0.0).or(out);
        }
        let sample = out.expect("window completed");
        assert!((sample - 50.0).abs() < 1e-9, "sample {sample}");
    }

    #[test]
    fn stats_track_samples() {
        let mut m = PowerMeter::new(1.0, 0.5);
        for i in 0..10 {
            m.observe(0.5, f64::from(i * 10));
        }
        let s = m.sample_stats();
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let m = PowerMeter::new(0.9, 1.0);
        assert_eq!(m.average_power_w(), 0.0);
        assert_eq!(m.energy_j(), 0.0);
        assert_eq!(m.last_sample_w(), None);
    }

    #[test]
    #[should_panic(expected = "PSU efficiency")]
    fn rejects_bad_efficiency() {
        let _ = PowerMeter::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_power() {
        let mut m = PowerMeter::new(1.0, 1.0);
        m.observe(0.1, -5.0);
    }
}
