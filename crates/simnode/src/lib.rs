#![warn(missing_docs)]

//! Physics substrate for the unitherm reproduction.
//!
//! The ICPP 2010 paper evaluates its thermal-control framework on a real
//! 4-node cluster: AMD Athlon64 4000+ processors with 5 DVFS P-states, a
//! user-controllable 4300-RPM CPU fan behind an Analog Devices ADT7467
//! "dBCool" fan controller on an i2c bus, on-die digital thermal sensors read
//! through lm-sensors at 4 Hz, and a "Watts up? Pro ES" wall-power meter.
//!
//! None of that hardware is available here, so this crate implements the
//! closest faithful simulation of each device (see `DESIGN.md` §2 for the
//! substitution table):
//!
//! * [`thermal`] — a two-node lumped RC network (die + heatsink) whose
//!   heatsink-to-ambient conductance depends on fan airflow,
//! * [`cpu`] — a DVFS-capable CPU with the paper's five P-states and a
//!   leakage + dynamic power model,
//! * [`fan`] — a PWM fan with first-order spin-up lag and cubic power draw,
//! * [`adt7467`] — a register-level model of the ADT7467 fan controller,
//!   including its automatic Tmin/Tmax/PWMmin control curve (the paper's
//!   "traditional static fan control", Figure 1),
//! * [`i2c`] — an SMBus/i2c bus emulation the ADT7467 model sits behind,
//! * [`sensor`] — a quantizing, noisy digital thermal sensor,
//! * [`power`] — a sampling wall-power meter,
//! * [`node`] — the assembled server node advanced by a fixed-step tick loop,
//! * [`faults`] — fault injection (fan failure, sensor dropout, ambient steps),
//! * [`batch`] — structure-of-arrays lanes over the hot per-node physics
//!   state, bit-identical to the scalar tick for 100k-node fleets.
//!
//! Everything is deterministic given the seed in [`config::NodeConfig`].

pub mod adt7467;
pub mod batch;
pub mod config;
pub mod cpu;
pub mod fan;
pub mod faults;
pub mod i2c;
pub mod node;
pub mod power;
pub mod sensor;
pub mod thermal;
pub mod units;

pub use batch::PhysicsBatch;
pub use config::NodeConfig;
pub use node::{Node, NodeState};
pub use units::{DutyCycle, MilliCelsius, PState};
