//! SMBus/i2c bus emulation.
//!
//! The paper's fan driver talks to the ADT7467 through the i2c protocol; we
//! reproduce that control path so the "driver" layer (`unitherm-hwmon`)
//! exercises real addressed register transactions instead of poking the fan
//! model directly. The bus supports multiple attached devices, transaction
//! accounting, and NACK fault injection.

use std::any::Any;
use std::collections::BTreeMap;

/// Error raised by a device while handling a register access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The register address is not implemented by the device.
    InvalidRegister(u8),
    /// The register exists but is read-only.
    ReadOnlyRegister(u8),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidRegister(r) => write!(f, "invalid register 0x{r:02x}"),
            DeviceError::ReadOnlyRegister(r) => write!(f, "register 0x{r:02x} is read-only"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Error raised by a bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum I2cError {
    /// No device acknowledged the address.
    NoDevice {
        /// The unacknowledged 7-bit address.
        addr: u8,
    },
    /// The device NACKed the transaction (injected fault).
    Nack {
        /// The NACKing 7-bit address.
        addr: u8,
    },
    /// The device rejected the register access.
    Device(DeviceError),
}

impl std::fmt::Display for I2cError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            I2cError::NoDevice { addr } => write!(f, "no device at address 0x{addr:02x}"),
            I2cError::Nack { addr } => write!(f, "device 0x{addr:02x} NACKed"),
            I2cError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for I2cError {}

impl From<DeviceError> for I2cError {
    fn from(e: DeviceError) -> Self {
        I2cError::Device(e)
    }
}

/// A device that speaks the SMBus byte-register protocol.
pub trait SmbusDevice: Send {
    /// Reads one register byte.
    fn read_byte(&mut self, reg: u8) -> Result<u8, DeviceError>;
    /// Writes one register byte.
    fn write_byte(&mut self, reg: u8, value: u8) -> Result<(), DeviceError>;
    /// Upcast for typed access from the simulator tick loop.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for typed access from the simulator tick loop.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Counters describing bus traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Successful byte reads.
    pub reads: u64,
    /// Successful byte writes.
    pub writes: u64,
    /// Failed transactions (NACKs, missing devices, device errors).
    pub errors: u64,
}

/// An i2c bus with addressed SMBus devices.
#[derive(Default)]
pub struct I2cBus {
    devices: BTreeMap<u8, Box<dyn SmbusDevice>>,
    nacking: Vec<u8>,
    stats: BusStats,
}

impl std::fmt::Debug for I2cBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("I2cBus")
            .field("addresses", &self.devices.keys().collect::<Vec<_>>())
            .field("stats", &self.stats)
            .finish()
    }
}

impl I2cBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a device at a 7-bit address.
    ///
    /// # Panics
    /// Panics if the address is already occupied or outside the 7-bit range —
    /// both are wiring bugs, not runtime conditions.
    pub fn attach(&mut self, addr: u8, device: Box<dyn SmbusDevice>) {
        assert!(addr <= 0x7F, "i2c addresses are 7-bit, got 0x{addr:02x}");
        assert!(!self.devices.contains_key(&addr), "i2c address 0x{addr:02x} already occupied");
        self.devices.insert(addr, device);
    }

    /// Addresses of all attached devices.
    pub fn addresses(&self) -> impl Iterator<Item = u8> + '_ {
        self.devices.keys().copied()
    }

    /// Reads one register byte from the device at `addr`.
    pub fn read_byte(&mut self, addr: u8, reg: u8) -> Result<u8, I2cError> {
        if self.nacking.contains(&addr) {
            self.stats.errors += 1;
            return Err(I2cError::Nack { addr });
        }
        let dev = match self.devices.get_mut(&addr) {
            Some(d) => d,
            None => {
                self.stats.errors += 1;
                return Err(I2cError::NoDevice { addr });
            }
        };
        match dev.read_byte(reg) {
            Ok(v) => {
                self.stats.reads += 1;
                Ok(v)
            }
            Err(e) => {
                self.stats.errors += 1;
                Err(e.into())
            }
        }
    }

    /// Writes one register byte to the device at `addr`.
    pub fn write_byte(&mut self, addr: u8, reg: u8, value: u8) -> Result<(), I2cError> {
        if self.nacking.contains(&addr) {
            self.stats.errors += 1;
            return Err(I2cError::Nack { addr });
        }
        let dev = match self.devices.get_mut(&addr) {
            Some(d) => d,
            None => {
                self.stats.errors += 1;
                return Err(I2cError::NoDevice { addr });
            }
        };
        match dev.write_byte(reg, value) {
            Ok(()) => {
                self.stats.writes += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.errors += 1;
                Err(e.into())
            }
        }
    }

    /// Typed immutable access to an attached device (simulator internal use).
    pub fn device<T: 'static>(&self, addr: u8) -> Option<&T> {
        self.devices.get(&addr).and_then(|d| d.as_any().downcast_ref())
    }

    /// Typed mutable access to an attached device (simulator internal use).
    pub fn device_mut<T: 'static>(&mut self, addr: u8) -> Option<&mut T> {
        self.devices.get_mut(&addr).and_then(|d| d.as_any_mut().downcast_mut())
    }

    /// Enables or disables NACK injection for an address.
    pub fn inject_nack(&mut self, addr: u8, enabled: bool) {
        if enabled {
            if !self.nacking.contains(&addr) {
                self.nacking.push(addr);
            }
        } else {
            self.nacking.retain(|&a| a != addr);
        }
    }

    /// Transaction counters.
    pub fn stats(&self) -> BusStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial 4-register RAM device for bus tests.
    struct RamDevice {
        regs: [u8; 4],
    }

    impl SmbusDevice for RamDevice {
        fn read_byte(&mut self, reg: u8) -> Result<u8, DeviceError> {
            self.regs.get(reg as usize).copied().ok_or(DeviceError::InvalidRegister(reg))
        }
        fn write_byte(&mut self, reg: u8, value: u8) -> Result<(), DeviceError> {
            if reg == 3 {
                return Err(DeviceError::ReadOnlyRegister(reg));
            }
            *self.regs.get_mut(reg as usize).ok_or(DeviceError::InvalidRegister(reg))? = value;
            Ok(())
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn bus_with_ram() -> I2cBus {
        let mut bus = I2cBus::new();
        bus.attach(0x2E, Box::new(RamDevice { regs: [0; 4] }));
        bus
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut bus = bus_with_ram();
        bus.write_byte(0x2E, 1, 0xAB).unwrap();
        assert_eq!(bus.read_byte(0x2E, 1), Ok(0xAB));
        assert_eq!(bus.stats(), BusStats { reads: 1, writes: 1, errors: 0 });
    }

    #[test]
    fn missing_device_errors() {
        let mut bus = bus_with_ram();
        assert_eq!(bus.read_byte(0x10, 0), Err(I2cError::NoDevice { addr: 0x10 }));
        assert_eq!(bus.stats().errors, 1);
    }

    #[test]
    fn invalid_register_propagates() {
        let mut bus = bus_with_ram();
        assert_eq!(
            bus.read_byte(0x2E, 99),
            Err(I2cError::Device(DeviceError::InvalidRegister(99)))
        );
        assert_eq!(
            bus.write_byte(0x2E, 3, 1),
            Err(I2cError::Device(DeviceError::ReadOnlyRegister(3)))
        );
    }

    #[test]
    fn nack_injection_blocks_and_recovers() {
        let mut bus = bus_with_ram();
        bus.inject_nack(0x2E, true);
        assert_eq!(bus.read_byte(0x2E, 0), Err(I2cError::Nack { addr: 0x2E }));
        assert_eq!(bus.write_byte(0x2E, 0, 1), Err(I2cError::Nack { addr: 0x2E }));
        bus.inject_nack(0x2E, false);
        assert!(bus.read_byte(0x2E, 0).is_ok());
    }

    #[test]
    fn typed_access_downcasts() {
        let mut bus = bus_with_ram();
        bus.write_byte(0x2E, 2, 7).unwrap();
        let dev: &RamDevice = bus.device(0x2E).unwrap();
        assert_eq!(dev.regs[2], 7);
        let dev: &mut RamDevice = bus.device_mut(0x2E).unwrap();
        dev.regs[2] = 9;
        assert_eq!(bus.read_byte(0x2E, 2), Ok(9));
        assert!(bus.device::<I2cBus>(0x2E).is_none(), "wrong type downcast fails");
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_attach_panics() {
        let mut bus = bus_with_ram();
        bus.attach(0x2E, Box::new(RamDevice { regs: [0; 4] }));
    }

    #[test]
    #[should_panic(expected = "7-bit")]
    fn eight_bit_address_panics() {
        let mut bus = I2cBus::new();
        bus.attach(0x80, Box::new(RamDevice { regs: [0; 4] }));
    }

    #[test]
    fn addresses_lists_attached() {
        let bus = bus_with_ram();
        assert_eq!(bus.addresses().collect::<Vec<_>>(), vec![0x2E]);
    }
}
