//! PWM CPU fan model.
//!
//! The fan converts a PWM duty cycle into rotational speed with a first-order
//! lag (rotor inertia), stalls below a minimum duty, draws power cubically in
//! speed (fan affinity laws), and can fail (rotor seized) for fault-injection
//! experiments.
//!
//! Airflow delivered to the heatsink is modeled as proportional to RPM; the
//! thermal model turns it into convective conductance.

use crate::config::FanConfig;
use crate::units::DutyCycle;

/// Raw steady-state RPM law, shared verbatim by [`Fan::step`] and the SoA
/// batch path (`crate::batch`) so both evaluate the exact same expressions.
#[inline]
pub(crate) fn target_rpm_raw(
    failed: bool,
    duty_fraction: f64,
    stall_fraction: f64,
    max_rpm: f64,
) -> f64 {
    if failed {
        return 0.0;
    }
    if duty_fraction < stall_fraction {
        // Below the stall threshold the motor cannot sustain rotation.
        return 0.0;
    }
    max_rpm * duty_fraction
}

/// Raw first-order rotor lag, shared verbatim by [`Fan::step`] and the SoA
/// batch path. `lag_cache` memoizes `(dt_s, alpha)` keyed on the exact bits
/// of `dt_s` so the `exp()` only runs when `dt` changes.
#[inline]
pub(crate) fn step_raw(
    rpm: &mut f64,
    target: f64,
    dt_s: f64,
    time_constant_s: f64,
    lag_cache: &mut (f64, f64),
) {
    assert!(dt_s > 0.0, "time step must be positive");
    // Exact solution of the first-order lag over dt (stable for any dt).
    if lag_cache.0.to_bits() != dt_s.to_bits() {
        *lag_cache = (dt_s, 1.0 - (-dt_s / time_constant_s).exp());
    }
    let alpha = lag_cache.1;
    *rpm += (target - *rpm) * alpha;
    if *rpm < 1.0 && target == 0.0 {
        *rpm = 0.0;
    }
}

/// Raw fan motor power (cubic in speed), shared verbatim by [`Fan::power_w`]
/// and the SoA batch path.
#[inline]
pub(crate) fn power_raw(rpm: f64, max_rpm: f64, max_power_w: f64) -> f64 {
    let speed_fraction = (rpm / max_rpm).clamp(0.0, 1.0);
    max_power_w * speed_fraction.powi(3)
}

/// A PWM-controlled axial fan.
#[derive(Debug, Clone)]
pub struct Fan {
    pub(crate) cfg: FanConfig,
    pub(crate) duty: DutyCycle,
    pub(crate) rpm: f64,
    pub(crate) failed: bool,
    pub(crate) pwm_stuck: bool,
    /// Memoized `(dt_s, alpha)` for the lag update below. The simulator calls
    /// `step` with a fixed `dt`, so the `exp()` only runs when `dt` changes;
    /// the exact-match key keeps results bit-identical to the uncached path.
    pub(crate) lag_cache: (f64, f64),
}

impl Fan {
    /// Creates a fan at rest with 0 % duty.
    pub fn new(cfg: FanConfig) -> Self {
        Self {
            cfg,
            duty: DutyCycle::OFF,
            rpm: 0.0,
            failed: false,
            pwm_stuck: false,
            lag_cache: (f64::NAN, 0.0),
        }
    }

    /// Creates a fan already spinning at the equilibrium speed for `duty`.
    pub fn new_at_duty(cfg: FanConfig, duty: DutyCycle) -> Self {
        let mut f = Self::new(cfg);
        f.duty = duty;
        f.rpm = f.target_rpm();
        f
    }

    /// Commanded duty cycle.
    pub fn duty(&self) -> DutyCycle {
        self.duty
    }

    /// Sets the commanded duty cycle. The rotor approaches the new target
    /// speed over the spin-up time constant. Ignored while the PWM line is
    /// stuck ([`Fan::stick_pwm`]).
    pub fn set_duty(&mut self, duty: DutyCycle) {
        if self.pwm_stuck {
            return;
        }
        self.duty = duty;
    }

    /// Current rotor speed in RPM.
    pub fn rpm(&self) -> f64 {
        self.rpm
    }

    /// Rotor speed as a fraction of full speed, in `[0, 1]`.
    pub fn speed_fraction(&self) -> f64 {
        (self.rpm / self.cfg.max_rpm).clamp(0.0, 1.0)
    }

    /// Airflow fraction delivered to the heatsink, in `[0, 1]`
    /// (proportional to rotor speed).
    pub fn airflow(&self) -> f64 {
        self.speed_fraction()
    }

    /// Electrical power drawn by the fan motor in W (cubic in speed).
    pub fn power_w(&self) -> f64 {
        power_raw(self.rpm, self.cfg.max_rpm, self.cfg.max_power_w)
    }

    /// True when the rotor has seized.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Seizes the rotor: speed collapses to zero regardless of duty.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Repairs a failed rotor (it will spin back up toward the duty target).
    pub fn repair(&mut self) {
        self.failed = false;
    }

    /// Latches the PWM line at the current duty: the rotor keeps spinning,
    /// but [`Fan::set_duty`] is ignored until [`Fan::release_pwm`]. Models a
    /// wedged controller output stage (vs. [`Fan::fail`], a seized rotor).
    pub fn stick_pwm(&mut self) {
        self.pwm_stuck = true;
    }

    /// Releases a stuck PWM line; duty commands take effect again.
    pub fn release_pwm(&mut self) {
        self.pwm_stuck = false;
    }

    /// True while the PWM line is stuck.
    pub fn is_pwm_stuck(&self) -> bool {
        self.pwm_stuck
    }

    /// Steady-state RPM for the current duty command.
    fn target_rpm(&self) -> f64 {
        target_rpm_raw(self.failed, self.duty.fraction(), self.cfg.stall_fraction, self.cfg.max_rpm)
    }

    /// Advances rotor dynamics by `dt_s` seconds.
    pub fn step(&mut self, dt_s: f64) {
        let target = self.target_rpm();
        step_raw(&mut self.rpm, target, dt_s, self.cfg.time_constant_s, &mut self.lag_cache);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fan() -> Fan {
        Fan::new(FanConfig::default())
    }

    #[test]
    fn starts_at_rest() {
        let f = fan();
        assert_eq!(f.rpm(), 0.0);
        assert_eq!(f.duty(), DutyCycle::OFF);
        assert_eq!(f.power_w(), 0.0);
    }

    #[test]
    fn spins_up_toward_duty_target() {
        let mut f = fan();
        f.set_duty(DutyCycle::new(100));
        for _ in 0..200 {
            f.step(0.05);
        }
        assert!((f.rpm() - 4300.0).abs() < 10.0, "rpm {}", f.rpm());
        assert!((f.airflow() - 1.0).abs() < 0.01);
    }

    #[test]
    fn spinup_takes_roughly_the_time_constant() {
        let mut f = fan();
        f.set_duty(DutyCycle::new(100));
        f.step(1.5); // one time constant
        let frac = f.rpm() / 4300.0;
        assert!((frac - 0.632).abs() < 0.02, "after 1 tau: {frac}");
    }

    #[test]
    fn new_at_duty_is_at_equilibrium() {
        let f = Fan::new_at_duty(FanConfig::default(), DutyCycle::new(50));
        assert!((f.rpm() - 2150.0).abs() < 1e-9);
    }

    #[test]
    fn rpm_linear_in_duty_above_stall() {
        let f25 = Fan::new_at_duty(FanConfig::default(), DutyCycle::new(25));
        let f50 = Fan::new_at_duty(FanConfig::default(), DutyCycle::new(50));
        assert!((f50.rpm() / f25.rpm() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stalls_below_threshold() {
        let mut f = fan();
        f.set_duty(DutyCycle::new(3)); // below 4 % stall fraction
        for _ in 0..100 {
            f.step(0.1);
        }
        assert_eq!(f.rpm(), 0.0);
    }

    #[test]
    fn min_running_duty_spins() {
        let mut f = fan();
        f.set_duty(DutyCycle::new(5));
        for _ in 0..200 {
            f.step(0.1);
        }
        assert!(f.rpm() > 100.0);
    }

    #[test]
    fn power_is_cubic_in_speed() {
        let half = Fan::new_at_duty(FanConfig::default(), DutyCycle::new(50));
        let full = Fan::new_at_duty(FanConfig::default(), DutyCycle::new(100));
        assert!((full.power_w() / half.power_w() - 8.0).abs() < 1e-6);
        assert!((full.power_w() - 4.8).abs() < 1e-9);
    }

    #[test]
    fn failure_collapses_speed_and_repair_recovers() {
        let mut f = Fan::new_at_duty(FanConfig::default(), DutyCycle::new(80));
        assert!(f.rpm() > 3000.0);
        f.fail();
        assert!(f.is_failed());
        for _ in 0..300 {
            f.step(0.1);
        }
        assert_eq!(f.rpm(), 0.0, "failed fan must stop");
        assert_eq!(f.power_w(), 0.0);
        f.repair();
        for _ in 0..300 {
            f.step(0.1);
        }
        assert!((f.rpm() - 3440.0).abs() < 5.0, "repaired fan resumes, rpm {}", f.rpm());
    }

    #[test]
    fn stuck_pwm_freezes_duty_until_release() {
        let mut f = Fan::new_at_duty(FanConfig::default(), DutyCycle::new(40));
        f.stick_pwm();
        assert!(f.is_pwm_stuck());
        f.set_duty(DutyCycle::new(100));
        assert_eq!(f.duty().percent(), 40, "stuck PWM ignores commands");
        for _ in 0..100 {
            f.step(0.1);
        }
        assert!((f.rpm() - 0.4 * 4300.0).abs() < 5.0, "rotor holds the latched duty");
        f.release_pwm();
        f.set_duty(DutyCycle::new(100));
        assert_eq!(f.duty().percent(), 100);
        for _ in 0..200 {
            f.step(0.1);
        }
        assert!((f.rpm() - 4300.0).abs() < 10.0, "released fan tracks commands again");
    }

    #[test]
    fn large_step_is_stable() {
        let mut f = fan();
        f.set_duty(DutyCycle::new(100));
        f.step(1000.0);
        assert!((f.rpm() - 4300.0).abs() < 1.0);
        assert!(f.rpm() <= 4300.0 + 1e-9, "no overshoot");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dt() {
        fan().step(0.0);
    }
}
