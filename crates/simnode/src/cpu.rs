//! DVFS-capable CPU model.
//!
//! Power model (per the classical CMOS decomposition the paper relies on —
//! "scaling down DVFS processor frequency cubically reduces power"):
//!
//! ```text
//!   P = P_leak(V, T) + u · P_dyn_max · (V²·f) / (V₀²·f₀)
//! ```
//!
//! where `u` is utilization, `(f₀, V₀)` the highest P-state, and leakage
//! grows linearly with die temperature (the positive feedback that makes hot
//! spots self-reinforcing).
//!
//! The model also implements the *hardware thermal monitor*: above
//! `emergency_throttle_c` the clock is forced to the lowest P-state until the
//! die cools below the hysteresis band, and above `emergency_shutdown_c` the
//! node powers off. These are the "thermal emergencies, which further trigger
//! system slowdowns or shutdowns" the paper's controllers exist to avoid.

use serde::{Deserialize, Serialize};

use crate::config::CpuConfig;
use crate::units::PState;

/// Reasons the effective frequency can differ from the requested one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThermalCondition {
    /// Normal operation.
    Nominal,
    /// Hardware thermal monitor engaged: clock forced to the lowest P-state.
    Throttled,
    /// Die exceeded the shutdown threshold: the node is off.
    ShutDown,
}

/// Raw load clamp shared verbatim by [`Cpu::set_load`] and the SoA batch
/// path (`crate::batch`).
#[inline]
pub(crate) fn clamp_load(utilization: f64, activity: f64) -> (f64, f64) {
    assert!(utilization.is_finite(), "utilization must be finite");
    assert!(activity.is_finite(), "activity must be finite");
    (utilization.clamp(0.0, 1.0), activity.clamp(0.0, 1.0))
}

/// Raw CMOS power law shared verbatim by [`Cpu::power_w`] and the SoA batch
/// path. Frequencies arrive pre-widened to `f64` (`f64::from(freq_mhz)` at
/// the call site) so both paths feed the multiply identical operands.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn power_raw(
    shut_down: bool,
    top_voltage_v: f64,
    top_freq_mhz: f64,
    eff_voltage_v: f64,
    eff_freq_mhz: f64,
    leakage_power_ref_w: f64,
    leakage_temp_coeff_per_k: f64,
    leakage_ref_temp_c: f64,
    dynamic_power_max_w: f64,
    activity: f64,
    sleep_gate: f64,
    die_temp_c: f64,
) -> f64 {
    if shut_down {
        return 0.0;
    }
    let leak_scale = (eff_voltage_v / top_voltage_v)
        * (1.0 + leakage_temp_coeff_per_k * (die_temp_c - leakage_ref_temp_c)).max(0.0);
    let leakage = leakage_power_ref_w * leak_scale;

    let vf = eff_voltage_v * eff_voltage_v * eff_freq_mhz;
    let vf0 = top_voltage_v * top_voltage_v * top_freq_mhz;
    let dynamic = activity * dynamic_power_max_w * vf / vf0;

    // Sleep states gate the whole package (clocks, caches, uncore), so
    // the gate scales total power, not just the dynamic term.
    (leakage + dynamic) * sleep_gate
}

/// Raw thermal-monitor state machine shared verbatim by
/// [`Cpu::update_thermal_monitor`] and the SoA batch path.
#[inline]
pub(crate) fn monitor_raw(
    condition: &mut ThermalCondition,
    throttle_events: &mut u64,
    die_temp_c: f64,
    emergency_throttle_c: f64,
    emergency_shutdown_c: f64,
    emergency_hysteresis_c: f64,
) {
    match *condition {
        ThermalCondition::ShutDown => {} // latched until explicitly reset
        ThermalCondition::Throttled => {
            if die_temp_c >= emergency_shutdown_c {
                *condition = ThermalCondition::ShutDown;
            } else if die_temp_c < emergency_throttle_c - emergency_hysteresis_c {
                *condition = ThermalCondition::Nominal;
            }
        }
        ThermalCondition::Nominal => {
            if die_temp_c >= emergency_shutdown_c {
                *condition = ThermalCondition::ShutDown;
            } else if die_temp_c >= emergency_throttle_c {
                *condition = ThermalCondition::Throttled;
                *throttle_events += 1;
            }
        }
    }
}

/// A DVFS-capable CPU.
#[derive(Debug, Clone)]
pub struct Cpu {
    pub(crate) cfg: CpuConfig,
    /// Index into `cfg.pstates` of the software-requested P-state.
    pub(crate) requested: usize,
    pub(crate) utilization: f64,
    pub(crate) activity: f64,
    pub(crate) condition: ThermalCondition,
    /// ACPI sleep-state power/speed gate in `[0, 1]`: 1.0 = C0 (fully
    /// awake), lower values model the package-level savings of deeper
    /// processor sleep states.
    pub(crate) sleep_gate: f64,
    pub(crate) freq_transitions: u64,
    pub(crate) throttle_events: u64,
}

impl Cpu {
    /// Creates a CPU in its highest P-state, idle.
    pub fn new(cfg: CpuConfig) -> Self {
        assert!(!cfg.pstates.is_empty(), "CPU needs at least one P-state");
        Self {
            cfg,
            requested: 0,
            utilization: 0.0,
            activity: 0.0,
            condition: ThermalCondition::Nominal,
            sleep_gate: 1.0,
            freq_transitions: 0,
            throttle_events: 0,
        }
    }

    /// All available P-states, descending frequency.
    pub fn pstates(&self) -> &[PState] {
        &self.cfg.pstates
    }

    /// The software-requested P-state.
    pub fn requested_pstate(&self) -> PState {
        self.cfg.pstates[self.requested]
    }

    /// The P-state the silicon actually runs: the requested one unless the
    /// thermal monitor has engaged.
    pub fn effective_pstate(&self) -> PState {
        match self.condition {
            ThermalCondition::Nominal => self.cfg.pstates[self.requested],
            ThermalCondition::Throttled | ThermalCondition::ShutDown => {
                *self.cfg.pstates.last().expect("non-empty pstates")
            }
        }
    }

    /// Effective core frequency in MHz (0 when shut down).
    pub fn effective_freq_mhz(&self) -> u32 {
        if self.condition == ThermalCondition::ShutDown {
            0
        } else {
            self.effective_pstate().freq_mhz
        }
    }

    /// Requests a P-state by exact frequency in MHz.
    ///
    /// Returns `true` when this changed the requested state (and counts a
    /// frequency transition). Requests for unavailable frequencies are
    /// rejected with `Err` carrying the list of valid frequencies.
    pub fn set_frequency_mhz(&mut self, freq_mhz: u32) -> Result<bool, InvalidFrequency> {
        let idx =
            self.cfg.pstates.iter().position(|p| p.freq_mhz == freq_mhz).ok_or_else(|| {
                InvalidFrequency {
                    requested_mhz: freq_mhz,
                    available_mhz: self.cfg.pstates.iter().map(|p| p.freq_mhz).collect(),
                }
            })?;
        if idx == self.requested {
            return Ok(false);
        }
        self.requested = idx;
        self.freq_transitions += 1;
        Ok(true)
    }

    /// Number of accepted frequency transitions since construction
    /// (Table 1's "# freq changes" column).
    pub fn freq_transition_count(&self) -> u64 {
        self.freq_transitions
    }

    /// Number of times the hardware thermal monitor engaged.
    pub fn throttle_event_count(&self) -> u64 {
        self.throttle_events
    }

    /// Sets the current utilization in `[0, 1]` (clamped); the switching
    /// activity is set to the same value (fully compute-bound load).
    pub fn set_utilization(&mut self, u: f64) {
        self.set_load(u, u);
    }

    /// Sets the OS-visible utilization and the switching-activity factor
    /// separately (both clamped to `[0, 1]`). Utilization is what a
    /// governor observes; activity is what scales dynamic power.
    pub fn set_load(&mut self, utilization: f64, activity: f64) {
        (self.utilization, self.activity) = clamp_load(utilization, activity);
    }

    /// Current utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Current switching-activity factor in `[0, 1]`.
    pub fn activity(&self) -> f64 {
        self.activity
    }

    /// Sets the ACPI sleep-state gate: the fraction of nominal power (and
    /// execution speed) the package retains, 1.0 for C0 down toward 0 for
    /// deep sleep. Clamped to `[0, 1]`.
    pub fn set_sleep_gate(&mut self, gate: f64) {
        assert!(gate.is_finite(), "sleep gate must be finite");
        self.sleep_gate = gate.clamp(0.0, 1.0);
    }

    /// Current ACPI sleep-state gate in `[0, 1]`.
    pub fn sleep_gate(&self) -> f64 {
        self.sleep_gate
    }

    /// Current thermal condition.
    pub fn condition(&self) -> ThermalCondition {
        self.condition
    }

    /// True once the die crossed the shutdown threshold.
    pub fn is_shut_down(&self) -> bool {
        self.condition == ThermalCondition::ShutDown
    }

    /// Relative execution speed of the effective state vs. the highest
    /// P-state, in `[0, 1]` (0 when shut down). Workloads multiply their
    /// compute-phase progress by this.
    pub fn speed_factor(&self) -> f64 {
        if self.condition == ThermalCondition::ShutDown {
            return 0.0;
        }
        let top = self.cfg.pstates[0].freq_mhz;
        f64::from(self.effective_pstate().freq_mhz) / f64::from(top) * self.sleep_gate
    }

    /// Electrical power draw in W at the given die temperature.
    pub fn power_w(&self, die_temp_c: f64) -> f64 {
        let top = self.cfg.pstates[0];
        let eff = self.effective_pstate();
        power_raw(
            self.condition == ThermalCondition::ShutDown,
            top.voltage_v,
            f64::from(top.freq_mhz),
            eff.voltage_v,
            f64::from(eff.freq_mhz),
            self.cfg.leakage_power_ref_w,
            self.cfg.leakage_temp_coeff_per_k,
            self.cfg.leakage_ref_temp_c,
            self.cfg.dynamic_power_max_w,
            self.activity,
            self.sleep_gate,
            die_temp_c,
        )
    }

    /// Updates the thermal-monitor state machine for the current die
    /// temperature. Call once per simulation tick.
    pub fn update_thermal_monitor(&mut self, die_temp_c: f64) {
        monitor_raw(
            &mut self.condition,
            &mut self.throttle_events,
            die_temp_c,
            self.cfg.emergency_throttle_c,
            self.cfg.emergency_shutdown_c,
            self.cfg.emergency_hysteresis_c,
        );
    }

    /// Clears a latched shutdown (models a power cycle) and returns to the
    /// highest P-state.
    pub fn reset_after_shutdown(&mut self) {
        self.condition = ThermalCondition::Nominal;
        self.requested = 0;
    }
}

/// Error returned for a frequency not in the P-state table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidFrequency {
    /// The rejected frequency in MHz.
    pub requested_mhz: u32,
    /// Frequencies the CPU supports, in MHz.
    pub available_mhz: Vec<u32>,
}

impl std::fmt::Display for InvalidFrequency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frequency {} MHz not available (valid: {:?})",
            self.requested_mhz, self.available_mhz
        )
    }
}

impl std::error::Error for InvalidFrequency {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Cpu {
        Cpu::new(CpuConfig::default())
    }

    #[test]
    fn starts_at_top_pstate_idle() {
        let c = cpu();
        assert_eq!(c.requested_pstate().freq_mhz, 2400);
        assert_eq!(c.utilization(), 0.0);
        assert_eq!(c.condition(), ThermalCondition::Nominal);
    }

    #[test]
    fn set_frequency_validates() {
        let mut c = cpu();
        assert_eq!(c.set_frequency_mhz(2200), Ok(true));
        assert_eq!(c.requested_pstate().freq_mhz, 2200);
        let err = c.set_frequency_mhz(2300).unwrap_err();
        assert_eq!(err.requested_mhz, 2300);
        assert_eq!(err.available_mhz, vec![2400, 2200, 2000, 1800, 1000]);
        assert!(err.to_string().contains("2300"));
    }

    #[test]
    fn transition_count_ignores_no_ops() {
        let mut c = cpu();
        assert_eq!(c.set_frequency_mhz(2400), Ok(false)); // already there
        assert_eq!(c.freq_transition_count(), 0);
        c.set_frequency_mhz(2200).unwrap();
        c.set_frequency_mhz(2200).unwrap();
        c.set_frequency_mhz(2400).unwrap();
        assert_eq!(c.freq_transition_count(), 2);
    }

    #[test]
    fn power_increases_with_utilization() {
        let mut c = cpu();
        let idle = c.power_w(45.0);
        c.set_utilization(1.0);
        let busy = c.power_w(45.0);
        assert!(busy > idle + 30.0, "idle {idle}, busy {busy}");
    }

    #[test]
    fn power_decreases_with_frequency() {
        let mut c = cpu();
        c.set_utilization(1.0);
        let mut last = f64::INFINITY;
        for &f in &[2400, 2200, 2000, 1800, 1000] {
            c.set_frequency_mhz(f).unwrap();
            let p = c.power_w(50.0);
            assert!(p < last, "{f} MHz power {p} not below {last}");
            last = p;
        }
    }

    #[test]
    fn dynamic_power_scales_as_v2f() {
        let mut c = cpu();
        c.set_utilization(1.0);
        let p_top = c.power_w(50.0);
        c.set_frequency_mhz(1000).unwrap();
        let p_low = c.power_w(50.0);
        // Dynamic parts: 48 W at (1.5 V, 2.4 GHz); at (1.1 V, 1.0 GHz):
        // 48 · (1.1²·1.0)/(1.5²·2.4) ≈ 10.76 W. Static at 50 °C:
        // 22 W at top; 22·(1.1/1.5) ≈ 16.13 W at bottom.
        assert!((p_top - 70.0).abs() < 1e-9, "top power {p_top}");
        let expected_low = 22.0 * (1.1 / 1.5) + 48.0 * (1.21 / (2.25 * 2.4));
        assert!((p_low - expected_low).abs() < 1e-6, "low power {p_low}");
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let c = cpu();
        assert!(c.power_w(70.0) > c.power_w(40.0));
        // Linear coefficient: 0.8 %/K on the 22 W static power.
        let diff = c.power_w(60.0) - c.power_w(50.0);
        assert!((diff - 22.0 * 0.008 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_never_negative() {
        let c = cpu();
        // Absurdly cold die: the (1 + α·ΔT) factor clamps at zero.
        assert!(c.power_w(-500.0) >= 0.0);
    }

    #[test]
    fn speed_factor_tracks_effective_frequency() {
        let mut c = cpu();
        assert_eq!(c.speed_factor(), 1.0);
        c.set_frequency_mhz(1800).unwrap();
        assert!((c.speed_factor() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn thermal_monitor_throttles_and_recovers() {
        let mut c = cpu();
        c.update_thermal_monitor(69.9);
        assert_eq!(c.condition(), ThermalCondition::Nominal);
        c.update_thermal_monitor(70.0);
        assert_eq!(c.condition(), ThermalCondition::Throttled);
        assert_eq!(c.throttle_event_count(), 1);
        assert_eq!(c.effective_pstate().freq_mhz, 1000);
        assert_eq!(c.requested_pstate().freq_mhz, 2400, "software request unchanged");
        // Must drop below 65 °C (70 − 5 hysteresis) to release.
        c.update_thermal_monitor(66.0);
        assert_eq!(c.condition(), ThermalCondition::Throttled);
        c.update_thermal_monitor(64.9);
        assert_eq!(c.condition(), ThermalCondition::Nominal);
        assert_eq!(c.effective_pstate().freq_mhz, 2400);
    }

    #[test]
    fn shutdown_latches_until_reset() {
        let mut c = cpu();
        c.set_utilization(1.0);
        c.update_thermal_monitor(85.0);
        assert!(c.is_shut_down());
        assert_eq!(c.power_w(85.0), 0.0);
        assert_eq!(c.speed_factor(), 0.0);
        assert_eq!(c.effective_freq_mhz(), 0);
        c.update_thermal_monitor(30.0); // cooling off does not restart it
        assert!(c.is_shut_down());
        c.reset_after_shutdown();
        assert!(!c.is_shut_down());
        assert_eq!(c.requested_pstate().freq_mhz, 2400);
    }

    #[test]
    fn throttled_can_escalate_to_shutdown() {
        let mut c = cpu();
        c.update_thermal_monitor(72.0);
        assert_eq!(c.condition(), ThermalCondition::Throttled);
        c.update_thermal_monitor(86.0);
        assert!(c.is_shut_down());
    }

    #[test]
    fn sleep_gate_scales_power_and_speed() {
        let mut c = cpu();
        c.set_utilization(1.0);
        assert_eq!(c.sleep_gate(), 1.0, "default gate is C0");
        let awake_power = c.power_w(50.0);
        let awake_speed = c.speed_factor();
        c.set_sleep_gate(0.35); // C2's power fraction
        assert!((c.power_w(50.0) - awake_power * 0.35).abs() < 1e-9);
        assert!((c.speed_factor() - awake_speed * 0.35).abs() < 1e-12);
        c.set_sleep_gate(2.0);
        assert_eq!(c.sleep_gate(), 1.0, "gate clamps to [0, 1]");
    }

    #[test]
    fn utilization_clamps() {
        let mut c = cpu();
        c.set_utilization(3.0);
        assert_eq!(c.utilization(), 1.0);
        c.set_utilization(-1.0);
        assert_eq!(c.utilization(), 0.0);
    }
}
