//! Register-level model of the Analog Devices ADT7467 "dBCool" remote
//! thermal monitor and fan controller.
//!
//! The paper's platform regulates fan speed through this chip: in
//! **automatic mode** the chip applies the static temperature→PWM map of the
//! paper's Figure 1 (duty = PWMmin below Tmin, rising linearly to PWMmax at
//! Tmax) — this is the "traditional static fan control" baseline. The
//! paper's own driver switches the chip to **manual mode** and writes the
//! PWM register directly over i2c.
//!
//! The register map below is a simplification of the real datasheet's, but
//! keeps the same access style (byte registers over SMBus), the same duty
//! encoding (0x00–0xFF) and the same behavioural split between automatic and
//! manual control.

use std::any::Any;

use crate::i2c::{DeviceError, SmbusDevice};
use crate::units::DutyCycle;

/// Register addresses (simplified map).
pub mod regs {
    /// Measured remote (CPU) temperature in °C, unsigned. Read-only.
    pub const TEMP_REMOTE: u8 = 0x26;
    /// Current PWM1 duty, 0x00–0xFF. Writable only in manual mode.
    pub const PWM_CURRENT: u8 = 0x30;
    /// PWM1 maximum duty, 0x00–0xFF.
    pub const PWM_MAX: u8 = 0x38;
    /// Device ID. Read-only, returns [`DEVICE_ID`](super::DEVICE_ID).
    pub const DEVICE_ID: u8 = 0x3D;
    /// PWM1 configuration: 0 = automatic (remote-diode controlled),
    /// 1 = manual.
    pub const PWM_CONFIG: u8 = 0x5C;
    /// PWM1 minimum duty, 0x00–0xFF.
    pub const PWM_MIN: u8 = 0x64;
    /// Tmin in °C, unsigned.
    pub const TMIN: u8 = 0x67;
    /// Tmax in °C, unsigned.
    pub const TMAX: u8 = 0x68;
}

/// The device ID the real chip reports.
pub const DEVICE_ID: u8 = 0x68;

/// PWM control mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PwmMode {
    /// Chip-controlled: the Figure-1 static curve.
    Automatic,
    /// Software-controlled: the PWM register holds whatever was written.
    Manual,
}

/// Raw Figure-1 static curve, shared verbatim by
/// [`Adt7467::static_curve_duty`] and the SoA batch path (`crate::batch`) so
/// both evaluate the exact same expressions.
#[inline]
pub(crate) fn static_curve_duty_raw(
    pwm_min: u8,
    pwm_max: u8,
    tmin_c: u8,
    tmax_c: u8,
    temp_c: f64,
) -> DutyCycle {
    // Tabulated `from_register(..).fraction()` — bit-identical entries,
    // no per-call divide (this runs for every node on every tick).
    let lut = DutyCycle::register_fraction_lut();
    let max = lut[usize::from(pwm_max)];
    // PWM_MAX caps the whole channel: a PWM_MIN programmed above it is
    // effectively clamped (keeps the curve monotone under any register
    // contents).
    let min = lut[usize::from(pwm_min)].min(max);
    let tmin = f64::from(tmin_c);
    let tmax = f64::from(tmax_c);
    let frac = if temp_c <= tmin || tmax <= tmin {
        min
    } else if temp_c >= tmax {
        max
    } else {
        min + (max - min) * (temp_c - tmin) / (tmax - tmin)
    };
    DutyCycle::from_fraction(frac.clamp(0.0, 1.0))
}

/// The ADT7467 model.
#[derive(Debug, Clone)]
pub struct Adt7467 {
    pub(crate) measured_temp_c: f64,
    pub(crate) mode: PwmMode,
    pub(crate) pwm_current: u8,
    pub(crate) pwm_min: u8,
    pub(crate) pwm_max: u8,
    pub(crate) tmin_c: u8,
    pub(crate) tmax_c: u8,
}

impl Default for Adt7467 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adt7467 {
    /// Creates the chip with the paper platform's defaults: automatic mode,
    /// PWMmin = 10 %, Tmin = 38 °C, Tmax = 82 °C, PWMmax = 100 %.
    pub fn new() -> Self {
        let mut chip = Self {
            measured_temp_c: 25.0,
            mode: PwmMode::Automatic,
            pwm_current: DutyCycle::new(10).to_register(),
            pwm_min: DutyCycle::new(10).to_register(),
            pwm_max: DutyCycle::MAX.to_register(),
            tmin_c: 38,
            tmax_c: 82,
        };
        chip.apply_automatic_curve();
        chip
    }

    /// Feeds the chip a new remote-diode temperature (the simulator calls
    /// this each tick with the die temperature) and, in automatic mode,
    /// re-evaluates the static curve.
    pub fn set_measured_temp_c(&mut self, temp_c: f64) {
        assert!(temp_c.is_finite(), "measured temperature must be finite");
        self.measured_temp_c = temp_c;
        if self.mode == PwmMode::Automatic {
            self.apply_automatic_curve();
        }
    }

    /// Current PWM mode.
    pub fn mode(&self) -> PwmMode {
        self.mode
    }

    /// The duty cycle the chip is currently commanding.
    pub fn commanded_duty(&self) -> DutyCycle {
        DutyCycle::from_register(self.pwm_current)
    }

    /// The Figure-1 static curve evaluated at `temp_c` with the chip's
    /// current Tmin/Tmax/PWMmin/PWMmax registers.
    pub fn static_curve_duty(&self, temp_c: f64) -> DutyCycle {
        static_curve_duty_raw(self.pwm_min, self.pwm_max, self.tmin_c, self.tmax_c, temp_c)
    }

    fn apply_automatic_curve(&mut self) {
        self.pwm_current = self.static_curve_duty(self.measured_temp_c).to_register();
    }

    /// Clamps the current PWM into the [PWMmin-independent] PWMmax bound.
    fn clamp_pwm(&mut self) {
        if self.pwm_current > self.pwm_max {
            self.pwm_current = self.pwm_max;
        }
    }
}

impl SmbusDevice for Adt7467 {
    fn read_byte(&mut self, reg: u8) -> Result<u8, DeviceError> {
        match reg {
            regs::TEMP_REMOTE => Ok(self.measured_temp_c.round().clamp(0.0, 255.0) as u8),
            regs::PWM_CURRENT => Ok(self.pwm_current),
            regs::PWM_MAX => Ok(self.pwm_max),
            regs::DEVICE_ID => Ok(DEVICE_ID),
            regs::PWM_CONFIG => Ok(match self.mode {
                PwmMode::Automatic => 0,
                PwmMode::Manual => 1,
            }),
            regs::PWM_MIN => Ok(self.pwm_min),
            regs::TMIN => Ok(self.tmin_c),
            regs::TMAX => Ok(self.tmax_c),
            other => Err(DeviceError::InvalidRegister(other)),
        }
    }

    fn write_byte(&mut self, reg: u8, value: u8) -> Result<(), DeviceError> {
        match reg {
            regs::TEMP_REMOTE | regs::DEVICE_ID => Err(DeviceError::ReadOnlyRegister(reg)),
            regs::PWM_CURRENT => {
                if self.mode == PwmMode::Automatic {
                    // The real chip ignores manual duty writes while the
                    // automatic loop owns the output; we mirror that.
                    return Ok(());
                }
                self.pwm_current = value;
                self.clamp_pwm();
                Ok(())
            }
            regs::PWM_MAX => {
                self.pwm_max = value;
                match self.mode {
                    PwmMode::Automatic => self.apply_automatic_curve(),
                    PwmMode::Manual => self.clamp_pwm(),
                }
                Ok(())
            }
            regs::PWM_CONFIG => {
                self.mode = if value == 0 { PwmMode::Automatic } else { PwmMode::Manual };
                if self.mode == PwmMode::Automatic {
                    self.apply_automatic_curve();
                }
                Ok(())
            }
            regs::PWM_MIN => {
                self.pwm_min = value;
                if self.mode == PwmMode::Automatic {
                    self.apply_automatic_curve();
                }
                Ok(())
            }
            regs::TMIN => {
                self.tmin_c = value;
                if self.mode == PwmMode::Automatic {
                    self.apply_automatic_curve();
                }
                Ok(())
            }
            regs::TMAX => {
                self.tmax_c = value;
                if self.mode == PwmMode::Automatic {
                    self.apply_automatic_curve();
                }
                Ok(())
            }
            other => Err(DeviceError::InvalidRegister(other)),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_platform() {
        let mut chip = Adt7467::new();
        assert_eq!(chip.mode(), PwmMode::Automatic);
        assert_eq!(chip.read_byte(regs::TMIN), Ok(38));
        assert_eq!(chip.read_byte(regs::TMAX), Ok(82));
        assert_eq!(DutyCycle::from_register(chip.read_byte(regs::PWM_MIN).unwrap()).percent(), 10);
        assert_eq!(chip.read_byte(regs::DEVICE_ID), Ok(0x68));
    }

    #[test]
    fn figure1_curve_shape() {
        let chip = Adt7467::new();
        // Below Tmin: PWMmin.
        assert_eq!(chip.static_curve_duty(25.0).percent(), 10);
        assert_eq!(chip.static_curve_duty(38.0).percent(), 10);
        // At Tmax and above: PWMmax.
        assert_eq!(chip.static_curve_duty(82.0).percent(), 100);
        assert_eq!(chip.static_curve_duty(95.0).percent(), 100);
        // Midpoint: linear interpolation, (60-38)/(82-38) = 0.5 of the span.
        let mid = chip.static_curve_duty(60.0).percent();
        assert_eq!(mid, 55, "10 + 0.5·90 = 55, got {mid}");
        // Monotone non-decreasing across the whole range.
        let mut last = 0;
        for t in 0..100 {
            let d = chip.static_curve_duty(f64::from(t)).percent();
            assert!(d >= last, "curve must be monotone at {t} °C");
            last = d;
        }
    }

    #[test]
    fn automatic_mode_tracks_temperature() {
        let mut chip = Adt7467::new();
        chip.set_measured_temp_c(38.0);
        assert_eq!(chip.commanded_duty().percent(), 10);
        chip.set_measured_temp_c(82.0);
        assert_eq!(chip.commanded_duty().percent(), 100);
        chip.set_measured_temp_c(50.0);
        let d = chip.commanded_duty().percent();
        assert!((34..=35).contains(&d), "50 °C ⇒ 10+90·12/44 ≈ 34.5 %, got {d}");
    }

    #[test]
    fn manual_mode_obeys_writes() {
        let mut chip = Adt7467::new();
        chip.write_byte(regs::PWM_CONFIG, 1).unwrap();
        assert_eq!(chip.mode(), PwmMode::Manual);
        chip.write_byte(regs::PWM_CURRENT, DutyCycle::new(63).to_register()).unwrap();
        assert_eq!(chip.commanded_duty().percent(), 63);
        // Temperature changes no longer move the duty.
        chip.set_measured_temp_c(90.0);
        assert_eq!(chip.commanded_duty().percent(), 63);
    }

    #[test]
    fn automatic_mode_ignores_duty_writes() {
        let mut chip = Adt7467::new();
        chip.set_measured_temp_c(50.0);
        let before = chip.commanded_duty();
        chip.write_byte(regs::PWM_CURRENT, 0xFF).unwrap();
        assert_eq!(chip.commanded_duty(), before);
    }

    #[test]
    fn pwm_max_caps_both_modes() {
        let mut chip = Adt7467::new();
        // Cap at 75 % as the paper does for Figure 6.
        chip.write_byte(regs::PWM_MAX, DutyCycle::new(75).to_register()).unwrap();
        chip.set_measured_temp_c(90.0);
        assert_eq!(chip.commanded_duty().percent(), 75);

        chip.write_byte(regs::PWM_CONFIG, 1).unwrap();
        chip.write_byte(regs::PWM_CURRENT, DutyCycle::new(90).to_register()).unwrap();
        assert_eq!(chip.commanded_duty().percent(), 75, "manual writes clamp to PWMmax");
    }

    #[test]
    fn lowering_pwm_max_reclamps_current() {
        let mut chip = Adt7467::new();
        chip.write_byte(regs::PWM_CONFIG, 1).unwrap();
        chip.write_byte(regs::PWM_CURRENT, DutyCycle::new(90).to_register()).unwrap();
        chip.write_byte(regs::PWM_MAX, DutyCycle::new(50).to_register()).unwrap();
        assert_eq!(chip.commanded_duty().percent(), 50);
    }

    #[test]
    fn switching_back_to_auto_reapplies_curve() {
        let mut chip = Adt7467::new();
        chip.write_byte(regs::PWM_CONFIG, 1).unwrap();
        chip.write_byte(regs::PWM_CURRENT, 0).unwrap();
        chip.set_measured_temp_c(82.0);
        chip.write_byte(regs::PWM_CONFIG, 0).unwrap();
        assert_eq!(chip.commanded_duty().percent(), 100);
    }

    #[test]
    fn temp_register_reads_rounded_reading() {
        let mut chip = Adt7467::new();
        chip.set_measured_temp_c(51.6);
        assert_eq!(chip.read_byte(regs::TEMP_REMOTE), Ok(52));
        chip.set_measured_temp_c(-5.0);
        assert_eq!(chip.read_byte(regs::TEMP_REMOTE), Ok(0), "unsigned clamp");
    }

    #[test]
    fn read_only_and_invalid_registers() {
        let mut chip = Adt7467::new();
        assert_eq!(
            chip.write_byte(regs::TEMP_REMOTE, 1),
            Err(DeviceError::ReadOnlyRegister(regs::TEMP_REMOTE))
        );
        assert_eq!(chip.read_byte(0x00), Err(DeviceError::InvalidRegister(0x00)));
        assert_eq!(chip.write_byte(0x00, 1), Err(DeviceError::InvalidRegister(0x00)));
    }

    #[test]
    fn custom_curve_degenerate_range() {
        let mut chip = Adt7467::new();
        // Tmax == Tmin: curve collapses to PWMmin (no division by zero).
        chip.write_byte(regs::TMAX, 38).unwrap();
        assert_eq!(chip.static_curve_duty(60.0).percent(), 10);
    }
}
