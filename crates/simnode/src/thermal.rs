//! Lumped-parameter RC thermal network: die + heatsink.
//!
//! The model is the standard two-lump compact package model (the paper's
//! related work, Ferreira et al. \[20\], validates the RC approach for exactly
//! this use):
//!
//! ```text
//!   C_die · dT_die/dt  = P_cpu − G_ds · (T_die − T_sink)
//!   C_sink · dT_sink/dt = G_ds · (T_die − T_sink) − G_sa(airflow) · (T_sink − T_amb)
//! ```
//!
//! The sink-to-ambient conductance depends on fan airflow:
//! `G_sa = G_nat + G_air · airflow^k` with `airflow ∈ [0, 1]` the fan speed
//! fraction and `k ≈ 0.5` (sub-linear forced convection, fit to the paper's
//! operating points — see the calibration tests below). This is the single
//! physical coupling the paper's out-of-band technique exploits: more duty ⇒
//! more airflow ⇒ lower thermal resistance ⇒ lower die temperature.
//!
//! Integration is explicit Euler with sub-stepping: the fastest time constant
//! (die: `C_die / (G_ds + …) ≈ 2.4 s`) is far slower than the 50 ms tick, and
//! sub-steps keep the integration stable even for unusually stiff test
//! configurations.

use crate::config::ThermalConfig;

/// The raw conductance law, shared verbatim by
/// [`ThermalModel::sink_conductance`] and the SoA batch path
/// (`crate::batch`): both sides must evaluate the exact same expression for
/// bit-identical results.
#[inline]
pub(crate) fn sink_conductance_raw(g_nat: f64, g_air: f64, exponent: f64, airflow: f64) -> f64 {
    let a = airflow.clamp(0.0, 1.0);
    g_nat + g_air * a.powf(exponent)
}

/// The raw RC update shared verbatim by [`ThermalModel::step`] and the SoA
/// batch path. Operates on caller-owned state so the batch can run it over
/// contiguous lanes; the expression order is the determinism contract.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_raw(
    die_c: &mut f64,
    sink_c: &mut f64,
    ambient_c: f64,
    g_ds: f64,
    die_capacity: f64,
    sink_capacity: f64,
    g_nat: f64,
    g_air: f64,
    exponent: f64,
    conductance_cache: &mut (f64, f64),
    substep_cache: &mut (f64, f64, usize, f64),
    dt_s: f64,
    power_w: f64,
    airflow: f64,
) {
    assert!(dt_s > 0.0, "time step must be positive");
    assert!(power_w >= 0.0, "CPU power cannot be negative");

    if conductance_cache.0.to_bits() != airflow.to_bits() {
        *conductance_cache = (airflow, sink_conductance_raw(g_nat, g_air, exponent, airflow));
    }
    let g_sa = conductance_cache.1;

    // Sub-step so that the explicit update stays well inside the
    // stability region: dt_sub << C/G for the fastest lump.
    if substep_cache.0.to_bits() != dt_s.to_bits() || substep_cache.1.to_bits() != g_sa.to_bits() {
        let tau_die = die_capacity / g_ds;
        let tau_sink = sink_capacity / (g_ds + g_sa);
        let max_sub = (tau_die.min(tau_sink) * 0.25).max(1e-4);
        let n = (dt_s / max_sub).ceil() as usize;
        let h = dt_s / n as f64;
        *substep_cache = (dt_s, g_sa, n, h);
    }
    let (n, h) = (substep_cache.2, substep_cache.3);

    for _ in 0..n {
        let flow_ds = g_ds * (*die_c - *sink_c);
        let flow_sa = g_sa * (*sink_c - ambient_c);
        *die_c += h * (power_w - flow_ds) / die_capacity;
        *sink_c += h * (flow_ds - flow_sa) / sink_capacity;
    }
}

/// Two-lump die + heatsink thermal model.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    pub(crate) cfg: ThermalConfig,
    pub(crate) die_c: f64,
    pub(crate) sink_c: f64,
    /// Memoized `(airflow, G_sa)` for `step`. Fan speed settles to an exact
    /// f64 fixed point, so after spin-up the `powf` in `sink_conductance`
    /// never re-runs; the exact-match key keeps results bit-identical.
    pub(crate) conductance_cache: (f64, f64),
    /// Memoized `(dt_s, g_sa) → (n, h)` sub-step split for `step`.
    pub(crate) substep_cache: (f64, f64, usize, f64),
}

impl ThermalModel {
    /// Creates the model with both lumps equilibrated to ambient.
    pub fn new(cfg: ThermalConfig) -> Self {
        let ambient = cfg.ambient_c;
        Self {
            cfg,
            die_c: ambient,
            sink_c: ambient,
            conductance_cache: (f64::NAN, 0.0),
            substep_cache: (f64::NAN, f64::NAN, 0, 0.0),
        }
    }

    /// Creates the model pre-warmed to the steady state for the given heat
    /// input and airflow, so experiments can start from a realistic idle
    /// operating point instead of a cold machine.
    pub fn new_at_steady_state(cfg: ThermalConfig, power_w: f64, airflow: f64) -> Self {
        let mut m = Self::new(cfg);
        let (die, sink) = m.steady_state(power_w, airflow);
        m.die_c = die;
        m.sink_c = sink;
        m
    }

    /// Current die (junction) temperature in °C.
    pub fn die_temp_c(&self) -> f64 {
        self.die_c
    }

    /// Current heatsink temperature in °C.
    pub fn sink_temp_c(&self) -> f64 {
        self.sink_c
    }

    /// Ambient temperature in °C.
    pub fn ambient_c(&self) -> f64 {
        self.cfg.ambient_c
    }

    /// Changes the ambient (intake) temperature — used by fault plans to
    /// model hot spots / HVAC events.
    pub fn set_ambient_c(&mut self, ambient_c: f64) {
        assert!(ambient_c.is_finite(), "ambient temperature must be finite");
        self.cfg.ambient_c = ambient_c;
    }

    /// Sink-to-ambient conductance for a given airflow fraction in `[0, 1]`.
    pub fn sink_conductance(&self, airflow: f64) -> f64 {
        sink_conductance_raw(
            self.cfg.natural_conductance_w_per_k,
            self.cfg.airflow_conductance_w_per_k,
            self.cfg.airflow_exponent,
            airflow,
        )
    }

    /// Steady-state `(die, sink)` temperatures for constant power and airflow.
    pub fn steady_state(&self, power_w: f64, airflow: f64) -> (f64, f64) {
        let g_sa = self.sink_conductance(airflow);
        let sink = self.cfg.ambient_c + power_w / g_sa;
        let die = sink + power_w / self.cfg.die_sink_conductance_w_per_k;
        (die, sink)
    }

    /// Advances the network by `dt_s` seconds with the given CPU power (W)
    /// and fan airflow fraction.
    pub fn step(&mut self, dt_s: f64, power_w: f64, airflow: f64) {
        step_raw(
            &mut self.die_c,
            &mut self.sink_c,
            self.cfg.ambient_c,
            self.cfg.die_sink_conductance_w_per_k,
            self.cfg.die_capacity_j_per_k,
            self.cfg.sink_capacity_j_per_k,
            self.cfg.natural_conductance_w_per_k,
            self.cfg.airflow_conductance_w_per_k,
            self.cfg.airflow_exponent,
            &mut self.conductance_cache,
            &mut self.substep_cache,
            dt_s,
            power_w,
            airflow,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::new(ThermalConfig::default())
    }

    /// Runs the model to convergence and returns the die temperature.
    fn settle(m: &mut ThermalModel, power: f64, airflow: f64) -> f64 {
        for _ in 0..40_000 {
            m.step(0.1, power, airflow);
        }
        m.die_temp_c()
    }

    #[test]
    fn starts_at_ambient() {
        let m = model();
        assert_eq!(m.die_temp_c(), 22.0);
        assert_eq!(m.sink_temp_c(), 22.0);
    }

    #[test]
    fn steady_state_matches_settled_simulation() {
        let mut m = model();
        let settled = settle(&mut m, 60.0, 0.5);
        let (die, _) = m.steady_state(60.0, 0.5);
        assert!((settled - die).abs() < 0.05, "settled {settled} vs analytic {die}");
    }

    #[test]
    fn prewarmed_model_is_already_settled() {
        let m = ThermalModel::new_at_steady_state(ThermalConfig::default(), 20.0, 0.10);
        let (die, sink) = m.steady_state(20.0, 0.10);
        assert!((m.die_temp_c() - die).abs() < 1e-9);
        assert!((m.sink_temp_c() - sink).abs() < 1e-9);
    }

    #[test]
    fn idle_at_min_fan_sits_near_tmin() {
        // Calibration check: ~20 W idle, 10 % duty ⇒ around the ADT7467
        // Tmin of 38 °C (slightly above it, so the automatic curve idles
        // with a small duty margin).
        let (die, _) = model().steady_state(20.0, 0.10);
        assert!((36.0..44.0).contains(&die), "idle steady state {die}");
    }

    #[test]
    fn burn_at_full_fan_sits_in_low_50s() {
        // cpu-burn draws ≈ 70 W (48 W dynamic + 22 W static).
        let (die, _) = model().steady_state(70.0, 1.0);
        assert!((48.0..58.0).contains(&die), "full-fan burn steady state {die}");
    }

    #[test]
    fn bt_at_75_percent_cap_sits_just_above_dvfs_threshold() {
        // Table 1 calibration: NPB BT draws ≈ 60 W; even at a 75 %-capped
        // fan the steady state must land slightly above the 51 °C tDVFS
        // threshold (the paper's tDVFS makes 2 transitions at this cap).
        let (die, _) = model().steady_state(60.0, 0.75);
        assert!((51.0..55.0).contains(&die), "BT at 75% cap: {die}");
    }

    #[test]
    fn burn_with_stalled_fan_exceeds_emergency() {
        // With no airflow at all (seized rotor), a burn runs away past the
        // 70 °C hardware throttle point.
        let (die, _) = model().steady_state(70.0, 0.0);
        assert!(die > 70.0, "stalled-fan burn should run away, got {die}");
    }

    #[test]
    fn capped_25_percent_fan_cannot_hold_loads_below_threshold() {
        // Figure 9's setup: at a 25 % duty cap neither a full burn (70 W)
        // nor NPB BT (~60 W) stays below the 51 °C tDVFS threshold — DVFS
        // must act. BT additionally stays short of the 70 °C hardware
        // throttle so the DVFS layer (not the emergency monitor) does the
        // work.
        let (burn, _) = model().steady_state(70.0, 0.25);
        assert!(burn > 53.0, "25 %-duty burn steady state {burn}");
        let (bt, _) = model().steady_state(60.0, 0.25);
        assert!(bt > 53.0, "25 %-duty BT steady state {bt}");
        assert!(bt < 70.0, "BT should not reach the hardware throttle: {bt}");
    }

    #[test]
    fn more_airflow_means_cooler() {
        let m = model();
        let temps: Vec<f64> =
            [0.0, 0.25, 0.5, 0.75, 1.0].iter().map(|&a| m.steady_state(60.0, a).0).collect();
        assert!(temps.windows(2).all(|w| w[1] < w[0]), "monotone cooling: {temps:?}");
    }

    #[test]
    fn airflow_has_diminishing_returns() {
        // The paper's Figure 7 point: 50 % vs 75 % max duty differ little,
        // 25 % vs 100 % differ a lot. Check convexity of the cooling curve.
        let m = model();
        let t25 = m.steady_state(60.0, 0.25).0;
        let t50 = m.steady_state(60.0, 0.50).0;
        let t75 = m.steady_state(60.0, 0.75).0;
        let t100 = m.steady_state(60.0, 1.0).0;
        assert!(t25 - t50 > t50 - t75, "diminishing returns 25→50 vs 50→75");
        assert!(t50 - t75 > t75 - t100, "diminishing returns 50→75 vs 75→100");
    }

    #[test]
    fn die_reacts_faster_than_sink() {
        let mut m = model();
        // Step load from idle; after 3 s the die has moved much more than the sink.
        for _ in 0..30 {
            m.step(0.1, 80.0, 0.3);
        }
        let die_rise = m.die_temp_c() - 22.0;
        let sink_rise = m.sink_temp_c() - 22.0;
        assert!(die_rise > 3.0 * sink_rise, "die {die_rise} vs sink {sink_rise}");
    }

    #[test]
    fn zero_power_decays_to_ambient() {
        let mut m = model();
        settle(&mut m, 60.0, 0.5);
        let settled = settle(&mut m, 0.0, 0.5);
        assert!((settled - 22.0).abs() < 0.05, "decayed to {settled}");
    }

    #[test]
    fn ambient_step_shifts_operating_point() {
        let mut m = model();
        let before = settle(&mut m, 40.0, 0.5);
        m.set_ambient_c(32.0);
        let after = settle(&mut m, 40.0, 0.5);
        assert!((after - before - 10.0).abs() < 0.1, "10 °C ambient step ⇒ 10 °C die shift");
    }

    #[test]
    fn energy_conservation_in_equilibrium() {
        // At steady state, heat in equals heat out through the sink.
        let m = model();
        let (die, sink) = m.steady_state(55.0, 0.6);
        let g_ds = 8.3;
        let flow_ds = g_ds * (die - sink);
        assert!((flow_ds - 55.0).abs() < 1e-9);
    }

    #[test]
    fn stable_for_large_steps() {
        // A 1 s macro step must not oscillate or blow up thanks to sub-stepping.
        let mut m = model();
        for _ in 0..5_000 {
            m.step(1.0, 80.0, 0.2);
            assert!(m.die_temp_c().is_finite());
            assert!(m.die_temp_c() < 500.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dt() {
        model().step(0.0, 10.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_power() {
        model().step(0.1, -1.0, 0.5);
    }
}
