//! Timed fault injection for resilience experiments.
//!
//! A [`FaultPlan`] is a time-ordered script of [`FaultEvent`]s applied to a
//! node as the simulation clock passes each event's deadline. It models the
//! failure scenarios the paper's related work reacts to (fan failure, per
//! Choi et al. \[10\] and Heath et al. \[7\]), plus sensor dropouts and ambient
//! (machine-room) temperature excursions.

use serde::{Deserialize, Serialize};

/// A fault (or repair) applied to a node at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The fan rotor seizes.
    FanFailure,
    /// The fan is replaced/repaired.
    FanRepair,
    /// The thermal sensor stops responding.
    SensorDropout,
    /// The thermal sensor recovers.
    SensorRestore,
    /// The i2c fan controller starts NACKing transactions.
    I2cFailure,
    /// The i2c fan controller recovers.
    I2cRecovery,
    /// The intake air temperature changes to the given value (°C) —
    /// models an HVAC event or a hot spot forming in the rack.
    AmbientStep(f64),
}

/// A time-ordered script of fault events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(f64, FaultEvent)>,
    #[serde(skip)]
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder-style: schedules an event at `time_s`.
    ///
    /// Events may be added in any order; the plan keeps them sorted by time.
    ///
    /// # Panics
    /// Panics if called after delivery has started (events already consumed)
    /// or with a non-finite time.
    pub fn at(mut self, time_s: f64, event: FaultEvent) -> Self {
        assert!(time_s.is_finite() && time_s >= 0.0, "event time must be finite and non-negative");
        assert_eq!(self.cursor, 0, "cannot extend a fault plan after delivery started");
        let idx = self.events.partition_point(|(t, _)| *t <= time_s);
        self.events.insert(idx, (time_s, event));
        self
    }

    /// Number of scheduled events (delivered or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains all events due at or before `now_s`, in schedule order.
    pub fn due(&mut self, now_s: f64) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        while let Some(&(t, ev)) = self.events.get(self.cursor) {
            if t <= now_s {
                out.push(ev);
                self.cursor += 1;
            } else {
                break;
            }
        }
        out
    }

    /// Remaining undelivered events.
    pub fn pending(&self) -> usize {
        self.events.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut plan = FaultPlan::none()
            .at(10.0, FaultEvent::FanFailure)
            .at(5.0, FaultEvent::AmbientStep(30.0))
            .at(20.0, FaultEvent::FanRepair);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.due(4.9), vec![]);
        assert_eq!(plan.due(5.0), vec![FaultEvent::AmbientStep(30.0)]);
        assert_eq!(plan.due(15.0), vec![FaultEvent::FanFailure]);
        assert_eq!(plan.pending(), 1);
        assert_eq!(plan.due(100.0), vec![FaultEvent::FanRepair]);
        assert_eq!(plan.pending(), 0);
        assert_eq!(plan.due(200.0), vec![]);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut plan =
            FaultPlan::none().at(5.0, FaultEvent::FanFailure).at(5.0, FaultEvent::SensorDropout);
        assert_eq!(plan.due(5.0), vec![FaultEvent::FanFailure, FaultEvent::SensorDropout]);
    }

    #[test]
    fn empty_plan() {
        let mut plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.due(1e9), vec![]);
    }

    #[test]
    #[should_panic(expected = "after delivery started")]
    fn cannot_extend_after_delivery() {
        let mut plan = FaultPlan::none().at(1.0, FaultEvent::FanFailure);
        let _ = plan.due(2.0);
        let _ = plan.at(3.0, FaultEvent::FanRepair);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_time() {
        let _ = FaultPlan::none().at(-1.0, FaultEvent::FanFailure);
    }
}
