//! Timed fault injection for resilience experiments.
//!
//! A [`FaultPlan`] is a time-ordered script of [`FaultEvent`]s applied to a
//! node as the simulation clock passes each event's deadline. It models the
//! failure scenarios the paper's related work reacts to (fan failure, per
//! Choi et al. \[10\] and Heath et al. \[7\]), plus sensor dropouts and ambient
//! (machine-room) temperature excursions.
//!
//! A [`TickFaultSchedule`] is the replay-oriented sibling: the same events,
//! addressed by integer tick number instead of seconds. Replay tooling
//! derives one from a recorded event journal so a fault lands on *exactly*
//! the tick where an earlier run made an interesting decision, independent
//! of floating-point time accumulation.

use serde::{Deserialize, Serialize};

/// A fault (or repair) applied to a node at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The fan rotor seizes.
    FanFailure,
    /// The fan is replaced/repaired.
    FanRepair,
    /// The thermal sensor stops responding.
    SensorDropout,
    /// The thermal sensor recovers.
    SensorRestore,
    /// The i2c fan controller starts NACKing transactions.
    I2cFailure,
    /// The i2c fan controller recovers.
    I2cRecovery,
    /// The intake air temperature changes to the given value (°C) —
    /// models an HVAC event or a hot spot forming in the rack.
    AmbientStep(f64),
    /// The fan's PWM line latches at its current duty: the rotor keeps
    /// spinning, but duty commands are ignored until [`FaultEvent::PwmRelease`].
    /// Models a wedged fan controller output stage.
    PwmStuck,
    /// The stuck PWM line releases; duty commands take effect again.
    PwmRelease,
    /// Adds the given extra gaussian standard deviation (°C) to every
    /// thermal-sensor reading; `0.0` clears it. Models a degraded sensing
    /// path (electrical noise, marginal diode).
    SensorJitter(f64),
}

/// A time-ordered script of fault events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<(f64, FaultEvent)>,
    #[serde(skip)]
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder-style: schedules an event at `time_s`.
    ///
    /// Events may be added in any order; the plan keeps them sorted by time.
    ///
    /// # Panics
    /// Panics if called after delivery has started (events already consumed)
    /// or with a non-finite time.
    pub fn at(mut self, time_s: f64, event: FaultEvent) -> Self {
        assert!(time_s.is_finite() && time_s >= 0.0, "event time must be finite and non-negative");
        assert_eq!(self.cursor, 0, "cannot extend a fault plan after delivery started");
        let idx = self.events.partition_point(|(t, _)| *t <= time_s);
        self.events.insert(idx, (time_s, event));
        self
    }

    /// Number of scheduled events (delivered or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains all events due at or before `now_s`, in schedule order.
    pub fn due(&mut self, now_s: f64) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        while let Some(&(t, ev)) = self.events.get(self.cursor) {
            if t <= now_s {
                out.push(ev);
                self.cursor += 1;
            } else {
                break;
            }
        }
        out
    }

    /// Remaining undelivered events.
    pub fn pending(&self) -> usize {
        self.events.len() - self.cursor
    }
}

/// A tick-addressed script of fault events, for deterministic replay.
///
/// Where [`FaultPlan`] schedules in seconds (natural for hand-written
/// resilience scenarios), this schedules by tick number — the unit replay
/// derivation works in, since recorded journal events map exactly onto
/// ticks (`tick = round(time_s / dt_s)`). A node can carry both; tick
/// faults are delivered first within a tick.
///
/// Delivery is cursor-based and allocation-free: [`TickFaultSchedule::pop_due`]
/// hands out one event at a time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TickFaultSchedule {
    events: Vec<(u64, FaultEvent)>,
    #[serde(skip)]
    cursor: usize,
}

impl TickFaultSchedule {
    /// An empty schedule (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder-style: schedules an event at tick `tick` (ticks are 1-based;
    /// the first `Node::tick` call is tick 1).
    ///
    /// Events may be added in any order; the schedule keeps them sorted.
    ///
    /// # Panics
    /// Panics if called after delivery has started or with tick 0.
    pub fn at_tick(mut self, tick: u64, event: FaultEvent) -> Self {
        self.schedule(tick, event);
        self
    }

    /// Non-consuming form of [`TickFaultSchedule::at_tick`], for callers
    /// building schedules in a loop.
    ///
    /// # Panics
    /// Panics if called after delivery has started or with tick 0.
    pub fn schedule(&mut self, tick: u64, event: FaultEvent) {
        assert!(tick >= 1, "tick faults are 1-based (delivered at the start of that tick)");
        assert_eq!(self.cursor, 0, "cannot extend a fault schedule after delivery started");
        let idx = self.events.partition_point(|(t, _)| *t <= tick);
        self.events.insert(idx, (tick, event));
    }

    /// Number of scheduled events (delivered or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full schedule, sorted by tick.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// Pops the next event due at or before `tick`, if any. Call in a loop
    /// to drain a tick's events without allocating.
    pub fn pop_due(&mut self, tick: u64) -> Option<FaultEvent> {
        let &(t, ev) = self.events.get(self.cursor)?;
        if t <= tick {
            self.cursor += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// Remaining undelivered events.
    pub fn pending(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Builds a single injection/recovery window: `inject` lands at
    /// `start_tick`, `recover` at `start_tick + hold_ticks` (hold is
    /// clamped to at least one tick, so the pair never collapses onto the
    /// same tick in the wrong order).
    ///
    /// This is the unit the chaos search mutates: a candidate fault
    /// sequence is a set of windows, each built here and combined with
    /// [`TickFaultSchedule::merge`].
    ///
    /// # Panics
    /// Panics when `start_tick` is 0 (ticks are 1-based).
    pub fn window(
        start_tick: u64,
        hold_ticks: u64,
        inject: FaultEvent,
        recover: FaultEvent,
    ) -> Self {
        Self::none()
            .at_tick(start_tick, inject)
            .at_tick(start_tick.saturating_add(hold_ticks.max(1)), recover)
    }

    /// Merges another schedule's events into this one, keeping tick order
    /// (equal ticks keep `self`'s events first, then `other`'s — a stable,
    /// deterministic interleave).
    ///
    /// # Panics
    /// Panics if delivery has started on either schedule.
    pub fn merge(&mut self, other: &TickFaultSchedule) {
        assert_eq!(other.cursor, 0, "cannot merge a schedule after its delivery started");
        for &(tick, ev) in &other.events {
            self.schedule(tick, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut plan = FaultPlan::none()
            .at(10.0, FaultEvent::FanFailure)
            .at(5.0, FaultEvent::AmbientStep(30.0))
            .at(20.0, FaultEvent::FanRepair);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.due(4.9), vec![]);
        assert_eq!(plan.due(5.0), vec![FaultEvent::AmbientStep(30.0)]);
        assert_eq!(plan.due(15.0), vec![FaultEvent::FanFailure]);
        assert_eq!(plan.pending(), 1);
        assert_eq!(plan.due(100.0), vec![FaultEvent::FanRepair]);
        assert_eq!(plan.pending(), 0);
        assert_eq!(plan.due(200.0), vec![]);
    }

    #[test]
    fn simultaneous_events_keep_insertion_order() {
        let mut plan =
            FaultPlan::none().at(5.0, FaultEvent::FanFailure).at(5.0, FaultEvent::SensorDropout);
        assert_eq!(plan.due(5.0), vec![FaultEvent::FanFailure, FaultEvent::SensorDropout]);
    }

    #[test]
    fn empty_plan() {
        let mut plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.due(1e9), vec![]);
    }

    #[test]
    #[should_panic(expected = "after delivery started")]
    fn cannot_extend_after_delivery() {
        let mut plan = FaultPlan::none().at(1.0, FaultEvent::FanFailure);
        let _ = plan.due(2.0);
        let _ = plan.at(3.0, FaultEvent::FanRepair);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_time() {
        let _ = FaultPlan::none().at(-1.0, FaultEvent::FanFailure);
    }

    #[test]
    fn tick_schedule_delivers_in_order_one_at_a_time() {
        let mut sched = TickFaultSchedule::none()
            .at_tick(200, FaultEvent::PwmRelease)
            .at_tick(40, FaultEvent::PwmStuck)
            .at_tick(40, FaultEvent::SensorJitter(0.5));
        assert_eq!(sched.len(), 3);
        assert_eq!(sched.pop_due(39), None);
        assert_eq!(sched.pop_due(40), Some(FaultEvent::PwmStuck));
        assert_eq!(sched.pop_due(40), Some(FaultEvent::SensorJitter(0.5)));
        assert_eq!(sched.pop_due(40), None);
        assert_eq!(sched.pending(), 1);
        assert_eq!(sched.pop_due(1000), Some(FaultEvent::PwmRelease));
        assert_eq!(sched.pop_due(1000), None);
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn tick_schedule_round_trips_and_resets_cursor() {
        let sched = TickFaultSchedule::none()
            .at_tick(10, FaultEvent::SensorDropout)
            .at_tick(110, FaultEvent::SensorRestore);
        let json = serde_json::to_string(&sched).expect("serialize");
        let mut back: TickFaultSchedule = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, sched);
        // The cursor is serde(skip): a deserialized schedule delivers from
        // the start, which is what replay needs.
        assert_eq!(back.pop_due(10), Some(FaultEvent::SensorDropout));
    }

    #[test]
    #[should_panic(expected = "after delivery started")]
    fn tick_schedule_cannot_extend_after_delivery() {
        let mut sched = TickFaultSchedule::none().at_tick(1, FaultEvent::FanFailure);
        let _ = sched.pop_due(5);
        sched.schedule(9, FaultEvent::FanRepair);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn tick_schedule_rejects_tick_zero() {
        let _ = TickFaultSchedule::none().at_tick(0, FaultEvent::FanFailure);
    }

    #[test]
    fn window_builds_an_injection_recovery_pair() {
        let w = TickFaultSchedule::window(
            100,
            50,
            FaultEvent::SensorDropout,
            FaultEvent::SensorRestore,
        );
        assert_eq!(
            w.events(),
            &[(100, FaultEvent::SensorDropout), (150, FaultEvent::SensorRestore)]
        );
        // A zero hold is clamped so recovery still lands after injection.
        let z = TickFaultSchedule::window(7, 0, FaultEvent::PwmStuck, FaultEvent::PwmRelease);
        assert_eq!(z.events(), &[(7, FaultEvent::PwmStuck), (8, FaultEvent::PwmRelease)]);
    }

    #[test]
    fn merge_interleaves_in_tick_order() {
        let mut a = TickFaultSchedule::window(10, 30, FaultEvent::PwmStuck, FaultEvent::PwmRelease);
        let b = TickFaultSchedule::window(
            20,
            5,
            FaultEvent::SensorJitter(2.0),
            FaultEvent::SensorJitter(0.0),
        );
        a.merge(&b);
        assert_eq!(
            a.events(),
            &[
                (10, FaultEvent::PwmStuck),
                (20, FaultEvent::SensorJitter(2.0)),
                (25, FaultEvent::SensorJitter(0.0)),
                (40, FaultEvent::PwmRelease),
            ]
        );
        // Merged schedules deliver like any other.
        assert_eq!(a.pop_due(10), Some(FaultEvent::PwmStuck));
    }

    #[test]
    #[should_panic(expected = "after its delivery started")]
    fn merge_rejects_consumed_source() {
        let mut a = TickFaultSchedule::none();
        let mut b = TickFaultSchedule::window(5, 5, FaultEvent::FanFailure, FaultEvent::FanRepair);
        let _ = b.pop_due(5);
        a.merge(&b);
    }
}
