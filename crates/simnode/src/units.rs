//! Small strongly-typed units used across the simulator.
//!
//! Temperatures and powers are plain `f64` (°C, W) — they flow through ODE
//! math where wrappers would add noise. The types here guard the values that
//! cross *interface* boundaries where Linux-style unit conventions invite
//! bugs: PWM duty cycles (percent vs 0–255 register values) and DVFS
//! P-states (MHz vs kHz).

use serde::{Deserialize, Serialize};

/// A PWM duty cycle in percent, clamped to `0..=100`.
///
/// The paper discretizes the continuous fan speed into 100 distinct speeds
/// from 1 % to 100 % duty; 0 % (fan off) additionally exists on the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DutyCycle(u8);

impl DutyCycle {
    /// Maximum duty (full fan speed).
    pub const MAX: DutyCycle = DutyCycle(100);
    /// Minimum non-zero duty in the paper's discretization.
    pub const MIN_RUNNING: DutyCycle = DutyCycle(1);
    /// Fan off.
    pub const OFF: DutyCycle = DutyCycle(0);

    /// Creates a duty cycle, clamping to `0..=100`.
    pub fn new(percent: u8) -> Self {
        Self(percent.min(100))
    }

    /// Creates a duty cycle from a fraction in `[0, 1]` (clamped, rounded).
    pub fn from_fraction(frac: f64) -> Self {
        Self((frac.clamp(0.0, 1.0) * 100.0).round() as u8)
    }

    /// Duty in percent, `0..=100`.
    pub fn percent(self) -> u8 {
        self.0
    }

    /// Duty as a fraction in `[0, 1]`.
    pub fn fraction(self) -> f64 {
        f64::from(self.0) / 100.0
    }

    /// Converts to the 8-bit register encoding used by the ADT7467
    /// (0 ↦ 0x00, 100 % ↦ 0xFF, linear in between).
    pub fn to_register(self) -> u8 {
        ((u16::from(self.0) * 255 + 50) / 100) as u8
    }

    /// Converts from the 8-bit register encoding (inverse of
    /// [`DutyCycle::to_register`] up to rounding).
    pub fn from_register(raw: u8) -> Self {
        Self(((u16::from(raw) * 100 + 127) / 255) as u8)
    }

    /// Saturating clamp against an upper duty limit.
    pub fn clamp_max(self, max: DutyCycle) -> Self {
        Self(self.0.min(max.0))
    }

    /// `DutyCycle::from_register(r).fraction()` for every register value,
    /// tabulated through those exact functions — entries are bit-identical
    /// to the computed path, they just skip the per-call `f64` divide on
    /// the hot curve evaluation.
    pub(crate) fn register_fraction_lut() -> &'static [f64; 256] {
        static LUT: std::sync::OnceLock<[f64; 256]> = std::sync::OnceLock::new();
        LUT.get_or_init(|| std::array::from_fn(|r| DutyCycle::from_register(r as u8).fraction()))
    }

    /// `DutyCycle::new(p).fraction()` for every percent value, tabulated
    /// through those exact functions (same contract as
    /// [`DutyCycle::register_fraction_lut`]).
    pub(crate) fn percent_fraction_lut() -> &'static [f64; 256] {
        static LUT: std::sync::OnceLock<[f64; 256]> = std::sync::OnceLock::new();
        LUT.get_or_init(|| std::array::from_fn(|p| DutyCycle::new(p as u8).fraction()))
    }
}

impl std::fmt::Display for DutyCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}%", self.0)
    }
}

/// Temperature in millidegrees Celsius — the unit Linux hwmon exposes in
/// `tempN_input` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MilliCelsius(pub i64);

impl MilliCelsius {
    /// Converts from degrees Celsius (rounded to the nearest millidegree).
    pub fn from_celsius(c: f64) -> Self {
        Self((c * 1000.0).round() as i64)
    }

    /// Converts to degrees Celsius.
    pub fn to_celsius(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl std::fmt::Display for MilliCelsius {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}°C", self.to_celsius())
    }
}

/// A DVFS performance state: an operating frequency/voltage pair.
///
/// Ordered by frequency; a *lower* frequency is a *more effective* thermal
/// control mode (generates less heat).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Core clock in MHz.
    pub freq_mhz: u32,
    /// Core voltage in volts.
    pub voltage_v: f64,
}

impl PState {
    /// Creates a P-state.
    ///
    /// # Panics
    /// Panics on a zero frequency or non-positive voltage: such a state is a
    /// configuration bug, not a runtime condition.
    pub fn new(freq_mhz: u32, voltage_v: f64) -> Self {
        assert!(freq_mhz > 0, "P-state frequency must be positive");
        assert!(voltage_v > 0.0, "P-state voltage must be positive");
        Self { freq_mhz, voltage_v }
    }

    /// Frequency in GHz.
    pub fn freq_ghz(self) -> f64 {
        f64::from(self.freq_mhz) / 1000.0
    }

    /// Frequency in kHz — the unit Linux cpufreq uses in
    /// `scaling_setspeed` / `scaling_available_frequencies`.
    pub fn freq_khz(self) -> u32 {
        self.freq_mhz * 1000
    }
}

impl std::fmt::Display for PState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}GHz", self.freq_ghz())
    }
}

/// The paper platform's five P-states (AMD Athlon64 4000+):
/// 2.4, 2.2, 2.0, 1.8 and 1.0 GHz, with a typical desktop f/V ladder.
pub fn athlon64_pstates() -> Vec<PState> {
    vec![
        PState::new(2400, 1.50),
        PState::new(2200, 1.45),
        PState::new(2000, 1.40),
        PState::new(1800, 1.35),
        PState::new(1000, 1.10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_clamps_to_100() {
        assert_eq!(DutyCycle::new(250).percent(), 100);
        assert_eq!(DutyCycle::new(42).percent(), 42);
    }

    #[test]
    fn duty_fraction_roundtrip() {
        for p in 0..=100u8 {
            let d = DutyCycle::new(p);
            assert_eq!(DutyCycle::from_fraction(d.fraction()), d);
        }
    }

    #[test]
    fn duty_from_fraction_clamps() {
        assert_eq!(DutyCycle::from_fraction(-0.5), DutyCycle::OFF);
        assert_eq!(DutyCycle::from_fraction(1.7), DutyCycle::MAX);
        assert_eq!(DutyCycle::from_fraction(0.505).percent(), 51);
    }

    #[test]
    fn duty_register_roundtrip() {
        for p in 0..=100u8 {
            let d = DutyCycle::new(p);
            assert_eq!(DutyCycle::from_register(d.to_register()), d, "duty {p}");
        }
        assert_eq!(DutyCycle::MAX.to_register(), 0xFF);
        assert_eq!(DutyCycle::OFF.to_register(), 0x00);
    }

    #[test]
    fn duty_clamp_max() {
        assert_eq!(DutyCycle::new(80).clamp_max(DutyCycle::new(75)).percent(), 75);
        assert_eq!(DutyCycle::new(30).clamp_max(DutyCycle::new(75)).percent(), 30);
    }

    #[test]
    fn millicelsius_roundtrip() {
        let m = MilliCelsius::from_celsius(51.25);
        assert_eq!(m.0, 51250);
        assert_eq!(m.to_celsius(), 51.25);
        assert_eq!(MilliCelsius::from_celsius(-3.0).0, -3000);
    }

    #[test]
    fn pstate_conversions() {
        let p = PState::new(2400, 1.5);
        assert_eq!(p.freq_ghz(), 2.4);
        assert_eq!(p.freq_khz(), 2_400_000);
        assert_eq!(p.to_string(), "2.4GHz");
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn pstate_rejects_zero_freq() {
        let _ = PState::new(0, 1.0);
    }

    #[test]
    fn athlon_ladder_is_descending() {
        let ps = athlon64_pstates();
        assert_eq!(ps.len(), 5);
        assert!(ps.windows(2).all(|w| w[0].freq_mhz > w[1].freq_mhz));
        assert!(ps.windows(2).all(|w| w[0].voltage_v > w[1].voltage_v));
        assert_eq!(ps[0].freq_mhz, 2400);
        assert_eq!(ps[4].freq_mhz, 1000);
    }
}
