//! The assembled server node.
//!
//! A [`Node`] wires together the CPU, fan, thermal network, ADT7467 fan
//! controller (behind the i2c bus), thermal sensor, power meter and fault
//! plan, and advances them in lockstep from a fixed-width tick loop.
//!
//! The node exposes exactly the two control paths the paper's software uses:
//!
//! * **out-of-band**: SMBus register transactions to the ADT7467
//!   ([`Node::smbus_read`] / [`Node::smbus_write`]) — the fan driver path,
//! * **in-band**: cpufreq-style frequency requests
//!   ([`Node::set_frequency_khz`]) and the lm-sensors-style sensor read
//!   ([`Node::read_sensor`]).
//!
//! Everything else (die temperature, fan RPM, power draw) is physics that
//! control software can only influence through those two paths, just like on
//! the real machine.

use serde::{Deserialize, Serialize};

use crate::adt7467::Adt7467;
use crate::config::NodeConfig;
use crate::cpu::{Cpu, InvalidFrequency, ThermalCondition};
use crate::fan::Fan;
use crate::faults::{FaultEvent, FaultPlan, TickFaultSchedule};
use crate::i2c::{I2cBus, I2cError};
use crate::power::PowerMeter;
use crate::sensor::{SensorDropout, ThermalSensor};
use crate::thermal::ThermalModel;
use crate::units::{DutyCycle, MilliCelsius};

/// The 7-bit i2c address the ADT7467 occupies on the paper's motherboard
/// (the dBCool family responds at 0x2C–0x2E; we use 0x2E).
pub const ADT7467_ADDR: u8 = 0x2E;

/// Wall-meter sampling period in seconds (the Watts up? Pro samples at 1 Hz).
const METER_PERIOD_S: f64 = 1.0;

/// A point-in-time snapshot of the observable node state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// Simulation time in seconds.
    pub time_s: f64,
    /// True die temperature in °C (ground truth; controllers see the sensor).
    pub die_temp_c: f64,
    /// Heatsink temperature in °C.
    pub sink_temp_c: f64,
    /// Commanded fan duty cycle.
    pub fan_duty: DutyCycle,
    /// Actual fan speed in RPM.
    pub fan_rpm: f64,
    /// Effective CPU frequency in MHz (0 when shut down).
    pub freq_mhz: u32,
    /// CPU utilization in `[0, 1]`.
    pub utilization: f64,
    /// Instantaneous wall power in W.
    pub wall_power_w: f64,
    /// Hardware thermal-monitor condition.
    pub condition: ThermalCondition,
}

/// A simulated server node.
#[derive(Debug)]
pub struct Node {
    pub(crate) cfg: NodeConfig,
    pub(crate) cpu: Cpu,
    pub(crate) fan: Fan,
    pub(crate) thermal: ThermalModel,
    /// One DTS per core (index 0 is the coolest spot, the last the
    /// hottest); the paper's platform has exactly one.
    sensors: Vec<ThermalSensor>,
    pub(crate) bus: I2cBus,
    pub(crate) meter: PowerMeter,
    faults: FaultPlan,
    /// Tick-addressed faults (deterministic replay); delivered before the
    /// time-addressed plan within a tick.
    tick_faults: TickFaultSchedule,
    /// Every fault actually delivered, with the tick it landed on.
    /// Pre-reserved to the total scheduled count so steady-state ticks
    /// never allocate.
    fault_log: Vec<(u64, FaultEvent)>,
    pub(crate) time_s: f64,
    pub(crate) ticks: u64,
}

impl Node {
    /// Builds a node from the configuration, pre-warmed to its idle
    /// operating point (CPU idle at top frequency, ADT7467 in automatic
    /// mode, thermal network settled).
    pub fn new(cfg: NodeConfig, seed: u64) -> Self {
        Self::with_faults(cfg, seed, FaultPlan::none())
    }

    /// Builds a node with a fault-injection plan.
    pub fn with_faults(cfg: NodeConfig, seed: u64, faults: FaultPlan) -> Self {
        cfg.validate();
        let cpu = Cpu::new(cfg.cpu.clone());
        let chip = Adt7467::new();

        // Find the idle fixed point of (temperature, auto-curve duty):
        // iterate the steady-state map a few times; it is a contraction.
        let idle_power = cpu.power_w(cfg.thermal.ambient_c + 15.0);
        let mut duty = chip.commanded_duty();
        let thermal_probe = ThermalModel::new(cfg.thermal.clone());
        for _ in 0..8 {
            let (die, _) = thermal_probe.steady_state(idle_power, duty.fraction());
            duty = chip.static_curve_duty(die);
        }
        let (die, _) = thermal_probe.steady_state(idle_power, duty.fraction());

        let thermal =
            ThermalModel::new_at_steady_state(cfg.thermal.clone(), idle_power, duty.fraction());
        let fan = Fan::new_at_duty(cfg.fan.clone(), duty);
        let mut chip = chip;
        chip.set_measured_temp_c(die);

        let mut bus = I2cBus::new();
        bus.attach(ADT7467_ADDR, Box::new(chip));

        let sensors = (0..cfg.sensor.count)
            .map(|i| {
                let mut per_sensor = cfg.sensor.clone();
                // Per-sensor hot-spot offset: sensor i sits i/(count−1) of
                // the spread above the lumped die temperature.
                if cfg.sensor.count > 1 {
                    per_sensor.offset_c +=
                        cfg.sensor.core_spread_c * i as f64 / (cfg.sensor.count - 1) as f64;
                }
                ThermalSensor::new(
                    per_sensor,
                    seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                )
            })
            .collect();
        let meter = PowerMeter::new(cfg.board.psu_efficiency, METER_PERIOD_S);

        let fault_log = Vec::with_capacity(faults.len());
        Self {
            cfg,
            cpu,
            fan,
            thermal,
            sensors,
            bus,
            meter,
            faults,
            tick_faults: TickFaultSchedule::none(),
            fault_log,
            time_s: 0.0,
            ticks: 0,
        }
    }

    /// Attaches a tick-addressed fault schedule (deterministic replay).
    /// Within a tick these deliver before the time-addressed plan.
    ///
    /// # Panics
    /// Panics if the node has already ticked — a schedule attached
    /// mid-flight would not replay deterministically.
    pub fn set_tick_faults(&mut self, schedule: TickFaultSchedule) {
        assert_eq!(self.ticks, 0, "tick faults must be attached before the first tick");
        self.fault_log.reserve(schedule.len());
        self.tick_faults = schedule;
    }

    /// Simulation time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Ticks elapsed (the first [`Node::tick`] call is tick 1).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Every fault delivered so far, with the tick each landed on.
    pub fn fault_log(&self) -> &[(u64, FaultEvent)] {
        &self.fault_log
    }

    /// True when this node has any scheduled fault sources (time- or
    /// tick-addressed). Such nodes must take the scalar tick path in batched
    /// simulations so fault delivery and logging semantics stay unchanged.
    pub fn has_fault_sources(&self) -> bool {
        !self.faults.is_empty() || !self.tick_faults.is_empty()
    }

    /// Configuration the node was built from.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Advances the node by `dt_s` seconds.
    ///
    /// Order per tick: deliver due faults → fan controller evaluates (the
    /// chip sees the die temperature through its remote diode) → fan rotor
    /// dynamics → CPU heat into the thermal network → hardware thermal
    /// monitor → power metering.
    pub fn tick(&mut self, dt_s: f64) {
        assert!(dt_s > 0.0, "time step must be positive");
        self.ticks += 1;
        self.time_s += dt_s;

        while let Some(ev) = self.tick_faults.pop_due(self.ticks) {
            self.apply_fault(ev);
        }
        for ev in self.faults.due(self.time_s) {
            self.apply_fault(ev);
        }

        // The chip's remote diode tracks the die continuously.
        let die = self.thermal.die_temp_c();
        if let Some(chip) = self.bus.device_mut::<Adt7467>(ADT7467_ADDR) {
            chip.set_measured_temp_c(die);
            self.fan.set_duty(chip.commanded_duty());
        }
        self.fan.step(dt_s);

        let cpu_power = self.cpu.power_w(die);
        self.thermal.step(dt_s, cpu_power, self.fan.airflow());
        self.cpu.update_thermal_monitor(self.thermal.die_temp_c());

        let dc_power = cpu_power + self.fan.power_w() + self.cfg.board.base_power_w;
        self.meter.observe(dt_s, dc_power);
    }

    fn apply_fault(&mut self, ev: FaultEvent) {
        self.fault_log.push((self.ticks, ev));
        match ev {
            FaultEvent::FanFailure => self.fan.fail(),
            FaultEvent::FanRepair => self.fan.repair(),
            // Sensor dropouts model the polling path failing (bus or hub),
            // which takes every DTS with it.
            FaultEvent::SensorDropout => self.sensors.iter_mut().for_each(|s| s.drop_out()),
            FaultEvent::SensorRestore => self.sensors.iter_mut().for_each(|s| s.restore()),
            FaultEvent::I2cFailure => self.bus.inject_nack(ADT7467_ADDR, true),
            FaultEvent::I2cRecovery => self.bus.inject_nack(ADT7467_ADDR, false),
            FaultEvent::AmbientStep(t) => self.thermal.set_ambient_c(t),
            FaultEvent::PwmStuck => self.fan.stick_pwm(),
            FaultEvent::PwmRelease => self.fan.release_pwm(),
            FaultEvent::SensorJitter(std) => {
                self.sensors.iter_mut().for_each(|s| s.set_extra_jitter(std));
            }
        }
    }

    // ---- in-band control path (cpufreq / lm-sensors style) ----

    /// Reads the primary die thermal sensor (noisy, quantized), as
    /// lm-sensors would.
    pub fn read_sensor(&mut self) -> Result<MilliCelsius, SensorDropout> {
        self.read_sensor_at(0)
    }

    /// Number of on-die thermal sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Reads sensor `idx` (0-based).
    ///
    /// # Panics
    /// Panics if `idx` is out of range — enumerate with
    /// [`Node::sensor_count`] first; a wrong index is a driver bug.
    pub fn read_sensor_at(&mut self, idx: usize) -> Result<MilliCelsius, SensorDropout> {
        let die = self.thermal.die_temp_c();
        let n = self.sensors.len();
        self.sensors
            .get_mut(idx)
            .unwrap_or_else(|| panic!("sensor index {idx} out of range (count {n})"))
            .read(die)
    }

    /// Reads every sensor and returns the hottest reading — the aggregation
    /// thermal controllers should act on for multi-core parts. Fails only
    /// when *no* sensor responds.
    pub fn read_hottest_sensor(&mut self) -> Result<MilliCelsius, SensorDropout> {
        let die = self.thermal.die_temp_c();
        self.sensors.iter_mut().filter_map(|s| s.read(die).ok()).max().ok_or(SensorDropout)
    }

    /// Available DVFS frequencies in kHz, descending (cpufreq
    /// `scaling_available_frequencies`).
    pub fn available_frequencies_khz(&self) -> Vec<u32> {
        self.cpu.pstates().iter().map(|p| p.freq_khz()).collect()
    }

    /// Requests a DVFS frequency in kHz (cpufreq `scaling_setspeed`).
    pub fn set_frequency_khz(&mut self, khz: u32) -> Result<bool, InvalidFrequency> {
        self.cpu.set_frequency_mhz(khz / 1000)
    }

    /// Sets the CPU's ACPI sleep-state gate (1.0 = C0 fully awake; lower
    /// models deeper processor sleep). The in-band path an ACPI sleep
    /// daemon actuates through.
    pub fn set_sleep_gate(&mut self, gate: f64) {
        self.cpu.set_sleep_gate(gate);
    }

    /// Currently requested frequency in kHz (cpufreq `scaling_cur_freq`
    /// reports the governor request; hardware throttling is separate).
    pub fn requested_frequency_khz(&self) -> u32 {
        self.cpu.requested_pstate().freq_khz()
    }

    /// CPU utilization over the last tick, `[0, 1]` — what a daemon would
    /// derive from `/proc/stat`.
    pub fn utilization(&self) -> f64 {
        self.cpu.utilization()
    }

    // ---- out-of-band control path (i2c fan driver style) ----

    /// SMBus byte read from a device on the node's i2c bus.
    pub fn smbus_read(&mut self, addr: u8, reg: u8) -> Result<u8, I2cError> {
        self.bus.read_byte(addr, reg)
    }

    /// SMBus byte write to a device on the node's i2c bus.
    pub fn smbus_write(&mut self, addr: u8, reg: u8, value: u8) -> Result<(), I2cError> {
        self.bus.write_byte(addr, reg, value)
    }

    // ---- workload / simulator-internal access ----

    /// Sets CPU utilization for the next tick (driven by the workload
    /// model); activity follows utilization.
    pub fn set_utilization(&mut self, u: f64) {
        self.cpu.set_utilization(u);
    }

    /// Sets utilization and switching activity separately.
    pub fn set_load(&mut self, utilization: f64, activity: f64) {
        self.cpu.set_load(utilization, activity);
    }

    /// Relative execution speed vs. the top P-state (workload progress
    /// multiplier; 0 when shut down or 0 % utilization makes no progress
    /// anyway).
    pub fn speed_factor(&self) -> f64 {
        self.cpu.speed_factor()
    }

    /// Direct CPU access for metrics (transition counts, condition).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Direct fan access for metrics (RPM, failure state).
    pub fn fan(&self) -> &Fan {
        &self.fan
    }

    /// Power meter access for Table-1 style reporting.
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// Ground-truth die temperature (for plots; controllers must use
    /// [`Node::read_sensor`]).
    pub fn die_temp_c(&self) -> f64 {
        self.thermal.die_temp_c()
    }

    /// Current intake-air (ambient) temperature, °C.
    pub fn ambient_c(&self) -> f64 {
        self.thermal.ambient_c()
    }

    /// Sets the intake-air temperature — driven by rack-level air models
    /// (recirculation coupling) or fault plans (HVAC events).
    pub fn set_ambient_c(&mut self, ambient_c: f64) {
        self.thermal.set_ambient_c(ambient_c);
    }

    /// Heat currently dissipated into the air by this node, W (DC side:
    /// CPU + fan + board; PSU losses are dumped at the wall, outside the
    /// rack airflow model's control volume).
    pub fn heat_output_w(&self) -> f64 {
        self.cpu.power_w(self.thermal.die_temp_c())
            + self.fan.power_w()
            + self.cfg.board.base_power_w
    }

    /// Instantaneous wall power in W.
    pub fn wall_power_w(&self) -> f64 {
        let dc = self.cpu.power_w(self.thermal.die_temp_c())
            + self.fan.power_w()
            + self.cfg.board.base_power_w;
        dc / self.cfg.board.psu_efficiency
    }

    /// Full observable state snapshot.
    pub fn state(&self) -> NodeState {
        NodeState {
            time_s: self.time_s,
            die_temp_c: self.thermal.die_temp_c(),
            sink_temp_c: self.thermal.sink_temp_c(),
            fan_duty: self.fan.duty(),
            fan_rpm: self.fan.rpm(),
            freq_mhz: self.cpu.effective_freq_mhz(),
            utilization: self.cpu.utilization(),
            wall_power_w: self.wall_power_w(),
            condition: self.cpu.condition(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt7467::{regs, PwmMode};

    fn node() -> Node {
        Node::new(NodeConfig::default(), 7)
    }

    fn run(node: &mut Node, seconds: f64) {
        let dt = 0.05;
        let steps = (seconds / dt).round() as usize;
        for _ in 0..steps {
            node.tick(dt);
        }
    }

    #[test]
    fn starts_settled_at_idle() {
        let mut n = node();
        let t0 = n.die_temp_c();
        run(&mut n, 60.0);
        assert!(
            (n.die_temp_c() - t0).abs() < 1.5,
            "idle node should stay settled: {t0} → {}",
            n.die_temp_c()
        );
        assert!((30.0..45.0).contains(&t0), "idle operating point {t0}");
    }

    #[test]
    fn auto_fan_responds_to_load() {
        let mut n = node();
        let duty0 = n.state().fan_duty;
        n.set_utilization(1.0);
        run(&mut n, 300.0);
        let s = n.state();
        assert!(s.die_temp_c > 45.0, "loaded die heats up: {}", s.die_temp_c);
        assert!(s.fan_duty > duty0, "auto mode speeds the fan up: {} → {}", duty0, s.fan_duty);
    }

    #[test]
    fn auto_fan_keeps_burn_out_of_emergency() {
        // The stock automatic curve must hold cpu-burn below the 70 °C
        // hardware throttle (it ramps to 100 % duty well before that).
        let mut n = node();
        n.set_utilization(1.0);
        run(&mut n, 600.0);
        assert!(n.die_temp_c() < 70.0, "auto-controlled burn at {}", n.die_temp_c());
        assert_eq!(n.cpu().throttle_event_count(), 0);
    }

    #[test]
    fn manual_stalled_fan_burn_throttles_then_shuts_down() {
        let mut n = node();
        // Switch chip to manual, command a duty below the stall threshold
        // (the rotor stops) and run cpu-burn: the die runs away, the
        // hardware monitor throttles — and with only natural convection even
        // the lowest P-state cannot dissipate the heat, so the node
        // ultimately shuts down. This is the "loss of availability" failure
        // mode the paper's introduction warns about.
        n.smbus_write(ADT7467_ADDR, regs::PWM_CONFIG, 1).unwrap();
        n.smbus_write(ADT7467_ADDR, regs::PWM_CURRENT, DutyCycle::new(2).to_register()).unwrap();
        n.set_utilization(1.0);
        run(&mut n, 900.0);
        assert!(n.cpu().throttle_event_count() > 0, "expected a thermal emergency");
        assert!(n.cpu().is_shut_down(), "dead fan under sustained burn is fatal");
        assert_eq!(n.state().condition, ThermalCondition::ShutDown);
        // A shut-down node cools back toward ambient.
        assert!(n.die_temp_c() < 70.0, "cooling after shutdown: {}", n.die_temp_c());
    }

    #[test]
    fn smbus_path_controls_fan() {
        let mut n = node();
        n.smbus_write(ADT7467_ADDR, regs::PWM_CONFIG, 1).unwrap();
        n.smbus_write(ADT7467_ADDR, regs::PWM_CURRENT, DutyCycle::new(80).to_register()).unwrap();
        run(&mut n, 10.0);
        assert_eq!(n.state().fan_duty.percent(), 80);
        assert!((n.state().fan_rpm - 0.8 * 4300.0).abs() < 50.0);
        let mode = n.smbus_read(ADT7467_ADDR, regs::PWM_CONFIG).unwrap();
        assert_eq!(mode, 1);
        let chip_duty = n.smbus_read(ADT7467_ADDR, regs::PWM_CURRENT).unwrap();
        assert_eq!(DutyCycle::from_register(chip_duty).percent(), 80);
    }

    #[test]
    fn cpufreq_path_scales_frequency_and_power() {
        let mut n = node();
        n.set_utilization(1.0);
        run(&mut n, 120.0);
        let hot = n.wall_power_w();
        assert_eq!(
            n.available_frequencies_khz(),
            vec![2_400_000, 2_200_000, 2_000_000, 1_800_000, 1_000_000]
        );
        n.set_frequency_khz(1_000_000).unwrap();
        assert_eq!(n.requested_frequency_khz(), 1_000_000);
        run(&mut n, 120.0);
        let cool = n.wall_power_w();
        assert!(cool < hot - 20.0, "downscaled power {cool} vs {hot}");
        assert!((n.speed_factor() - 1.0 / 2.4).abs() < 1e-9);
        assert!(n.set_frequency_khz(1_234_000).is_err());
    }

    #[test]
    fn sensor_reads_track_die() {
        let mut n = node();
        n.set_utilization(1.0);
        run(&mut n, 200.0);
        let reading = n.read_sensor().unwrap().to_celsius();
        assert!((reading - n.die_temp_c()).abs() < 2.0);
    }

    #[test]
    fn fan_failure_causes_runaway_and_throttle() {
        let faults = FaultPlan::none().at(10.0, FaultEvent::FanFailure);
        let mut n = Node::with_faults(NodeConfig::default(), 3, faults);
        n.set_utilization(1.0);
        run(&mut n, 600.0);
        assert!(n.fan().is_failed());
        assert_eq!(n.state().fan_rpm, 0.0);
        assert!(
            n.cpu().throttle_event_count() > 0,
            "dead fan under burn must trigger the thermal monitor (T={})",
            n.die_temp_c()
        );
    }

    #[test]
    fn sensor_dropout_fault_blocks_reads() {
        let faults =
            FaultPlan::none().at(1.0, FaultEvent::SensorDropout).at(2.0, FaultEvent::SensorRestore);
        let mut n = Node::with_faults(NodeConfig::default(), 3, faults);
        run(&mut n, 1.5);
        assert!(n.read_sensor().is_err());
        run(&mut n, 1.0);
        assert!(n.read_sensor().is_ok());
    }

    #[test]
    fn i2c_fault_blocks_smbus() {
        let faults = FaultPlan::none().at(1.0, FaultEvent::I2cFailure);
        let mut n = Node::with_faults(NodeConfig::default(), 3, faults);
        run(&mut n, 2.0);
        assert!(matches!(
            n.smbus_read(ADT7467_ADDR, regs::PWM_CURRENT),
            Err(I2cError::Nack { .. })
        ));
    }

    #[test]
    fn ambient_step_heats_node() {
        let faults = FaultPlan::none().at(5.0, FaultEvent::AmbientStep(35.0));
        let mut n = Node::with_faults(NodeConfig::default(), 3, faults);
        let before = n.die_temp_c();
        run(&mut n, 600.0);
        assert!(n.die_temp_c() > before + 5.0, "{} → {}", before, n.die_temp_c());
    }

    #[test]
    fn tick_faults_land_on_their_exact_tick_and_are_logged() {
        let mut n = node();
        n.set_tick_faults(
            TickFaultSchedule::none()
                .at_tick(10, FaultEvent::PwmStuck)
                .at_tick(20, FaultEvent::SensorJitter(1.5))
                .at_tick(30, FaultEvent::PwmRelease),
        );
        for _ in 0..9 {
            n.tick(0.05);
        }
        assert!(!n.fan().is_pwm_stuck(), "nothing delivered before tick 10");
        assert!(n.fault_log().is_empty());
        n.tick(0.05);
        assert!(n.fan().is_pwm_stuck(), "PwmStuck delivered on tick 10 exactly");
        assert_eq!(n.fault_log(), &[(10, FaultEvent::PwmStuck)]);
        for _ in 0..20 {
            n.tick(0.05);
        }
        assert!(!n.fan().is_pwm_stuck(), "released on tick 30");
        assert_eq!(n.ticks(), 30);
        assert_eq!(
            n.fault_log(),
            &[
                (10, FaultEvent::PwmStuck),
                (20, FaultEvent::SensorJitter(1.5)),
                (30, FaultEvent::PwmRelease),
            ]
        );
    }

    #[test]
    fn tick_faults_deliver_before_time_faults_within_a_tick() {
        // Both address the same tick (tick 5 = 0.25 s); the log shows the
        // tick-addressed event first.
        let faults = FaultPlan::none().at(0.25, FaultEvent::FanFailure);
        let mut n = Node::with_faults(NodeConfig::default(), 3, faults);
        n.set_tick_faults(TickFaultSchedule::none().at_tick(5, FaultEvent::SensorDropout));
        for _ in 0..5 {
            n.tick(0.05);
        }
        assert_eq!(n.fault_log(), &[(5, FaultEvent::SensorDropout), (5, FaultEvent::FanFailure)]);
    }

    #[test]
    #[should_panic(expected = "before the first tick")]
    fn tick_faults_rejected_after_first_tick() {
        let mut n = node();
        n.tick(0.05);
        n.set_tick_faults(TickFaultSchedule::none().at_tick(2, FaultEvent::FanFailure));
    }

    #[test]
    fn sensor_jitter_fault_degrades_then_recovers_readings() {
        let mut a = node();
        let mut b = node();
        b.set_tick_faults(
            TickFaultSchedule::none()
                .at_tick(1, FaultEvent::SensorJitter(5.0))
                .at_tick(50, FaultEvent::SensorJitter(0.0)),
        );
        let mut diverged = false;
        for _ in 0..49 {
            a.tick(0.05);
            b.tick(0.05);
            if a.read_sensor() != b.read_sensor() {
                diverged = true;
            }
        }
        assert!(diverged, "5 °C jitter must perturb readings");
        a.tick(0.05);
        b.tick(0.05);
        // Same seed, same draw count per read: once the jitter clears the
        // two nodes read identically again.
        assert_eq!(a.read_sensor(), b.read_sensor());
    }

    #[test]
    fn wall_power_in_table1_range_under_load() {
        // Table 1 reports ≈ 93–101 W per node for BT; check cpu-burn with a
        // mid fan duty lands in that neighbourhood.
        let mut n = node();
        n.smbus_write(ADT7467_ADDR, regs::PWM_CONFIG, 1).unwrap();
        n.smbus_write(ADT7467_ADDR, regs::PWM_CURRENT, DutyCycle::new(50).to_register()).unwrap();
        n.set_utilization(1.0);
        run(&mut n, 400.0);
        let p = n.wall_power_w();
        assert!((85.0..115.0).contains(&p), "loaded wall power {p}");
    }

    #[test]
    fn meter_average_accumulates() {
        let mut n = node();
        n.set_utilization(0.5);
        run(&mut n, 30.0);
        let avg = n.meter().average_power_w();
        assert!(avg > 40.0, "meter average {avg}");
        assert!(n.meter().sample_stats().count() >= 29);
    }

    #[test]
    fn default_chip_mode_is_automatic() {
        let mut n = node();
        let mode = n.smbus_read(ADT7467_ADDR, regs::PWM_CONFIG).unwrap();
        assert_eq!(mode, 0, "chip boots in automatic mode");
        // The fan duty at boot reflects the automatic curve, not a manual
        // command — confirming PwmMode::Automatic semantics end to end.
        let expected = Adt7467::new().static_curve_duty(n.die_temp_c());
        let actual = n.state().fan_duty;
        assert!(
            (i32::from(actual.percent()) - i32::from(expected.percent())).abs() <= 2,
            "boot duty {actual} vs curve {expected} ({:?})",
            PwmMode::Automatic
        );
    }

    #[test]
    fn multi_sensor_hottest_aggregation() {
        let mut cfg = NodeConfig::default();
        cfg.sensor.count = 4;
        cfg.sensor.core_spread_c = 3.0;
        cfg.sensor.noise_std_c = 0.0;
        cfg.sensor.quantization_c = 0.0;
        let mut n = Node::new(cfg, 21);
        assert_eq!(n.sensor_count(), 4);
        let die = n.die_temp_c();
        // Sensor offsets step 0, 1, 2, 3 °C above the lumped die temp.
        for i in 0..4 {
            let r = n.read_sensor_at(i).unwrap().to_celsius();
            assert!((r - (die + i as f64)).abs() < 1e-3, "sensor {i}: {r} vs die {die}");
        }
        let hottest = n.read_hottest_sensor().unwrap().to_celsius();
        assert!((hottest - (die + 3.0)).abs() < 1e-3, "hottest {hottest}");
    }

    #[test]
    fn hottest_survives_partial_information() {
        // With noise the hottest read is max over noisy sensors: it is at
        // least the primary sensor's reading on average.
        let mut cfg = NodeConfig::default();
        cfg.sensor.count = 2;
        let mut n = Node::new(cfg, 22);
        let mut hot_sum = 0.0;
        let mut primary_sum = 0.0;
        for _ in 0..200 {
            n.tick(0.05);
            hot_sum += n.read_hottest_sensor().unwrap().to_celsius();
            primary_sum += n.read_sensor().unwrap().to_celsius();
        }
        assert!(hot_sum > primary_sum, "hottest aggregation must dominate");
    }

    #[test]
    fn sensor_dropout_takes_all_sensors() {
        let mut cfg = NodeConfig::default();
        cfg.sensor.count = 3;
        let faults = FaultPlan::none().at(1.0, FaultEvent::SensorDropout);
        let mut n = Node::with_faults(cfg, 23, faults);
        run(&mut n, 2.0);
        assert!(n.read_hottest_sensor().is_err(), "no sensor should respond");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sensor_index_out_of_range_panics() {
        let mut n = node();
        let _ = n.read_sensor_at(5);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = node();
        let mut b = node();
        a.set_utilization(0.8);
        b.set_utilization(0.8);
        run(&mut a, 50.0);
        run(&mut b, 50.0);
        assert_eq!(a.state(), b.state());
        assert_eq!(a.read_sensor(), b.read_sensor());
    }
}
