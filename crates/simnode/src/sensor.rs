//! On-die digital thermal sensor model.
//!
//! Real DTS hardware reports quantized, noisy readings; lm-sensors polls them
//! at a few hertz. Both effects matter to the paper: quantization gives the
//! staircase look of its traces, and sampling noise is precisely the
//! Type-III "jitter" its two-level window is designed to ignore.
//!
//! Noise is generated from a deterministic per-sensor PRNG so experiments
//! reproduce bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::SensorConfig;
use crate::units::MilliCelsius;

/// Error for an unreadable sensor (fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorDropout;

impl std::fmt::Display for SensorDropout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thermal sensor did not respond")
    }
}

impl std::error::Error for SensorDropout {}

/// A quantizing, noisy thermal sensor attached to the die.
#[derive(Debug, Clone)]
pub struct ThermalSensor {
    cfg: SensorConfig,
    rng: SmallRng,
    dropped_out: bool,
    last_reading: Option<MilliCelsius>,
    reads: u64,
    /// Extra noise std-dev injected by fault plans (`SensorJitter`), °C.
    extra_jitter_std_c: f64,
}

impl ThermalSensor {
    /// Creates a sensor with its own deterministic noise stream.
    pub fn new(cfg: SensorConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            dropped_out: false,
            last_reading: None,
            reads: 0,
            extra_jitter_std_c: 0.0,
        }
    }

    /// Samples the sensor given the true die temperature.
    ///
    /// Returns the quantized, noisy reading, or [`SensorDropout`] while the
    /// sensor is failed.
    pub fn read(&mut self, true_temp_c: f64) -> Result<MilliCelsius, SensorDropout> {
        if self.dropped_out {
            return Err(SensorDropout);
        }
        self.reads += 1;
        // The injected jitter shares the per-read gaussian draw, so turning
        // it on or off never changes how many variates a read consumes —
        // the PRNG stream structure stays identical across fault schedules.
        let std = self.cfg.noise_std_c + self.extra_jitter_std_c;
        let noisy = true_temp_c + self.cfg.offset_c + self.gaussian() * std;
        let quantized = if self.cfg.quantization_c > 0.0 {
            (noisy / self.cfg.quantization_c).round() * self.cfg.quantization_c
        } else {
            noisy
        };
        let reading = MilliCelsius::from_celsius(quantized);
        self.last_reading = Some(reading);
        Ok(reading)
    }

    /// The most recent successful reading, if any.
    pub fn last_reading(&self) -> Option<MilliCelsius> {
        self.last_reading
    }

    /// Total successful reads.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Starts a dropout: subsequent reads fail until [`Self::restore`].
    pub fn drop_out(&mut self) {
        self.dropped_out = true;
    }

    /// Ends a dropout.
    pub fn restore(&mut self) {
        self.dropped_out = false;
    }

    /// True while the sensor is failed.
    pub fn is_dropped_out(&self) -> bool {
        self.dropped_out
    }

    /// Sets the extra gaussian noise std-dev (°C) added on top of the
    /// configured `noise_std_c`; `0.0` clears it. Driven by the
    /// `SensorJitter` fault.
    pub fn set_extra_jitter(&mut self, std_c: f64) {
        assert!(std_c.is_finite() && std_c >= 0.0, "jitter std must be finite and non-negative");
        self.extra_jitter_std_c = std_c;
    }

    /// The currently injected extra noise std-dev, °C.
    pub fn extra_jitter(&self) -> f64 {
        self.extra_jitter_std_c
    }

    /// Standard normal variate via Box–Muller (two uniforms per call keeps
    /// the stream simple and deterministic).
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor(seed: u64) -> ThermalSensor {
        ThermalSensor::new(SensorConfig::default(), seed)
    }

    #[test]
    fn reading_is_near_truth() {
        let mut s = sensor(1);
        let r = s.read(50.0).unwrap().to_celsius();
        assert!((r - 50.0).abs() < 3.0, "reading {r}");
    }

    #[test]
    fn reading_is_quantized() {
        let mut s = sensor(2);
        for _ in 0..100 {
            let r = s.read(47.3).unwrap().to_celsius();
            let steps = r / 0.25;
            assert!((steps - steps.round()).abs() < 1e-9, "unquantized reading {r}");
        }
    }

    #[test]
    fn noise_has_expected_spread() {
        let mut s = sensor(3);
        let readings: Vec<f64> = (0..4000).map(|_| s.read(50.0).unwrap().to_celsius()).collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        let var =
            readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / (readings.len() - 1) as f64;
        assert!((mean - 50.0).abs() < 0.05, "mean {mean}");
        // std 0.35 plus quantization noise (0.25²/12 ≈ 0.0052 variance).
        let expected_var = 0.35f64.powi(2) + 0.25f64.powi(2) / 12.0;
        assert!((var - expected_var).abs() < 0.03, "var {var} vs {expected_var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = sensor(42);
        let mut b = sensor(42);
        for i in 0..50 {
            let t = 40.0 + i as f64 * 0.1;
            assert_eq!(a.read(t), b.read(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = sensor(1);
        let mut b = sensor(2);
        let same = (0..50).filter(|_| a.read(50.0) == b.read(50.0)).count();
        assert!(same < 50, "independent streams should diverge");
    }

    #[test]
    fn dropout_and_restore() {
        let mut s = sensor(4);
        let first = s.read(50.0).unwrap();
        s.drop_out();
        assert!(s.is_dropped_out());
        assert_eq!(s.read(50.0), Err(SensorDropout));
        assert_eq!(s.last_reading(), Some(first), "last good value retained");
        s.restore();
        assert!(s.read(50.0).is_ok());
        assert_eq!(s.read_count(), 2);
    }

    #[test]
    fn extra_jitter_widens_spread_without_consuming_extra_variates() {
        // Two sensors with the same seed, one jittered: their RNG streams
        // stay aligned (same draw count per read), so clearing the jitter
        // makes them agree again from that read on.
        let mut clean = sensor(9);
        let mut jittered = sensor(9);
        jittered.set_extra_jitter(2.0);
        assert_eq!(jittered.extra_jitter(), 2.0);
        let mut diverged = false;
        for _ in 0..50 {
            if clean.read(50.0) != jittered.read(50.0) {
                diverged = true;
            }
        }
        assert!(diverged, "2 °C of extra noise must be visible");
        jittered.set_extra_jitter(0.0);
        for _ in 0..50 {
            assert_eq!(clean.read(50.0), jittered.read(50.0), "streams realign after clearing");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_jitter() {
        sensor(1).set_extra_jitter(-1.0);
    }

    #[test]
    fn noiseless_sensor_is_exact_up_to_quantization() {
        let cfg = SensorConfig {
            noise_std_c: 0.0,
            quantization_c: 0.25,
            offset_c: 0.0,
            ..Default::default()
        };
        let mut s = ThermalSensor::new(cfg, 0);
        assert_eq!(s.read(51.25).unwrap().to_celsius(), 51.25);
        assert_eq!(s.read(51.30).unwrap().to_celsius(), 51.25);
    }

    #[test]
    fn offset_shifts_readings() {
        let cfg = SensorConfig {
            noise_std_c: 0.0,
            quantization_c: 0.0,
            offset_c: 2.0,
            ..Default::default()
        };
        let mut s = ThermalSensor::new(cfg, 0);
        assert_eq!(s.read(50.0).unwrap().to_celsius(), 52.0);
    }
}
