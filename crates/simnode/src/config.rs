//! Node configuration: every calibration constant of the simulated platform.
//!
//! The defaults model the paper's platform (AMD Athlon64 4000+ node, 4300-RPM
//! CPU fan, ADT7467 controller) and are calibrated so that the steady-state
//! operating points match the traces in the paper's figures:
//!
//! * idle at minimum fan duty settles around 38 °C (the ADT7467 Tmin),
//! * cpu-burn at full fan settles in the mid-40s °C,
//! * cpu-burn at ~36 % duty settles in the mid-50s °C,
//! * cpu-burn with a failed fan runs away past the 70 °C emergency throttle,
//! * a full node under load draws ≈ 95–100 W at the wall (Table 1).

use serde::{Deserialize, Serialize};

use crate::units::{athlon64_pstates, PState};

/// Thermal RC network parameters (die + heatsink lumps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Die (junction + package) heat capacity in J/K. Small: the die reacts
    /// within seconds, producing the paper's Type-I "sudden" behaviour.
    pub die_capacity_j_per_k: f64,
    /// Heatsink heat capacity in J/K. Large: the sink drifts over tens of
    /// seconds, producing Type-II "gradual" behaviour.
    pub sink_capacity_j_per_k: f64,
    /// Die-to-sink conductance in W/K (junction-to-case path).
    pub die_sink_conductance_w_per_k: f64,
    /// Sink-to-ambient conductance with zero airflow (natural convection),
    /// in W/K.
    pub natural_conductance_w_per_k: f64,
    /// Additional sink-to-ambient conductance at full fan speed, in W/K.
    /// Scales with `airflow^airflow_exponent`.
    pub airflow_conductance_w_per_k: f64,
    /// Exponent of the airflow → convective conductance law (sub-linear;
    /// fit to the paper's operating points — see `thermal.rs` calibration
    /// tests).
    pub airflow_exponent: f64,
    /// Ambient (intake) air temperature in °C.
    pub ambient_c: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self {
            die_capacity_j_per_k: 20.0,
            sink_capacity_j_per_k: 250.0,
            die_sink_conductance_w_per_k: 8.3,
            natural_conductance_w_per_k: 0.3,
            airflow_conductance_w_per_k: 2.38,
            airflow_exponent: 0.486,
            ambient_c: 22.0,
        }
    }
}

/// CPU power-model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Available P-states in descending frequency order.
    pub pstates: Vec<PState>,
    /// Dynamic power at 100 % utilization in the highest P-state, in W.
    /// Dynamic power scales as `V²·f` across P-states.
    pub dynamic_power_max_w: f64,
    /// Static power at the highest P-state voltage and the reference
    /// temperature, in W. Covers leakage plus the frequency-independent
    /// uncore/idle draw; scales with voltage and die temperature.
    pub leakage_power_ref_w: f64,
    /// Reference temperature for the leakage figure, in °C.
    pub leakage_ref_temp_c: f64,
    /// Fractional leakage increase per kelvin above the reference
    /// temperature (leakage grows roughly linearly over our range).
    pub leakage_temp_coeff_per_k: f64,
    /// Die temperature at which the hardware thermal monitor engages and
    /// forcibly throttles the clock (the paper's "thermal emergency
    /// slowdown"), in °C.
    pub emergency_throttle_c: f64,
    /// Die temperature at which the node shuts down, in °C.
    pub emergency_shutdown_c: f64,
    /// Hysteresis in °C below `emergency_throttle_c` before hardware
    /// throttling releases.
    pub emergency_hysteresis_c: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            pstates: athlon64_pstates(),
            dynamic_power_max_w: 48.0,
            leakage_power_ref_w: 22.0,
            leakage_ref_temp_c: 50.0,
            leakage_temp_coeff_per_k: 0.008,
            emergency_throttle_c: 70.0,
            emergency_shutdown_c: 85.0,
            emergency_hysteresis_c: 5.0,
        }
    }
}

/// Fan parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FanConfig {
    /// Full-speed revolutions per minute (the paper's fans: 4300 RPM).
    pub max_rpm: f64,
    /// Spin-up/down time constant in seconds.
    pub time_constant_s: f64,
    /// Electrical power at full speed in W (scales cubically with speed).
    pub max_power_w: f64,
    /// Fraction of `max_rpm` below which the motor stalls (a real PWM fan
    /// cannot sustain arbitrarily slow rotation).
    pub stall_fraction: f64,
}

impl Default for FanConfig {
    fn default() -> Self {
        Self { max_rpm: 4300.0, time_constant_s: 1.5, max_power_w: 4.8, stall_fraction: 0.04 }
    }
}

/// Thermal sensor parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Gaussian measurement noise standard deviation in °C. This is what
    /// produces the paper's Type-III "jitter" on otherwise flat segments.
    pub noise_std_c: f64,
    /// Quantization step in °C (on-die DTS report in coarse steps;
    /// 0.25 °C matches the staircase look of the paper's traces).
    pub quantization_c: f64,
    /// Sensor reading offset in °C (systematic calibration error).
    pub offset_c: f64,
    /// Number of on-die sensors (the paper's single-core Athlon64 has 1;
    /// multi-core server CPUs expose one DTS per core).
    pub count: usize,
    /// Spread of per-sensor hot-spot offsets in °C: with `count` sensors,
    /// sensor `i` reads `offset_c + core_spread_c · i / (count − 1)` above
    /// the lumped die temperature — a compact stand-in for intra-die
    /// gradients. Controllers aggregate by hottest sensor.
    pub core_spread_c: f64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        Self {
            noise_std_c: 0.35,
            quantization_c: 0.25,
            offset_c: 0.0,
            count: 1,
            core_spread_c: 1.5,
        }
    }
}

/// Whole-node electrical parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardConfig {
    /// Power drawn by everything that is not the CPU or the fan (chipset,
    /// DRAM, disk, NIC, PSU overhead), in W.
    pub base_power_w: f64,
    /// Power-supply efficiency applied to the DC loads when reporting wall
    /// power (Watts-up meters measure at the wall).
    pub psu_efficiency: f64,
}

impl Default for BoardConfig {
    fn default() -> Self {
        Self { base_power_w: 24.0, psu_efficiency: 0.85 }
    }
}

/// Complete configuration of one simulated node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NodeConfig {
    /// Thermal network parameters.
    pub thermal: ThermalConfig,
    /// CPU / DVFS parameters.
    pub cpu: CpuConfig,
    /// Fan parameters.
    pub fan: FanConfig,
    /// Thermal-sensor parameters.
    pub sensor: SensorConfig,
    /// Board/PSU parameters.
    pub board: BoardConfig,
}

impl NodeConfig {
    /// Validates the configuration, panicking with a description of the
    /// first inconsistency. Construction-time validation keeps the
    /// simulation loop free of defensive checks.
    pub fn validate(&self) {
        let t = &self.thermal;
        assert!(t.die_capacity_j_per_k > 0.0, "die capacity must be positive");
        assert!(t.sink_capacity_j_per_k > 0.0, "sink capacity must be positive");
        assert!(t.die_sink_conductance_w_per_k > 0.0, "die-sink conductance must be positive");
        assert!(t.natural_conductance_w_per_k >= 0.0, "natural conductance must be non-negative");
        assert!(t.airflow_conductance_w_per_k >= 0.0, "airflow conductance must be non-negative");
        assert!(t.airflow_exponent > 0.0, "airflow exponent must be positive");

        let c = &self.cpu;
        assert!(!c.pstates.is_empty(), "at least one P-state required");
        assert!(
            c.pstates.windows(2).all(|w| w[0].freq_mhz > w[1].freq_mhz),
            "P-states must be in strictly descending frequency order"
        );
        assert!(c.dynamic_power_max_w >= 0.0, "dynamic power must be non-negative");
        assert!(c.leakage_power_ref_w >= 0.0, "leakage power must be non-negative");
        assert!(
            c.emergency_throttle_c < c.emergency_shutdown_c,
            "throttle threshold must be below shutdown threshold"
        );
        assert!(c.emergency_hysteresis_c >= 0.0, "hysteresis must be non-negative");

        let f = &self.fan;
        assert!(f.max_rpm > 0.0, "fan max RPM must be positive");
        assert!(f.time_constant_s > 0.0, "fan time constant must be positive");
        assert!(f.max_power_w >= 0.0, "fan power must be non-negative");
        assert!((0.0..1.0).contains(&f.stall_fraction), "stall fraction must be in [0,1)");

        let s = &self.sensor;
        assert!(s.noise_std_c >= 0.0, "sensor noise must be non-negative");
        assert!(s.quantization_c >= 0.0, "sensor quantization must be non-negative");
        assert!(s.count >= 1, "need at least one thermal sensor");
        assert!(s.core_spread_c >= 0.0, "core spread must be non-negative");

        let b = &self.board;
        assert!(b.base_power_w >= 0.0, "base power must be non-negative");
        assert!(
            (0.0..=1.0).contains(&b.psu_efficiency) && b.psu_efficiency > 0.0,
            "PSU efficiency must be in (0,1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        NodeConfig::default().validate();
    }

    #[test]
    fn default_matches_paper_platform() {
        let c = NodeConfig::default();
        assert_eq!(c.cpu.pstates.len(), 5);
        assert_eq!(c.cpu.pstates[0].freq_mhz, 2400);
        assert_eq!(c.fan.max_rpm, 4300.0);
    }

    #[test]
    #[should_panic(expected = "descending frequency")]
    fn rejects_unsorted_pstates() {
        let mut c = NodeConfig::default();
        c.cpu.pstates.reverse();
        c.validate();
    }

    #[test]
    #[should_panic(expected = "die capacity")]
    fn rejects_zero_capacity() {
        let mut c = NodeConfig::default();
        c.thermal.die_capacity_j_per_k = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "below shutdown")]
    fn rejects_inverted_emergency_thresholds() {
        let mut c = NodeConfig::default();
        c.cpu.emergency_throttle_c = 90.0;
        c.validate();
    }

    #[test]
    fn clone_compares_equal() {
        let c = NodeConfig::default();
        assert_eq!(c.clone(), c);
    }
}
