//! ACPI sleep states as a third thermal-control technique.
//!
//! The paper's §3.2.2 lists "valid sleep states for ACPI-compatible system"
//! as one of the mode sets the thermal control array can hold. This module
//! provides that mode set and a processor-idle-state controller built from
//! the same [`UnifiedController`] machinery, demonstrating that the unified
//! representation extends beyond fans and DVFS without new controller code.

use serde::{Deserialize, Serialize};

use crate::control_array::Policy;
use crate::controller::{ControllerConfig, Decision, UnifiedController};

/// An ACPI processor idle (C-)state. Deeper states save more power / heat
/// but cost more wake-up latency, so deeper = more effective thermal mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SleepState {
    /// C0: executing.
    C0,
    /// C1: halt.
    C1,
    /// C2: stop-clock.
    C2,
    /// C3: deep sleep (caches flushed).
    C3,
}

impl SleepState {
    /// All states in ascending cooling effectiveness (C0 least, C3 most).
    pub const ALL: [SleepState; 4] =
        [SleepState::C0, SleepState::C1, SleepState::C2, SleepState::C3];

    /// Nominal residency power fraction relative to C0 at full tilt.
    pub fn power_fraction(self) -> f64 {
        match self {
            SleepState::C0 => 1.0,
            SleepState::C1 => 0.55,
            SleepState::C2 => 0.35,
            SleepState::C3 => 0.15,
        }
    }

    /// Nominal wake-up latency in microseconds.
    pub fn wakeup_latency_us(self) -> u32 {
        match self {
            SleepState::C0 => 0,
            SleepState::C1 => 1,
            SleepState::C2 => 50,
            SleepState::C3 => 800,
        }
    }
}

impl std::fmt::Display for SleepState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SleepState::C0 => "C0",
            SleepState::C1 => "C1",
            SleepState::C2 => "C2",
            SleepState::C3 => "C3",
        };
        f.write_str(s)
    }
}

/// A thermal controller over ACPI idle states: identical machinery to the
/// fan controller, different mode set.
pub type SleepStateController = UnifiedController<SleepState>;

/// Builds a sleep-state controller under a policy.
pub fn sleep_state_controller(policy: Policy, cfg: ControllerConfig) -> SleepStateController {
    UnifiedController::new(&SleepState::ALL, policy, cfg)
}

/// Convenience: a decision over sleep states.
pub type SleepDecision = Decision<SleepState>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control_array::ThermalControlArray;

    #[test]
    fn states_ordered_by_effectiveness() {
        let p: Vec<f64> = SleepState::ALL.iter().map(|s| s.power_fraction()).collect();
        assert!(p.windows(2).all(|w| w[1] < w[0]), "deeper states draw less: {p:?}");
        let l: Vec<u32> = SleepState::ALL.iter().map(|s| s.wakeup_latency_us()).collect();
        assert!(l.windows(2).all(|w| w[1] > w[0]), "deeper states wake slower: {l:?}");
    }

    #[test]
    fn control_array_works_over_sleep_states() {
        let arr = ThermalControlArray::with_default_len(&SleepState::ALL, Policy::MODERATE);
        assert_eq!(arr.least_effective(), SleepState::C0);
        assert_eq!(arr.most_effective(), SleepState::C3);
        assert_eq!(arr.mode_at(arr.n_p()), SleepState::C3);
    }

    #[test]
    fn controller_escalates_sleep_depth_on_heat() {
        let mut c = sleep_state_controller(Policy::MODERATE, ControllerConfig::default());
        assert_eq!(c.current_mode(), SleepState::C0);
        // Sudden +8 °C step.
        c.observe(45.0);
        c.observe(45.0);
        c.observe(53.0);
        let d = c.observe(53.0).expect("step triggers");
        assert!(d.mode > SleepState::C0, "deeper idle commanded: {}", d.mode);
    }

    #[test]
    fn aggressive_policy_prefers_deeper_states() {
        let agg = ThermalControlArray::with_default_len(&SleepState::ALL, Policy::AGGRESSIVE);
        let weak = ThermalControlArray::with_default_len(&SleepState::ALL, Policy::WEAK);
        let deeper = (1..=100).filter(|&i| agg.mode_at(i) > weak.mode_at(i)).count();
        assert!(deeper > 25, "aggressive array deeper in {deeper} cells");
    }

    #[test]
    fn display_names() {
        assert_eq!(SleepState::C0.to_string(), "C0");
        assert_eq!(SleepState::C3.to_string(), "C3");
    }
}
