//! tDVFS: the temperature-aware, threshold-triggered DVFS daemon (§4.3).
//!
//! The paper's strategy: "not to scale down frequency unless necessary
//! because low frequencies impact application performance". tDVFS therefore:
//!
//! * only scales *down* when the **average** temperature has been
//!   **consistently above** the trigger threshold (51 °C on the paper's
//!   platform) for several window rounds — short-term spikes and jitter are
//!   ignored (Figure 8's marked region);
//! * chooses how far down via the thermal control array: the escalation step
//!   is `max(1, round(c·(T̄ − threshold)))` cells, so a shared `P_p` governs
//!   DVFS aggressiveness exactly as it governs the fan (aggressive arrays
//!   reach low frequencies in fewer escalations — Figure 10's
//!   2.4 GHz → 2.0 GHz jump at `P_p = 25`);
//! * restores the **original** frequency once the average temperature has
//!   been consistently below the threshold (Figure 8: 2.2 → 2.4 GHz direct).
//!
//! Because scaling happens at most once per sustained-excess confirmation,
//! tDVFS makes orders of magnitude fewer frequency transitions than a
//! utilization governor (Table 1: 2–3 vs. 101–139), which the paper notes is
//! "greatly beneficial to the system reliability".

use serde::{Deserialize, Serialize};

use crate::actuator::FreqMhz;
use crate::control_array::{Policy, ThermalControlArray};
use crate::controller::ControllerConfig;

/// tDVFS daemon parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdvfsConfig {
    /// Trigger threshold in °C (paper: 51 °C).
    pub threshold_c: f64,
    /// Restore hysteresis in °C: restoration requires the average to stay
    /// below `threshold_c − hysteresis_c`.
    pub hysteresis_c: f64,
    /// Number of consecutive window rounds the average must stay above the
    /// threshold before a scale-down (and below it before a restore).
    pub consecutive_rounds: usize,
    /// Samples averaged per round (matches the controller's level-one
    /// window: 4 samples at 4 Hz = 1 round per second).
    pub samples_per_round: usize,
    /// Minimum temperature rise (°C) over the confirmation window for an
    /// escalation while moderately above threshold. tDVFS's job is to
    /// *arrest the rise* with minimal performance cost; once a scale-down
    /// has flattened the temperature it holds the frequency rather than
    /// chasing the threshold through the coarse P-state ladder (which would
    /// overshoot, restore, and thrash — the paper's traces show a stable
    /// plateau instead).
    pub rising_threshold_c: f64,
    /// Excess (°C above threshold) beyond which escalation proceeds even
    /// with a flat temperature — the emergency escape that bounds how high
    /// the plateau may sit.
    pub escalation_margin_c: f64,
    /// Rounds to wait after any emitted frequency change before escalating
    /// again. The heatsink's thermal time constant means a scale-down's
    /// full effect takes tens of seconds to appear; escalating during the
    /// transient overshoots the stable operating point and causes
    /// scale/restore thrash.
    pub settle_rounds: usize,
    /// Shared index geometry (array length, temperature range ⇒ gain `c`).
    pub controller: ControllerConfig,
}

impl Default for TdvfsConfig {
    fn default() -> Self {
        Self {
            threshold_c: 51.0,
            hysteresis_c: 1.0,
            consecutive_rounds: 8,
            samples_per_round: 4,
            rising_threshold_c: 0.25,
            escalation_margin_c: 6.0,
            settle_rounds: 30,
            controller: ControllerConfig::default(),
        }
    }
}

impl TdvfsConfig {
    /// Validates the configuration: positive round sizes, non-negative
    /// hysteresis/margin, and a usable embedded controller tuning. Returns
    /// an error so scenario files carrying a bad tDVFS block are rejected
    /// as data errors.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::ConfigError;
        if self.samples_per_round < 1 {
            return Err(ConfigError::new("need at least one sample per round"));
        }
        if self.consecutive_rounds < 1 {
            return Err(ConfigError::new("need at least one confirmation round"));
        }
        if self.hysteresis_c < 0.0 {
            return Err(ConfigError::new("hysteresis must be non-negative"));
        }
        if self.escalation_margin_c < 0.0 {
            return Err(ConfigError::new("escalation margin must be non-negative"));
        }
        self.controller.validate()
    }
}

/// A frequency-change action requested by tDVFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TdvfsEvent {
    /// Scale down to the given frequency (temperature sustained above
    /// threshold).
    ScaleDown(FreqMhz),
    /// Restore the original (highest) frequency (temperature sustained
    /// below threshold).
    Restore(FreqMhz),
}

impl TdvfsEvent {
    /// The frequency this event requests.
    pub fn frequency_mhz(self) -> FreqMhz {
        match self {
            TdvfsEvent::ScaleDown(f) | TdvfsEvent::Restore(f) => f,
        }
    }
}

/// The tDVFS daemon.
///
/// ```
/// use unitherm_core::control_array::Policy;
/// use unitherm_core::tdvfs::Tdvfs;
///
/// let mut d = Tdvfs::with_defaults(&[2400, 2200, 2000, 1800, 1000], Policy::MODERATE);
/// assert_eq!(d.current_frequency_mhz(), 2400);
/// // Feed 4 Hz samples well above the margin: after the confirmation
/// // rounds the daemon scales down.
/// let mut scaled = false;
/// for _ in 0..40 {
///     if d.observe(58.0).is_some() {
///         scaled = true;
///     }
/// }
/// assert!(scaled);
/// assert!(d.current_frequency_mhz() < 2400);
/// ```
#[derive(Debug, Clone)]
pub struct Tdvfs {
    cfg: TdvfsConfig,
    array: ThermalControlArray<FreqMhz>,
    /// 1-based index into the control array; 1 = original frequency.
    index: usize,
    round_buf: Vec<f64>,
    /// Recent round averages (capacity `consecutive_rounds + 1`), newest
    /// last — used to measure the rise across the confirmation window.
    recent_avgs: std::collections::VecDeque<f64>,
    above_rounds: usize,
    below_rounds: usize,
    /// Rounds elapsed since the last emitted frequency change.
    rounds_since_event: usize,
    scale_downs: u64,
    restores: u64,
}

impl Tdvfs {
    /// Creates the daemon over a frequency ladder given in descending order
    /// (ascending cooling effectiveness), governed by `policy`.
    pub fn new(frequencies_desc_mhz: &[FreqMhz], policy: Policy, cfg: TdvfsConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        let modes = crate::actuator::dvfs_mode_set(frequencies_desc_mhz);
        let array = ThermalControlArray::build(&modes, policy, cfg.controller.array_len);
        Self {
            cfg,
            array,
            index: 1,
            round_buf: Vec::with_capacity(cfg.samples_per_round),
            recent_avgs: std::collections::VecDeque::with_capacity(cfg.consecutive_rounds + 1),
            above_rounds: 0,
            below_rounds: 0,
            rounds_since_event: cfg.settle_rounds, // first action needs no settling
            scale_downs: 0,
            restores: 0,
        }
    }

    /// Creates the daemon with default parameters (51 °C threshold).
    pub fn with_defaults(frequencies_desc_mhz: &[FreqMhz], policy: Policy) -> Self {
        Self::new(frequencies_desc_mhz, policy, TdvfsConfig::default())
    }

    /// The daemon configuration.
    pub fn config(&self) -> &TdvfsConfig {
        &self.cfg
    }

    /// The frequency currently requested by the daemon.
    pub fn current_frequency_mhz(&self) -> FreqMhz {
        self.array.mode_at(self.index)
    }

    /// The original (highest) frequency.
    pub fn original_frequency_mhz(&self) -> FreqMhz {
        self.array.least_effective()
    }

    /// Number of scale-down events issued.
    pub fn scale_down_count(&self) -> u64 {
        self.scale_downs
    }

    /// Number of restore events issued.
    pub fn restore_count(&self) -> u64 {
        self.restores
    }

    /// Feeds one temperature sample; may emit a frequency-change event when
    /// a round completes.
    pub fn observe(&mut self, temp_c: f64) -> Option<TdvfsEvent> {
        assert!(temp_c.is_finite(), "temperature sample must be finite");
        self.round_buf.push(temp_c);
        if self.round_buf.len() < self.cfg.samples_per_round {
            return None;
        }
        let avg = self.round_buf.iter().sum::<f64>() / self.round_buf.len() as f64;
        self.round_buf.clear();
        self.on_round_average(avg)
    }

    /// Processes one round-average temperature directly (the hybrid
    /// coordinator reuses the fan controller's round averages).
    pub fn on_round_average(&mut self, avg_c: f64) -> Option<TdvfsEvent> {
        // Track the rise across the confirmation window.
        if self.recent_avgs.len() > self.cfg.consecutive_rounds {
            self.recent_avgs.pop_front();
        }
        let rise = self.recent_avgs.front().map(|&oldest| avg_c - oldest);
        self.recent_avgs.push_back(avg_c);
        self.rounds_since_event = self.rounds_since_event.saturating_add(1);

        if avg_c > self.cfg.threshold_c {
            self.above_rounds += 1;
            self.below_rounds = 0;
            if self.above_rounds >= self.cfg.consecutive_rounds {
                self.above_rounds = 0;
                // Escalate when the previous action has had time to settle
                // AND the temperature is still climbing (or has plateaued
                // dangerously far above the threshold).
                let settled = self.rounds_since_event >= self.cfg.settle_rounds;
                let climbing = rise.is_none_or(|r| r >= self.cfg.rising_threshold_c);
                let emergency = avg_c >= self.cfg.threshold_c + self.cfg.escalation_margin_c;
                if settled && (climbing || emergency) {
                    return self.escalate(avg_c);
                }
            }
        } else if avg_c < self.cfg.threshold_c - self.cfg.hysteresis_c {
            self.below_rounds += 1;
            self.above_rounds = 0;
            if self.below_rounds >= self.cfg.consecutive_rounds {
                self.below_rounds = 0;
                return self.restore();
            }
        } else {
            // Inside the hysteresis band: neither confirmation advances.
            self.above_rounds = 0;
            self.below_rounds = 0;
        }
        None
    }

    /// Confirmed sustained excess: advance the index proportionally to the
    /// excess — but always at least to the next *distinct* mode, because a
    /// confirmed trigger means "scale the frequency down", not "nudge an
    /// index inside the current mode's band". Emits an event when the
    /// mapped frequency changes (i.e. always, unless already at `g_N`).
    fn escalate(&mut self, avg_c: f64) -> Option<TdvfsEvent> {
        let before = self.current_frequency_mhz();
        let excess = avg_c - self.cfg.threshold_c;
        let step = ((self.cfg.controller.gain() * excess).round() as i64).max(1);
        let proportional = self.array.clamp_index(self.index as i64 + step);
        let next_distinct = (self.index + 1..=self.array.len())
            .find(|&j| self.array.mode_at(j) != before)
            .unwrap_or(self.index);
        self.index = proportional.max(next_distinct);
        let after = self.current_frequency_mhz();
        if after != before {
            self.scale_downs += 1;
            self.rounds_since_event = 0;
            Some(TdvfsEvent::ScaleDown(after))
        } else {
            None
        }
    }

    /// Confirmed sustained cool-down: jump back to the original frequency.
    fn restore(&mut self) -> Option<TdvfsEvent> {
        if self.index == 1 {
            return None;
        }
        let before = self.current_frequency_mhz();
        self.index = 1;
        let after = self.current_frequency_mhz();
        if after != before {
            self.restores += 1;
            self.rounds_since_event = 0;
            Some(TdvfsEvent::Restore(after))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREQS: [FreqMhz; 5] = [2400, 2200, 2000, 1800, 1000];

    fn daemon(pp: u32) -> Tdvfs {
        Tdvfs::with_defaults(&FREQS, Policy::new(pp).unwrap())
    }

    /// Feeds `rounds` rounds of a constant temperature; returns emitted events.
    fn feed(d: &mut Tdvfs, temp: f64, rounds: usize) -> Vec<TdvfsEvent> {
        let mut out = Vec::new();
        for _ in 0..rounds * d.config().samples_per_round {
            if let Some(e) = d.observe(temp) {
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn starts_at_original_frequency() {
        let d = daemon(50);
        assert_eq!(d.current_frequency_mhz(), 2400);
        assert_eq!(d.original_frequency_mhz(), 2400);
    }

    #[test]
    fn below_threshold_never_scales() {
        let mut d = daemon(50);
        let events = feed(&mut d, 48.0, 100);
        assert!(events.is_empty());
        assert_eq!(d.current_frequency_mhz(), 2400);
    }

    #[test]
    fn sustained_excess_scales_down() {
        // 58 °C is beyond the 6 °C escalation margin: scale-down fires even
        // though the temperature is flat.
        let mut d = daemon(50);
        let events = feed(&mut d, 58.0, 30);
        assert!(!events.is_empty(), "sustained 58 °C must trigger");
        assert!(matches!(events[0], TdvfsEvent::ScaleDown(f) if f < 2400));
        assert!(d.current_frequency_mhz() < 2400);
        assert!(d.scale_down_count() >= 1);
    }

    #[test]
    fn rising_temperature_above_threshold_scales_down() {
        // A climb through the threshold escalates even below the margin.
        let mut d = daemon(50);
        let mut events = Vec::new();
        for round in 0..60 {
            let temp = (48.0 + 0.15 * f64::from(round)).min(55.0);
            events.extend(feed(&mut d, temp, 1));
        }
        assert!(!events.is_empty(), "rising excess must trigger");
        assert!(d.current_frequency_mhz() < 2400);
    }

    #[test]
    fn moderate_plateau_holds_frequency() {
        // Flat at 53 °C — above threshold but inside the margin, not
        // rising: the daemon holds rather than chasing the threshold
        // through the ladder (the paper's plateau behaviour).
        let mut d = daemon(50);
        let events = feed(&mut d, 53.0, 100);
        assert!(events.is_empty(), "{events:?}");
        assert_eq!(d.current_frequency_mhz(), 2400);
    }

    #[test]
    fn needs_consecutive_rounds_not_spikes() {
        let mut d = daemon(50);
        // Alternate one hot round with one cool round: the consecutive
        // counter never reaches 8, so no event (Figure 8's marked region).
        for _ in 0..50 {
            assert!(feed(&mut d, 54.0, 1).is_empty());
            assert!(feed(&mut d, 48.0, 1).is_empty());
        }
        assert_eq!(d.current_frequency_mhz(), 2400);
    }

    #[test]
    fn escalates_deeper_while_still_hot() {
        let mut d = daemon(50);
        // Heat far beyond the margin keeps escalating toward lower
        // frequencies.
        let events = feed(&mut d, 60.0, 120);
        assert!(events.len() >= 2, "{events:?}");
        let freqs: Vec<FreqMhz> = events.iter().map(|e| e.frequency_mhz()).collect();
        assert!(freqs.windows(2).all(|w| w[1] < w[0]), "monotone descent: {freqs:?}");
    }

    #[test]
    fn restores_original_after_sustained_cooling() {
        let mut d = daemon(50);
        let _ = feed(&mut d, 58.0, 40);
        let reduced = d.current_frequency_mhz();
        assert!(reduced < 2400);
        let events = feed(&mut d, 46.0, 20);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0], TdvfsEvent::Restore(2400), "direct jump to original");
        assert_eq!(d.current_frequency_mhz(), 2400);
        assert_eq!(d.restore_count(), 1);
    }

    #[test]
    fn hysteresis_band_does_not_restore() {
        let mut d = daemon(50);
        let _ = feed(&mut d, 58.0, 40);
        let reduced = d.current_frequency_mhz();
        assert!(reduced < 2400);
        // 50.5 °C is below the 51 °C threshold but inside the 1 °C
        // hysteresis band: no restore.
        let events = feed(&mut d, 50.5, 100);
        assert!(events.is_empty());
        assert_eq!(d.current_frequency_mhz(), reduced);
    }

    #[test]
    fn larger_excess_scales_faster() {
        let mut mild = daemon(50);
        let mut severe = daemon(50);
        let _ = feed(&mut mild, 58.0, 8); // one confirmation at +7 °C
        let _ = feed(&mut severe, 65.0, 8); // one confirmation at +14 °C
        assert!(
            severe.current_frequency_mhz() <= mild.current_frequency_mhz(),
            "severe {} vs mild {}",
            severe.current_frequency_mhz(),
            mild.current_frequency_mhz()
        );
    }

    #[test]
    fn aggressive_policy_reaches_lower_frequency_sooner() {
        let mut agg = daemon(25);
        let mut weak = daemon(75);
        let ea = feed(&mut agg, 58.0, 24);
        let ew = feed(&mut weak, 58.0, 24);
        let fa = agg.current_frequency_mhz();
        let fw = weak.current_frequency_mhz();
        assert!(fa <= fw, "P25 at {fa} MHz vs P75 at {fw} MHz ({ea:?} / {ew:?})");
    }

    #[test]
    fn index_saturates_at_lowest_frequency() {
        let mut d = daemon(25);
        let _ = feed(&mut d, 70.0, 400);
        assert_eq!(d.current_frequency_mhz(), 1000);
        // Further heat produces no more events.
        assert!(feed(&mut d, 70.0, 40).is_empty());
    }

    #[test]
    fn restore_when_already_original_is_silent() {
        let mut d = daemon(50);
        let events = feed(&mut d, 40.0, 50);
        assert!(events.is_empty());
        assert_eq!(d.restore_count(), 0);
    }

    #[test]
    fn event_frequency_accessor() {
        assert_eq!(TdvfsEvent::ScaleDown(2000).frequency_mhz(), 2000);
        assert_eq!(TdvfsEvent::Restore(2400).frequency_mhz(), 2400);
    }

    #[test]
    fn few_transitions_under_realistic_load() {
        // Table 1's headline: tDVFS makes only a handful of transitions.
        // Simulate 240 rounds (~4 min) where temperature rises above
        // threshold, stabilizes (because DVFS works), then cools at the end.
        let mut d = daemon(50);
        let mut events = Vec::new();
        for round in 0..240 {
            let temp = if round < 30 {
                48.0 + f64::from(round) * 0.35 // warm-up climb past threshold
            } else if round < 54 {
                58.0 // hot plateau beyond the margin: scale-downs
            } else if round < 200 {
                50.4 // stabilized inside hysteresis band
            } else {
                46.0 // cooldown: restore
            };
            events.extend(feed(&mut d, temp, 1));
        }
        let total = d.scale_down_count() + d.restore_count();
        assert!(
            (2..=6).contains(&total),
            "expected a handful of transitions, got {total}: {events:?}"
        );
        assert_eq!(d.current_frequency_mhz(), 2400, "restored by the end");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_per_round_rejected() {
        let cfg = TdvfsConfig { samples_per_round: 0, ..Default::default() };
        let _ = Tdvfs::new(&FREQS, Policy::MODERATE, cfg);
    }
}
