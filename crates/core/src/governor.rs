//! CPUSPEED: the utilization-interval governor the paper compares against
//! (§4.3, Table 1, Figure 9; reference \[33\] — Carl Thompson's `cpuspeed`
//! daemon).
//!
//! CPUSPEED knows nothing about temperature: every interval it inspects the
//! CPU utilization accumulated since the last decision and
//!
//! * jumps straight to the **maximum** frequency when utilization is above
//!   the up-threshold (so compute phases run at full speed), and
//! * steps **down one** frequency when utilization is below the
//!   down-threshold (idle/communication phases).
//!
//! On phase-alternating MPI applications this produces a down/up transition
//! pair around every communication phase — the 101–139 transitions per run
//! Table 1 reports — without ever stabilizing temperature (Figure 9).

use serde::{Deserialize, Serialize};

use crate::actuator::FreqMhz;

/// CPUSPEED tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpeedConfig {
    /// Decision interval in seconds.
    pub interval_s: f64,
    /// Utilization at or above which the governor jumps to maximum speed.
    pub up_threshold: f64,
    /// Utilization at or below which the governor steps down one speed.
    pub down_threshold: f64,
}

impl Default for CpuSpeedConfig {
    fn default() -> Self {
        Self { interval_s: 1.0, up_threshold: 0.85, down_threshold: 0.50 }
    }
}

impl CpuSpeedConfig {
    /// Validates the configuration: positive interval, thresholds within
    /// `[0, 1]` and not inverted. Returns an error so scenario files
    /// carrying a bad governor block are rejected as data errors.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::ConfigError;
        // `<= 0.0` alone would let NaN through; check it explicitly.
        if self.interval_s <= 0.0 || self.interval_s.is_nan() {
            return Err(ConfigError::new("interval must be positive"));
        }
        if !(0.0..=1.0).contains(&self.up_threshold) || !(0.0..=1.0).contains(&self.down_threshold)
        {
            return Err(ConfigError::new("thresholds must be within [0, 1]"));
        }
        if self.down_threshold >= self.up_threshold {
            return Err(ConfigError::new("down threshold must be below up threshold"));
        }
        Ok(())
    }
}

/// The CPUSPEED governor.
#[derive(Debug, Clone)]
pub struct CpuSpeedGovernor {
    cfg: CpuSpeedConfig,
    /// Frequencies in descending order; index 0 is the fastest.
    freqs: Vec<FreqMhz>,
    current: usize,
    elapsed_s: f64,
    util_time: f64,
    transitions: u64,
}

impl CpuSpeedGovernor {
    /// Creates the governor at the highest frequency.
    pub fn new(frequencies_desc_mhz: &[FreqMhz], cfg: CpuSpeedConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        let freqs = crate::actuator::dvfs_mode_set(frequencies_desc_mhz);
        Self { cfg, freqs, current: 0, elapsed_s: 0.0, util_time: 0.0, transitions: 0 }
    }

    /// Creates the governor with default tuning.
    pub fn with_defaults(frequencies_desc_mhz: &[FreqMhz]) -> Self {
        Self::new(frequencies_desc_mhz, CpuSpeedConfig::default())
    }

    /// The frequency the governor currently requests.
    pub fn current_frequency_mhz(&self) -> FreqMhz {
        self.freqs[self.current]
    }

    /// Number of frequency transitions issued so far.
    pub fn transition_count(&self) -> u64 {
        self.transitions
    }

    /// Accumulates `dt_s` seconds at the given utilization; when a decision
    /// interval completes, returns `Some(freq)` if the governor wants a
    /// *different* frequency.
    pub fn observe(&mut self, dt_s: f64, utilization: f64) -> Option<FreqMhz> {
        assert!(dt_s > 0.0, "time step must be positive");
        let u = utilization.clamp(0.0, 1.0);
        self.elapsed_s += dt_s;
        self.util_time += u * dt_s;
        if self.elapsed_s + 1e-9 < self.cfg.interval_s {
            return None;
        }
        let avg_util = self.util_time / self.elapsed_s;
        self.elapsed_s = 0.0;
        self.util_time = 0.0;

        let target = if avg_util >= self.cfg.up_threshold {
            0 // jump straight to max speed
        } else if avg_util <= self.cfg.down_threshold {
            (self.current + 1).min(self.freqs.len() - 1) // step down one
        } else {
            self.current
        };
        if target != self.current {
            self.current = target;
            self.transitions += 1;
            Some(self.freqs[target])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREQS: [FreqMhz; 5] = [2400, 2200, 2000, 1800, 1000];

    fn gov() -> CpuSpeedGovernor {
        CpuSpeedGovernor::with_defaults(&FREQS)
    }

    /// Feeds whole intervals of constant utilization.
    fn feed(g: &mut CpuSpeedGovernor, util: f64, intervals: usize) -> Vec<FreqMhz> {
        let mut out = Vec::new();
        for _ in 0..intervals * 4 {
            if let Some(f) = g.observe(0.25, util) {
                out.push(f);
            }
        }
        out
    }

    #[test]
    fn busy_cpu_stays_at_max() {
        let mut g = gov();
        assert!(feed(&mut g, 0.95, 20).is_empty());
        assert_eq!(g.current_frequency_mhz(), 2400);
        assert_eq!(g.transition_count(), 0);
    }

    #[test]
    fn idle_cpu_steps_down_one_per_interval() {
        let mut g = gov();
        let changes = feed(&mut g, 0.1, 3);
        assert_eq!(changes, vec![2200, 2000, 1800]);
    }

    #[test]
    fn idle_cpu_saturates_at_lowest() {
        let mut g = gov();
        let _ = feed(&mut g, 0.1, 20);
        assert_eq!(g.current_frequency_mhz(), 1000);
        assert!(feed(&mut g, 0.1, 5).is_empty(), "no transitions once at the floor");
    }

    #[test]
    fn busy_after_idle_jumps_straight_to_max() {
        let mut g = gov();
        let _ = feed(&mut g, 0.1, 4); // down to 1000
        assert_eq!(g.current_frequency_mhz(), 1000);
        let changes = feed(&mut g, 0.95, 1);
        assert_eq!(changes, vec![2400], "jump, not step-wise climb");
    }

    #[test]
    fn mid_band_utilization_holds() {
        let mut g = gov();
        let _ = feed(&mut g, 0.1, 2); // down to 2000
        assert!(feed(&mut g, 0.7, 10).is_empty(), "0.5 < u < 0.85 holds current speed");
        assert_eq!(g.current_frequency_mhz(), 2000);
    }

    #[test]
    fn phase_alternation_produces_transition_pairs() {
        // An MPI-like pattern: 3 busy intervals, 1 idle interval, repeated.
        // Each idle interval costs one step-down and the next busy interval
        // one jump-up ⇒ 2 transitions per cycle (the very first busy block
        // starts at max, and the final idle has no following busy block, so
        // 25 cycles yield 1 + 24·2 = 49).
        let mut g = gov();
        for _ in 0..25 {
            let _ = feed(&mut g, 0.95, 3);
            let _ = feed(&mut g, 0.2, 1);
        }
        assert_eq!(g.transition_count(), 49);
    }

    #[test]
    fn averages_within_interval() {
        let mut g = gov();
        // Half the interval at 1.0, half at 0.0 ⇒ average 0.5 ≤ down
        // threshold ⇒ step down.
        let mut changed = None;
        for i in 0..4 {
            let u = if i < 2 { 1.0 } else { 0.0 };
            changed = g.observe(0.25, u).or(changed);
        }
        assert_eq!(changed, Some(2200));
    }

    #[test]
    fn transition_count_accumulates() {
        let mut g = gov();
        let _ = feed(&mut g, 0.1, 2);
        let _ = feed(&mut g, 0.95, 1);
        assert_eq!(g.transition_count(), 3);
    }

    #[test]
    #[should_panic(expected = "down threshold")]
    fn inverted_thresholds_rejected() {
        let cfg = CpuSpeedConfig { up_threshold: 0.4, down_threshold: 0.6, ..Default::default() };
        let _ = CpuSpeedGovernor::new(&FREQS, cfg);
    }

    #[test]
    fn utilization_clamped() {
        let mut g = gov();
        // Absurd inputs are clamped rather than corrupting the average.
        for _ in 0..4 {
            let _ = g.observe(0.25, 7.0);
        }
        assert_eq!(g.current_frequency_mhz(), 2400);
    }
}
