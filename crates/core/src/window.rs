//! The two-level, history-based temperature window (paper §3.2.1, Figure 3).
//!
//! **Level one** is a small array (4 entries in the paper) of the most recent
//! raw temperature samples. When it fills, the controller computes the
//! difference between the sum of the second half and the sum of the first
//! half — `Δt_l1` — which is large for *sudden* sustained changes but
//! averages out zero-mean *jitter*. The level-one array is then cleared for
//! the next round.
//!
//! **Level two** is a fixed-size FIFO (5 entries in the paper) of the
//! level-one averages. The difference between its rear (newest) and front
//! (oldest) entries — `Δt_l2` — tracks *gradual* trends across a longer
//! horizon.
//!
//! Window sizing (paper §3.2.1): too small a level-one window makes the
//! controller mistake jitter for sudden behaviour; too large a window makes
//! it sluggish. The paper found 4 entries sufficient at 4 samples/second,
//! giving one window update per second.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Window geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// Level-one array length (paper: 4). Must be an even number ≥ 2 so the
    /// two half-sums are balanced.
    pub l1_len: usize,
    /// Level-two FIFO length (paper: 5). Must be ≥ 2 for a front/rear delta.
    pub l2_len: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self { l1_len: 4, l2_len: 5 }
    }
}

impl WindowConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    /// Returns an error on an odd or too-small level-one length, or a
    /// too-small level-two length.
    pub fn validate(self) -> Result<(), crate::config::ConfigError> {
        if self.l1_len < 2 {
            return Err(crate::config::ConfigError::new(
                "level-one window needs at least 2 entries",
            ));
        }
        if !self.l1_len.is_multiple_of(2) {
            return Err(crate::config::ConfigError::new("level-one window length must be even"));
        }
        if self.l2_len < 2 {
            return Err(crate::config::ConfigError::new(
                "level-two window needs at least 2 entries",
            ));
        }
        Ok(())
    }
}

/// The result of one completed level-one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowUpdate {
    /// `Δt_l1`: sum of the second half of the level-one window minus the sum
    /// of the first half. Reacts to sudden sustained changes; zero-mean for
    /// jitter.
    pub l1_delta: f64,
    /// `Δt_l2`: rear minus front of the level-two FIFO, or `None` until the
    /// FIFO holds at least two averages. Reacts to gradual trends.
    pub l2_delta: Option<f64>,
    /// Average of the completed level-one window (the value enqueued into
    /// level two).
    pub l1_average: f64,
}

/// The two-level temperature window.
///
/// ```
/// use unitherm_core::window::TwoLevelWindow;
///
/// let mut w = TwoLevelWindow::default(); // the paper's 4/5 geometry
/// // Three samples buffer silently; the fourth completes a round.
/// assert!(w.push(45.0).is_none());
/// assert!(w.push(45.0).is_none());
/// assert!(w.push(51.0).is_none());
/// let update = w.push(51.0).unwrap();
/// // Δt_l1 = (51 + 51) − (45 + 45): a sudden +6 °C step seen as +12.
/// assert_eq!(update.l1_delta, 12.0);
/// assert_eq!(update.l1_average, 48.0);
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelWindow {
    cfg: WindowConfig,
    l1: Vec<f64>,
    l2: VecDeque<f64>,
    rounds: u64,
}

impl Default for TwoLevelWindow {
    fn default() -> Self {
        Self::new(WindowConfig::default())
    }
}

impl TwoLevelWindow {
    /// Creates an empty window.
    pub fn new(cfg: WindowConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        Self {
            cfg,
            l1: Vec::with_capacity(cfg.l1_len),
            l2: VecDeque::with_capacity(cfg.l2_len),
            rounds: 0,
        }
    }

    /// Geometry of this window.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Number of completed level-one rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of samples currently buffered in level one.
    pub fn l1_fill(&self) -> usize {
        self.l1.len()
    }

    /// Current level-two contents, oldest first.
    pub fn l2_contents(&self) -> impl Iterator<Item = f64> + '_ {
        self.l2.iter().copied()
    }

    /// Pushes one temperature sample. Returns a [`WindowUpdate`] when the
    /// sample completes a level-one round, `None` otherwise.
    pub fn push(&mut self, temp_c: f64) -> Option<WindowUpdate> {
        assert!(temp_c.is_finite(), "temperature sample must be finite");
        self.l1.push(temp_c);
        if self.l1.len() < self.cfg.l1_len {
            return None;
        }

        let half = self.cfg.l1_len / 2;
        let first: f64 = self.l1[..half].iter().sum();
        let second: f64 = self.l1[half..].iter().sum();
        let l1_delta = second - first;
        let l1_average = (first + second) / self.cfg.l1_len as f64;

        // Enqueue the round average into the level-two FIFO.
        if self.l2.len() == self.cfg.l2_len {
            self.l2.pop_front();
        }
        self.l2.push_back(l1_average);

        let l2_delta = if self.l2.len() >= 2 {
            Some(self.l2.back().expect("non-empty") - self.l2.front().expect("non-empty"))
        } else {
            None
        };

        self.l1.clear();
        self.rounds += 1;
        Some(WindowUpdate { l1_delta, l2_delta, l1_average })
    }

    /// Clears both levels (used when a controller is re-targeted).
    pub fn reset(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.rounds = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pushes samples; returns the updates produced.
    fn feed(w: &mut TwoLevelWindow, samples: &[f64]) -> Vec<WindowUpdate> {
        samples.iter().filter_map(|&s| w.push(s)).collect()
    }

    #[test]
    fn update_fires_only_when_l1_full() {
        let mut w = TwoLevelWindow::default();
        assert!(w.push(40.0).is_none());
        assert!(w.push(40.0).is_none());
        assert!(w.push(40.0).is_none());
        assert_eq!(w.l1_fill(), 3);
        let u = w.push(40.0).expect("fourth sample completes the round");
        assert_eq!(u.l1_average, 40.0);
        assert_eq!(u.l1_delta, 0.0);
        assert_eq!(w.l1_fill(), 0, "level one cleared after the round");
        assert_eq!(w.rounds(), 1);
    }

    #[test]
    fn sudden_rise_gives_large_positive_l1_delta() {
        let mut w = TwoLevelWindow::default();
        // Two cool samples then two hot ones: Δ = (46+46) − (40+40) = 12.
        let u = feed(&mut w, &[40.0, 40.0, 46.0, 46.0]);
        assert_eq!(u[0].l1_delta, 12.0);
        assert_eq!(u[0].l1_average, 43.0);
    }

    #[test]
    fn sudden_drop_gives_negative_l1_delta() {
        let mut w = TwoLevelWindow::default();
        let u = feed(&mut w, &[50.0, 50.0, 44.0, 44.0]);
        assert_eq!(u[0].l1_delta, -12.0);
    }

    #[test]
    fn symmetric_jitter_cancels_in_l1_delta() {
        let mut w = TwoLevelWindow::default();
        // Alternating spikes: each half contains one high and one low.
        let u = feed(&mut w, &[45.0, 47.0, 45.0, 47.0]);
        assert_eq!(u[0].l1_delta, 0.0, "alternating jitter must cancel");
    }

    #[test]
    fn gradual_ramp_accumulates_in_l2() {
        // 0.1 °C per sample, 4 samples per round ⇒ round averages rise by
        // 0.4 °C per round; after 5 rounds Δt_l2 = 4 rounds × 0.4 = 1.6.
        let mut w = TwoLevelWindow::default();
        let samples: Vec<f64> = (0..20).map(|i| 40.0 + 0.1 * i as f64).collect();
        let updates = feed(&mut w, &samples);
        assert_eq!(updates.len(), 5);
        let last = updates.last().unwrap();
        assert!((last.l2_delta.unwrap() - 1.6).abs() < 1e-9);
        // Per-round l1 delta for the same ramp: (s3+s4)−(s1+s2) = 0.4.
        assert!((last.l1_delta - 0.4).abs() < 1e-9);
    }

    #[test]
    fn l2_delta_none_until_two_rounds() {
        let mut w = TwoLevelWindow::default();
        let u1 = feed(&mut w, &[40.0; 4]);
        assert_eq!(u1[0].l2_delta, None);
        let u2 = feed(&mut w, &[41.0; 4]);
        assert_eq!(u2[0].l2_delta, Some(1.0));
    }

    #[test]
    fn l2_fifo_evicts_oldest() {
        let mut w = TwoLevelWindow::default();
        // Six rounds of constant values 1..=6: after round 6 the FIFO holds
        // rounds 2..=6, so Δt_l2 = 6 − 2 = 4.
        for v in 1..=6 {
            let _ = feed(&mut w, &[f64::from(v); 4]);
        }
        assert_eq!(w.l2_contents().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0, 5.0, 6.0]);
        let u = feed(&mut w, &[7.0; 4]);
        assert_eq!(u[0].l2_delta, Some(7.0 - 3.0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut w = TwoLevelWindow::default();
        let _ = feed(&mut w, &[40.0; 10]);
        w.reset();
        assert_eq!(w.rounds(), 0);
        assert_eq!(w.l1_fill(), 0);
        assert_eq!(w.l2_contents().count(), 0);
    }

    #[test]
    fn custom_geometry() {
        let mut w = TwoLevelWindow::new(WindowConfig { l1_len: 8, l2_len: 3 });
        let samples: Vec<f64> = (0..8).map(f64::from).collect();
        let u = feed(&mut w, &samples);
        // halves: sum(0..4)=6, sum(4..8)=22 ⇒ Δ=16.
        assert_eq!(u[0].l1_delta, 16.0);
        assert_eq!(u[0].l1_average, 3.5);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_l1_rejected() {
        let _ = TwoLevelWindow::new(WindowConfig { l1_len: 3, l2_len: 5 });
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_l2_rejected() {
        let _ = TwoLevelWindow::new(WindowConfig { l1_len: 4, l2_len: 1 });
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_sample_rejected() {
        let mut w = TwoLevelWindow::default();
        let _ = w.push(f64::NAN);
    }

    #[test]
    fn default_matches_paper_sizes() {
        let w = TwoLevelWindow::default();
        assert_eq!(w.config().l1_len, 4);
        assert_eq!(w.config().l2_len, 5);
    }
}
