//! Coordinated fan + DVFS control (paper §4.4).
//!
//! The hybrid controller runs the dynamic fan controller and the tDVFS
//! daemon side by side under **one** `P_p`:
//!
//! * the fan absorbs thermal load continuously through the mode-index rule;
//! * tDVFS engages only when the (possibly capped) fan cannot hold the
//!   average temperature under the trigger threshold.
//!
//! The coordination the paper observes in Figure 10 — smaller `P_p` ⇒ more
//! aggressive fan ⇒ *later* tDVFS trigger ⇒ less in-band performance loss —
//! emerges from the shared policy rather than explicit hand-off logic,
//! exactly as in the paper's design.

use crate::actuator::{FanDuty, FreqMhz};
use crate::control_array::Policy;
use crate::controller::{ControllerConfig, Decision};
use crate::fan_control::DynamicFanController;
use crate::tdvfs::{Tdvfs, TdvfsConfig, TdvfsEvent};

/// Combined decision for one temperature sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HybridDecision {
    /// Fan duty change, if the fan controller moved.
    pub fan: Option<Decision<FanDuty>>,
    /// Frequency change, if tDVFS fired.
    pub dvfs: Option<TdvfsEvent>,
}

impl HybridDecision {
    /// True when neither mechanism acted.
    pub fn is_empty(&self) -> bool {
        self.fan.is_none() && self.dvfs.is_none()
    }
}

/// The unified in-band + out-of-band controller.
#[derive(Debug, Clone)]
pub struct HybridController {
    fan: DynamicFanController,
    tdvfs: Tdvfs,
    policy: Policy,
}

impl HybridController {
    /// Creates the hybrid controller: one `P_p` for both mechanisms, a fan
    /// duty cap, and the DVFS frequency ladder (descending MHz).
    pub fn new(
        policy: Policy,
        max_duty: FanDuty,
        frequencies_desc_mhz: &[FreqMhz],
        controller_cfg: ControllerConfig,
        tdvfs_cfg: TdvfsConfig,
    ) -> Self {
        let fan = DynamicFanController::new(policy, max_duty, controller_cfg);
        let tdvfs = Tdvfs::new(frequencies_desc_mhz, policy, tdvfs_cfg);
        Self { fan, tdvfs, policy }
    }

    /// Creates the hybrid controller with default tuning (51 °C threshold).
    pub fn with_defaults(
        policy: Policy,
        max_duty: FanDuty,
        frequencies_desc_mhz: &[FreqMhz],
    ) -> Self {
        Self::new(
            policy,
            max_duty,
            frequencies_desc_mhz,
            ControllerConfig::default(),
            TdvfsConfig::default(),
        )
    }

    /// The shared policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The fan side.
    pub fn fan(&self) -> &DynamicFanController {
        &self.fan
    }

    /// The DVFS side.
    pub fn tdvfs(&self) -> &Tdvfs {
        &self.tdvfs
    }

    /// Currently commanded fan duty.
    pub fn current_duty(&self) -> FanDuty {
        self.fan.current_duty()
    }

    /// Currently requested CPU frequency.
    pub fn current_frequency_mhz(&self) -> FreqMhz {
        self.tdvfs.current_frequency_mhz()
    }

    /// Feeds one temperature sample to both mechanisms.
    pub fn observe(&mut self, temp_c: f64) -> HybridDecision {
        HybridDecision { fan: self.fan.observe(temp_c), dvfs: self.tdvfs.observe(temp_c) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREQS: [FreqMhz; 5] = [2400, 2200, 2000, 1800, 1000];

    fn hybrid(pp: u32, max_duty: FanDuty) -> HybridController {
        HybridController::with_defaults(Policy::new(pp).unwrap(), max_duty, &FREQS)
    }

    /// Feeds a constant temperature for `seconds` at 4 Hz; returns the
    /// emitted DVFS events.
    fn feed(h: &mut HybridController, temp: f64, seconds: usize) -> Vec<TdvfsEvent> {
        let mut out = Vec::new();
        for _ in 0..seconds * 4 {
            let d = h.observe(temp);
            if let Some(e) = d.dvfs {
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn cool_workload_engages_neither() {
        let mut h = hybrid(50, 100);
        let events = feed(&mut h, 45.0, 60);
        assert!(events.is_empty());
        assert_eq!(h.current_frequency_mhz(), 2400);
        assert_eq!(h.current_duty(), 1);
    }

    #[test]
    fn heating_engages_fan_before_dvfs() {
        let mut h = hybrid(50, 100);
        // Ramp toward 50 °C (below the 51 °C threshold): fan reacts,
        // DVFS must not.
        for i in 0..240 {
            let t = (42.0 + 0.1 * f64::from(i)).min(50.0);
            let _ = h.observe(t);
        }
        assert!(h.current_duty() > 1, "fan engaged");
        assert_eq!(h.current_frequency_mhz(), 2400, "DVFS untouched below threshold");
    }

    #[test]
    fn sustained_heat_above_threshold_engages_dvfs() {
        let mut h = hybrid(50, 25);
        let events = feed(&mut h, 58.0, 60);
        assert!(!events.is_empty(), "capped fan cannot hold 58 °C; DVFS must act");
        assert!(h.current_frequency_mhz() < 2400);
    }

    #[test]
    fn shared_policy_reaches_both_sides() {
        let h = hybrid(25, 100);
        assert_eq!(h.policy().value(), 25);
        assert_eq!(h.fan().policy().value(), 25);
        // Aggressive array: most of the DVFS array pinned at the lowest
        // frequency.
        assert_eq!(h.tdvfs().config().threshold_c, 51.0);
    }

    #[test]
    fn decision_reports_both_channels() {
        let mut h = hybrid(50, 100);
        // Sudden jump from cool to hot: fan fires on the first completed
        // round; DVFS needs sustained confirmation, so not yet.
        h.observe(45.0);
        h.observe(45.0);
        h.observe(53.0);
        let d = h.observe(53.0);
        assert!(d.fan.is_some());
        assert!(d.dvfs.is_none());
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_decision_detected() {
        let mut h = hybrid(50, 100);
        let d = h.observe(45.0); // first sample of a round: nothing yet
        assert!(d.is_empty());
    }
}
