//! Dynamic out-of-band fan control (paper §4.2).
//!
//! A thin, fan-specific wrapper over the [`UnifiedController`]: the mode set
//! is the paper's discretization of continuous fan speed into distinct duty
//! cycles from 1 % up to a configurable maximum-allowed PWM duty (the knob
//! Figures 6, 7, 9 and 10 use to emulate fans of different capability).

use crate::actuator::{fan_mode_set, FanDuty};
use crate::control_array::Policy;
use crate::controller::{ControllerConfig, Decision, UnifiedController};

/// The dynamic, history-based fan-speed controller.
///
/// ```
/// use unitherm_core::control_array::Policy;
/// use unitherm_core::fan_control::DynamicFanController;
///
/// let mut fan = DynamicFanController::with_defaults(Policy::MODERATE, 100);
/// assert_eq!(fan.current_duty(), 1);
/// // A sudden +6 °C step inside one window round raises the duty.
/// for temp in [45.0, 45.0, 51.0, 51.0] {
///     let _ = fan.observe(temp);
/// }
/// assert!(fan.current_duty() > 40);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicFanController {
    inner: UnifiedController<FanDuty>,
    max_duty: FanDuty,
    policy: Policy,
}

impl DynamicFanController {
    /// Creates a fan controller with the given policy and maximum allowed
    /// duty (100 for an uncapped fan).
    pub fn new(policy: Policy, max_duty: FanDuty, cfg: ControllerConfig) -> Self {
        let modes = fan_mode_set(max_duty);
        Self {
            inner: UnifiedController::new(&modes, policy, cfg),
            max_duty: *modes.last().expect("non-empty"),
            policy,
        }
    }

    /// Creates a controller with the default configuration (N = 100,
    /// t ∈ [38, 82] °C, 4/5 window).
    pub fn with_defaults(policy: Policy, max_duty: FanDuty) -> Self {
        Self::new(policy, max_duty, ControllerConfig::default())
    }

    /// The policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The maximum allowed duty cycle.
    pub fn max_duty(&self) -> FanDuty {
        self.max_duty
    }

    /// The duty the controller currently commands.
    pub fn current_duty(&self) -> FanDuty {
        self.inner.current_mode()
    }

    /// Feeds one temperature sample; returns a new duty decision when the
    /// window completes a round and moves the index.
    pub fn observe(&mut self, temp_c: f64) -> Option<Decision<FanDuty>> {
        self.inner.observe(temp_c)
    }

    /// Changes the policy at runtime (rebuilds the control array in place).
    pub fn set_policy(&mut self, policy: Policy) {
        let modes = fan_mode_set(self.max_duty);
        self.inner.set_policy(&modes, policy);
        self.policy = policy;
    }

    /// Access to the generic controller (ablations, stats).
    pub fn controller(&self) -> &UnifiedController<FanDuty> {
        &self.inner
    }

    /// Mutable access to the generic controller (ablations).
    pub fn controller_mut(&mut self) -> &mut UnifiedController<FanDuty> {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the controller with a synthetic heating curve and returns the
    /// final duty.
    fn drive_heating(ctl: &mut DynamicFanController) -> FanDuty {
        // Temperature climbs 0.5 °C per sample from 40 to 60 then holds.
        for i in 0..200 {
            let t = (40.0 + 0.5 * f64::from(i)).min(60.0);
            let _ = ctl.observe(t);
        }
        ctl.current_duty()
    }

    #[test]
    fn heating_drives_duty_up() {
        let mut ctl = DynamicFanController::with_defaults(Policy::MODERATE, 100);
        assert_eq!(ctl.current_duty(), 1);
        let final_duty = drive_heating(&mut ctl);
        assert!(final_duty > 50, "duty after sustained heating: {final_duty}");
    }

    #[test]
    fn cooling_drives_duty_back_down() {
        let mut ctl = DynamicFanController::with_defaults(Policy::MODERATE, 100);
        let high = drive_heating(&mut ctl);
        for i in 0..200 {
            let t = (60.0 - 0.5 * f64::from(i)).max(42.0);
            let _ = ctl.observe(t);
        }
        assert!(ctl.current_duty() < high, "{} < {high}", ctl.current_duty());
    }

    #[test]
    fn respects_max_duty_cap() {
        let mut ctl = DynamicFanController::with_defaults(Policy::AGGRESSIVE, 25);
        let final_duty = drive_heating(&mut ctl);
        assert!(final_duty <= 25);
        assert_eq!(ctl.max_duty(), 25);
    }

    #[test]
    fn aggressive_policy_cools_harder_than_weak() {
        let mut agg = DynamicFanController::with_defaults(Policy::AGGRESSIVE, 100);
        let mut weak = DynamicFanController::with_defaults(Policy::WEAK, 100);
        let da = drive_heating(&mut agg);
        let dw = drive_heating(&mut weak);
        assert!(da >= dw, "aggressive duty {da} vs weak {dw}");
    }

    #[test]
    fn set_policy_switches_array() {
        let mut ctl = DynamicFanController::with_defaults(Policy::WEAK, 100);
        let _ = drive_heating(&mut ctl);
        let weak_duty = ctl.current_duty();
        ctl.set_policy(Policy::AGGRESSIVE);
        assert_eq!(ctl.policy(), Policy::AGGRESSIVE);
        assert!(ctl.current_duty() >= weak_duty, "same index, hotter array");
    }

    #[test]
    fn jitter_does_not_move_duty() {
        let mut ctl = DynamicFanController::with_defaults(Policy::MODERATE, 100);
        for i in 0..400 {
            let t = 45.0 + if i % 2 == 0 { 0.3 } else { -0.3 };
            let _ = ctl.observe(t);
        }
        assert_eq!(ctl.current_duty(), 1, "pure jitter must not ratchet the fan");
    }
}
