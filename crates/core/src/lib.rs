#![warn(missing_docs)]

//! Unified in-band and out-of-band dynamic thermal control.
//!
//! This crate implements the contribution of *Li, Ge, Cameron — "System-level,
//! Unified In-band and Out-of-band Dynamic Thermal Control", ICPP 2010*:
//!
//! * [`window`] — the two-level, history-based temperature window (§3.2.1):
//!   a small level-one array that reacts to *sudden* changes while averaging
//!   out *jitter*, feeding a level-two FIFO of averages that tracks *gradual*
//!   trends;
//! * [`control_array`] — the thermal control array (§3.2.2): a unified,
//!   effectiveness-ordered array of modes per technique, filled from a single
//!   user policy parameter `P_p ∈ [1, 100]` via the paper's Eq. (1);
//! * [`controller`] — the mode-index update rule `i' = i + c·Δt` with
//!   `c = (N−1)/(t_max − t_min)`, level-1 delta first and level-2 as the
//!   fallback;
//! * [`classify`] — the §3.1 workload thermal-behaviour taxonomy (sudden /
//!   gradual / jitter);
//! * [`fan_control`] — the dynamic out-of-band fan controller (§4.2);
//! * [`tdvfs`] — the threshold-triggered in-band tDVFS daemon (§4.3);
//! * [`hybrid`] — the coordinated fan + DVFS controller (§4.4);
//! * [`governor`] — the CPUSPEED utilization governor the paper compares
//!   against;
//! * [`baseline`] — traditional static fan-curve control (Figure 1) and
//!   constant-speed control;
//! * [`acpi`] — ACPI sleep states as a third control technique, showing the
//!   control array generalizes beyond fans and DVFS (§3.2.2 mentions sleep
//!   states explicitly);
//! * [`feedforward`] — the paper's §5 future work implemented: hardware-
//!   counter (utilization) feedforward that pre-positions the fan before a
//!   load step reaches the temperature sensor;
//! * [`failsafe`] — a production watchdog that forces maximum cooling when
//!   the sensor path goes dark or a reading crosses the panic line;
//! * [`control_plane`] — the unified daemon pipeline: every technique above
//!   wrapped as a [`control_plane::ControlDaemon`], ordered per §4.4's
//!   coordination and supervised by the failsafe, built from a serializable
//!   [`control_plane::SchemeSpec`] by its single `build()` factory;
//! * [`config`] — the shared configuration-validation error type.
//!
//! The crate is hardware-agnostic: controllers consume temperature samples
//! and emit mode decisions through the [`actuator`] traits. Bindings to the
//! simulated platform live in `unitherm-hwmon`; nothing here depends on the
//! simulator.

pub mod acpi;
pub mod actuator;
pub mod baseline;
pub mod classify;
pub mod config;
pub mod control_array;
pub mod control_plane;
pub mod controller;
pub mod failsafe;
pub mod fan_control;
pub mod feedforward;
pub mod governor;
pub mod hybrid;
pub mod tdvfs;
pub mod window;

pub use actuator::{Actuator, FanDuty, FreqMhz};
pub use classify::{BehaviorClassifier, ThermalBehavior};
pub use config::ConfigError;
pub use control_array::{Policy, PolicyError, ThermalControlArray};
pub use control_plane::{
    Actuators, BuildContext, ControlDaemon, ControlPlane, DaemonEvent, DvfsScheme, FanBinding,
    FanScheme, PlaneOutcome, SchemeSpec, SensorSample,
};
pub use controller::{ControllerConfig, Decision, DecisionLevel, UnifiedController};
pub use failsafe::{Failsafe, FailsafeAction, FailsafeConfig, FailsafeReason};
pub use fan_control::DynamicFanController;
pub use feedforward::{FeedforwardConfig, FeedforwardFanController, UtilizationFeedforward};
pub use governor::{CpuSpeedConfig, CpuSpeedGovernor};
pub use hybrid::{HybridController, HybridDecision};
pub use tdvfs::{Tdvfs, TdvfsConfig, TdvfsEvent};
pub use window::{TwoLevelWindow, WindowConfig, WindowUpdate};
