//! Failsafe watchdog: last-line protection when the control loop itself is
//! compromised.
//!
//! The paper's controllers assume a working sensor path. In production that
//! assumption fails: lm-sensors polls time out, i2c buses wedge, readings
//! go stale. A daemon steering on a stale reading holds the fan at whatever
//! duty the machine had when the sensor died — under load, that is a slow
//! march into the hardware throttle and shutdown thresholds.
//!
//! The [`Failsafe`] watchdog sits beside the normal controllers and
//! engages maximum cooling (full fan + lowest frequency) when either
//!
//! * the sensor has not produced a fresh reading for
//!   [`FailsafeConfig::max_stale_samples`] samples, or
//! * a fresh reading exceeds [`FailsafeConfig::panic_temp_c`] — a software
//!   panic line placed *below* the hardware throttle point, so the
//!   graceful path wins the race.
//!
//! It releases (returning control to the normal daemons) only when fresh
//! readings return *and* the temperature has fallen below
//! [`FailsafeConfig::release_temp_c`].

use serde::{Deserialize, Serialize};

/// Failsafe tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailsafeConfig {
    /// Consecutive failed sensor samples before engaging (at the paper's
    /// 4 Hz polling, the default 20 ≈ 5 s of blindness).
    pub max_stale_samples: u32,
    /// Fresh-reading temperature at which the failsafe engages, °C. Keep
    /// below the hardware throttle (70 °C on the reproduced platform).
    pub panic_temp_c: f64,
    /// Temperature below which an engaged failsafe releases, °C.
    pub release_temp_c: f64,
}

impl Default for FailsafeConfig {
    fn default() -> Self {
        Self { max_stale_samples: 20, panic_temp_c: 65.0, release_temp_c: 55.0 }
    }
}

impl FailsafeConfig {
    /// Validates the configuration: the release temperature must sit below
    /// the panic temperature and the stale budget must be at least 1.
    /// Returns an error (rather than panicking) so scenario files carrying
    /// a bad failsafe block are rejected as data errors.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::ConfigError;
        if self.max_stale_samples < 1 {
            return Err(ConfigError::new("need a stale budget of at least 1 sample"));
        }
        if self.release_temp_c >= self.panic_temp_c {
            return Err(ConfigError::new("release temperature must be below panic temperature"));
        }
        Ok(())
    }
}

/// Why the failsafe engaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailsafeReason {
    /// The sensor path produced no fresh reading for too long.
    StaleSensor,
    /// A fresh reading crossed the panic line.
    OverTemperature,
}

/// Action requested of the platform glue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailsafeAction {
    /// Force maximum cooling: full fan duty and the lowest frequency.
    Engage(FailsafeReason),
    /// Conditions cleared: return control to the normal daemons.
    Release,
}

/// The watchdog.
///
/// ```
/// use unitherm_core::failsafe::{Failsafe, FailsafeAction, FailsafeReason};
///
/// let mut fs = Failsafe::with_defaults();
/// // 20 consecutive failed polls (5 s at 4 Hz) engage maximum cooling.
/// let mut action = None;
/// for _ in 0..20 {
///     action = fs.observe(None).or(action);
/// }
/// assert_eq!(action, Some(FailsafeAction::Engage(FailsafeReason::StaleSensor)));
/// // A fresh, cool reading releases control back to the daemons.
/// assert_eq!(fs.observe(Some(45.0)), Some(FailsafeAction::Release));
/// ```
#[derive(Debug, Clone)]
pub struct Failsafe {
    cfg: FailsafeConfig,
    stale: u32,
    engaged: Option<FailsafeReason>,
    engagements: u64,
}

impl Failsafe {
    /// Creates an armed (not engaged) watchdog.
    pub fn new(cfg: FailsafeConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        Self { cfg, stale: 0, engaged: None, engagements: 0 }
    }

    /// Creates with default tuning.
    pub fn with_defaults() -> Self {
        Self::new(FailsafeConfig::default())
    }

    /// True while maximum cooling is being forced.
    pub fn is_engaged(&self) -> bool {
        self.engaged.is_some()
    }

    /// The reason for the current engagement, if any.
    pub fn engaged_reason(&self) -> Option<FailsafeReason> {
        self.engaged
    }

    /// Number of engagements so far.
    pub fn engagement_count(&self) -> u64 {
        self.engagements
    }

    /// Feeds one sample-period observation: `Some(temp)` for a fresh
    /// reading, `None` when the sensor did not respond. Returns an action
    /// when the platform must change state.
    pub fn observe(&mut self, fresh_reading_c: Option<f64>) -> Option<FailsafeAction> {
        match fresh_reading_c {
            None => {
                self.stale = self.stale.saturating_add(1);
                if self.engaged.is_none() && self.stale >= self.cfg.max_stale_samples {
                    self.engaged = Some(FailsafeReason::StaleSensor);
                    self.engagements += 1;
                    return Some(FailsafeAction::Engage(FailsafeReason::StaleSensor));
                }
                None
            }
            Some(t) => {
                self.stale = 0;
                match self.engaged {
                    None => {
                        if t >= self.cfg.panic_temp_c {
                            self.engaged = Some(FailsafeReason::OverTemperature);
                            self.engagements += 1;
                            Some(FailsafeAction::Engage(FailsafeReason::OverTemperature))
                        } else {
                            None
                        }
                    }
                    Some(_) => {
                        if t < self.cfg.release_temp_c {
                            self.engaged = None;
                            Some(FailsafeAction::Release)
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_armed_on_healthy_stream() {
        let mut f = Failsafe::with_defaults();
        for _ in 0..200 {
            assert_eq!(f.observe(Some(50.0)), None);
        }
        assert!(!f.is_engaged());
        assert_eq!(f.engagement_count(), 0);
    }

    #[test]
    fn engages_after_stale_budget() {
        let mut f = Failsafe::with_defaults();
        for i in 0..19 {
            assert_eq!(f.observe(None), None, "sample {i}");
        }
        assert_eq!(f.observe(None), Some(FailsafeAction::Engage(FailsafeReason::StaleSensor)));
        assert!(f.is_engaged());
        assert_eq!(f.engaged_reason(), Some(FailsafeReason::StaleSensor));
        // No duplicate engage actions while still stale.
        assert_eq!(f.observe(None), None);
    }

    #[test]
    fn intermittent_readings_reset_the_stale_count() {
        let mut f = Failsafe::with_defaults();
        for _ in 0..10 {
            let _ = f.observe(None);
        }
        let _ = f.observe(Some(50.0)); // fresh reading resets
        for i in 0..19 {
            assert_eq!(f.observe(None), None, "sample {i}");
        }
        assert!(f.observe(None).is_some(), "full budget required again");
    }

    #[test]
    fn engages_on_panic_temperature() {
        let mut f = Failsafe::with_defaults();
        assert_eq!(f.observe(Some(64.9)), None);
        assert_eq!(
            f.observe(Some(65.0)),
            Some(FailsafeAction::Engage(FailsafeReason::OverTemperature))
        );
    }

    #[test]
    fn releases_only_below_release_temperature() {
        let mut f = Failsafe::with_defaults();
        let _ = f.observe(Some(66.0));
        assert!(f.is_engaged());
        assert_eq!(f.observe(Some(60.0)), None, "still above release line");
        assert_eq!(f.observe(Some(54.9)), Some(FailsafeAction::Release));
        assert!(!f.is_engaged());
    }

    #[test]
    fn stale_engagement_releases_after_recovery_and_cooling() {
        let mut f = Failsafe::with_defaults();
        for _ in 0..20 {
            let _ = f.observe(None);
        }
        assert!(f.is_engaged());
        // Sensor returns but the machine is still hot: hold.
        assert_eq!(f.observe(Some(60.0)), None);
        assert!(f.is_engaged());
        assert_eq!(f.observe(Some(50.0)), Some(FailsafeAction::Release));
    }

    #[test]
    fn engagement_count_accumulates() {
        let mut f = Failsafe::with_defaults();
        let _ = f.observe(Some(66.0));
        let _ = f.observe(Some(50.0)); // release
        let _ = f.observe(Some(70.0));
        assert_eq!(f.engagement_count(), 2);
    }

    #[test]
    #[should_panic(expected = "below panic")]
    fn inverted_thresholds_rejected() {
        let _ = Failsafe::new(FailsafeConfig {
            panic_temp_c: 50.0,
            release_temp_c: 60.0,
            ..Default::default()
        });
    }
}
