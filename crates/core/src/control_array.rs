//! The thermal control array and the `P_p` user policy (paper §3.2.2).
//!
//! A thermal control array holds `N` modes of one control technique in
//! non-descending order of cooling effectiveness: `g_1` is always the least
//! effective mode, `g_N` the most effective, and duplicates are allowed. For
//! a fan the modes are duty cycles (higher = more effective); for DVFS they
//! are frequencies (lower = more effective); for an ACPI-compatible system
//! they are sleep states.
//!
//! The array contents are derived from the user policy `P_p ∈ [P_MIN, P_MAX]
//! = [1, 100]` by Eq. (1) of the paper:
//!
//! ```text
//!   n_p = ⌊ (P_p − P_MIN)(N − 1) / (P_MAX − P_MIN) ⌋ + 1
//! ```
//!
//! Cells `[n_p, N]` (1-based) hold the most effective mode `g_N`; cells
//! `[1, n_p−1]` hold a subset of the physically available modes evenly
//! extracted from the full set. A *small* `P_p` gives a small `n_p`, so most
//! of the array is pinned at `g_N` and a small index increment produces a
//! large cooling increment — aggressive, temperature-oriented control. A
//! *large* `P_p` spreads the physical modes across the array — conservative,
//! cost-oriented control.

use serde::{Deserialize, Serialize};

/// Error for a policy value outside `[P_MIN, P_MAX]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyError {
    /// The rejected value.
    pub value: u32,
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "policy P_p = {} outside [{}, {}]", self.value, Policy::P_MIN, Policy::P_MAX)
    }
}

impl std::error::Error for PolicyError {}

/// The user policy parameter `P_p` (paper §3.2.2): the aggressiveness of
/// temperature control. Small values are temperature-oriented (aggressive
/// cooling, higher cost); large values are cost-oriented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Policy(u32);

impl Policy {
    /// Lower bound of the policy range.
    pub const P_MIN: u32 = 1;
    /// Upper bound of the policy range.
    pub const P_MAX: u32 = 100;

    /// The paper's "aggressive" setting (`P_p = 25`).
    pub const AGGRESSIVE: Policy = Policy(25);
    /// The paper's "moderate" setting (`P_p = 50`).
    pub const MODERATE: Policy = Policy(50);
    /// The paper's "weak" setting (`P_p = 75`).
    pub const WEAK: Policy = Policy(75);

    /// Creates a policy, rejecting out-of-range values.
    pub fn new(pp: u32) -> Result<Self, PolicyError> {
        if (Self::P_MIN..=Self::P_MAX).contains(&pp) {
            Ok(Self(pp))
        } else {
            Err(PolicyError { value: pp })
        }
    }

    /// The raw `P_p` value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// Re-checks the range invariant. Deserialization fills the inner value
    /// directly, so values arriving from scenario files must be validated
    /// before use — `n_p` underflows on `P_p < P_MIN`.
    ///
    /// # Errors
    /// Returns the out-of-range value.
    pub fn validate(self) -> Result<(), PolicyError> {
        Self::new(self.0).map(|_| ())
    }

    /// Eq. (1): the special index `n_p` (1-based) for an array of length `n`.
    pub fn n_p(self, n: usize) -> usize {
        assert!(n >= 1, "array length must be at least 1");
        let num = (self.0 - Self::P_MIN) as usize * (n - 1);
        let den = (Self::P_MAX - Self::P_MIN) as usize;
        num / den + 1
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P_p={}", self.0)
    }
}

/// A filled thermal control array over modes of type `M`.
///
/// `M` is any copyable mode token (a duty-cycle percent, a frequency, a
/// sleep state). The array is immutable once built; changing the policy or
/// the available mode set means building a new array.
///
/// ```
/// use unitherm_core::control_array::{Policy, ThermalControlArray};
///
/// // DVFS frequencies in ascending cooling effectiveness.
/// let freqs = [2400u32, 2200, 2000, 1800, 1000];
/// let aggressive = ThermalControlArray::with_default_len(&freqs, Policy::AGGRESSIVE);
/// // Eq. (1): with P_p = 25 every cell from n_p = 25 on is the most
/// // effective mode — a small index step reaches deep frequencies.
/// assert_eq!(aggressive.n_p(), 25);
/// assert_eq!(aggressive.mode_at(25), 1000);
/// assert_eq!(aggressive.mode_at(1), 2400); // g_1 is always least effective
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalControlArray<M> {
    cells: Vec<M>,
    policy: Policy,
    n_p: usize,
}

impl<M: Copy + PartialEq> ThermalControlArray<M> {
    /// Default array length used throughout the paper's experiments: the fan
    /// is discretized into 100 modes, and DVFS shares the same `N` so one
    /// `P_p` drives both.
    pub const DEFAULT_LEN: usize = 100;

    /// Builds an array of length `n` from `modes` (ascending cooling
    /// effectiveness: `modes[0]` least effective, `modes.last()` most) under
    /// the given policy.
    ///
    /// # Panics
    /// Panics on an empty mode set or `n == 0` — those are configuration
    /// bugs.
    pub fn build(modes: &[M], policy: Policy, n: usize) -> Self {
        assert!(!modes.is_empty(), "mode set must not be empty");
        assert!(n >= 1, "array length must be at least 1");
        let most = *modes.last().expect("non-empty");
        let n_p = policy.n_p(n);

        let mut cells = Vec::with_capacity(n);
        // Cells [1, n_p − 1]: evenly extracted subset of the physical modes
        // (excluding the most-effective one, which owns [n_p, N]). The
        // extraction always starts at modes[0], so g_1 is the least
        // effective mode as §3.2.2 requires.
        let sub_len = n_p - 1;
        if sub_len > 0 {
            let m_sub = modes.len().saturating_sub(1); // extract from modes[0..m_sub]
            for j in 1..=sub_len {
                let phys = if m_sub == 0 {
                    0
                } else {
                    // floor((j−1)·m_sub / sub_len) ∈ [0, m_sub−1]
                    ((j - 1) * m_sub) / sub_len
                };
                cells.push(modes[phys]);
            }
        }
        // Cells [n_p, N]: the most effective mode.
        cells.resize(n, most);

        Self { cells, policy, n_p }
    }

    /// Builds with the default length of 100.
    pub fn with_default_len(modes: &[M], policy: Policy) -> Self {
        Self::build(modes, policy, Self::DEFAULT_LEN)
    }

    /// Array length `N`.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false: arrays have at least one cell.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The policy the array was built under.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The special index `n_p` (1-based) from Eq. (1).
    pub fn n_p(&self) -> usize {
        self.n_p
    }

    /// The mode at 1-based index `i` (the paper indexes `g_1 … g_N`).
    ///
    /// # Panics
    /// Panics when `i` is 0 or exceeds `N`; callers clamp indices first.
    pub fn mode_at(&self, i: usize) -> M {
        assert!(i >= 1 && i <= self.cells.len(), "index {i} outside [1, {}]", self.cells.len());
        self.cells[i - 1]
    }

    /// The least effective mode (`g_1`).
    pub fn least_effective(&self) -> M {
        self.cells[0]
    }

    /// The most effective mode (`g_N`).
    pub fn most_effective(&self) -> M {
        *self.cells.last().expect("non-empty")
    }

    /// All cells in order (`g_1 …​ g_N`).
    pub fn cells(&self) -> &[M] {
        &self.cells
    }

    /// Clamps a signed 1-based index into `[1, N]`.
    pub fn clamp_index(&self, i: i64) -> usize {
        i.clamp(1, self.cells.len() as i64) as usize
    }

    /// The smallest 1-based index whose cell equals `mode`, if present.
    pub fn index_of(&self, mode: M) -> Option<usize> {
        self.cells.iter().position(|&m| m == mode).map(|p| p + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Five DVFS modes, ascending effectiveness (descending frequency).
    const FREQS: [u32; 5] = [2400, 2200, 2000, 1800, 1000];

    fn duties() -> Vec<u8> {
        (1..=100).collect()
    }

    #[test]
    fn policy_rejects_out_of_range() {
        assert!(Policy::new(0).is_err());
        assert!(Policy::new(101).is_err());
        assert_eq!(Policy::new(1).unwrap().value(), 1);
        assert_eq!(Policy::new(100).unwrap().value(), 100);
        let err = Policy::new(0).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn eq1_matches_hand_computation() {
        // n_p = floor((P_p − 1)(N − 1)/99) + 1 with N = 100.
        assert_eq!(Policy::new(1).unwrap().n_p(100), 1);
        assert_eq!(Policy::new(25).unwrap().n_p(100), 25);
        assert_eq!(Policy::new(50).unwrap().n_p(100), 50);
        assert_eq!(Policy::new(75).unwrap().n_p(100), 75);
        assert_eq!(Policy::new(100).unwrap().n_p(100), 100);
    }

    #[test]
    fn eq1_scales_with_array_length() {
        assert_eq!(Policy::new(50).unwrap().n_p(10), 5); // floor(49·9/99)+1 = 5
        assert_eq!(Policy::new(100).unwrap().n_p(10), 10);
        assert_eq!(Policy::new(1).unwrap().n_p(10), 1);
    }

    #[test]
    fn small_pp_pins_most_of_the_array_at_gn() {
        let arr = ThermalControlArray::with_default_len(&FREQS, Policy::AGGRESSIVE);
        assert_eq!(arr.n_p(), 25);
        // Cells [25, 100] are the most effective mode (1000 MHz).
        for i in 25..=100 {
            assert_eq!(arr.mode_at(i), 1000, "cell {i}");
        }
        // Cell 1 is the least effective mode.
        assert_eq!(arr.mode_at(1), 2400);
    }

    #[test]
    fn large_pp_spreads_modes() {
        let arr = ThermalControlArray::with_default_len(&FREQS, Policy::new(100).unwrap());
        assert_eq!(arr.n_p(), 100);
        assert_eq!(arr.mode_at(1), 2400);
        assert_eq!(arr.mode_at(100), 1000);
        // All five frequencies appear.
        for f in FREQS {
            assert!(arr.index_of(f).is_some(), "{f} missing");
        }
    }

    #[test]
    fn pp_min_makes_whole_array_most_effective() {
        let arr = ThermalControlArray::with_default_len(&FREQS, Policy::new(1).unwrap());
        assert!(arr.cells().iter().all(|&m| m == 1000));
    }

    #[test]
    fn effectiveness_is_non_descending() {
        // For DVFS "more effective" = lower frequency, so cells must be
        // non-ascending in frequency for every policy.
        for pp in 1..=100 {
            let arr = ThermalControlArray::with_default_len(&FREQS, Policy::new(pp).unwrap());
            assert!(
                arr.cells().windows(2).all(|w| w[0] >= w[1]),
                "P_p={pp}: array not effectiveness-ordered: {:?}",
                arr.cells()
            );
        }
    }

    #[test]
    fn duplicates_allowed_and_expected() {
        let arr = ThermalControlArray::with_default_len(&FREQS, Policy::MODERATE);
        // 49 cells over 4 distinct sub-modes: duplicates must exist.
        let first = arr.cells()[0];
        assert!(arr.cells().iter().filter(|&&m| m == first).count() > 1);
    }

    #[test]
    fn fan_array_lower_index_means_lower_duty() {
        let d = duties();
        let arr = ThermalControlArray::with_default_len(&d, Policy::MODERATE);
        assert_eq!(arr.mode_at(1), 1);
        assert_eq!(arr.mode_at(100), 100);
        assert_eq!(arr.n_p(), 50);
        // Below n_p the duty climbs roughly twice as fast as the index.
        assert!(arr.mode_at(25) > 45, "cell 25 = {}", arr.mode_at(25));
        // At and beyond n_p everything is full speed.
        assert_eq!(arr.mode_at(50), 100);
    }

    #[test]
    fn aggressive_fan_array_climbs_faster() {
        let d = duties();
        let a25 = ThermalControlArray::with_default_len(&d, Policy::AGGRESSIVE);
        let a75 = ThermalControlArray::with_default_len(&d, Policy::WEAK);
        // Same index ⇒ the aggressive array commands at least as much duty.
        for i in 1..=100 {
            assert!(
                a25.mode_at(i) >= a75.mode_at(i),
                "index {i}: P25 duty {} < P75 duty {}",
                a25.mode_at(i),
                a75.mode_at(i)
            );
        }
        // And strictly more in the interior.
        assert!(a25.mode_at(20) > a75.mode_at(20));
    }

    #[test]
    fn max_pwm_cap_via_mode_set() {
        // The paper's Figure 7 caps the fan at 25/50/75 % by constraining
        // the available mode set; the array then tops out at the cap.
        let capped: Vec<u8> = (1..=75).collect();
        let arr = ThermalControlArray::with_default_len(&capped, Policy::MODERATE);
        assert_eq!(arr.most_effective(), 75);
        assert!(arr.cells().iter().all(|&d| d <= 75));
    }

    #[test]
    fn single_mode_set_is_insensitive() {
        // §3.2.2: "An extreme case is that all the values in the array are
        // the same. Herein, the technique ... is not sensitive to
        // temperature changes."
        let arr = ThermalControlArray::with_default_len(&[42u8], Policy::MODERATE);
        assert!(arr.cells().iter().all(|&m| m == 42));
    }

    #[test]
    fn n_can_be_smaller_than_mode_count() {
        // "If the ratio is less than 1, some physical modes will not appear."
        let arr = ThermalControlArray::build(&duties(), Policy::new(100).unwrap(), 10);
        assert_eq!(arr.len(), 10);
        let distinct: std::collections::BTreeSet<u8> = arr.cells().iter().copied().collect();
        assert!(distinct.len() <= 10);
        assert_eq!(arr.least_effective(), 1);
        assert_eq!(arr.most_effective(), 100);
    }

    #[test]
    fn clamp_index_bounds() {
        let arr = ThermalControlArray::with_default_len(&FREQS, Policy::MODERATE);
        assert_eq!(arr.clamp_index(-5), 1);
        assert_eq!(arr.clamp_index(0), 1);
        assert_eq!(arr.clamp_index(42), 42);
        assert_eq!(arr.clamp_index(1000), 100);
    }

    #[test]
    fn index_of_finds_first_occurrence() {
        let arr = ThermalControlArray::with_default_len(&FREQS, Policy::MODERATE);
        assert_eq!(arr.index_of(2400), Some(1));
        assert_eq!(arr.index_of(1000), Some(arr.n_p()));
        assert_eq!(arr.index_of(9999), None);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_mode_set_panics() {
        let _: ThermalControlArray<u8> =
            ThermalControlArray::with_default_len(&[], Policy::MODERATE);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn mode_at_zero_panics() {
        let arr = ThermalControlArray::with_default_len(&FREQS, Policy::MODERATE);
        let _ = arr.mode_at(0);
    }
}
