//! Configuration validation errors.
//!
//! Controller and window configurations validate with
//! `Result<(), ConfigError>` so embedding layers (scenario files, scheme
//! specs) can surface bad tuning as data errors instead of panics.
//! Constructors that take an already-validated config by value still panic
//! on invalid input — a bad config reaching a constructor is a programming
//! error — but they do so by unwrapping the same `Result`, keeping a single
//! source of truth for each rule.

/// A configuration-validation failure, carrying a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_message() {
        let e = ConfigError::new("array length must be at least 1");
        assert_eq!(e.to_string(), "array length must be at least 1");
        assert_eq!(e.message(), "array length must be at least 1");
    }
}
