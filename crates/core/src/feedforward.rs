//! Utilization feedforward: the paper's §5 future work, implemented.
//!
//! > "In addition, we are considering integration of hardware counter and
//! > data in our techniques to improve our prediction mechanisms."
//!
//! The two-level window is purely reactive: a load step must first heat the
//! die, pass through the sensor, and fill a window round before the fan
//! responds — several seconds of lag. But the *cause* of Type-I sudden
//! behaviour is visible instantly in the CPU's utilization counters. The
//! [`UtilizationFeedforward`] predictor watches per-round utilization
//! averages and, on a sustained jump, predicts the imminent die-temperature
//! swing (`ΔT ≈ gain · Δu`, with the gain calibrated to the dynamic power
//! excursion across the die–sink thermal resistance). The
//! [`FeedforwardFanController`] folds that prediction into the standard
//! mode-index rule, moving the fan *before* the sensor sees anything.
//!
//! Measured history always wins: the feedforward term is consulted only on
//! rounds where the reactive controller saw nothing, so a mispredicting
//! feedforward cannot fight the temperature feedback loop.

use serde::{Deserialize, Serialize};

use crate::actuator::FanDuty;
use crate::control_array::Policy;
use crate::controller::{ControllerConfig, Decision, DecisionLevel};
use crate::fan_control::DynamicFanController;

/// Feedforward predictor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedforwardConfig {
    /// Predicted die-temperature swing in °C per unit utilization step.
    /// Physically ≈ `P_dyn_max · R_die_sink` (≈ 48 W · 0.12 K/W ≈ 5.8 °C
    /// on the reproduced platform).
    pub gain_c_per_util: f64,
    /// Minimum per-round utilization change to act on; smaller changes are
    /// treated as scheduler noise.
    pub deadband_util: f64,
    /// Utilization samples averaged per prediction round. Unlike the
    /// temperature path — which needs a 4-sample window to separate signal
    /// from sensor noise — utilization counters are exact, so the default
    /// acts on every 250 ms sample. That sub-round latency is precisely the
    /// advantage hardware-counter prediction buys over the reactive window.
    pub samples_per_round: usize,
}

impl Default for FeedforwardConfig {
    fn default() -> Self {
        Self { gain_c_per_util: 5.8, deadband_util: 0.25, samples_per_round: 1 }
    }
}

impl FeedforwardConfig {
    /// Validates the configuration: positive round size, non-negative
    /// gain/deadband. Returns an error so scenario files carrying a bad
    /// feedforward block are rejected as data errors.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::ConfigError;
        if self.samples_per_round < 1 {
            return Err(ConfigError::new("need at least one sample per round"));
        }
        if self.gain_c_per_util < 0.0 {
            return Err(ConfigError::new("gain must be non-negative"));
        }
        if self.deadband_util < 0.0 {
            return Err(ConfigError::new("deadband must be non-negative"));
        }
        Ok(())
    }
}

/// The utilization-counter predictor.
#[derive(Debug, Clone)]
pub struct UtilizationFeedforward {
    cfg: FeedforwardConfig,
    buf: Vec<f64>,
    last_round_avg: Option<f64>,
    predictions: u64,
}

impl UtilizationFeedforward {
    /// Creates the predictor.
    pub fn new(cfg: FeedforwardConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        Self {
            cfg,
            buf: Vec::with_capacity(cfg.samples_per_round),
            last_round_avg: None,
            predictions: 0,
        }
    }

    /// Feeds one utilization sample; at each completed round, returns the
    /// predicted temperature delta (°C) if the round-to-round utilization
    /// change exceeds the deadband.
    pub fn observe(&mut self, utilization: f64) -> Option<f64> {
        self.buf.push(utilization.clamp(0.0, 1.0));
        if self.buf.len() < self.cfg.samples_per_round {
            return None;
        }
        let avg = self.buf.iter().sum::<f64>() / self.buf.len() as f64;
        self.buf.clear();
        let prev = self.last_round_avg.replace(avg)?;
        let delta_u = avg - prev;
        if delta_u.abs() < self.cfg.deadband_util {
            return None;
        }
        self.predictions += 1;
        Some(delta_u * self.cfg.gain_c_per_util)
    }

    /// Number of predictions emitted.
    pub fn prediction_count(&self) -> u64 {
        self.predictions
    }
}

/// A dynamic fan controller augmented with utilization feedforward.
#[derive(Debug, Clone)]
pub struct FeedforwardFanController {
    inner: DynamicFanController,
    predictor: UtilizationFeedforward,
    ff_decisions: u64,
}

impl FeedforwardFanController {
    /// Creates the augmented controller.
    pub fn new(
        policy: Policy,
        max_duty: FanDuty,
        controller_cfg: ControllerConfig,
        ff_cfg: FeedforwardConfig,
    ) -> Self {
        Self {
            inner: DynamicFanController::new(policy, max_duty, controller_cfg),
            predictor: UtilizationFeedforward::new(ff_cfg),
            ff_decisions: 0,
        }
    }

    /// Creates with default tuning.
    pub fn with_defaults(policy: Policy, max_duty: FanDuty) -> Self {
        Self::new(policy, max_duty, ControllerConfig::default(), FeedforwardConfig::default())
    }

    /// The duty the controller currently commands.
    pub fn current_duty(&self) -> FanDuty {
        self.inner.current_duty()
    }

    /// Decisions that came from the feedforward path.
    pub fn feedforward_decision_count(&self) -> u64 {
        self.ff_decisions
    }

    /// The underlying reactive controller.
    pub fn inner(&self) -> &DynamicFanController {
        &self.inner
    }

    /// Feeds one (temperature, utilization) sample pair. The reactive
    /// decision is preferred; the feedforward prediction is consulted only
    /// when the measured history saw nothing this round.
    pub fn observe(&mut self, temp_c: f64, utilization: f64) -> Option<Decision<FanDuty>> {
        let prediction = self.predictor.observe(utilization);
        let reactive = self.inner.observe(temp_c);
        if reactive.is_some() {
            return reactive;
        }
        let predicted_delta = prediction?;
        let ctl = self.inner.controller_mut();
        let gain = ctl.config().gain();
        let step = (gain * predicted_delta).round() as i64;
        if step == 0 {
            return None;
        }
        let before = ctl.current_index();
        let target = before as i64 + step;
        ctl.force_index(target);
        let index = ctl.current_index();
        if index == before {
            return None;
        }
        self.ff_decisions += 1;
        Some(Decision {
            index,
            mode: ctl.current_mode(),
            level: DecisionLevel::Feedforward,
            delta_c: predicted_delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> FeedforwardFanController {
        FeedforwardFanController::with_defaults(Policy::MODERATE, 100)
    }

    #[test]
    fn predictor_fires_on_load_step_within_one_sample() {
        let mut p = UtilizationFeedforward::new(FeedforwardConfig::default());
        // First sample establishes the baseline; the step is predicted on
        // the very next sample — 3 samples earlier than a 4-sample window.
        assert_eq!(p.observe(0.1), None);
        let delta = p.observe(1.0).expect("step must be predicted");
        assert!((delta - 0.9 * 5.8).abs() < 1e-9, "predicted {delta}");
        assert_eq!(p.prediction_count(), 1);
    }

    #[test]
    fn multi_sample_rounds_average_first() {
        let cfg = FeedforwardConfig { samples_per_round: 4, ..Default::default() };
        let mut p = UtilizationFeedforward::new(cfg);
        for _ in 0..4 {
            assert_eq!(p.observe(0.1), None);
        }
        let mut pred = None;
        for _ in 0..4 {
            pred = p.observe(1.0).or(pred);
        }
        let delta = pred.expect("step must be predicted");
        assert!((delta - 0.9 * 5.8).abs() < 1e-9, "predicted {delta}");
    }

    #[test]
    fn predictor_ignores_small_changes() {
        let mut p = UtilizationFeedforward::new(FeedforwardConfig::default());
        for i in 0..40 {
            let u = 0.5 + if i % 8 < 4 { 0.05 } else { -0.05 };
            assert_eq!(p.observe(u), None, "sample {i}");
        }
    }

    #[test]
    fn predictor_fires_on_load_drop_with_negative_delta() {
        let mut p = UtilizationFeedforward::new(FeedforwardConfig::default());
        for _ in 0..4 {
            let _ = p.observe(1.0);
        }
        let mut pred = None;
        for _ in 0..4 {
            pred = p.observe(0.1).or(pred);
        }
        assert!(pred.expect("drop predicted") < 0.0);
    }

    #[test]
    fn feedforward_moves_fan_before_temperature_does() {
        let mut ctl = controller();
        // Temperature flat at 45 °C; utilization steps 0.1 → 1.0. The
        // reactive path sees nothing, the feedforward path must act.
        for _ in 0..4 {
            assert!(ctl.observe(45.0, 0.1).is_none());
        }
        let mut decision = None;
        for _ in 0..4 {
            decision = ctl.observe(45.0, 1.0).or(decision);
        }
        let d = decision.expect("feedforward decision");
        assert_eq!(d.level, DecisionLevel::Feedforward);
        assert!(ctl.current_duty() > 1, "fan pre-spun to {}%", ctl.current_duty());
        assert_eq!(ctl.feedforward_decision_count(), 1);
    }

    #[test]
    fn measured_decision_takes_precedence() {
        let mut ctl = controller();
        // A temperature window completes on the same sample where the
        // utilization steps: the decision must be attributed to the
        // measured (level-1) path, not the prediction.
        let _ = ctl.observe(45.0, 0.1);
        let _ = ctl.observe(45.0, 0.1);
        let _ = ctl.observe(51.0, 0.1);
        let d = ctl.observe(51.0, 1.0).expect("window round fires");
        assert_eq!(d.level, DecisionLevel::Level1);
        assert_eq!(ctl.feedforward_decision_count(), 0);
    }

    #[test]
    fn load_drop_spins_fan_back_down() {
        let mut ctl = controller();
        for _ in 0..4 {
            let _ = ctl.observe(45.0, 0.1);
        }
        for _ in 0..4 {
            let _ = ctl.observe(45.0, 1.0);
        }
        let spun_up = ctl.current_duty();
        assert!(spun_up > 1);
        for _ in 0..4 {
            let _ = ctl.observe(45.0, 0.1);
        }
        assert!(ctl.current_duty() < spun_up, "{} < {spun_up}", ctl.current_duty());
    }

    #[test]
    fn zero_gain_disables_feedforward() {
        let cfg = FeedforwardConfig { gain_c_per_util: 0.0, ..Default::default() };
        let mut ctl =
            FeedforwardFanController::new(Policy::MODERATE, 100, ControllerConfig::default(), cfg);
        for _ in 0..4 {
            let _ = ctl.observe(45.0, 0.1);
        }
        for _ in 0..8 {
            assert!(ctl.observe(45.0, 1.0).is_none());
        }
        assert_eq!(ctl.feedforward_decision_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_round_rejected() {
        let cfg = FeedforwardConfig { samples_per_round: 0, ..Default::default() };
        let _ = UtilizationFeedforward::new(cfg);
    }
}
