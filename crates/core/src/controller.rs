//! The unified mode-index controller (paper §3.2.2, last paragraph).
//!
//! The controller keeps a current index `i` into its thermal control array.
//! Each time the two-level window completes a round it computes a target
//! index:
//!
//! ```text
//!   i' = i + c · Δt        with  c = (N − 1) / (t_max − t_min)
//! ```
//!
//! using the level-one delta `Δt_l1` first; if that produces no index
//! change, it retries with the level-two delta `Δt_l2`. The result is
//! clamped to `[1, N]` and the indexed array cell is the target mode for the
//! next interval.
//!
//! A small deadband on `Δt_l1` (configurable; default ≈ 2 sensor noise
//! standard deviations) implements the paper's requirement that the
//! controller "is also intelligent not to respond to periods of jitter":
//! genuine sudden changes produce half-sum differences far above it, while
//! sensor jitter stays below.

use serde::{Deserialize, Serialize};

use crate::control_array::{Policy, ThermalControlArray};
use crate::window::{TwoLevelWindow, WindowConfig};

/// Controller tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Thermal control array length `N`.
    pub array_len: usize,
    /// Lower bound of the safe operating temperature range (°C). The
    /// paper's platform: 38 °C (the ADT7467 Tmin).
    pub t_min_c: f64,
    /// Upper bound of the safe operating temperature range (°C). The
    /// paper's platform: 82 °C (the ADT7467 Tmax).
    pub t_max_c: f64,
    /// Two-level window geometry.
    pub window: WindowConfig,
    /// Deadband on the level-one delta, in °C: deltas with magnitude below
    /// this are treated as jitter and ignored at level one.
    pub l1_deadband_c: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            array_len: ThermalControlArray::<u8>::DEFAULT_LEN,
            t_min_c: 38.0,
            t_max_c: 82.0,
            window: WindowConfig::default(),
            l1_deadband_c: 0.75,
        }
    }
}

impl ControllerConfig {
    /// The index-per-degree gain `c = (N − 1)/(t_max − t_min)`.
    pub fn gain(&self) -> f64 {
        (self.array_len - 1) as f64 / (self.t_max_c - self.t_min_c)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns an error on a non-positive temperature range, zero array
    /// length, or an invalid window geometry.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        if self.array_len < 1 {
            return Err(crate::config::ConfigError::new("array length must be at least 1"));
        }
        if self.t_max_c <= self.t_min_c {
            return Err(crate::config::ConfigError::new(format!(
                "temperature range must be positive ({} .. {})",
                self.t_min_c, self.t_max_c
            )));
        }
        if self.l1_deadband_c < 0.0 {
            return Err(crate::config::ConfigError::new("deadband must be non-negative"));
        }
        self.window.validate()
    }
}

/// Which prediction path produced a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionLevel {
    /// The level-one (sudden) delta moved the index.
    Level1,
    /// Level one saw no change; the level-two (gradual) delta moved it.
    Level2,
    /// A utilization-counter feedforward prediction moved it (the paper's
    /// §5 future work; see [`crate::feedforward`]).
    Feedforward,
}

/// A mode-change decision for the next interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision<M> {
    /// New 1-based index into the control array.
    pub index: usize,
    /// The mode stored at that index.
    pub mode: M,
    /// Which window level triggered the change.
    pub level: DecisionLevel,
    /// The temperature delta (°C) that produced the change.
    pub delta_c: f64,
}

/// Per-level decision counters (for ablation studies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionStats {
    /// Window rounds observed.
    pub rounds: u64,
    /// Decisions triggered by the level-one delta.
    pub level1: u64,
    /// Decisions triggered by the level-two fallback.
    pub level2: u64,
}

/// The unified history-based controller over modes of type `M`.
#[derive(Debug, Clone)]
pub struct UnifiedController<M> {
    cfg: ControllerConfig,
    window: TwoLevelWindow,
    array: ThermalControlArray<M>,
    index: usize,
    stats: DecisionStats,
    /// When false, the level-two fallback is disabled (ablation switch).
    use_level2: bool,
    /// When false, the level-one delta is ignored (ablation switch).
    use_level1: bool,
}

impl<M: Copy + PartialEq + std::fmt::Debug> UnifiedController<M> {
    /// Creates a controller over the given physical mode set (ascending
    /// effectiveness) with the array filled per `policy`. The controller
    /// starts at index 1 (least effective mode).
    pub fn new(modes: &[M], policy: Policy, cfg: ControllerConfig) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        let array = ThermalControlArray::build(modes, policy, cfg.array_len);
        Self {
            cfg,
            window: TwoLevelWindow::new(cfg.window),
            array,
            index: 1,
            stats: DecisionStats::default(),
            use_level2: true,
            use_level1: true,
        }
    }

    /// Disables the level-two fallback (ablation: level-one-only control).
    pub fn with_level2_disabled(mut self) -> Self {
        self.use_level2 = false;
        self
    }

    /// Disables the level-one response (ablation: level-two-only control).
    pub fn with_level1_disabled(mut self) -> Self {
        self.use_level1 = false;
        self
    }

    /// Runtime switch for the level-one response (ablations).
    pub fn set_level1_enabled(&mut self, enabled: bool) {
        self.use_level1 = enabled;
    }

    /// Runtime switch for the level-two fallback (ablations).
    pub fn set_level2_enabled(&mut self, enabled: bool) {
        self.use_level2 = enabled;
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// The filled thermal control array.
    pub fn array(&self) -> &ThermalControlArray<M> {
        &self.array
    }

    /// Current 1-based index.
    pub fn current_index(&self) -> usize {
        self.index
    }

    /// Current mode (the cell at the current index).
    pub fn current_mode(&self) -> M {
        self.array.mode_at(self.index)
    }

    /// Decision counters.
    pub fn stats(&self) -> DecisionStats {
        self.stats
    }

    /// Forces the index (used when an external event — e.g. a hybrid
    /// coordinator — re-positions the controller). Clamped to `[1, N]`.
    pub fn force_index(&mut self, index: i64) {
        self.index = self.array.clamp_index(index);
    }

    /// Feeds one temperature sample. Returns a decision when a completed
    /// window round moves the mode index.
    pub fn observe(&mut self, temp_c: f64) -> Option<Decision<M>> {
        let update = self.window.push(temp_c)?;
        self.stats.rounds += 1;
        let c = self.cfg.gain();

        // Level one: sudden behaviour, with the jitter deadband.
        if self.use_level1 {
            let d1 = update.l1_delta;
            if d1.abs() >= self.cfg.l1_deadband_c {
                let target = self.array.clamp_index(self.index as i64 + (c * d1).round() as i64);
                if target != self.index {
                    self.index = target;
                    self.stats.level1 += 1;
                    return Some(Decision {
                        index: target,
                        mode: self.array.mode_at(target),
                        level: DecisionLevel::Level1,
                        delta_c: d1,
                    });
                }
            }
        }

        // Level two: gradual behaviour, only when level one changed nothing.
        if self.use_level2 {
            if let Some(d2) = update.l2_delta {
                let target = self.array.clamp_index(self.index as i64 + (c * d2).round() as i64);
                if target != self.index {
                    self.index = target;
                    self.stats.level2 += 1;
                    return Some(Decision {
                        index: target,
                        mode: self.array.mode_at(target),
                        level: DecisionLevel::Level2,
                        delta_c: d2,
                    });
                }
            }
        }
        None
    }

    /// Rebuilds the array under a new policy (and/or mode set), preserving
    /// the current index position (clamped) and window history.
    pub fn set_policy(&mut self, modes: &[M], policy: Policy) {
        self.array = ThermalControlArray::build(modes, policy, self.cfg.array_len);
        self.index = self.array.clamp_index(self.index as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fan duties 1..=100 as the mode set.
    fn duties() -> Vec<u8> {
        (1..=100).collect()
    }

    fn controller(pp: u32) -> UnifiedController<u8> {
        UnifiedController::new(&duties(), Policy::new(pp).unwrap(), ControllerConfig::default())
    }

    /// Feeds a flat series of rounds.
    fn feed_flat(c: &mut UnifiedController<u8>, temp: f64, rounds: usize) -> Vec<Decision<u8>> {
        let mut out = Vec::new();
        for _ in 0..rounds * 4 {
            if let Some(d) = c.observe(temp) {
                out.push(d);
            }
        }
        out
    }

    #[test]
    fn gain_matches_paper_formula() {
        let cfg = ControllerConfig::default();
        assert!((cfg.gain() - 99.0 / 44.0).abs() < 1e-12);
    }

    #[test]
    fn starts_at_least_effective_mode() {
        let c = controller(50);
        assert_eq!(c.current_index(), 1);
        assert_eq!(c.current_mode(), 1);
    }

    #[test]
    fn flat_temperature_produces_no_decisions() {
        let mut c = controller(50);
        let decisions = feed_flat(&mut c, 45.0, 20);
        assert!(decisions.is_empty(), "{decisions:?}");
        assert_eq!(c.stats().rounds, 20);
    }

    #[test]
    fn sudden_rise_triggers_level1() {
        let mut c = controller(50);
        // Warm-up round, then a +6 °C sudden step inside one window.
        let _ = feed_flat(&mut c, 45.0, 1);
        c.observe(45.0);
        c.observe(45.0);
        c.observe(51.0);
        let d = c.observe(51.0).expect("sudden step must trigger");
        assert_eq!(d.level, DecisionLevel::Level1);
        assert_eq!(d.delta_c, 12.0);
        // Index moved by round(c·12) = round(2.25·12) = 27.
        assert_eq!(d.index, 1 + 27);
        assert_eq!(c.current_mode(), c.array().mode_at(28));
    }

    #[test]
    fn sudden_drop_moves_index_down() {
        let mut c = controller(50);
        c.force_index(60);
        c.observe(55.0);
        c.observe(55.0);
        c.observe(49.0);
        let d = c.observe(49.0).expect("sudden drop must trigger");
        assert!(d.index < 60, "index should fall, got {}", d.index);
        assert_eq!(d.level, DecisionLevel::Level1);
    }

    #[test]
    fn jitter_within_deadband_is_ignored_at_level1() {
        let mut c = controller(50);
        // Alternating ±0.25 °C jitter: l1 deltas stay below the 0.75 °C
        // deadband and l2 deltas are ~0, so no decisions.
        for i in 0..200 {
            let t = 45.0 + if i % 2 == 0 { 0.25 } else { -0.25 };
            assert_eq!(c.observe(t), None, "sample {i}");
        }
        assert_eq!(c.current_index(), 1);
    }

    #[test]
    fn gradual_ramp_triggers_level2() {
        let mut c = controller(50);
        // 0.04 °C per sample: per-window Δ_l1 = 0.16 (below deadband), but
        // the level-two front/rear delta accumulates 4·0.64 ≈ 0.64 °C over
        // 5 rounds and eventually moves the index.
        let mut decisions = Vec::new();
        for i in 0..200 {
            let t = 45.0 + 0.04 * f64::from(i);
            if let Some(d) = c.observe(t) {
                decisions.push(d);
            }
        }
        assert!(!decisions.is_empty(), "gradual ramp must eventually trigger");
        assert!(
            decisions.iter().all(|d| d.level == DecisionLevel::Level2),
            "ramp below the deadband must be handled at level 2: {decisions:?}"
        );
        assert!(c.current_index() > 1);
    }

    #[test]
    fn level1_preferred_over_level2() {
        let mut c = controller(50);
        // Build level-2 history with a ramp, then a sudden step: the step
        // must be attributed to level 1.
        for i in 0..16 {
            let _ = c.observe(45.0 + 0.1 * f64::from(i));
        }
        c.observe(47.0);
        c.observe(47.0);
        c.observe(53.0);
        let d = c.observe(53.0).expect("step triggers");
        assert_eq!(d.level, DecisionLevel::Level1);
    }

    #[test]
    fn index_clamps_at_both_ends() {
        let mut c = controller(50);
        // Huge downward step from index 1 stays at 1 (no decision: no change).
        c.observe(60.0);
        c.observe(60.0);
        c.observe(20.0);
        assert_eq!(c.observe(20.0), None);
        assert_eq!(c.current_index(), 1);
        // Huge upward steps pin at N.
        for step in 0..10 {
            let base = 40.0 + f64::from(step) * 10.0;
            c.observe(base);
            c.observe(base);
            c.observe(base + 20.0);
            c.observe(base + 20.0);
        }
        assert_eq!(c.current_index(), 100);
        // Further upward steps cannot push the index past N.
        c.observe(95.0);
        c.observe(95.0);
        c.observe(99.0);
        let _ = c.observe(99.0);
        assert!(c.current_index() <= 100);
    }

    #[test]
    fn aggressive_policy_reaches_higher_duty_for_same_stimulus() {
        let mut agg = controller(25);
        let mut weak = controller(75);
        for c in [&mut agg, &mut weak] {
            c.observe(45.0);
            c.observe(45.0);
            c.observe(50.0);
            c.observe(50.0);
        }
        assert_eq!(agg.current_index(), weak.current_index(), "same index motion");
        assert!(
            agg.current_mode() > weak.current_mode(),
            "aggressive array maps the index to more duty: {} vs {}",
            agg.current_mode(),
            weak.current_mode()
        );
    }

    #[test]
    fn level2_fallback_can_be_disabled() {
        let mut c = controller(50).with_level2_disabled();
        for i in 0..200 {
            let t = 45.0 + 0.04 * f64::from(i);
            assert_eq!(c.observe(t), None, "level-2-disabled controller must stay put");
        }
        assert_eq!(c.current_index(), 1);
    }

    #[test]
    fn level1_can_be_disabled() {
        let mut c = controller(50).with_level1_disabled();
        c.observe(45.0);
        c.observe(45.0);
        c.observe(51.0);
        // The sudden step lands in the level-2 average as well; a decision
        // may fire but must be attributed to level 2.
        if let Some(d) = c.observe(51.0) {
            assert_eq!(d.level, DecisionLevel::Level2);
        }
        let s = c.stats();
        assert_eq!(s.level1, 0);
    }

    #[test]
    fn set_policy_rebuilds_but_keeps_position() {
        let mut c = controller(75);
        c.force_index(40);
        let weak_mode = c.current_mode();
        c.set_policy(&duties(), Policy::AGGRESSIVE);
        assert_eq!(c.current_index(), 40);
        assert!(c.current_mode() >= weak_mode);
    }

    #[test]
    fn force_index_clamps() {
        let mut c = controller(50);
        c.force_index(-3);
        assert_eq!(c.current_index(), 1);
        c.force_index(500);
        assert_eq!(c.current_index(), 100);
    }

    #[test]
    #[should_panic(expected = "temperature range")]
    fn invalid_range_rejected() {
        let cfg = ControllerConfig { t_min_c: 80.0, t_max_c: 40.0, ..Default::default() };
        let _ = UnifiedController::new(&duties(), Policy::MODERATE, cfg);
    }

    #[test]
    fn stats_count_levels_separately() {
        let mut c = controller(50);
        // One sudden event.
        c.observe(45.0);
        c.observe(45.0);
        c.observe(51.0);
        c.observe(51.0);
        // Then a long gradual decline handled by level 2.
        for i in 0..200 {
            let t = 51.0 - 0.04 * f64::from(i);
            let _ = c.observe(t);
        }
        let s = c.stats();
        assert!(s.level1 >= 1);
        assert!(s.level2 >= 1);
        assert_eq!(s.rounds, 1 + 50);
    }
}
