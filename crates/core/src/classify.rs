//! Thermal-behaviour classification (paper §3.1, Figure 2).
//!
//! The paper observes that parallel-application CPU temperature traces fall
//! into three types:
//!
//! * **Type I — sudden**: drastic, *sustained* increase or decrease over a
//!   short period (sharp CPU-utilization change);
//! * **Type II — gradual**: steady drift over seconds (sustained CPU-bound
//!   work without proactive control);
//! * **Type III — jitter**: oscillation around a value with no sustained
//!   direction (short bursty utilization, sensor noise).
//!
//! Types I and II change the actual operating temperature and deserve a
//! control response; Type III does not. The classifier here reproduces that
//! taxonomy per window round: it is used by the Figure 2 experiment to label
//! trace segments, and its thresholds mirror the controller's deadband
//! logic.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::window::WindowConfig;

/// A thermal behaviour label for one window round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThermalBehavior {
    /// Type I: sustained sharp change within one level-one window.
    Sudden,
    /// Type II: steady drift across the level-two horizon.
    Gradual,
    /// Type III: oscillation without sustained direction.
    Jitter,
    /// No significant activity.
    Steady,
}

impl std::fmt::Display for ThermalBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ThermalBehavior::Sudden => "sudden",
            ThermalBehavior::Gradual => "gradual",
            ThermalBehavior::Jitter => "jitter",
            ThermalBehavior::Steady => "steady",
        };
        f.write_str(s)
    }
}

/// Classifier thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Window geometry (shared with the controller).
    pub window: WindowConfig,
    /// Minimum |Δt_l1| (°C) to call a round *sudden*.
    pub sudden_threshold_c: f64,
    /// Minimum |Δt_l2| (°C) across the level-two FIFO to call a round
    /// *gradual*.
    pub gradual_threshold_c: f64,
    /// Minimum within-window peak-to-peak spread (°C) to call a
    /// non-directional round *jitter*.
    pub jitter_amplitude_c: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            window: WindowConfig::default(),
            sudden_threshold_c: 2.0,
            gradual_threshold_c: 1.0,
            jitter_amplitude_c: 0.6,
        }
    }
}

/// Streaming thermal-behaviour classifier.
#[derive(Debug, Clone)]
pub struct BehaviorClassifier {
    cfg: ClassifierConfig,
    buf: Vec<f64>,
    averages: VecDeque<f64>,
}

impl Default for BehaviorClassifier {
    fn default() -> Self {
        Self::new(ClassifierConfig::default())
    }
}

impl BehaviorClassifier {
    /// Creates a classifier.
    pub fn new(cfg: ClassifierConfig) -> Self {
        cfg.window.validate().unwrap_or_else(|e| panic!("{e}"));
        assert!(cfg.sudden_threshold_c > 0.0, "sudden threshold must be positive");
        assert!(cfg.gradual_threshold_c > 0.0, "gradual threshold must be positive");
        assert!(cfg.jitter_amplitude_c >= 0.0, "jitter amplitude must be non-negative");
        Self {
            cfg,
            buf: Vec::with_capacity(cfg.window.l1_len),
            averages: VecDeque::with_capacity(cfg.window.l2_len),
        }
    }

    /// Feeds a sample; returns a label each time a window round completes.
    pub fn push(&mut self, temp_c: f64) -> Option<ThermalBehavior> {
        assert!(temp_c.is_finite(), "temperature sample must be finite");
        self.buf.push(temp_c);
        if self.buf.len() < self.cfg.window.l1_len {
            return None;
        }

        let half = self.cfg.window.l1_len / 2;
        let first: f64 = self.buf[..half].iter().sum();
        let second: f64 = self.buf[half..].iter().sum();
        let l1_delta = second - first;
        let avg = (first + second) / self.cfg.window.l1_len as f64;
        let spread = self.buf.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - self.buf.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        self.buf.clear();

        if self.averages.len() == self.cfg.window.l2_len {
            self.averages.pop_front();
        }
        self.averages.push_back(avg);
        let l2_delta = if self.averages.len() >= 2 {
            self.averages.back().expect("non-empty") - self.averages.front().expect("non-empty")
        } else {
            0.0
        };

        let label = if l1_delta.abs() >= self.cfg.sudden_threshold_c {
            ThermalBehavior::Sudden
        } else if l2_delta.abs() >= self.cfg.gradual_threshold_c {
            ThermalBehavior::Gradual
        } else if spread >= self.cfg.jitter_amplitude_c {
            ThermalBehavior::Jitter
        } else {
            ThermalBehavior::Steady
        };
        Some(label)
    }

    /// Classifies a whole trace, returning one label per completed round.
    pub fn classify_trace(trace: impl IntoIterator<Item = f64>) -> Vec<ThermalBehavior> {
        let mut c = Self::default();
        trace.into_iter().filter_map(|t| c.push(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_trace_is_steady() {
        let labels = BehaviorClassifier::classify_trace(std::iter::repeat_n(45.0, 40));
        assert_eq!(labels.len(), 10);
        assert!(labels.iter().all(|&l| l == ThermalBehavior::Steady), "{labels:?}");
    }

    #[test]
    fn step_is_sudden() {
        // 6 flat samples then a +5 °C step (mid-round, so the round's
        // half-sums straddle it).
        let mut trace = vec![45.0; 6];
        trace.extend(vec![50.0; 10]);
        let labels = BehaviorClassifier::classify_trace(trace);
        assert!(labels.contains(&ThermalBehavior::Sudden), "{labels:?}");
    }

    #[test]
    fn slow_ramp_is_gradual_not_sudden() {
        // 0.08 °C per sample: Δ_l1 = 0.32 per round (below sudden), but the
        // level-two delta reaches 4·0.32 = 1.28 ≥ 1.0.
        let trace: Vec<f64> = (0..60).map(|i| 40.0 + 0.08 * f64::from(i)).collect();
        let labels = BehaviorClassifier::classify_trace(trace);
        assert!(labels.contains(&ThermalBehavior::Gradual), "{labels:?}");
        assert!(!labels.contains(&ThermalBehavior::Sudden), "{labels:?}");
    }

    #[test]
    fn oscillation_is_jitter() {
        // ±0.5 °C alternation: spread 1.0 ≥ 0.6, no direction.
        let trace: Vec<f64> = (0..40).map(|i| 45.0 + if i % 2 == 0 { 0.5 } else { -0.5 }).collect();
        let labels = BehaviorClassifier::classify_trace(trace);
        assert!(labels.iter().all(|&l| l == ThermalBehavior::Jitter), "{labels:?}");
    }

    #[test]
    fn tiny_noise_is_steady_not_jitter() {
        let trace: Vec<f64> = (0..40).map(|i| 45.0 + if i % 2 == 0 { 0.1 } else { -0.1 }).collect();
        let labels = BehaviorClassifier::classify_trace(trace);
        assert!(labels.iter().all(|&l| l == ThermalBehavior::Steady), "{labels:?}");
    }

    #[test]
    fn sudden_takes_precedence_over_jitter() {
        // A step embedded in noisy samples: the round containing the step
        // must be labelled sudden even though the spread is large.
        let mut trace = vec![45.2, 44.8, 45.2, 44.8];
        trace.extend([45.0, 45.0, 50.0, 50.0]);
        let labels = BehaviorClassifier::classify_trace(trace);
        assert_eq!(labels[1], ThermalBehavior::Sudden);
    }

    #[test]
    fn figure2_style_trace_contains_all_three_types() {
        // Mimics the paper's Figure 2: sudden rise, gradual climb, jitter
        // plateau, sudden drop.
        let mut trace = Vec::new();
        trace.extend(vec![40.0; 6]); // steady (step lands mid-round below)
        trace.extend(vec![48.0; 10]); // sudden rise
        trace.extend((0..40).map(|i| 48.0 + 0.1 * f64::from(i))); // gradual climb
        trace.extend((0..40).map(|i| 52.0 + if i % 2 == 0 { 0.5 } else { -0.5 })); // jitter
        trace.extend(vec![42.0; 8]); // drop back
        let labels = BehaviorClassifier::classify_trace(trace);
        assert!(labels.contains(&ThermalBehavior::Sudden));
        assert!(labels.contains(&ThermalBehavior::Gradual));
        assert!(labels.contains(&ThermalBehavior::Jitter));
    }

    #[test]
    fn display_labels() {
        assert_eq!(ThermalBehavior::Sudden.to_string(), "sudden");
        assert_eq!(ThermalBehavior::Gradual.to_string(), "gradual");
        assert_eq!(ThermalBehavior::Jitter.to_string(), "jitter");
        assert_eq!(ThermalBehavior::Steady.to_string(), "steady");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let cfg = ClassifierConfig { sudden_threshold_c: 0.0, ..Default::default() };
        let _ = BehaviorClassifier::new(cfg);
    }
}
