//! Actuator abstraction: how mode decisions reach physical mechanisms.
//!
//! The paper's point is that one controller design drives *diverse physical
//! mechanisms* — "changing CPU frequencies or controlling fan speeds" —
//! through the common thermal-control-array representation. The [`Actuator`]
//! trait is that seam: a controller computes a target mode and an actuator
//! applies it to whatever hardware (or simulated hardware) backs it.

/// A mode token for out-of-band fan control: a PWM duty cycle in percent
/// (`1..=100`). Higher duty = more effective cooling.
pub type FanDuty = u8;

/// A mode token for in-band DVFS control: a core frequency in MHz.
/// Lower frequency = more effective cooling.
pub type FreqMhz = u32;

/// Something that can apply a thermal-control mode to a physical mechanism.
pub trait Actuator {
    /// The mode token this actuator understands.
    type Mode: Copy + PartialEq + std::fmt::Debug;
    /// The error the underlying mechanism can raise (i2c NACK, invalid
    /// frequency, …).
    type Error: std::error::Error;

    /// Applies a mode. Implementations should be idempotent: re-applying
    /// the current mode must be harmless.
    fn apply(&mut self, mode: Self::Mode) -> Result<(), Self::Error>;

    /// The mode the actuator believes is currently applied.
    fn current(&self) -> Self::Mode;
}

/// The full fan mode set: duty cycles from 1 % to `max` percent, ascending
/// effectiveness. This is the paper's discretization of continuous fan speed
/// into 100 distinct speeds, optionally truncated by a maximum-allowed PWM
/// duty (Figures 6, 7, 9, 10 all cap the fan this way).
pub fn fan_mode_set(max_duty: FanDuty) -> Vec<FanDuty> {
    let max = max_duty.clamp(1, 100);
    (1..=max).collect()
}

/// The DVFS mode set for a frequency ladder given in *descending* frequency
/// order (as cpufreq reports it): returned unchanged, since descending
/// frequency is ascending cooling effectiveness.
pub fn dvfs_mode_set(frequencies_desc_mhz: &[FreqMhz]) -> Vec<FreqMhz> {
    assert!(
        frequencies_desc_mhz.windows(2).all(|w| w[0] > w[1]),
        "frequencies must be strictly descending"
    );
    frequencies_desc_mhz.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_mode_set_full_range() {
        let m = fan_mode_set(100);
        assert_eq!(m.len(), 100);
        assert_eq!(m[0], 1);
        assert_eq!(m[99], 100);
    }

    #[test]
    fn fan_mode_set_capped() {
        let m = fan_mode_set(25);
        assert_eq!(m.len(), 25);
        assert_eq!(*m.last().unwrap(), 25);
    }

    #[test]
    fn fan_mode_set_clamps_degenerate() {
        assert_eq!(fan_mode_set(0), vec![1]);
        assert_eq!(fan_mode_set(200).len(), 100);
    }

    #[test]
    fn dvfs_mode_set_passthrough() {
        let m = dvfs_mode_set(&[2400, 2200, 2000, 1800, 1000]);
        assert_eq!(m, vec![2400, 2200, 2000, 1800, 1000]);
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn dvfs_mode_set_rejects_unsorted() {
        let _ = dvfs_mode_set(&[1000, 2400]);
    }
}
