//! Baseline fan-control policies the paper compares against (§4.1, §4.2,
//! Figure 6): the traditional static temperature→PWM map and constant-speed
//! control.

use serde::{Deserialize, Serialize};

use crate::actuator::FanDuty;

/// The traditional static fan curve (paper Figure 1): duty is `pwm_min`
/// below `t_min`, rises linearly to `pwm_max` at `t_max`, and saturates
/// there. It reacts only to the *absolute* temperature — no history, no
/// prediction — which is why Figure 6 shows it trailing the dynamic method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticFanCurve {
    /// Duty commanded at or below `t_min_c`, percent.
    pub pwm_min: FanDuty,
    /// Duty ceiling, percent (the "maximum allowed fan speed" knob).
    pub pwm_max: FanDuty,
    /// Temperature at which the ramp starts, °C.
    pub t_min_c: f64,
    /// Temperature at which the ramp reaches `pwm_max`, °C.
    pub t_max_c: f64,
}

impl Default for StaticFanCurve {
    fn default() -> Self {
        // The paper's cluster: PWMmin = 10 %, Tmin = 38 °C, Tmax = 82 °C.
        Self { pwm_min: 10, pwm_max: 100, t_min_c: 38.0, t_max_c: 82.0 }
    }
}

impl StaticFanCurve {
    /// A default curve capped at `pwm_max` (Figure 6 caps it at 75 %).
    pub fn with_max(pwm_max: FanDuty) -> Self {
        Self { pwm_max: pwm_max.clamp(1, 100), ..Default::default() }
    }

    /// The duty for a given temperature.
    pub fn duty_for(&self, temp_c: f64) -> FanDuty {
        let lo = f64::from(self.pwm_min.min(self.pwm_max));
        let hi = f64::from(self.pwm_max);
        let duty = if temp_c <= self.t_min_c || self.t_max_c <= self.t_min_c {
            lo
        } else if temp_c >= self.t_max_c {
            hi
        } else {
            lo + (hi - lo) * (temp_c - self.t_min_c) / (self.t_max_c - self.t_min_c)
        };
        duty.round().clamp(0.0, 100.0) as FanDuty
    }
}

/// Constant-speed fan control (Figure 6's third arm: duty pinned at 75 %).
/// Maintains the lowest temperatures but burns the most fan power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstantFan {
    /// The pinned duty, percent.
    pub duty: FanDuty,
}

impl ConstantFan {
    /// Creates a constant-speed policy (duty clamped to `1..=100`).
    pub fn new(duty: FanDuty) -> Self {
        Self { duty: duty.clamp(1, 100) }
    }

    /// The duty, independent of temperature.
    pub fn duty_for(&self, _temp_c: f64) -> FanDuty {
        self.duty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_curve_matches_figure1() {
        let c = StaticFanCurve::default();
        assert_eq!(c.duty_for(20.0), 10);
        assert_eq!(c.duty_for(38.0), 10);
        assert_eq!(c.duty_for(82.0), 100);
        assert_eq!(c.duty_for(99.0), 100);
        assert_eq!(c.duty_for(60.0), 55); // midpoint of the ramp
    }

    #[test]
    fn static_curve_monotone() {
        let c = StaticFanCurve::default();
        let duties: Vec<FanDuty> = (20..100).map(|t| c.duty_for(f64::from(t))).collect();
        assert!(duties.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn capped_curve_saturates_at_cap() {
        let c = StaticFanCurve::with_max(75);
        assert_eq!(c.duty_for(95.0), 75);
        assert_eq!(c.duty_for(38.0), 10);
        // Ramp is re-scaled onto [10, 75].
        assert_eq!(c.duty_for(60.0), 43); // 10 + 65·(22/44) = 42.5 → 43
    }

    #[test]
    fn degenerate_range_pins_at_min() {
        let c = StaticFanCurve { t_min_c: 50.0, t_max_c: 50.0, ..Default::default() };
        assert_eq!(c.duty_for(80.0), 10);
    }

    #[test]
    fn cap_below_min_collapses() {
        let c = StaticFanCurve { pwm_min: 50, pwm_max: 20, ..Default::default() };
        // Pathological config: min is clamped down to max.
        assert_eq!(c.duty_for(30.0), 20);
        assert_eq!(c.duty_for(90.0), 20);
    }

    #[test]
    fn constant_fan_ignores_temperature() {
        let c = ConstantFan::new(75);
        assert_eq!(c.duty_for(20.0), 75);
        assert_eq!(c.duty_for(90.0), 75);
    }

    #[test]
    fn constant_fan_clamps() {
        assert_eq!(ConstantFan::new(0).duty, 1);
        assert_eq!(ConstantFan::new(200).duty, 100);
    }
}
