//! Serializable control-scheme descriptions and the single daemon factory.
//!
//! [`FanScheme`] and [`DvfsScheme`] name exactly the arms the paper's
//! experiments compare: traditional (chip-automatic) fan control, constant
//! speed, the dynamic history-based controller (± feedforward), tDVFS and
//! CPUSPEED. [`SchemeSpec`] composes them — either independently
//! (`Split`), as the paper's §4.4 coordinated hybrid, or with the ACPI
//! sleep-state daemon (§3.2.2) — and its [`SchemeSpec::build`] factory is
//! the **only** place in the workspace where a scheme description becomes
//! a daemon pipeline.

use serde::{Deserialize, Serialize};

use super::daemons::{
    AcpiSleepDaemon, ChipAutoFan, ConstantFanDaemon, CpuSpeedDaemon, DynamicFan, FeedforwardFan,
    StaticCurveFan, TdvfsDaemon,
};
use super::ControlDaemon;
use crate::actuator::{FanDuty, FreqMhz};
use crate::baseline::StaticFanCurve;
use crate::config::ConfigError;
use crate::control_array::Policy;
use crate::controller::ControllerConfig;
use crate::feedforward::FeedforwardConfig;
use crate::governor::CpuSpeedConfig;
use crate::tdvfs::TdvfsConfig;

/// Deserialization writes `Policy`'s inner value directly, so every scheme
/// validator re-checks the `[P_MIN, P_MAX]` range here before the value can
/// reach `Policy::n_p` (which underflows below `P_MIN`).
fn check_policy(policy: Policy) -> Result<(), ConfigError> {
    policy.validate().map_err(|e| ConfigError::new(e.to_string()))
}

/// Fan-side control scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FanScheme {
    /// Leave the ADT7467 in automatic mode — the paper's "traditional
    /// static method" — optionally capping the duty in hardware.
    ChipAutomatic {
        /// Maximum allowed duty, percent.
        max_duty: FanDuty,
    },
    /// The same static curve, but run as a software daemon through the
    /// manual-mode driver (useful for ablations; behaves like
    /// `ChipAutomatic` up to sensor noise).
    SoftwareStatic {
        /// The curve to apply.
        curve: StaticFanCurve,
    },
    /// Constant-speed control (Figure 6's third arm).
    Constant {
        /// The pinned duty, percent.
        duty: FanDuty,
    },
    /// The paper's dynamic, history-based fan controller.
    Dynamic {
        /// Aggressiveness policy `P_p`.
        policy: Policy,
        /// Maximum allowed duty, percent (Figure 7's knob).
        max_duty: FanDuty,
        /// Controller tuning.
        config: ControllerConfig,
    },
    /// The dynamic controller augmented with utilization feedforward —
    /// the paper's §5 future work (hardware-counter-assisted prediction).
    DynamicFeedforward {
        /// Aggressiveness policy `P_p`.
        policy: Policy,
        /// Maximum allowed duty, percent.
        max_duty: FanDuty,
        /// Reactive-controller tuning.
        config: ControllerConfig,
        /// Feedforward-predictor tuning.
        feedforward: FeedforwardConfig,
    },
}

impl FanScheme {
    /// The paper's default dynamic scheme: `P_p = 50`, uncapped.
    pub fn dynamic(policy: Policy, max_duty: FanDuty) -> Self {
        FanScheme::Dynamic { policy, max_duty, config: ControllerConfig::default() }
    }

    /// The feedforward-augmented dynamic scheme with default tuning.
    pub fn dynamic_feedforward(policy: Policy, max_duty: FanDuty) -> Self {
        FanScheme::DynamicFeedforward {
            policy,
            max_duty,
            config: ControllerConfig::default(),
            feedforward: FeedforwardConfig::default(),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            FanScheme::ChipAutomatic { max_duty } => format!("traditional(max={max_duty}%)"),
            FanScheme::SoftwareStatic { curve } => {
                format!("static-sw(max={}%)", curve.pwm_max)
            }
            FanScheme::Constant { duty } => format!("constant({duty}%)"),
            FanScheme::Dynamic { policy, max_duty, .. } => {
                format!("dynamic(P_p={}, max={max_duty}%)", policy.value())
            }
            FanScheme::DynamicFeedforward { policy, max_duty, .. } => {
                format!("dynamic+ff(P_p={}, max={max_duty}%)", policy.value())
            }
        }
    }

    /// Validates every controller configuration reachable from this arm.
    ///
    /// # Errors
    /// Returns the first invalid configuration found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            FanScheme::Dynamic { policy, config, .. } => {
                check_policy(*policy)?;
                config.validate()
            }
            FanScheme::DynamicFeedforward { policy, config, feedforward, .. } => {
                check_policy(*policy)?;
                config.validate()?;
                feedforward.validate()
            }
            _ => Ok(()),
        }
    }

    fn binding(&self) -> FanBinding {
        match self {
            FanScheme::ChipAutomatic { max_duty } => FanBinding::ChipAuto { cap: *max_duty },
            FanScheme::SoftwareStatic { curve } => FanBinding::Manual { max_duty: curve.pwm_max },
            FanScheme::Constant { .. } => FanBinding::Manual { max_duty: 100 },
            FanScheme::Dynamic { max_duty, .. }
            | FanScheme::DynamicFeedforward { max_duty, .. } => {
                FanBinding::Manual { max_duty: *max_duty }
            }
        }
    }

    fn daemon(&self) -> Box<dyn ControlDaemon> {
        match self {
            FanScheme::ChipAutomatic { .. } => Box::new(ChipAutoFan::new()),
            FanScheme::SoftwareStatic { curve } => Box::new(StaticCurveFan::new(*curve)),
            FanScheme::Constant { duty } => Box::new(ConstantFanDaemon::new(*duty)),
            FanScheme::Dynamic { policy, max_duty, config } => {
                Box::new(DynamicFan::new(*policy, *max_duty, *config))
            }
            FanScheme::DynamicFeedforward { policy, max_duty, config, feedforward } => {
                Box::new(FeedforwardFan::new(*policy, *max_duty, *config, *feedforward))
            }
        }
    }
}

/// DVFS-side control scheme.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum DvfsScheme {
    /// No frequency scaling: always the highest P-state.
    #[default]
    None,
    /// The paper's temperature-aware tDVFS daemon.
    Tdvfs {
        /// Aggressiveness policy `P_p`.
        policy: Policy,
        /// Daemon tuning (threshold, confirmation rounds).
        config: TdvfsConfig,
    },
    /// The CPUSPEED utilization governor (baseline).
    CpuSpeed {
        /// Governor tuning.
        config: CpuSpeedConfig,
    },
}

impl DvfsScheme {
    /// tDVFS with default tuning (51 °C threshold).
    pub fn tdvfs(policy: Policy) -> Self {
        DvfsScheme::Tdvfs { policy, config: TdvfsConfig::default() }
    }

    /// CPUSPEED with default tuning.
    pub fn cpuspeed() -> Self {
        DvfsScheme::CpuSpeed { config: CpuSpeedConfig::default() }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            DvfsScheme::None => "no-dvfs".to_string(),
            DvfsScheme::Tdvfs { policy, config } => {
                format!("tDVFS(P_p={}, T={}°C)", policy.value(), config.threshold_c)
            }
            DvfsScheme::CpuSpeed { .. } => "CPUSPEED".to_string(),
        }
    }

    /// Validates every controller configuration reachable from this arm.
    ///
    /// # Errors
    /// Returns the first invalid configuration found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            DvfsScheme::Tdvfs { policy, config } => {
                check_policy(*policy)?;
                config.validate()
            }
            DvfsScheme::CpuSpeed { config } => config.validate(),
            DvfsScheme::None => Ok(()),
        }
    }

    fn daemon(&self, ctx: &BuildContext) -> Option<Box<dyn ControlDaemon>> {
        match self {
            DvfsScheme::None => None,
            DvfsScheme::Tdvfs { policy, config } => {
                Some(Box::new(TdvfsDaemon::new(&ctx.available_mhz, *policy, *config)))
            }
            DvfsScheme::CpuSpeed { config } => {
                Some(Box::new(CpuSpeedDaemon::new(&ctx.available_mhz, *config)))
            }
        }
    }
}

/// How the fan hardware must be bound for a scheme: left on the chip's
/// automatic curve (with a hardware duty cap), or taken over by the
/// manual-mode driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanBinding {
    /// The chip's automatic curve runs the fan; only the `PWM_MAX` cap is
    /// written at probe time.
    ChipAuto {
        /// Hardware duty cap, percent.
        cap: FanDuty,
    },
    /// Software owns the fan through the manual-mode driver, which clamps
    /// commands to `max_duty`.
    Manual {
        /// Driver-enforced maximum duty, percent.
        max_duty: FanDuty,
    },
}

/// Platform facts the factory needs to build daemons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildContext {
    /// Available CPU frequencies in descending MHz.
    pub available_mhz: Vec<FreqMhz>,
}

/// A complete, serializable control scheme for one node.
///
/// `build()` is the single point where a scheme becomes daemons: both the
/// hwmon control stack and the cluster node simulator instantiate their
/// pipelines through it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemeSpec {
    /// Independent fan and DVFS arms (every pre-existing experiment).
    Split {
        /// Fan-side scheme.
        fan: FanScheme,
        /// DVFS-side scheme.
        dvfs: DvfsScheme,
    },
    /// The paper's §4.4 coordinated hybrid: the dynamic fan runs first in
    /// the pipeline and absorbs what out-of-band cooling can; tDVFS (same
    /// policy) only sacrifices performance for what remains.
    Hybrid {
        /// Aggressiveness policy `P_p` shared by both daemons.
        policy: Policy,
        /// Maximum allowed fan duty, percent.
        max_duty: FanDuty,
        /// Fan-controller tuning.
        config: ControllerConfig,
        /// tDVFS tuning.
        tdvfs: TdvfsConfig,
    },
    /// A fan arm plus the ACPI processor sleep-state daemon (§3.2.2): the
    /// unified controller walks C0–C3 as temperature history dictates.
    AcpiSleep {
        /// Aggressiveness policy `P_p` for the sleep controller.
        policy: Policy,
        /// Sleep-controller tuning.
        config: ControllerConfig,
        /// Fan-side scheme run ahead of the sleep daemon.
        fan: FanScheme,
    },
}

impl SchemeSpec {
    /// Composes independent fan and DVFS arms.
    pub fn split(fan: FanScheme, dvfs: DvfsScheme) -> Self {
        SchemeSpec::Split { fan, dvfs }
    }

    /// The §4.4 hybrid with default tuning.
    pub fn hybrid(policy: Policy, max_duty: FanDuty) -> Self {
        SchemeSpec::Hybrid {
            policy,
            max_duty,
            config: ControllerConfig::default(),
            tdvfs: TdvfsConfig::default(),
        }
    }

    /// ACPI sleep-state control with default tuning over the given fan arm.
    pub fn acpi_sleep(policy: Policy, fan: FanScheme) -> Self {
        SchemeSpec::AcpiSleep { policy, config: ControllerConfig::default(), fan }
    }

    /// Builds the daemon pipeline, in coordination order (fan before DVFS
    /// before sleep). This is the only scheme-to-daemons factory.
    pub fn build(&self, ctx: &BuildContext) -> Vec<Box<dyn ControlDaemon>> {
        match self {
            SchemeSpec::Split { fan, dvfs } => {
                let mut daemons = vec![fan.daemon()];
                daemons.extend(dvfs.daemon(ctx));
                daemons
            }
            SchemeSpec::Hybrid { policy, max_duty, config, tdvfs } => vec![
                Box::new(DynamicFan::new(*policy, *max_duty, *config)),
                Box::new(TdvfsDaemon::new(&ctx.available_mhz, *policy, *tdvfs)),
            ],
            SchemeSpec::AcpiSleep { policy, config, fan } => {
                vec![fan.daemon(), Box::new(AcpiSleepDaemon::new(*policy, *config))]
            }
        }
    }

    /// How the fan hardware must be bound for this scheme.
    pub fn fan_binding(&self) -> FanBinding {
        match self {
            SchemeSpec::Split { fan, .. } | SchemeSpec::AcpiSleep { fan, .. } => fan.binding(),
            SchemeSpec::Hybrid { max_duty, .. } => FanBinding::Manual { max_duty: *max_duty },
        }
    }

    /// True when the scheme needs a cpufreq driver bound.
    pub fn wants_cpufreq(&self) -> bool {
        match self {
            SchemeSpec::Split { dvfs, .. } => *dvfs != DvfsScheme::None,
            SchemeSpec::Hybrid { .. } => true,
            SchemeSpec::AcpiSleep { .. } => false,
        }
    }

    /// Validates every controller configuration reachable from this scheme.
    ///
    /// # Errors
    /// Returns the first invalid configuration found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            SchemeSpec::Split { fan, dvfs } => {
                fan.validate()?;
                dvfs.validate()
            }
            SchemeSpec::Hybrid { policy, config, tdvfs, .. } => {
                check_policy(*policy)?;
                config.validate()?;
                tdvfs.validate()
            }
            SchemeSpec::AcpiSleep { policy, config, fan } => {
                check_policy(*policy)?;
                config.validate()?;
                fan.validate()
            }
        }
    }

    /// Fan-side label for reports.
    pub fn fan_label(&self) -> String {
        match self {
            SchemeSpec::Split { fan, .. } | SchemeSpec::AcpiSleep { fan, .. } => fan.label(),
            SchemeSpec::Hybrid { policy, max_duty, .. } => {
                format!("hybrid(P_p={}, max={max_duty}%)", policy.value())
            }
        }
    }

    /// DVFS/in-band-side label for reports.
    pub fn dvfs_label(&self) -> String {
        match self {
            SchemeSpec::Split { dvfs, .. } => dvfs.label(),
            SchemeSpec::Hybrid { policy, .. } => {
                format!("hybrid-tDVFS(P_p={})", policy.value())
            }
            SchemeSpec::AcpiSleep { policy, .. } => {
                format!("acpi-sleep(P_p={})", policy.value())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> BuildContext {
        BuildContext { available_mhz: vec![2400, 2200, 2000, 1800, 1000] }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(FanScheme::ChipAutomatic { max_duty: 75 }.label(), "traditional(max=75%)");
        assert_eq!(FanScheme::Constant { duty: 75 }.label(), "constant(75%)");
        assert_eq!(FanScheme::dynamic(Policy::MODERATE, 25).label(), "dynamic(P_p=50, max=25%)");
        assert_eq!(DvfsScheme::None.label(), "no-dvfs");
        assert!(DvfsScheme::tdvfs(Policy::MODERATE).label().contains("51"));
        assert_eq!(DvfsScheme::cpuspeed().label(), "CPUSPEED");
    }

    #[test]
    fn software_static_label() {
        let s = FanScheme::SoftwareStatic { curve: StaticFanCurve::with_max(75) };
        assert_eq!(s.label(), "static-sw(max=75%)");
    }

    #[test]
    fn spec_labels_cover_all_arms() {
        let split = SchemeSpec::split(
            FanScheme::dynamic(Policy::MODERATE, 50),
            DvfsScheme::tdvfs(Policy::MODERATE),
        );
        assert_eq!(split.fan_label(), "dynamic(P_p=50, max=50%)");
        assert!(split.dvfs_label().starts_with("tDVFS"));

        let hybrid = SchemeSpec::hybrid(Policy::AGGRESSIVE, 80);
        assert_eq!(hybrid.fan_label(), "hybrid(P_p=25, max=80%)");
        assert_eq!(hybrid.dvfs_label(), "hybrid-tDVFS(P_p=25)");

        let acpi = SchemeSpec::acpi_sleep(Policy::MODERATE, FanScheme::Constant { duty: 40 });
        assert_eq!(acpi.fan_label(), "constant(40%)");
        assert_eq!(acpi.dvfs_label(), "acpi-sleep(P_p=50)");
    }

    #[test]
    fn build_produces_expected_pipelines() {
        let cases: Vec<(SchemeSpec, Vec<&str>)> = vec![
            (
                SchemeSpec::split(FanScheme::ChipAutomatic { max_duty: 100 }, DvfsScheme::None),
                vec!["chip-auto-fan"],
            ),
            (
                SchemeSpec::split(
                    FanScheme::SoftwareStatic { curve: StaticFanCurve::default() },
                    DvfsScheme::cpuspeed(),
                ),
                vec!["static-curve-fan", "cpuspeed"],
            ),
            (
                SchemeSpec::split(
                    FanScheme::dynamic_feedforward(Policy::MODERATE, 100),
                    DvfsScheme::tdvfs(Policy::MODERATE),
                ),
                vec!["feedforward-fan", "tdvfs"],
            ),
            (SchemeSpec::hybrid(Policy::MODERATE, 100), vec!["dynamic-fan", "tdvfs"]),
            (
                SchemeSpec::acpi_sleep(Policy::MODERATE, FanScheme::Constant { duty: 30 }),
                vec!["constant-fan", "acpi-sleep"],
            ),
        ];
        for (spec, expected) in cases {
            let labels: Vec<String> = spec.build(&ctx()).iter().map(|d| d.label()).collect();
            assert_eq!(labels, expected, "spec {spec:?}");
        }
    }

    #[test]
    fn fan_binding_per_arm() {
        assert_eq!(
            SchemeSpec::split(FanScheme::ChipAutomatic { max_duty: 75 }, DvfsScheme::None)
                .fan_binding(),
            FanBinding::ChipAuto { cap: 75 }
        );
        assert_eq!(
            SchemeSpec::split(
                FanScheme::SoftwareStatic { curve: StaticFanCurve::with_max(80) },
                DvfsScheme::None
            )
            .fan_binding(),
            FanBinding::Manual { max_duty: 80 }
        );
        assert_eq!(
            SchemeSpec::split(FanScheme::Constant { duty: 40 }, DvfsScheme::None).fan_binding(),
            FanBinding::Manual { max_duty: 100 }
        );
        assert_eq!(
            SchemeSpec::hybrid(Policy::MODERATE, 60).fan_binding(),
            FanBinding::Manual { max_duty: 60 }
        );
        assert_eq!(
            SchemeSpec::acpi_sleep(Policy::MODERATE, FanScheme::dynamic(Policy::MODERATE, 70))
                .fan_binding(),
            FanBinding::Manual { max_duty: 70 }
        );
    }

    #[test]
    fn wants_cpufreq_per_arm() {
        assert!(!SchemeSpec::split(FanScheme::dynamic(Policy::MODERATE, 100), DvfsScheme::None)
            .wants_cpufreq());
        assert!(SchemeSpec::split(
            FanScheme::dynamic(Policy::MODERATE, 100),
            DvfsScheme::cpuspeed()
        )
        .wants_cpufreq());
        assert!(SchemeSpec::hybrid(Policy::MODERATE, 100).wants_cpufreq());
        assert!(!SchemeSpec::acpi_sleep(Policy::MODERATE, FanScheme::Constant { duty: 40 })
            .wants_cpufreq());
    }

    #[test]
    fn validate_rejects_bad_controller_configs() {
        let bad = ControllerConfig { t_min_c: 60.0, t_max_c: 50.0, ..Default::default() };
        let spec = SchemeSpec::Split {
            fan: FanScheme::Dynamic { policy: Policy::MODERATE, max_duty: 100, config: bad },
            dvfs: DvfsScheme::None,
        };
        let err = spec.validate().expect_err("inverted range must be rejected");
        assert!(err.to_string().contains("temperature range"), "{err}");

        let hybrid = SchemeSpec::Hybrid {
            policy: Policy::MODERATE,
            max_duty: 100,
            config: ControllerConfig::default(),
            tdvfs: TdvfsConfig { controller: bad, ..Default::default() },
        };
        assert!(hybrid.validate().is_err());

        assert!(SchemeSpec::hybrid(Policy::MODERATE, 100).validate().is_ok());
    }

    #[test]
    fn out_of_range_policy_from_json_is_rejected() {
        // Deserialization bypasses Policy::new, so a scenario file can carry
        // P_p = 0 — validate() must catch it before n_p underflows.
        for raw in [0u32, 101] {
            let json = format!(
                "{{\"Hybrid\":{{\"policy\":{raw},\"max_duty\":60,\
                 \"config\":{},\"tdvfs\":{}}}}}",
                serde_json::to_string(&ControllerConfig::default()).expect("serialize"),
                serde_json::to_string(&TdvfsConfig::default()).expect("serialize"),
            );
            let spec: SchemeSpec = serde_json::from_str(&json).expect("deserialize");
            let err = spec.validate().expect_err("out-of-range policy must be rejected");
            assert!(err.to_string().contains("outside [1, 100]"), "{err}");
        }

        let tdvfs = DvfsScheme::Tdvfs { policy: Policy::MODERATE, config: TdvfsConfig::default() };
        assert!(tdvfs.validate().is_ok());
    }

    #[test]
    fn specs_round_trip_through_serde() {
        let specs = vec![
            SchemeSpec::split(
                FanScheme::dynamic_feedforward(Policy::AGGRESSIVE, 85),
                DvfsScheme::tdvfs(Policy::WEAK),
            ),
            SchemeSpec::split(
                FanScheme::SoftwareStatic { curve: StaticFanCurve::with_max(70) },
                DvfsScheme::cpuspeed(),
            ),
            SchemeSpec::hybrid(Policy::MODERATE, 60),
            SchemeSpec::acpi_sleep(Policy::MODERATE, FanScheme::ChipAutomatic { max_duty: 90 }),
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).expect("serialize");
            let back: SchemeSpec = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, spec);
            // Labels (and therefore reports) survive the round trip.
            assert_eq!(back.fan_label(), spec.fan_label());
            assert_eq!(back.dvfs_label(), spec.dvfs_label());
        }
    }
}
