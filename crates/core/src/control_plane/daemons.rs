//! The concrete control daemons the scheme factory assembles.
//!
//! Each daemon wraps one of the policy controllers from this crate and
//! adapts it to the [`ControlDaemon`] pipeline shape: sampling cadence,
//! attach/reapply paths, and actuation through the [`Actuators`] trait.
//! Daemons keep their build parameters so [`ControlDaemon::reset`] can
//! rebuild the controller from scratch.

use super::{window_level, Actuators, ControlDaemon, DaemonEvent, SensorSample};
use crate::acpi::{sleep_state_controller, SleepState, SleepStateController};
use crate::actuator::{FanDuty, FreqMhz};
use crate::baseline::StaticFanCurve;
use crate::control_array::Policy;
use crate::controller::ControllerConfig;
use crate::fan_control::DynamicFanController;
use crate::feedforward::{FeedforwardConfig, FeedforwardFanController};
use crate::governor::{CpuSpeedConfig, CpuSpeedGovernor};
use crate::tdvfs::{Tdvfs, TdvfsConfig};
use unitherm_obs::{ActuatorKind, CrossDirection, Event, Observer, WindowLevel};

/// Traditional chip-automatic fan control (paper §2): the ADT7467's own
/// thermal curve runs the fan; software only caps the maximum duty at
/// probe time and otherwise stays out of the way.
#[derive(Debug, Default)]
pub struct ChipAutoFan;

impl ChipAutoFan {
    /// Creates the daemon (the platform binding applies the duty cap).
    pub fn new() -> Self {
        Self
    }
}

impl ControlDaemon for ChipAutoFan {
    fn label(&self) -> String {
        "chip-auto-fan".to_string()
    }

    fn reset(&mut self) {}

    fn on_sample(
        &mut self,
        _sample: &SensorSample,
        _act: &mut dyn Actuators,
        _obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        DaemonEvent::None
    }

    fn reapply(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.restore_fan_auto();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Software reimplementation of the chip's static linear curve (baseline
/// for the paper's comparisons): every sample maps temperature straight to
/// a duty, no history.
#[derive(Debug)]
pub struct StaticCurveFan {
    curve: StaticFanCurve,
}

impl StaticCurveFan {
    /// Creates the daemon around a static curve.
    pub fn new(curve: StaticFanCurve) -> Self {
        Self { curve }
    }

    /// The curve in force.
    pub fn curve(&self) -> &StaticFanCurve {
        &self.curve
    }
}

impl ControlDaemon for StaticCurveFan {
    fn label(&self) -> String {
        "static-curve-fan".to_string()
    }

    fn reset(&mut self) {}

    fn attach(&mut self, sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_fan_duty(self.curve.duty_for(sample.die_temp_c));
    }

    fn on_sample(
        &mut self,
        sample: &SensorSample,
        act: &mut dyn Actuators,
        _obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        let Some(t) = sample.temp_c else {
            return DaemonEvent::None;
        };
        let duty = self.curve.duty_for(t);
        if duty != act.last_commanded_duty() && act.set_fan_duty(duty) {
            return DaemonEvent::FanDuty(duty);
        }
        DaemonEvent::None
    }

    fn reapply(&mut self, sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_fan_duty(self.curve.duty_for(sample.die_temp_c));
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A fan pinned at one duty (the paper's fixed-speed baseline).
#[derive(Debug)]
pub struct ConstantFanDaemon {
    duty: FanDuty,
}

impl ConstantFanDaemon {
    /// Creates the daemon; the duty is clamped to `[1, 100]`.
    pub fn new(duty: FanDuty) -> Self {
        Self { duty: duty.clamp(1, 100) }
    }

    /// The pinned duty.
    pub fn duty(&self) -> FanDuty {
        self.duty
    }
}

impl ControlDaemon for ConstantFanDaemon {
    fn label(&self) -> String {
        "constant-fan".to_string()
    }

    fn reset(&mut self) {}

    fn attach(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_fan_duty(self.duty);
    }

    fn on_sample(
        &mut self,
        _sample: &SensorSample,
        _act: &mut dyn Actuators,
        _obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        DaemonEvent::None
    }

    fn reapply(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_fan_duty(self.duty);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The paper's dynamic fan daemon (§4.2): the two-level history window
/// drives the mode index over the discretized duty set.
#[derive(Debug)]
pub struct DynamicFan {
    ctl: DynamicFanController,
    policy: Policy,
    max_duty: FanDuty,
    cfg: ControllerConfig,
}

impl DynamicFan {
    /// Creates the daemon.
    pub fn new(policy: Policy, max_duty: FanDuty, cfg: ControllerConfig) -> Self {
        Self { ctl: DynamicFanController::new(policy, max_duty, cfg), policy, max_duty, cfg }
    }

    /// The wrapped controller (stats, ablations).
    pub fn controller(&self) -> &DynamicFanController {
        &self.ctl
    }
}

impl ControlDaemon for DynamicFan {
    fn label(&self) -> String {
        "dynamic-fan".to_string()
    }

    fn reset(&mut self) {
        self.ctl = DynamicFanController::new(self.policy, self.max_duty, self.cfg);
    }

    fn attach(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_fan_duty(self.ctl.current_duty());
    }

    fn on_sample(
        &mut self,
        sample: &SensorSample,
        act: &mut dyn Actuators,
        obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        let Some(t) = sample.temp_c else {
            return DaemonEvent::None;
        };
        let from = self.ctl.current_duty();
        if let Some(decision) = self.ctl.observe(t) {
            if act.set_fan_duty(decision.mode) {
                let saturated = decision.index == 1 || decision.index == self.cfg.array_len;
                obs.mode_change(
                    ActuatorKind::Fan,
                    u32::from(from),
                    u32::from(decision.mode),
                    window_level(decision.level),
                    saturated,
                );
                return DaemonEvent::FanDuty(decision.mode);
            }
        }
        DaemonEvent::None
    }

    fn reapply(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_fan_duty(self.ctl.current_duty());
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The dynamic fan daemon augmented with utilization feedforward (the
/// paper's §5 future-work prediction path).
#[derive(Debug)]
pub struct FeedforwardFan {
    ctl: FeedforwardFanController,
    policy: Policy,
    max_duty: FanDuty,
    cfg: ControllerConfig,
    ff_cfg: FeedforwardConfig,
}

impl FeedforwardFan {
    /// Creates the daemon.
    pub fn new(
        policy: Policy,
        max_duty: FanDuty,
        cfg: ControllerConfig,
        ff_cfg: FeedforwardConfig,
    ) -> Self {
        Self {
            ctl: FeedforwardFanController::new(policy, max_duty, cfg, ff_cfg),
            policy,
            max_duty,
            cfg,
            ff_cfg,
        }
    }

    /// The wrapped controller (decision counters, inner access).
    pub fn controller(&self) -> &FeedforwardFanController {
        &self.ctl
    }
}

impl ControlDaemon for FeedforwardFan {
    fn label(&self) -> String {
        "feedforward-fan".to_string()
    }

    fn reset(&mut self) {
        self.ctl = FeedforwardFanController::new(self.policy, self.max_duty, self.cfg, self.ff_cfg);
    }

    fn attach(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_fan_duty(self.ctl.current_duty());
    }

    fn on_sample(
        &mut self,
        sample: &SensorSample,
        act: &mut dyn Actuators,
        obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        let Some(t) = sample.temp_c else {
            return DaemonEvent::None;
        };
        let from = self.ctl.current_duty();
        if let Some(decision) = self.ctl.observe(t, sample.utilization) {
            if act.set_fan_duty(decision.mode) {
                let saturated = decision.index == 1 || decision.index == self.cfg.array_len;
                obs.mode_change(
                    ActuatorKind::Fan,
                    u32::from(from),
                    u32::from(decision.mode),
                    window_level(decision.level),
                    saturated,
                );
                if decision.level == crate::controller::DecisionLevel::Feedforward {
                    obs.emit(Event::PredictionSample {
                        utilization: sample.utilization,
                        predicted_delta_c: decision.delta_c,
                    });
                }
                return DaemonEvent::FanDuty(decision.mode);
            }
        }
        DaemonEvent::None
    }

    fn reapply(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_fan_duty(self.ctl.current_duty());
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The temperature-driven DVFS daemon (paper §4.3): scales the CPU down
/// when the threshold is breached for consecutive rounds, restores after a
/// cool settle period.
#[derive(Debug)]
pub struct TdvfsDaemon {
    tdvfs: Tdvfs,
    freqs: Vec<FreqMhz>,
    policy: Policy,
    cfg: TdvfsConfig,
    /// Last observed side of the trigger threshold (None before the first
    /// temperature sample), for threshold-cross event edges.
    last_above: Option<bool>,
}

impl TdvfsDaemon {
    /// Creates the daemon over the platform's available frequencies
    /// (descending MHz).
    pub fn new(frequencies_desc_mhz: &[FreqMhz], policy: Policy, cfg: TdvfsConfig) -> Self {
        Self {
            tdvfs: Tdvfs::new(frequencies_desc_mhz, policy, cfg),
            freqs: frequencies_desc_mhz.to_vec(),
            policy,
            cfg,
            last_above: None,
        }
    }

    /// The wrapped tDVFS controller (counters, current frequency).
    pub fn inner(&self) -> &Tdvfs {
        &self.tdvfs
    }
}

impl ControlDaemon for TdvfsDaemon {
    fn label(&self) -> String {
        "tdvfs".to_string()
    }

    fn reset(&mut self) {
        self.tdvfs = Tdvfs::new(&self.freqs, self.policy, self.cfg);
        self.last_above = None;
    }

    fn on_sample(
        &mut self,
        sample: &SensorSample,
        act: &mut dyn Actuators,
        obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        let Some(t) = sample.temp_c else {
            return DaemonEvent::None;
        };
        let above = t > self.cfg.threshold_c;
        if self.last_above.is_some_and(|was| was != above) {
            obs.emit(Event::ThresholdCross {
                threshold_c: self.cfg.threshold_c,
                temp_c: t,
                direction: if above { CrossDirection::Above } else { CrossDirection::Below },
            });
        }
        self.last_above = Some(above);

        let from = self.tdvfs.current_frequency_mhz();
        if let Some(event) = self.tdvfs.observe(t) {
            let mhz = event.frequency_mhz();
            if act.set_frequency_mhz(mhz) {
                match event {
                    crate::tdvfs::TdvfsEvent::ScaleDown(_) => obs.tdvfs_engage(from, mhz),
                    crate::tdvfs::TdvfsEvent::Restore(_) => obs.tdvfs_release(mhz),
                }
                return DaemonEvent::Frequency(mhz);
            }
        }
        DaemonEvent::None
    }

    fn reapply(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.restore_frequency_mhz(self.tdvfs.current_frequency_mhz());
    }

    fn controls_frequency(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The CPUSPEED utilization governor daemon (paper §3.2.2): runs on the
/// physics-tick path because it watches utilization, not temperature.
#[derive(Debug)]
pub struct CpuSpeedDaemon {
    gov: CpuSpeedGovernor,
    freqs: Vec<FreqMhz>,
    cfg: CpuSpeedConfig,
}

impl CpuSpeedDaemon {
    /// Creates the daemon over the platform's available frequencies
    /// (descending MHz).
    pub fn new(frequencies_desc_mhz: &[FreqMhz], cfg: CpuSpeedConfig) -> Self {
        Self {
            gov: CpuSpeedGovernor::new(frequencies_desc_mhz, cfg),
            freqs: frequencies_desc_mhz.to_vec(),
            cfg,
        }
    }

    /// The wrapped governor.
    pub fn governor(&self) -> &CpuSpeedGovernor {
        &self.gov
    }
}

impl ControlDaemon for CpuSpeedDaemon {
    fn label(&self) -> String {
        "cpuspeed".to_string()
    }

    fn reset(&mut self) {
        self.gov = CpuSpeedGovernor::new(&self.freqs, self.cfg);
    }

    fn on_sample(
        &mut self,
        _sample: &SensorSample,
        _act: &mut dyn Actuators,
        _obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        DaemonEvent::None
    }

    fn on_tick(
        &mut self,
        dt_s: f64,
        utilization: f64,
        act: &mut dyn Actuators,
        obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        let from = self.gov.current_frequency_mhz();
        if let Some(mhz) = self.gov.observe(dt_s, utilization) {
            if act.set_frequency_mhz(mhz) {
                obs.mode_change(ActuatorKind::Dvfs, from, mhz, WindowLevel::Governor, false);
                return DaemonEvent::Frequency(mhz);
            }
        }
        DaemonEvent::None
    }

    fn wants_tick(&self) -> bool {
        true
    }

    fn reapply(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.restore_frequency_mhz(self.gov.current_frequency_mhz());
    }

    fn controls_frequency(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The ACPI processor sleep-state daemon (paper §3.2.2): the unified
/// controller walks the C0–C3 mode set as temperature history dictates.
#[derive(Debug)]
pub struct AcpiSleepDaemon {
    ctl: SleepStateController,
    policy: Policy,
    cfg: ControllerConfig,
}

impl AcpiSleepDaemon {
    /// Creates the daemon.
    pub fn new(policy: Policy, cfg: ControllerConfig) -> Self {
        Self { ctl: sleep_state_controller(policy, cfg), policy, cfg }
    }

    /// The sleep state the controller currently commands.
    pub fn current_state(&self) -> SleepState {
        self.ctl.current_mode()
    }

    /// The wrapped controller (stats).
    pub fn controller(&self) -> &SleepStateController {
        &self.ctl
    }
}

impl ControlDaemon for AcpiSleepDaemon {
    fn label(&self) -> String {
        "acpi-sleep".to_string()
    }

    fn reset(&mut self) {
        self.ctl = sleep_state_controller(self.policy, self.cfg);
    }

    fn on_sample(
        &mut self,
        sample: &SensorSample,
        act: &mut dyn Actuators,
        obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        let Some(t) = sample.temp_c else {
            return DaemonEvent::None;
        };
        let from = self.ctl.current_mode();
        if let Some(decision) = self.ctl.observe(t) {
            if act.set_sleep_state(decision.mode) {
                let saturated = decision.index == 1 || decision.index == self.cfg.array_len;
                obs.mode_change(
                    ActuatorKind::Sleep,
                    from as u32,
                    decision.mode as u32,
                    window_level(decision.level),
                    saturated,
                );
                return DaemonEvent::Sleep(decision.mode);
            }
        }
        DaemonEvent::None
    }

    fn reapply(&mut self, _sample: &SensorSample, act: &mut dyn Actuators) {
        let _ = act.set_sleep_state(self.ctl.current_mode());
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
