//! The unified control plane: an ordered pipeline of control daemons.
//!
//! The paper's system runs several cooperating daemons against one node —
//! feedforward-augmented fan control, plain dynamic fan control, tDVFS, the
//! CPUSPEED governor, ACPI sleep management — supervised by a failsafe
//! watchdog. This module gives them a single shape:
//!
//! * [`ControlDaemon`] — one control loop: observes a [`SensorSample`] at
//!   4 Hz (and, for utilization governors, every physics tick) and actuates
//!   through the hardware-agnostic [`Actuators`] trait;
//! * [`ControlPlane`] — the ordered daemon pipeline plus the failsafe
//!   supervisor. §4.4's hybrid coordination is expressed as pipeline
//!   ordering: fan daemons run before DVFS daemons before sleep daemons, so
//!   out-of-band cooling absorbs what it can before in-band techniques
//!   sacrifice performance;
//! * [`SchemeSpec`] — the serializable description of a control scheme,
//!   whose [`SchemeSpec::build`] factory is the *only* place in the
//!   workspace where a scheme becomes daemons.
//!
//! Platform bindings (`unitherm-hwmon`) implement [`Actuators`] over real
//! driver seams (i2c fan driver, cpufreq, direct node access); the plane and
//! the daemons never touch hardware types.
//!
//! # Failsafe ordering
//!
//! The failsafe runs *first* each sample, as a supervisor, not last as a
//! pipeline stage: it must act on the freshness of the sensor reading
//! before any daemon consumes the (possibly stale) temperature, and while
//! engaged it gates every daemon write without stopping the daemons from
//! observing. This matches the reference wiring bit-for-bit (see
//! `tests/control_plane_parity.rs`).

mod daemons;
mod scheme;

pub use daemons::{
    AcpiSleepDaemon, ChipAutoFan, ConstantFanDaemon, CpuSpeedDaemon, DynamicFan, FeedforwardFan,
    StaticCurveFan, TdvfsDaemon,
};
pub use scheme::{BuildContext, DvfsScheme, FanBinding, FanScheme, SchemeSpec};

use crate::acpi::SleepState;
use crate::actuator::{FanDuty, FreqMhz};
use crate::failsafe::{Failsafe, FailsafeAction, FailsafeConfig, FailsafeReason};
use unitherm_obs::{Counters, Event, NullSink, Observer, TripCause, WindowLevel};

use crate::controller::DecisionLevel;

/// Maps a controller decision level onto the observability vocabulary.
pub(crate) fn window_level(level: DecisionLevel) -> WindowLevel {
    match level {
        DecisionLevel::Level1 => WindowLevel::L1,
        DecisionLevel::Level2 => WindowLevel::L2,
        DecisionLevel::Feedforward => WindowLevel::Feedforward,
    }
}

fn trip_cause(reason: FailsafeReason) -> TripCause {
    match reason {
        FailsafeReason::StaleSensor => TripCause::StaleSensor,
        FailsafeReason::OverTemperature => TripCause::OverTemperature,
    }
}

/// One 4 Hz sensor sample, as the plane presents it to daemons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSample {
    /// Simulated wall-clock time of the sample, seconds.
    pub now_s: f64,
    /// A live sensor reading this sample, if the sensor path responded.
    /// The failsafe watchdog keys its stale-sensor detection off this.
    pub fresh_temp_c: Option<f64>,
    /// The temperature controllers act on: the fresh reading, or the last
    /// good cached reading when the sensor path is dark.
    pub temp_c: Option<f64>,
    /// CPU utilization in `[0, 1]` (feedforward and governors consume it).
    pub utilization: f64,
    /// Ground-truth die temperature, °C. Only attach-time initialization
    /// (e.g. seeding a static curve before the first sensor read) may use
    /// it; control decisions must use `temp_c`.
    pub die_temp_c: f64,
}

/// Hardware-agnostic actuation surface the daemons drive.
///
/// Implementations live in the platform-binding layer (`unitherm-hwmon`);
/// each method returns `true` when the actuation was applied (semantics per
/// method: a fan write accepted by the driver, a frequency request that
/// changed — or was accepted by — the CPU, …).
pub trait Actuators {
    /// Commands a fan duty through the manual-mode driver. Returns `true`
    /// when the driver accepted the write.
    fn set_fan_duty(&mut self, duty: FanDuty) -> bool;

    /// The duty most recently commanded through the driver (falls back to
    /// the chip's current duty when no manual-mode driver is bound).
    fn last_commanded_duty(&self) -> FanDuty;

    /// Returns the fan controller chip to its automatic curve (release path
    /// for chip-auto schemes). Returns `true` on a successful write.
    fn restore_fan_auto(&mut self) -> bool;

    /// Requests a CPU frequency through the binding's DVFS path. Returns
    /// `true` per the binding's semantics ("changed" through a cpufreq
    /// driver, "accepted" on a direct node request).
    fn set_frequency_mhz(&mut self, mhz: FreqMhz) -> bool;

    /// Re-applies a frequency on the failsafe release path, bypassing any
    /// cpufreq transition accounting.
    fn restore_frequency_mhz(&mut self, mhz: FreqMhz) -> bool;

    /// Restores the highest available frequency (release path when no
    /// daemon owns the frequency).
    fn restore_max_frequency(&mut self) -> bool;

    /// Forces maximum cooling — full fan duty and the lowest frequency —
    /// regardless of which daemons are attached. Returns the `(duty, MHz)`
    /// actually forced.
    fn force_max_cooling(&mut self) -> (FanDuty, FreqMhz);

    /// Requests an ACPI processor sleep state. Returns `true` when applied.
    fn set_sleep_state(&mut self, state: SleepState) -> bool;
}

/// An actuation event a daemon reports back to the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DaemonEvent {
    /// No actuation this sample.
    None,
    /// A fan duty was commanded.
    FanDuty(FanDuty),
    /// A frequency change was applied.
    Frequency(FreqMhz),
    /// A sleep state was commanded.
    Sleep(SleepState),
}

/// One control loop in the plane's pipeline.
///
/// `Send` is a supertrait so a whole pipeline (and the node that owns it)
/// can migrate to a worker thread — the cluster's node-parallel tick loop
/// shards nodes across a pool. Daemons are plain-data state machines, so
/// the bound is free.
pub trait ControlDaemon: Send {
    /// Short human-readable label (diagnostics).
    fn label(&self) -> String;

    /// Resets the daemon to its just-built state (controllers rebuilt,
    /// history cleared).
    fn reset(&mut self);

    /// One-time initialization after the platform binding is probed:
    /// applies the daemon's initial actuation (e.g. the starting duty).
    fn attach(&mut self, _sample: &SensorSample, _act: &mut dyn Actuators) {}

    /// The 4 Hz sampling path. Called only when `sample.temp_c` is present;
    /// writes are gated (dropped) while the failsafe is engaged. Accepted
    /// actuations (and pure observations like threshold crossings) are
    /// reported through `obs`.
    fn on_sample(
        &mut self,
        sample: &SensorSample,
        act: &mut dyn Actuators,
        obs: &mut Observer<'_>,
    ) -> DaemonEvent;

    /// The per-physics-tick path (utilization governors). Writes are gated
    /// while the failsafe is engaged.
    fn on_tick(
        &mut self,
        _dt_s: f64,
        _utilization: f64,
        _act: &mut dyn Actuators,
        _obs: &mut Observer<'_>,
    ) -> DaemonEvent {
        DaemonEvent::None
    }

    /// True when the daemon does real work in [`ControlDaemon::on_tick`].
    /// The plane skips the whole per-tick dispatch when no daemon in the
    /// pipeline wants it, which keeps the hot path free of virtual calls
    /// for the (common) sample-only schemes.
    fn wants_tick(&self) -> bool {
        false
    }

    /// Re-applies whatever the daemon currently wants (failsafe release
    /// path).
    fn reapply(&mut self, _sample: &SensorSample, _act: &mut dyn Actuators) {}

    /// True when this daemon owns the CPU frequency (so the release path
    /// must not force the maximum frequency over its head).
    fn controls_frequency(&self) -> bool {
        false
    }

    /// Downcast support for platform accessors.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Actuator wrapper that drops daemon writes while the failsafe owns the
/// hardware, without calling through to the platform (so driver write and
/// transition counters see nothing — exactly as if the daemon had checked
/// the engagement flag before touching the driver). Reads pass through.
struct GatedActuators<'a> {
    inner: &'a mut dyn Actuators,
    engaged: bool,
}

impl Actuators for GatedActuators<'_> {
    fn set_fan_duty(&mut self, duty: FanDuty) -> bool {
        if self.engaged {
            return false;
        }
        self.inner.set_fan_duty(duty)
    }

    fn last_commanded_duty(&self) -> FanDuty {
        self.inner.last_commanded_duty()
    }

    fn restore_fan_auto(&mut self) -> bool {
        if self.engaged {
            return false;
        }
        self.inner.restore_fan_auto()
    }

    fn set_frequency_mhz(&mut self, mhz: FreqMhz) -> bool {
        if self.engaged {
            return false;
        }
        self.inner.set_frequency_mhz(mhz)
    }

    fn restore_frequency_mhz(&mut self, mhz: FreqMhz) -> bool {
        if self.engaged {
            return false;
        }
        self.inner.restore_frequency_mhz(mhz)
    }

    fn restore_max_frequency(&mut self) -> bool {
        if self.engaged {
            return false;
        }
        self.inner.restore_max_frequency()
    }

    fn force_max_cooling(&mut self) -> (FanDuty, FreqMhz) {
        self.inner.force_max_cooling()
    }

    fn set_sleep_state(&mut self, state: SleepState) -> bool {
        if self.engaged {
            return false;
        }
        self.inner.set_sleep_state(state)
    }
}

/// What one plane sample did (the platform layers map this onto their own
/// outcome/recorder types).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlaneOutcome {
    /// The temperature the daemons acted on, if any.
    pub temp_c: Option<f64>,
    /// True while the failsafe owns the actuators (after this sample's
    /// observation).
    pub failsafe_engaged: bool,
    /// Fan duty forced by a failsafe engagement this sample.
    pub forced_fan_duty: Option<FanDuty>,
    /// Frequency forced by a failsafe engagement this sample, MHz.
    pub forced_freq_mhz: Option<FreqMhz>,
    /// Fan duty a daemon successfully commanded this sample.
    pub fan_duty: Option<FanDuty>,
    /// Frequency a daemon successfully applied this sample, MHz.
    pub freq_mhz: Option<FreqMhz>,
    /// Sleep state a daemon successfully commanded this sample.
    pub sleep_state: Option<SleepState>,
}

/// The ordered daemon pipeline plus the failsafe supervisor.
///
/// Build one from a serializable [`SchemeSpec`] (the single
/// scheme-to-daemons factory), bind it to an [`Actuators`] implementation,
/// and feed it 4 Hz [`SensorSample`]s:
///
/// ```
/// use unitherm_core::control_array::Policy;
/// use unitherm_core::control_plane::{
///     Actuators, BuildContext, ControlPlane, DvfsScheme, FanScheme, SchemeSpec, SensorSample,
/// };
/// use unitherm_core::acpi::SleepState;
/// use unitherm_core::actuator::{FanDuty, FreqMhz};
///
/// /// A toy actuation surface; real ones live in the platform binding.
/// #[derive(Default)]
/// struct Bench {
///     duty: FanDuty,
/// }
///
/// impl Actuators for Bench {
///     fn set_fan_duty(&mut self, duty: FanDuty) -> bool {
///         self.duty = duty;
///         true
///     }
///     fn last_commanded_duty(&self) -> FanDuty {
///         self.duty
///     }
///     fn restore_fan_auto(&mut self) -> bool {
///         true
///     }
///     fn set_frequency_mhz(&mut self, _mhz: FreqMhz) -> bool {
///         true
///     }
///     fn restore_frequency_mhz(&mut self, _mhz: FreqMhz) -> bool {
///         true
///     }
///     fn restore_max_frequency(&mut self) -> bool {
///         true
///     }
///     fn force_max_cooling(&mut self) -> (FanDuty, FreqMhz) {
///         self.duty = 100;
///         (100, 2000)
///     }
///     fn set_sleep_state(&mut self, _state: SleepState) -> bool {
///         true
///     }
/// }
///
/// // Dynamic out-of-band fan control only, moderate aggressiveness.
/// let spec = SchemeSpec::split(FanScheme::dynamic(Policy::MODERATE, 100), DvfsScheme::None);
/// let ctx = BuildContext { available_mhz: vec![2400, 2200, 2000] };
/// let mut plane = ControlPlane::new(spec.build(&ctx), None);
///
/// let mut act = Bench::default();
/// let sample = |now_s: f64, temp_c: f64| SensorSample {
///     now_s,
///     fresh_temp_c: Some(temp_c),
///     temp_c: Some(temp_c),
///     utilization: 1.0,
///     die_temp_c: temp_c,
/// };
/// plane.attach(&sample(0.0, 45.0), &mut act);
/// for i in 1..=20 {
///     // A hot plateau: the window fills, the mode index climbs.
///     plane.on_sample(&sample(f64::from(i) * 0.25, 70.0), &mut act);
/// }
/// assert!(act.last_commanded_duty() > 0, "sustained heat must spin the fan up");
/// ```
pub struct ControlPlane {
    daemons: Vec<Box<dyn ControlDaemon>>,
    failsafe: Option<Failsafe>,
    /// Cached `daemons.iter().any(wants_tick)` so `on_tick` can return
    /// without touching the pipeline when nothing listens per tick.
    any_wants_tick: bool,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("daemons", &self.daemons.iter().map(|d| d.label()).collect::<Vec<_>>())
            .field("failsafe", &self.failsafe)
            .finish()
    }
}

impl ControlPlane {
    /// Assembles a plane from an ordered daemon pipeline and an optional
    /// failsafe watchdog.
    pub fn new(daemons: Vec<Box<dyn ControlDaemon>>, failsafe: Option<FailsafeConfig>) -> Self {
        let any_wants_tick = daemons.iter().any(|d| d.wants_tick());
        Self { daemons, failsafe: failsafe.map(Failsafe::new), any_wants_tick }
    }

    /// True when any attached daemon runs on the per-tick path. When false,
    /// `on_tick` is a guaranteed no-op between samples — simulators use this
    /// to route the node onto a batched physics fast path.
    pub fn wants_tick(&self) -> bool {
        self.any_wants_tick
    }

    /// One-time initialization: lets every daemon apply its initial
    /// actuation (called once after the platform binding is probed).
    pub fn attach(&mut self, sample: &SensorSample, act: &mut dyn Actuators) {
        for d in &mut self.daemons {
            d.attach(sample, act);
        }
    }

    /// Runs the 4 Hz sampling path: failsafe supervision first, then the
    /// daemon pipeline (observing always, writing only while not engaged).
    /// Events and counters go through `obs`.
    pub fn on_sample_observed(
        &mut self,
        sample: &SensorSample,
        act: &mut dyn Actuators,
        obs: &mut Observer<'_>,
    ) -> PlaneOutcome {
        obs.counters.samples += 1;
        let mut out = PlaneOutcome { temp_c: sample.temp_c, ..PlaneOutcome::default() };

        if let Some(fs) = &mut self.failsafe {
            match fs.observe(sample.fresh_temp_c) {
                Some(FailsafeAction::Engage(reason)) => {
                    let (duty, mhz) = act.force_max_cooling();
                    out.forced_fan_duty = Some(duty);
                    out.forced_freq_mhz = Some(mhz);
                    obs.failsafe_trip(trip_cause(reason));
                }
                Some(FailsafeAction::Release) => {
                    for d in &mut self.daemons {
                        d.reapply(sample, act);
                    }
                    if !self.daemons.iter().any(|d| d.controls_frequency()) {
                        let _ = act.restore_max_frequency();
                    }
                    obs.emit(Event::FailsafeRelease);
                }
                None => {}
            }
        }
        let engaged = self.is_failsafe_engaged();
        out.failsafe_engaged = engaged;

        if sample.temp_c.is_some() {
            let mut gate = GatedActuators { inner: act, engaged };
            for d in &mut self.daemons {
                match d.on_sample(sample, &mut gate, obs) {
                    DaemonEvent::FanDuty(duty) => out.fan_duty = Some(duty),
                    DaemonEvent::Frequency(mhz) => out.freq_mhz = Some(mhz),
                    DaemonEvent::Sleep(state) => out.sleep_state = Some(state),
                    DaemonEvent::None => {}
                }
            }
        }
        out
    }

    /// [`ControlPlane::on_sample_observed`] with observability discarded
    /// (null sink, throwaway counters). Behavior is identical — the
    /// observer is write-only from the plane's perspective.
    pub fn on_sample(&mut self, sample: &SensorSample, act: &mut dyn Actuators) -> PlaneOutcome {
        let mut sink = NullSink;
        let mut counters = Counters::default();
        let mut obs = Observer::new(&mut sink, &mut counters, 0, sample.now_s);
        self.on_sample_observed(sample, act, &mut obs)
    }

    /// Runs the per-physics-tick path (utilization governors observe every
    /// tick). Returns the frequency applied this tick, if any. Ticks
    /// short-circuited because no daemon listens are counted in
    /// `obs.counters.ticks_skipped`.
    pub fn on_tick_observed(
        &mut self,
        dt_s: f64,
        utilization: f64,
        act: &mut dyn Actuators,
        obs: &mut Observer<'_>,
    ) -> Option<FreqMhz> {
        if !self.any_wants_tick {
            obs.counters.ticks_skipped += 1;
            return None;
        }
        let engaged = self.is_failsafe_engaged();
        let mut gate = GatedActuators { inner: act, engaged };
        let mut applied = None;
        for d in &mut self.daemons {
            if let DaemonEvent::Frequency(mhz) = d.on_tick(dt_s, utilization, &mut gate, obs) {
                applied = Some(mhz);
            }
        }
        applied
    }

    /// [`ControlPlane::on_tick_observed`] with observability discarded.
    pub fn on_tick(
        &mut self,
        dt_s: f64,
        utilization: f64,
        act: &mut dyn Actuators,
    ) -> Option<FreqMhz> {
        let mut sink = NullSink;
        let mut counters = Counters::default();
        let mut obs = Observer::new(&mut sink, &mut counters, 0, 0.0);
        self.on_tick_observed(dt_s, utilization, act, &mut obs)
    }

    /// True while the failsafe owns the actuators.
    pub fn is_failsafe_engaged(&self) -> bool {
        self.failsafe.as_ref().is_some_and(Failsafe::is_engaged)
    }

    /// The failsafe watchdog, if attached.
    pub fn failsafe(&self) -> Option<&Failsafe> {
        self.failsafe.as_ref()
    }

    /// Total failsafe engagements (0 when no failsafe is attached).
    pub fn failsafe_engagement_count(&self) -> u64 {
        self.failsafe.as_ref().map_or(0, Failsafe::engagement_count)
    }

    /// The first daemon of concrete type `T` in the pipeline, if any
    /// (platform accessors downcast through this).
    pub fn daemon<T: 'static>(&self) -> Option<&T> {
        self.daemons.iter().find_map(|d| d.as_any().downcast_ref::<T>())
    }

    /// True when some daemon in the pipeline owns the CPU frequency.
    pub fn controls_frequency(&self) -> bool {
        self.daemons.iter().any(|d| d.controls_frequency())
    }

    /// The pipeline's daemon labels, in order.
    pub fn labels(&self) -> Vec<String> {
        self.daemons.iter().map(|d| d.label()).collect()
    }

    /// Resets every daemon to its just-built state.
    pub fn reset(&mut self) {
        for d in &mut self.daemons {
            d.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control_array::Policy;

    /// A recording in-memory actuator for plane-level unit tests.
    #[derive(Debug, Default)]
    struct TestActuators {
        duty: FanDuty,
        freq: FreqMhz,
        sleep: Option<SleepState>,
        fan_writes: u32,
        freq_writes: u32,
        forced: u32,
    }

    impl Actuators for TestActuators {
        fn set_fan_duty(&mut self, duty: FanDuty) -> bool {
            self.duty = duty;
            self.fan_writes += 1;
            true
        }
        fn last_commanded_duty(&self) -> FanDuty {
            self.duty
        }
        fn restore_fan_auto(&mut self) -> bool {
            true
        }
        fn set_frequency_mhz(&mut self, mhz: FreqMhz) -> bool {
            let changed = self.freq != mhz;
            self.freq = mhz;
            self.freq_writes += 1;
            changed
        }
        fn restore_frequency_mhz(&mut self, mhz: FreqMhz) -> bool {
            self.freq = mhz;
            true
        }
        fn restore_max_frequency(&mut self) -> bool {
            self.freq = 2400;
            true
        }
        fn force_max_cooling(&mut self) -> (FanDuty, FreqMhz) {
            self.duty = 100;
            self.freq = 1000;
            self.forced += 1;
            (100, 1000)
        }
        fn set_sleep_state(&mut self, state: SleepState) -> bool {
            self.sleep = Some(state);
            true
        }
    }

    fn sample(t: Option<f64>) -> SensorSample {
        SensorSample {
            now_s: 0.0,
            fresh_temp_c: t,
            temp_c: t,
            utilization: 1.0,
            die_temp_c: t.unwrap_or(40.0),
        }
    }

    fn dynamic_plane(failsafe: Option<FailsafeConfig>) -> ControlPlane {
        let spec = SchemeSpec::split(FanScheme::dynamic(Policy::MODERATE, 100), DvfsScheme::None);
        let ctx = BuildContext { available_mhz: vec![2400, 2200, 2000, 1800, 1000] };
        ControlPlane::new(spec.build(&ctx), failsafe)
    }

    #[test]
    fn pipeline_runs_daemons_in_order() {
        let plane = ControlPlane::new(
            SchemeSpec::hybrid(Policy::MODERATE, 100)
                .build(&BuildContext { available_mhz: vec![2400, 2200, 2000, 1800, 1000] }),
            None,
        );
        let labels = plane.labels();
        assert_eq!(labels.len(), 2);
        assert!(labels[0].contains("fan"), "fan first: {labels:?}");
        assert!(labels[1].contains("tdvfs"), "dvfs second: {labels:?}");
        assert!(plane.controls_frequency());
    }

    #[test]
    fn sudden_step_commands_a_duty() {
        let mut plane = dynamic_plane(None);
        let mut act = TestActuators::default();
        let mut commanded = None;
        for t in [45.0, 45.0, 51.0, 51.0] {
            let out = plane.on_sample(&sample(Some(t)), &mut act);
            commanded = out.fan_duty.or(commanded);
        }
        let duty = commanded.expect("sudden step must command a duty");
        assert!(duty > 40, "{duty}");
        assert_eq!(act.duty, duty);
    }

    #[test]
    fn failsafe_engages_and_gates_daemon_writes() {
        let mut plane = dynamic_plane(Some(FailsafeConfig::default()));
        let mut act = TestActuators::default();
        // Warm up with live readings, then go dark past the stale budget.
        for _ in 0..4 {
            let _ = plane.on_sample(&sample(Some(45.0)), &mut act);
        }
        let mut engaged_out = None;
        for _ in 0..25 {
            let out = plane.on_sample(&sample(None), &mut act);
            if out.forced_fan_duty.is_some() {
                engaged_out = Some(out);
            }
        }
        let out = engaged_out.expect("stale sensor must engage the failsafe");
        assert_eq!(out.forced_fan_duty, Some(100));
        assert_eq!(out.forced_freq_mhz, Some(1000));
        assert!(plane.is_failsafe_engaged());
        assert_eq!(plane.failsafe_engagement_count(), 1);
        // While engaged, a hot stale reading must not reach the actuators.
        let writes_before = act.fan_writes;
        let hot = SensorSample {
            now_s: 0.0,
            fresh_temp_c: None,
            temp_c: Some(60.0),
            utilization: 1.0,
            die_temp_c: 60.0,
        };
        for _ in 0..8 {
            let out = plane.on_sample(&hot, &mut act);
            assert_eq!(out.fan_duty, None, "daemon writes are gated");
        }
        assert_eq!(act.fan_writes, writes_before, "no writes while engaged");
    }

    #[test]
    fn downcast_accessor_finds_daemons() {
        let plane = dynamic_plane(None);
        assert!(plane.daemon::<DynamicFan>().is_some());
        assert!(plane.daemon::<TdvfsDaemon>().is_none());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut plane = dynamic_plane(None);
        let mut act = TestActuators::default();
        for t in [45.0, 45.0, 51.0, 51.0] {
            let _ = plane.on_sample(&sample(Some(t)), &mut act);
        }
        let fan = plane.daemon::<DynamicFan>().unwrap();
        assert!(fan.controller().current_duty() > 1);
        plane.reset();
        let fan = plane.daemon::<DynamicFan>().unwrap();
        assert_eq!(fan.controller().current_duty(), 1);
    }
}
