//! Ablation-study benchmarks (the `DESIGN.md` §5 design-choice studies).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use unitherm_bench::BENCH_SCALE;
use unitherm_experiments::ablations;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    g.bench_function("window_levels", |b| {
        b.iter(|| black_box(ablations::window_levels(BENCH_SCALE).rows.len()))
    });
    g.bench_function("l1_size", |b| {
        b.iter(|| black_box(ablations::l1_size(BENCH_SCALE).rows.len()))
    });
    g.bench_function("fill_rule", |b| {
        b.iter(|| black_box(ablations::fill_rule(BENCH_SCALE).indices.len()))
    });
    g.bench_function("hybrid_isolation", |b| {
        b.iter(|| black_box(ablations::hybrid_isolation(BENCH_SCALE).rows.len()))
    });
    g.bench_function("tdvfs_hysteresis", |b| {
        b.iter(|| black_box(ablations::tdvfs_hysteresis(BENCH_SCALE).naive_transitions))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
