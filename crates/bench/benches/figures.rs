//! One benchmark per paper figure: the wall-clock cost of regenerating each
//! evaluation result. These are the `bench_figN` targets promised in
//! `DESIGN.md` §4.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use unitherm_bench::BENCH_SCALE;
use unitherm_experiments::{fig1, fig10, fig2, fig5, fig6, fig7, fig8, fig9};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig1_static_curve", |b| {
        b.iter(|| black_box(fig1::run(BENCH_SCALE).software_duty.len()))
    });
    g.bench_function("fig2_thermal_taxonomy", |b| {
        b.iter(|| black_box(fig2::run(BENCH_SCALE).labels.len()))
    });
    g.bench_function("fig5_policy_sweep", |b| {
        b.iter(|| black_box(fig5::run(BENCH_SCALE).avg_duties()))
    });
    g.bench_function("fig6_fan_comparison", |b| {
        b.iter(|| black_box(fig6::run(BENCH_SCALE).reports.len()))
    });
    g.bench_function("fig7_max_pwm_sweep", |b| {
        b.iter(|| black_box(fig7::run(BENCH_SCALE).settled_temps()))
    });
    g.bench_function("fig8_tdvfs_static_fan", |b| {
        b.iter(|| black_box(fig8::run(BENCH_SCALE).scale_downs()))
    });
    g.bench_function("fig9_tdvfs_vs_cpuspeed", |b| {
        b.iter(|| black_box(fig9::run(BENCH_SCALE).final_temps()))
    });
    g.bench_function("fig10_hybrid_sweep", |b| {
        b.iter(|| black_box(fig10::run(BENCH_SCALE).avg_temps()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
