//! Simulator throughput benchmarks: how many simulated seconds per wall
//! second the physics substrate and the cluster engine deliver.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use unitherm_cluster::{
    run_scenarios_parallel, DvfsScheme, FanScheme, Scenario, Simulation, WorkloadSpec,
};
use unitherm_core::control_array::Policy;
use unitherm_simnode::{Node, NodeConfig};

fn bench_node_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("node");
    g.throughput(Throughput::Elements(1));
    g.bench_function("tick_50ms", |b| {
        let mut node = Node::new(NodeConfig::default(), 1);
        node.set_utilization(0.9);
        b.iter(|| {
            node.tick(black_box(0.05));
            black_box(node.die_temp_c())
        });
    });
    g.finish();
}

fn bench_cluster_second(c: &mut Criterion) {
    // One simulated second (20 ticks + 4 samples) of a 4-node cluster under
    // full coordinated control.
    let mut g = c.benchmark_group("cluster");
    for nodes in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("simulated_minute", nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let report = Simulation::new(
                    Scenario::new("bench")
                        .with_nodes(nodes)
                        .with_workload(WorkloadSpec::CpuBurn)
                        .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
                        .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
                        .with_max_time(60.0)
                        .with_recording(false),
                )
                .run();
                black_box(report.avg_temp_c())
            });
        });
    }
    g.finish();
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.bench_function("8_scenarios_parallel", |b| {
        b.iter(|| {
            let scenarios: Vec<Scenario> = (0..8)
                .map(|i| {
                    Scenario::new(format!("s{i}"))
                        .with_nodes(4)
                        .with_seed(i)
                        .with_workload(WorkloadSpec::CpuBurn)
                        .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
                        .with_max_time(60.0)
                        .with_recording(false)
                })
                .collect();
            black_box(run_scenarios_parallel(scenarios, 8).len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_node_tick, bench_cluster_second, bench_parallel_sweep);
criterion_main!(benches);
