//! Table 1 regeneration benchmark: the six-run governor × fan-cap sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use unitherm_bench::BENCH_SCALE;
use unitherm_experiments::table1;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("six_run_sweep", |b| {
        b.iter(|| {
            let result = table1::run(BENCH_SCALE);
            black_box(result.cells.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
