//! Hot-path benchmarks for the paper's control framework.
//!
//! These answer the deployment question the paper's software raises: how
//! much CPU does the daemon itself burn per 4 Hz sensor sample? (Answer:
//! nanoseconds — the framework is effectively free next to the 250 ms
//! sampling period.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use unitherm_core::actuator::fan_mode_set;
use unitherm_core::classify::BehaviorClassifier;
use unitherm_core::control_array::{Policy, ThermalControlArray};
use unitherm_core::controller::{ControllerConfig, UnifiedController};
use unitherm_core::failsafe::Failsafe;
use unitherm_core::feedforward::FeedforwardFanController;
use unitherm_core::governor::CpuSpeedGovernor;
use unitherm_core::tdvfs::Tdvfs;
use unitherm_core::window::TwoLevelWindow;

const FREQS: [u32; 5] = [2400, 2200, 2000, 1800, 1000];

/// A deterministic pseudo-temperature stream exercising all regimes.
fn temp_stream(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            48.0 + 6.0 * (t / 80.0).sin() + 0.4 * if i % 2 == 0 { 1.0 } else { -1.0 }
        })
        .collect()
}

fn bench_window(c: &mut Criterion) {
    let stream = temp_stream(4096);
    c.bench_function("window/push", |b| {
        let mut w = TwoLevelWindow::default();
        let mut i = 0;
        b.iter(|| {
            let s = stream[i & 4095];
            i += 1;
            black_box(w.push(black_box(s)))
        });
    });
}

fn bench_controller_observe(c: &mut Criterion) {
    let stream = temp_stream(4096);
    c.bench_function("controller/observe", |b| {
        let mut ctl = UnifiedController::new(
            &fan_mode_set(100),
            Policy::MODERATE,
            ControllerConfig::default(),
        );
        let mut i = 0;
        b.iter(|| {
            let s = stream[i & 4095];
            i += 1;
            black_box(ctl.observe(black_box(s)))
        });
    });
}

fn bench_array_build(c: &mut Criterion) {
    let duties = fan_mode_set(100);
    c.bench_function("control_array/build_n100", |b| {
        b.iter(|| {
            black_box(ThermalControlArray::with_default_len(black_box(&duties), Policy::MODERATE))
        });
    });
    c.bench_function("control_array/build_dvfs", |b| {
        b.iter(|| {
            black_box(ThermalControlArray::with_default_len(black_box(&FREQS), Policy::AGGRESSIVE))
        });
    });
}

fn bench_tdvfs(c: &mut Criterion) {
    let stream = temp_stream(4096);
    c.bench_function("tdvfs/observe", |b| {
        let mut d = Tdvfs::with_defaults(&FREQS, Policy::MODERATE);
        let mut i = 0;
        b.iter(|| {
            let s = stream[i & 4095];
            i += 1;
            black_box(d.observe(black_box(s)))
        });
    });
}

fn bench_governor(c: &mut Criterion) {
    c.bench_function("cpuspeed/observe", |b| {
        let mut g = CpuSpeedGovernor::with_defaults(&FREQS);
        let mut i = 0u64;
        b.iter(|| {
            let u = if (i / 12) % 4 == 3 { 0.2 } else { 0.95 };
            i += 1;
            black_box(g.observe(black_box(0.25), black_box(u)))
        });
    });
}

fn bench_classifier(c: &mut Criterion) {
    let stream = temp_stream(4096);
    c.bench_function("classifier/push", |b| {
        let mut cl = BehaviorClassifier::default();
        let mut i = 0;
        b.iter(|| {
            let s = stream[i & 4095];
            i += 1;
            black_box(cl.push(black_box(s)))
        });
    });
}

fn bench_feedforward(c: &mut Criterion) {
    let stream = temp_stream(4096);
    c.bench_function("feedforward/observe", |b| {
        let mut ctl = FeedforwardFanController::with_defaults(Policy::MODERATE, 100);
        let mut i = 0;
        b.iter(|| {
            let s = stream[i & 4095];
            let u = if (i / 40) % 2 == 0 { 0.95 } else { 0.2 };
            i += 1;
            black_box(ctl.observe(black_box(s), black_box(u)))
        });
    });
}

fn bench_failsafe(c: &mut Criterion) {
    let stream = temp_stream(4096);
    c.bench_function("failsafe/observe", |b| {
        let mut fs = Failsafe::with_defaults();
        let mut i = 0;
        b.iter(|| {
            let s = if i % 97 == 0 { None } else { Some(stream[i & 4095]) };
            i += 1;
            black_box(fs.observe(black_box(s)))
        });
    });
}

criterion_group!(
    benches,
    bench_window,
    bench_controller_observe,
    bench_array_build,
    bench_tdvfs,
    bench_governor,
    bench_classifier,
    bench_feedforward,
    bench_failsafe
);
criterion_main!(benches);
