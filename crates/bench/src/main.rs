//! `unitherm-bench`: the persistent cluster throughput benchmark.
//!
//! Runs a fixed scenario matrix (1/4/16/64 nodes × cpu-burn/NPB BT.A ×
//! dynamic-fan/hybrid), measures steady-state tick throughput and sweep
//! wall time, and writes `BENCH_cluster.json` at the repo root so every PR
//! has a perf trajectory to regress against.
//!
//! Usage:
//!
//! ```text
//! unitherm-bench [--quick] [--out PATH] [--min-time SECONDS]
//! ```
//!
//! `--quick` shrinks the matrix and measurement window for CI smoke runs.

use std::time::Instant;

use serde::Serialize;
use unitherm_cluster::scenario::{Scenario, WorkloadSpec};
use unitherm_cluster::scheme::{FanScheme, SchemeSpec};
use unitherm_cluster::sim::Simulation;
use unitherm_cluster::sweep::run_scenarios_parallel;
use unitherm_core::control_array::Policy;
use unitherm_workload::{NpbBenchmark, NpbClass};

/// Pre-PR tick throughput of the 16-node cpu-burn / dynamic-fan case,
/// measured at commit 18f0b99 (before the allocation-free tick loop) on the
/// same reference machine that produced the committed `BENCH_cluster.json`.
/// Kept as the fixed comparison point for the acceptance criterion.
const BASELINE_16NODE_BURN_TICKS_PER_S: f64 = 688_709.0;

/// The scheme half of the matrix.
#[derive(Clone, Copy)]
enum Scheme {
    DynamicFan,
    Hybrid,
}

impl Scheme {
    fn label(self) -> &'static str {
        match self {
            Scheme::DynamicFan => "dynamic-fan",
            Scheme::Hybrid => "hybrid",
        }
    }
}

/// One cell of the benchmark matrix.
#[derive(Clone, Copy)]
struct Case {
    nodes: usize,
    burn: bool,
    scheme: Scheme,
}

impl Case {
    fn name(&self) -> String {
        format!(
            "{}x-{}-{}",
            self.nodes,
            if self.burn { "burn" } else { "bt-a" },
            self.scheme.label()
        )
    }

    fn scenario(&self) -> Scenario {
        let workload = if self.burn {
            WorkloadSpec::CpuBurn
        } else {
            WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::A }
        };
        let s = Scenario::new(self.name())
            .with_nodes(self.nodes)
            .with_workload(workload)
            .with_recording(false)
            .with_max_time(1e9);
        match self.scheme {
            Scheme::DynamicFan => s.with_fan(FanScheme::dynamic(Policy::MODERATE, 100)),
            Scheme::Hybrid => s.with_scheme(SchemeSpec::hybrid(Policy::MODERATE, 100)),
        }
    }
}

/// Measured throughput for one matrix cell.
#[derive(Serialize)]
struct CaseResult {
    name: String,
    nodes: usize,
    workload: String,
    scheme: String,
    ticks_per_s: f64,
    node_ticks_per_s: f64,
    measured_ticks: u64,
}

#[derive(Serialize)]
struct SweepResult {
    scenarios: usize,
    threads: usize,
    wall_time_s: f64,
}

#[derive(Serialize)]
struct Comparison {
    scenario: String,
    baseline_commit: String,
    baseline_ticks_per_s: f64,
    current_ticks_per_s: f64,
    improvement_pct: f64,
}

#[derive(Serialize)]
struct BenchReport {
    schema: String,
    mode: String,
    commit: String,
    results: Vec<CaseResult>,
    sweep: SweepResult,
    comparison: Comparison,
}

/// Measures steady-state tick throughput for one case.
///
/// Warms the simulation past its start-up transient, then times batches of
/// ticks until `min_wall_s` of wall time has accumulated and reports the
/// *fastest* batch. The peak batch reflects the code rather than scheduler
/// interference, which makes the number reproducible on shared machines.
/// Finite workloads (NPB) are rebuilt before they finish so the measurement
/// never leaves the running regime; rebuild time is excluded from the timed
/// window.
fn measure_case(case: Case, min_wall_s: f64) -> CaseResult {
    const WARMUP_TICKS: u32 = 200;
    const BATCH_TICKS: u32 = 1000;
    // BT.A finishes near its ~100 s nominal duration; stay well short.
    const REBUILD_AT_SIM_S: f64 = 60.0;

    let build = || {
        let mut sim = Simulation::new(case.scenario());
        for _ in 0..WARMUP_TICKS {
            sim.tick();
        }
        sim
    };

    let mut sim = build();
    let mut ticks: u64 = 0;
    let mut elapsed = 0.0;
    let mut best_batch_s = f64::INFINITY;
    while elapsed < min_wall_s {
        if sim.time_s() > REBUILD_AT_SIM_S {
            sim = build();
        }
        let t0 = Instant::now();
        for _ in 0..BATCH_TICKS {
            sim.tick();
        }
        let batch_s = t0.elapsed().as_secs_f64();
        elapsed += batch_s;
        ticks += u64::from(BATCH_TICKS);
        best_batch_s = best_batch_s.min(batch_s);
    }

    let ticks_per_s = f64::from(BATCH_TICKS) / best_batch_s;
    CaseResult {
        name: case.name(),
        nodes: case.nodes,
        workload: if case.burn { "cpu-burn" } else { "bt-a" }.to_string(),
        scheme: case.scheme.label().to_string(),
        ticks_per_s,
        node_ticks_per_s: ticks_per_s * case.nodes as f64,
        measured_ticks: ticks,
    }
}

/// Times a parallel sweep over short versions of every matrix scenario.
fn measure_sweep(cases: &[Case], sim_seconds: f64) -> SweepResult {
    let scenarios: Vec<Scenario> =
        cases.iter().map(|c| c.scenario().with_max_time(sim_seconds)).collect();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let n = scenarios.len();
    let t0 = Instant::now();
    let reports = run_scenarios_parallel(scenarios, threads);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(reports.len(), n, "sweep must produce every report");
    SweepResult { scenarios: n, threads, wall_time_s: wall }
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_cluster.json".to_string();
    let mut min_wall_s: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--min-time" => {
                min_wall_s =
                    Some(args.next().expect("--min-time needs seconds").parse().expect("number"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: unitherm-bench [--quick] [--out PATH] [--min-time SECONDS]");
                std::process::exit(2);
            }
        }
    }
    let min_wall_s = min_wall_s.unwrap_or(if quick { 0.02 } else { 0.5 });

    let node_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 16, 64] };
    let mut cases = Vec::new();
    for &nodes in node_counts {
        for burn in [true, false] {
            for scheme in [Scheme::DynamicFan, Scheme::Hybrid] {
                cases.push(Case { nodes, burn, scheme });
            }
        }
    }

    let mut results = Vec::with_capacity(cases.len());
    for &case in &cases {
        let r = measure_case(case, min_wall_s);
        eprintln!(
            "{:<26} {:>12.0} ticks/s  ({:>12.0} node-ticks/s)",
            r.name, r.ticks_per_s, r.node_ticks_per_s
        );
        results.push(r);
    }

    let sweep = measure_sweep(&cases, if quick { 2.0 } else { 20.0 });
    eprintln!(
        "sweep: {} scenarios on {} threads in {:.2} s",
        sweep.scenarios, sweep.threads, sweep.wall_time_s
    );

    let reference = "16x-burn-dynamic-fan";
    let current =
        results.iter().find(|r| r.name == reference).map(|r| r.ticks_per_s).unwrap_or(f64::NAN);
    let improvement_pct = if BASELINE_16NODE_BURN_TICKS_PER_S > 0.0 && current.is_finite() {
        (current / BASELINE_16NODE_BURN_TICKS_PER_S - 1.0) * 100.0
    } else {
        f64::NAN
    };
    if current.is_finite() {
        eprintln!(
            "16-node burn: {current:.0} ticks/s vs baseline {BASELINE_16NODE_BURN_TICKS_PER_S:.0} \
             ({improvement_pct:+.1} %)"
        );
    }

    let report = BenchReport {
        schema: "unitherm-bench/v1".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        commit: git_commit(),
        results,
        sweep,
        comparison: Comparison {
            scenario: reference.to_string(),
            baseline_commit: "18f0b99".to_string(),
            baseline_ticks_per_s: BASELINE_16NODE_BURN_TICKS_PER_S,
            current_ticks_per_s: current,
            improvement_pct,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    eprintln!("wrote {out_path}");
}
