//! `unitherm-bench`: the persistent cluster throughput benchmark.
//!
//! Runs a fixed scenario matrix (1/4/16/64 nodes × cpu-burn/NPB BT.A ×
//! dynamic-fan/hybrid), measures steady-state tick throughput and sweep
//! wall time, and writes `BENCH_cluster.json` at the repo root so every PR
//! has a perf trajectory to regress against.
//!
//! Usage:
//!
//! ```text
//! unitherm-bench [--quick] [--out PATH] [--min-time SECONDS] [--journal PATH]
//!                [--journal-format jsonl|bjl] [--threads N] [--nodes N]
//! unitherm-bench --check FILE [--baseline FILE] [--max-regression-pct N]
//! unitherm-bench --replay-faults JOURNAL
//! unitherm-bench --chaos-smoke SCENARIO.json
//! ```
//!
//! `--quick` shrinks the matrix and measurement window for CI smoke runs.
//! `--threads N` runs the matrix through the intra-run worker pool at N
//! threads (default 1, the committed baseline configuration); whatever the
//! setting, an `intra_run_scaling` section measures the largest burn case
//! at 1/2/4/8 threads and a `determinism` section records a digest of the
//! reference scenario's full report, which must not move with the thread
//! count. `--journal PATH` additionally runs the reference scenario with an
//! event journal attached and writes it to PATH — JSONL by default,
//! `--journal-format bjl` for the `unitherm-bjl/v1` binary encoding. Every
//! bench run also measures both encodings' bytes/event and write throughput
//! on the reference case's event stream (the `journal_formats` report
//! section). A `fleet_scale` section measures 1k/10k/100k-node cpu-burn
//! fleets through the structure-of-arrays physics batch (ticks/s,
//! node-ticks/s and live heap bytes/node); `--nodes N` replaces that sweep
//! with a single N-node point, and `--quick` keeps only the 1k point.
//! `--check` validates
//! a previously written report against the `unitherm-bench/v1` schema and,
//! with `--baseline`, fails (exit 1) when any shared case regressed by more
//! than `--max-regression-pct` percent (default 15). `--replay-faults`
//! reads a journal recorded by a previous `--journal` run (either encoding,
//! sniffed from the file), derives a
//! tick-addressed fault plan from its decision events
//! (`unitherm_cluster::derive_fault_plan`), replays the reference scenario
//! under those faults at 1, 2 and 4 threads, and fails (exit 1) unless all
//! three reports are bit-identical — the determinism gate extended to the
//! fault-injection path. `--chaos-smoke` runs a small-budget adversarial
//! chaos search (`unitherm_cluster::chaos`) over the given scenario file
//! and fails (exit 1) unless the search finds a counterexample, the corpus
//! is byte-identical when the search reruns on one evaluation thread, and
//! the cheapest counterexample replays bit-identically at 1, 2 and 4
//! threads — the determinism gate extended to the search layer.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fs::File;
use std::io::BufWriter;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::time::Instant;

use serde::Serialize;
use serde_json::Value;
use unitherm_cluster::chaos::{chaos_search, report_digest, ChaosConfig, OutcomePredicate};
use unitherm_cluster::replay::{
    derive_fault_plan, derive_fault_plan_from_cursor, ReplayOptions, ReplayPlan,
};
use unitherm_cluster::scenario::{Scenario, WorkloadSpec};
use unitherm_cluster::scheme::{FanScheme, SchemeSpec};
use unitherm_cluster::sim::Simulation;
use unitherm_cluster::sweep::run_scenarios_parallel;
use unitherm_core::control_array::Policy;
use unitherm_obs::{
    read_journal, BinaryJournalReader, BinaryJournalWriter, EventRecord, EventSink, JournalCursor,
    JournalFormat, JournalWriter, NullSink, BJL_HEADER_LEN,
};
use unitherm_workload::{NpbBenchmark, NpbClass};

/// Live-heap tracking allocator: every fleet-scale point reports its
/// steady-state heap footprint per node, so the whole binary routes
/// allocation through a counter. One relaxed atomic per alloc/dealloc —
/// noise well below the measurement floor of the throughput numbers.
struct CountingAlloc;

/// Bytes currently allocated and not yet freed.
static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter is
// bookkeeping on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE_BYTES.fetch_add(new_size as isize - layout.size() as isize, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Bytes currently live on the heap.
fn live_bytes() -> isize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Pre-PR tick throughput of the 16-node cpu-burn / dynamic-fan case,
/// measured at commit 18f0b99 (before the allocation-free tick loop) on the
/// same reference machine that produced the committed `BENCH_cluster.json`.
/// Kept as the fixed comparison point for the acceptance criterion.
const BASELINE_16NODE_BURN_TICKS_PER_S: f64 = 688_709.0;

/// The scheme half of the matrix.
#[derive(Clone, Copy)]
enum Scheme {
    DynamicFan,
    Hybrid,
}

impl Scheme {
    fn label(self) -> &'static str {
        match self {
            Scheme::DynamicFan => "dynamic-fan",
            Scheme::Hybrid => "hybrid",
        }
    }
}

/// One cell of the benchmark matrix.
#[derive(Clone, Copy)]
struct Case {
    nodes: usize,
    burn: bool,
    scheme: Scheme,
}

impl Case {
    fn name(&self) -> String {
        format!(
            "{}x-{}-{}",
            self.nodes,
            if self.burn { "burn" } else { "bt-a" },
            self.scheme.label()
        )
    }

    fn scenario(&self) -> Scenario {
        let workload = if self.burn {
            WorkloadSpec::CpuBurn
        } else {
            WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: NpbClass::A }
        };
        let s = Scenario::new(self.name())
            .with_nodes(self.nodes)
            .with_workload(workload)
            .with_recording(false)
            .with_max_time(1e9);
        match self.scheme {
            Scheme::DynamicFan => s.with_fan(FanScheme::dynamic(Policy::MODERATE, 100)),
            Scheme::Hybrid => s.with_scheme(SchemeSpec::hybrid(Policy::MODERATE, 100)),
        }
    }
}

/// Measured throughput for one matrix cell.
#[derive(Serialize)]
struct CaseResult {
    name: String,
    nodes: usize,
    workload: String,
    scheme: String,
    ticks_per_s: f64,
    node_ticks_per_s: f64,
    measured_ticks: u64,
}

#[derive(Serialize)]
struct SweepResult {
    scenarios: usize,
    threads: usize,
    wall_time_s: f64,
}

#[derive(Serialize)]
struct Comparison {
    scenario: String,
    baseline_commit: String,
    baseline_ticks_per_s: f64,
    current_ticks_per_s: f64,
    improvement_pct: f64,
}

/// Event-layer overhead on the reference case: the same scenario measured
/// with event retention disabled (`event_capacity 0`; counters still run)
/// and with the default 256-slot ring sink attached. Both numbers are
/// medians over interleaved repetitions; `noise_floor_pct` is the larger
/// arm's relative spread across those repetitions, so a reported overhead
/// smaller than the floor means the arms are statistically
/// indistinguishable (and its sign carries no information).
#[derive(Serialize)]
struct Observability {
    scenario: String,
    rounds: usize,
    ticks_per_s_sink_off: f64,
    ticks_per_s_ring: f64,
    overhead_pct: f64,
    noise_floor_pct: f64,
}

/// Throughput of one intra-run thread count on the scaling case.
#[derive(Serialize)]
struct ScalingPoint {
    threads: usize,
    ticks_per_s: f64,
    speedup_vs_1: f64,
}

/// Intra-run strong scaling: the largest burn case of the matrix, one
/// simulation sharded across the persistent worker pool.
#[derive(Serialize)]
struct IntraRunScaling {
    scenario: String,
    points: Vec<ScalingPoint>,
}

/// One fleet-scale point: an N-node cpu-burn fleet (dynamic-fan, recording
/// off) measured for steady-state throughput and heap footprint.
#[derive(Serialize)]
struct FleetScalePoint {
    /// `fleet-<N>x-burn`, so `--check --baseline` gates these points with
    /// the same per-case regression rule as the matrix.
    name: String,
    nodes: usize,
    ticks_per_s: f64,
    node_ticks_per_s: f64,
    measured_ticks: u64,
    /// Live heap attributable to the simulation (construction through
    /// steady state), divided by the node count.
    bytes_per_node: f64,
}

/// The `fleet_scale` report section: how throughput and per-node memory
/// hold up from cluster to datacenter size on the lane-batched tick loop.
#[derive(Serialize)]
struct FleetScale {
    workload: String,
    scheme: String,
    points: Vec<FleetScalePoint>,
}

/// A digest of the reference scenario's complete `RunReport` at the
/// configured thread count. Bit-identical sharding means this string must
/// not depend on `--threads`; CI compares the digests of a 1-thread and a
/// 4-thread bench run.
#[derive(Serialize)]
struct Determinism {
    scenario: String,
    threads: usize,
    digest: String,
}

/// Serialization cost of one journal encoding over the reference case's
/// recorded event stream: size on the wire and write throughput.
#[derive(Serialize)]
struct JournalFormatResult {
    format: String,
    events: u64,
    total_bytes: u64,
    /// Marginal per-event cost (the fixed file header, 16 bytes for bjl, is
    /// excluded — it amortizes to nothing over a real trace).
    bytes_per_event: f64,
    events_per_s: f64,
}

/// The `journal_formats` report section: both encodings measured over the
/// identical event stream, interleaved medians like the observability
/// probe. `bjl_speedup` is binary write throughput over JSONL's — the
/// acceptance number for the compact-journal work.
#[derive(Serialize)]
struct JournalFormats {
    scenario: String,
    rounds: usize,
    jsonl: JournalFormatResult,
    bjl: JournalFormatResult,
    bjl_speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    schema: String,
    mode: String,
    commit: String,
    threads: usize,
    results: Vec<CaseResult>,
    sweep: SweepResult,
    comparison: Comparison,
    observability: Observability,
    journal_formats: JournalFormats,
    intra_run_scaling: IntraRunScaling,
    fleet_scale: FleetScale,
    determinism: Determinism,
}

/// Measures steady-state tick throughput for one case.
///
/// Warms the simulation past its start-up transient, then times batches of
/// ticks until `min_wall_s` of wall time has accumulated and reports the
/// *fastest* batch. The peak batch reflects the code rather than scheduler
/// interference, which makes the number reproducible on shared machines.
/// Finite workloads (NPB) are rebuilt before they finish so the measurement
/// never leaves the running regime; rebuild time is excluded from the timed
/// window.
fn measure_case(case: Case, min_wall_s: f64, threads: usize) -> CaseResult {
    let (ticks_per_s, ticks) =
        measure_scenario(|| case.scenario().with_threads(threads), min_wall_s);
    CaseResult {
        name: case.name(),
        nodes: case.nodes,
        workload: if case.burn { "cpu-burn" } else { "bt-a" }.to_string(),
        scheme: case.scheme.label().to_string(),
        ticks_per_s,
        node_ticks_per_s: ticks_per_s * case.nodes as f64,
        measured_ticks: ticks,
    }
}

/// Core measurement loop shared by the matrix and the observability
/// overhead probe: peak-batch ticks/s plus total ticks timed.
fn measure_scenario(build_scenario: impl Fn() -> Scenario, min_wall_s: f64) -> (f64, u64) {
    const WARMUP_TICKS: u32 = 200;
    const BATCH_TICKS: u32 = 1000;
    // BT.A finishes near its ~100 s nominal duration; stay well short.
    const REBUILD_AT_SIM_S: f64 = 60.0;

    let build = || {
        let mut sim = Simulation::new(build_scenario());
        for _ in 0..WARMUP_TICKS {
            sim.tick();
        }
        sim
    };

    let mut sim = build();
    let mut ticks: u64 = 0;
    let mut elapsed = 0.0;
    let mut best_batch_s = f64::INFINITY;
    while elapsed < min_wall_s {
        if sim.time_s() > REBUILD_AT_SIM_S {
            sim = build();
        }
        let t0 = Instant::now();
        for _ in 0..BATCH_TICKS {
            sim.tick();
        }
        let batch_s = t0.elapsed().as_secs_f64();
        elapsed += batch_s;
        ticks += u64::from(BATCH_TICKS);
        best_batch_s = best_batch_s.min(batch_s);
    }

    (f64::from(BATCH_TICKS) / best_batch_s, ticks)
}

/// Measures the fleet-scale points: N-node cpu-burn fleets under the
/// dynamic-fan scheme with recording off — the lane-batched tick loop at
/// increasing fleet size. The heap is sampled around construction plus
/// warmup, so `bytes_per_node` reports the simulation's steady-state
/// footprint (burn fleets allocate nothing per tick; the alloc-free tick
/// tests pin that).
fn measure_fleet_scale(node_counts: &[usize], min_wall_s: f64) -> FleetScale {
    const WARMUP_TICKS: u32 = 200;
    let mut points = Vec::with_capacity(node_counts.len());
    for &nodes in node_counts {
        let name = format!("fleet-{nodes}x-burn");
        let scenario = Scenario::new(name.clone())
            .with_nodes(nodes)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_recording(false)
            .with_max_time(1e9)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100));
        let heap_before = live_bytes();
        let mut sim = Simulation::new(scenario);
        for _ in 0..WARMUP_TICKS {
            sim.tick();
        }
        let bytes_per_node = (live_bytes() - heap_before).max(0) as f64 / nodes as f64;

        // Fixed node-tick batches keep the timing granularity comparable
        // across four orders of magnitude of fleet size: ~1M node-ticks
        // per batch, floored so even the largest fleet times a real loop.
        let batch = u32::try_from((1_000_000 / nodes).max(50)).expect("batch fits u32");
        let mut ticks: u64 = 0;
        let mut elapsed = 0.0;
        let mut best_batch_s = f64::INFINITY;
        while elapsed < min_wall_s {
            let t0 = Instant::now();
            for _ in 0..batch {
                sim.tick();
            }
            let batch_s = t0.elapsed().as_secs_f64();
            elapsed += batch_s;
            ticks += u64::from(batch);
            best_batch_s = best_batch_s.min(batch_s);
        }
        let ticks_per_s = f64::from(batch) / best_batch_s;
        eprintln!(
            "{name:<26} {ticks_per_s:>12.0} ticks/s  ({:>12.0} node-ticks/s)  {:.0} B/node",
            ticks_per_s * nodes as f64,
            bytes_per_node
        );
        points.push(FleetScalePoint {
            name,
            nodes,
            ticks_per_s,
            node_ticks_per_s: ticks_per_s * nodes as f64,
            measured_ticks: ticks,
            bytes_per_node,
        });
    }
    FleetScale { workload: "cpu-burn".to_string(), scheme: "dynamic-fan".to_string(), points }
}

/// Median of a sample set (mean of the middle pair for even counts).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    let n = samples.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Relative spread of a sorted sample set around its median, percent.
fn spread_pct(sorted: &[f64], median: f64) -> f64 {
    match (sorted.first(), sorted.last()) {
        (Some(min), Some(max)) if median > 0.0 => (max - min) / median * 100.0,
        _ => f64::NAN,
    }
}

/// Measures event-layer overhead: the reference case with event retention
/// disabled versus the default ring sink.
///
/// Earlier versions timed each arm once, back to back, and routinely
/// reported a *negative* overhead — whichever arm ran second inherited a
/// warmer cache and a calmer scheduler. Now the arms are interleaved
/// (off/ring, ring/off, …) across `ROUNDS` repetitions so drift hits both
/// equally, the medians are compared instead of the peaks, and the
/// per-arm spread is reported as a noise floor next to the delta.
fn measure_observability(case: Case, min_wall_s: f64) -> Observability {
    const ROUNDS: usize = 5;
    let mut off_samples = Vec::with_capacity(ROUNDS);
    let mut ring_samples = Vec::with_capacity(ROUNDS);
    let slice_s = min_wall_s / ROUNDS as f64;
    for round in 0..ROUNDS {
        // Alternate which arm goes first so any monotonic drift (thermal
        // ramp, cache warm-up) cancels instead of biasing one arm.
        let off_first = round % 2 == 0;
        if off_first {
            off_samples
                .push(measure_scenario(|| case.scenario().with_event_capacity(0), slice_s).0);
            ring_samples.push(measure_scenario(|| case.scenario(), slice_s).0);
        } else {
            ring_samples.push(measure_scenario(|| case.scenario(), slice_s).0);
            off_samples
                .push(measure_scenario(|| case.scenario().with_event_capacity(0), slice_s).0);
        }
    }
    let off_median = median(&mut off_samples);
    let ring_median = median(&mut ring_samples);
    let noise_floor_pct =
        spread_pct(&off_samples, off_median).max(spread_pct(&ring_samples, ring_median));
    Observability {
        scenario: case.name(),
        rounds: ROUNDS,
        ticks_per_s_sink_off: off_median,
        ticks_per_s_ring: ring_median,
        overhead_pct: (1.0 - ring_median / off_median) * 100.0,
        noise_floor_pct,
    }
}

/// Measures intra-run strong scaling on `case`: one simulation, sharded
/// across 1/2/4/8 worker threads.
fn measure_intra_run_scaling(case: Case, min_wall_s: f64) -> IntraRunScaling {
    let mut points = Vec::new();
    let mut base = f64::NAN;
    for threads in [1usize, 2, 4, 8] {
        let (ticks_per_s, _) =
            measure_scenario(|| case.scenario().with_threads(threads), min_wall_s);
        if threads == 1 {
            base = ticks_per_s;
        }
        points.push(ScalingPoint { threads, ticks_per_s, speedup_vs_1: ticks_per_s / base });
        eprintln!(
            "scaling: {} @ {threads} thread(s): {ticks_per_s:.0} ticks/s ({:.2}x)",
            case.name(),
            ticks_per_s / base
        );
    }
    IntraRunScaling { scenario: case.name(), points }
}

/// FNV-1a over the serialized report — cheap, dependency-free, and stable
/// across runs of a deterministic simulation.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs the reference scenario for a short fixed horizon at `threads` and
/// digests the complete `RunReport` (traces, counters, events). The digest
/// must be identical at every thread count — the sharded tick loop's
/// bit-identity contract, checked here on the exact binary CI ships.
fn measure_determinism(case: Case, threads: usize) -> Determinism {
    let scenario = case.scenario().with_recording(true).with_max_time(30.0).with_threads(threads);
    let report = Simulation::new(scenario).run();
    let json = serde_json::to_string(&report).expect("report serializes");
    Determinism {
        scenario: case.name(),
        threads,
        digest: format!("fnv1a64:{:016x}", fnv1a64(json.as_bytes())),
    }
}

/// Runs the reference scenario for a bounded stretch with a journal
/// attached and writes every event to `path` in the requested encoding.
fn write_journal(case: Case, path: &str, format: JournalFormat) {
    const JOURNAL_TICKS: u32 = 4000;
    let file = File::create(path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    let scenario = case.scenario();
    let dt_s = scenario.dt_s;
    let mut sim = Simulation::new(scenario);
    match format {
        JournalFormat::Jsonl => {
            sim.attach_journal(Box::new(JournalWriter::new(BufWriter::new(file))))
        }
        JournalFormat::Bjl => {
            sim.attach_journal(Box::new(BinaryJournalWriter::new(BufWriter::new(file), dt_s)))
        }
    }
    for _ in 0..JOURNAL_TICKS {
        sim.tick();
    }
    // The journal flushes when the simulation (and its boxed sink) drops.
    drop(sim.into_report());
    let bytes = std::fs::read(path).expect("reopen journal");
    let events = match format {
        JournalFormat::Jsonl => read_journal(bytes.as_slice()).expect("journal must round-trip"),
        JournalFormat::Bjl => {
            unitherm_obs::bjl_to_records(&bytes).expect("journal must round-trip")
        }
    };
    eprintln!("journal: {} events over {JOURNAL_TICKS} ticks -> {path} ({format})", events.len());
}

/// A sink that shares its backing store with the caller, so the event
/// stream a simulation emits can be captured and then re-encoded through
/// each journal writer under a timer.
struct CaptureSink(std::rc::Rc<std::cell::RefCell<Vec<EventRecord>>>);

impl EventSink for CaptureSink {
    fn record(&mut self, rec: &EventRecord) {
        self.0.borrow_mut().push(*rec);
    }
}

/// Measures both journal encodings over the identical event stream: record
/// the reference case's events once, then repeatedly serialize the stream
/// through each writer into a pre-grown memory buffer. Arms are
/// interleaved and medians compared, like the observability probe, so
/// scheduler drift hits both encodings equally.
fn measure_journal_formats(case: Case) -> JournalFormats {
    const CAPTURE_TICKS: u32 = 4000;
    const ROUNDS: usize = 5;

    let records = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let scenario = case.scenario();
    let dt_s = scenario.dt_s;
    let mut sim = Simulation::new(scenario);
    sim.attach_journal(Box::new(CaptureSink(records.clone())));
    for _ in 0..CAPTURE_TICKS {
        sim.tick();
    }
    drop(sim.into_report());
    let records = records.borrow();
    let events = records.len() as u64;
    assert!(events > 0, "reference case must emit events to measure");

    let time_jsonl = |buf: &mut Vec<u8>| {
        buf.clear();
        let mut writer = JournalWriter::new(std::mem::take(buf));
        let t0 = Instant::now();
        for rec in records.iter() {
            writer.record(rec);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        *buf = writer.finish().expect("in-memory journal write");
        elapsed
    };
    let time_bjl = |buf: &mut Vec<u8>| {
        buf.clear();
        let mut writer = BinaryJournalWriter::new(std::mem::take(buf), dt_s);
        let t0 = Instant::now();
        for rec in records.iter() {
            writer.record(rec);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        *buf = writer.finish().expect("in-memory journal write");
        elapsed
    };

    let (mut jsonl_buf, mut bjl_buf) = (Vec::new(), Vec::new());
    let (mut jsonl_s, mut bjl_s) = (Vec::with_capacity(ROUNDS), Vec::with_capacity(ROUNDS));
    for round in 0..ROUNDS {
        if round % 2 == 0 {
            jsonl_s.push(time_jsonl(&mut jsonl_buf));
            bjl_s.push(time_bjl(&mut bjl_buf));
        } else {
            bjl_s.push(time_bjl(&mut bjl_buf));
            jsonl_s.push(time_jsonl(&mut jsonl_buf));
        }
    }
    let jsonl_median_s = median(&mut jsonl_s);
    let bjl_median_s = median(&mut bjl_s);

    let jsonl = JournalFormatResult {
        format: "jsonl".to_string(),
        events,
        total_bytes: jsonl_buf.len() as u64,
        bytes_per_event: jsonl_buf.len() as f64 / events as f64,
        events_per_s: events as f64 / jsonl_median_s,
    };
    let bjl = JournalFormatResult {
        format: "bjl".to_string(),
        events,
        total_bytes: bjl_buf.len() as u64,
        bytes_per_event: (bjl_buf.len() - BJL_HEADER_LEN) as f64 / events as f64,
        events_per_s: events as f64 / bjl_median_s,
    };
    let bjl_speedup = jsonl_median_s / bjl_median_s;
    JournalFormats { scenario: case.name(), rounds: ROUNDS, jsonl, bjl, bjl_speedup }
}

/// Times a parallel sweep over short versions of every matrix scenario.
fn measure_sweep(cases: &[Case], sim_seconds: f64) -> SweepResult {
    let scenarios: Vec<Scenario> =
        cases.iter().map(|c| c.scenario().with_max_time(sim_seconds)).collect();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let n = scenarios.len();
    let t0 = Instant::now();
    let reports = run_scenarios_parallel(scenarios, threads);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(reports.len(), n, "sweep must produce every report");
    SweepResult { scenarios: n, threads, wall_time_s: wall }
}

/// Loads and parses a bench report file into a JSON value.
fn load_report(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::parse_value(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
}

/// Structural validation of the `unitherm-bench/v1` report schema.
fn validate_report(v: &Value, path: &str) -> Result<(), String> {
    let err = |msg: &str| Err(format!("{path}: {msg}"));
    match v.get("schema") {
        Some(Value::Str(s)) if s == "unitherm-bench/v1" => {}
        Some(Value::Str(s)) => return err(&format!("unsupported schema {s:?}")),
        _ => return err("missing string field `schema`"),
    }
    match v.get("mode") {
        Some(Value::Str(s)) if s == "quick" || s == "full" => {}
        _ => return err("`mode` must be \"quick\" or \"full\""),
    }
    if !matches!(v.get("commit"), Some(Value::Str(_))) {
        return err("missing string field `commit`");
    }
    let results = match v.get("results") {
        Some(Value::Seq(items)) if !items.is_empty() => items,
        Some(Value::Seq(_)) => return err("`results` is empty"),
        _ => return err("missing array field `results`"),
    };
    for (i, case) in results.iter().enumerate() {
        let name = match case.get("name") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return err(&format!("results[{i}]: missing string field `name`")),
        };
        match case.get("nodes").and_then(Value::as_u64) {
            Some(n) if n >= 1 => {}
            _ => return err(&format!("results[{i}] ({name}): `nodes` must be >= 1")),
        }
        for field in ["ticks_per_s", "node_ticks_per_s"] {
            match case.get(field).and_then(Value::as_f64) {
                Some(t) if t.is_finite() && t > 0.0 => {}
                _ => {
                    return err(&format!(
                        "results[{i}] ({name}): `{field}` must be finite and positive"
                    ))
                }
            }
        }
        if case.get("measured_ticks").and_then(Value::as_u64).is_none() {
            return err(&format!("results[{i}] ({name}): missing integer `measured_ticks`"));
        }
    }
    for (section, fields) in [
        ("sweep", &["scenarios", "threads", "wall_time_s"][..]),
        ("comparison", &["scenario", "baseline_ticks_per_s", "current_ticks_per_s"][..]),
    ] {
        let map = match v.get(section) {
            Some(m @ Value::Map(_)) => m,
            _ => return err(&format!("missing object field `{section}`")),
        };
        for field in fields {
            if map.get(field).is_none() {
                return err(&format!("`{section}` missing field `{field}`"));
            }
        }
    }
    // `observability` arrived after v1 reports were first committed; when
    // present the overhead arms must both be real measurements.
    if let Some(obs) = v.get("observability") {
        for field in ["ticks_per_s_sink_off", "ticks_per_s_ring", "overhead_pct"] {
            match obs.get(field).and_then(Value::as_f64) {
                Some(t) if t.is_finite() => {}
                _ => return err(&format!("`observability.{field}` must be a finite number")),
            }
        }
        // The noise floor arrived with the interleaved-median measurement;
        // when present it bounds how much meaning the delta can carry.
        if let Some(floor) = obs.get("noise_floor_pct") {
            match floor.as_f64() {
                Some(t) if t.is_finite() && t >= 0.0 => {}
                _ => return err("`observability.noise_floor_pct` must be finite and >= 0"),
            }
        }
    }
    // `journal_formats` arrived with the unitherm-bjl/v1 binary journal;
    // when present both encodings must carry real measurements.
    if let Some(formats) = v.get("journal_formats") {
        for encoding in ["jsonl", "bjl"] {
            let Some(section) = formats.get(encoding) else {
                return err(&format!("`journal_formats` missing object field `{encoding}`"));
            };
            for field in ["bytes_per_event", "events_per_s"] {
                match section.get(field).and_then(Value::as_f64) {
                    Some(t) if t.is_finite() && t > 0.0 => {}
                    _ => {
                        return err(&format!(
                            "`journal_formats.{encoding}.{field}` must be finite and positive"
                        ))
                    }
                }
            }
        }
        match formats.get("bjl_speedup").and_then(Value::as_f64) {
            Some(t) if t.is_finite() && t > 0.0 => {}
            _ => return err("`journal_formats.bjl_speedup` must be finite and positive"),
        }
    }
    // `intra_run_scaling` / `determinism` arrived with the node-parallel
    // tick loop; validate their shape when present.
    if let Some(scaling) = v.get("intra_run_scaling") {
        let points = match scaling.get("points") {
            Some(Value::Seq(points)) if !points.is_empty() => points,
            _ => return err("`intra_run_scaling.points` must be a non-empty array"),
        };
        for (i, point) in points.iter().enumerate() {
            match point.get("threads").and_then(Value::as_u64) {
                Some(t) if t >= 1 => {}
                _ => return err(&format!("intra_run_scaling.points[{i}]: `threads` >= 1")),
            }
            for field in ["ticks_per_s", "speedup_vs_1"] {
                match point.get(field).and_then(Value::as_f64) {
                    Some(t) if t.is_finite() && t > 0.0 => {}
                    _ => {
                        return err(&format!(
                            "intra_run_scaling.points[{i}]: `{field}` must be finite and positive"
                        ))
                    }
                }
            }
        }
    }
    // `fleet_scale` arrived with the SoA physics batch; when present each
    // point must carry real throughput and memory measurements.
    if let Some(fleet) = v.get("fleet_scale") {
        let points = match fleet.get("points") {
            Some(Value::Seq(points)) if !points.is_empty() => points,
            _ => return err("`fleet_scale.points` must be a non-empty array"),
        };
        for (i, point) in points.iter().enumerate() {
            if !matches!(point.get("name"), Some(Value::Str(s)) if !s.is_empty()) {
                return err(&format!("fleet_scale.points[{i}]: missing string field `name`"));
            }
            match point.get("nodes").and_then(Value::as_u64) {
                Some(n) if n >= 1 => {}
                _ => return err(&format!("fleet_scale.points[{i}]: `nodes` must be >= 1")),
            }
            for field in ["ticks_per_s", "node_ticks_per_s"] {
                match point.get(field).and_then(Value::as_f64) {
                    Some(t) if t.is_finite() && t > 0.0 => {}
                    _ => {
                        return err(&format!(
                            "fleet_scale.points[{i}]: `{field}` must be finite and positive"
                        ))
                    }
                }
            }
            match point.get("bytes_per_node").and_then(Value::as_f64) {
                Some(b) if b.is_finite() && b >= 0.0 => {}
                _ => {
                    return err(&format!(
                        "fleet_scale.points[{i}]: `bytes_per_node` must be finite and >= 0"
                    ))
                }
            }
        }
    }
    if let Some(det) = v.get("determinism") {
        match det.get("digest") {
            Some(Value::Str(s)) if !s.is_empty() => {}
            _ => return err("`determinism.digest` must be a non-empty string"),
        }
        if det.get("threads").and_then(Value::as_u64).is_none() {
            return err("`determinism.threads` must be an integer");
        }
    }
    Ok(())
}

/// Extracts `(name, ticks_per_s)` pairs from a validated report.
///
/// Covers the matrix `results` plus any `fleet_scale` points, so the
/// `--check --baseline` regression gate applies the same per-case rule to
/// the fleet-scale burn measurements.
fn case_throughputs(v: &Value) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut collect = |items: &[Value]| {
        out.extend(items.iter().filter_map(|case| {
            let Some(Value::Str(name)) = case.get("name") else { return None };
            let ticks = case.get("ticks_per_s").and_then(Value::as_f64)?;
            Some((name.clone(), ticks))
        }));
    };
    if let Some(Value::Seq(items)) = v.get("results") {
        collect(items);
    }
    if let Some(Value::Seq(points)) = v.get("fleet_scale").and_then(|f| f.get("points")) {
        collect(points);
    }
    out
}

/// `--check` entry point: schema-validate `check_path` and, when a baseline
/// is given, gate on per-case throughput regressions. Returns the process
/// exit code.
fn run_check(check_path: &str, baseline_path: Option<&str>, max_regression_pct: f64) -> i32 {
    let report = match load_report(check_path).and_then(|v| {
        validate_report(&v, check_path)?;
        Ok(v)
    }) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check failed: {e}");
            return 1;
        }
    };
    eprintln!("{check_path}: schema unitherm-bench/v1 OK");

    let Some(baseline_path) = baseline_path else { return 0 };
    let baseline = match load_report(baseline_path).and_then(|v| {
        validate_report(&v, baseline_path)?;
        Ok(v)
    }) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check failed: {e}");
            return 1;
        }
    };

    let current = case_throughputs(&report);
    let mut compared = 0;
    let mut failed = false;
    for (name, base_ticks) in case_throughputs(&baseline) {
        let Some((_, cur_ticks)) = current.iter().find(|(n, _)| *n == name) else {
            // Quick-mode reports cover a subset of the full matrix.
            continue;
        };
        compared += 1;
        let regression_pct = (1.0 - cur_ticks / base_ticks) * 100.0;
        let verdict = if regression_pct > max_regression_pct { "FAIL" } else { "ok" };
        eprintln!(
            "{name:<26} baseline {base_ticks:>12.0}  current {cur_ticks:>12.0}  \
             ({:+.1} %)  {verdict}",
            -regression_pct
        );
        failed |= regression_pct > max_regression_pct;
    }
    if compared == 0 {
        eprintln!("check failed: no shared cases between {check_path} and {baseline_path}");
        return 1;
    }
    if failed {
        eprintln!(
            "check failed: at least one case regressed more than {max_regression_pct:.0} % \
             vs {baseline_path}"
        );
        return 1;
    }
    eprintln!("{compared} case(s) within {max_regression_pct:.0} % of {baseline_path}");
    0
}

/// `--replay-faults` entry point: derive a tick-addressed fault plan from a
/// recorded journal, replay the reference scenario under it at 1, 2 and 4
/// threads, and fail (exit 1) unless every report digest matches — the
/// bit-identity gate extended to the fault-injection path. Returns the
/// process exit code.
fn run_replay_check(journal_path: &str) -> i32 {
    let bytes = match std::fs::read(journal_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("replay check failed: {journal_path}: {e}");
            return 1;
        }
    };
    // The same 4-node burn case `--quick --journal` records from, bounded
    // to a fixed horizon with full recording so the digest covers traces,
    // counters and events.
    let case = Case { nodes: 4, burn: true, scheme: Scheme::DynamicFan };
    let base = case.scenario().with_recording(true).with_max_time(60.0);
    // Either journal encoding is accepted, sniffed from the file; the
    // binary path derives through a seek-by-tick cursor instead of a scan.
    let opts = ReplayOptions::default();
    let derivation: Result<(ReplayPlan, usize, JournalFormat), String> =
        match JournalFormat::sniff(&bytes) {
            JournalFormat::Bjl => {
                BinaryJournalReader::new(&bytes).map_err(|e| e.to_string()).and_then(|reader| {
                    derive_fault_plan_from_cursor(JournalCursor::from_binary(&reader), &base, &opts)
                        .map(|plan| (plan, reader.len(), JournalFormat::Bjl))
                        .map_err(|e| e.to_string())
                })
            }
            JournalFormat::Jsonl => {
                read_journal(bytes.as_slice()).map_err(|e| e.to_string()).and_then(|records| {
                    derive_fault_plan(&records, &base, &opts)
                        .map(|plan| (plan, records.len(), JournalFormat::Jsonl))
                        .map_err(|e| e.to_string())
                })
            }
        };
    let (plan, events, format) = match derivation {
        Ok(d) => d,
        Err(e) => {
            eprintln!("replay check failed: {journal_path}: {e}");
            return 1;
        }
    };
    eprintln!(
        "replay: {events} journal event(s) ({format}) -> {} derived fault window(s)",
        plan.len()
    );
    if plan.is_empty() {
        eprintln!(
            "replay check failed: no decision events to derive faults from \
             (journal too short, or not from the reference scenario?)"
        );
        return 1;
    }

    let mut digests: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4] {
        let scenario = plan.apply(base.clone()).with_threads(threads);
        let report = Simulation::new(scenario).run();
        let faults_applied: usize = report.nodes.iter().map(|n| n.faults_applied.len()).sum();
        let json = serde_json::to_string(&report).expect("report serializes");
        let digest = format!("fnv1a64:{:016x}", fnv1a64(json.as_bytes()));
        eprintln!(
            "replay: {} @ {threads} thread(s): {faults_applied} fault(s) delivered -> {digest}",
            case.name()
        );
        digests.push(digest);
    }
    if digests.windows(2).all(|w| w[0] == w[1]) {
        eprintln!("replay: reports bit-identical across 1/2/4 threads");
        0
    } else {
        eprintln!("replay check failed: faulted reports diverge across thread counts");
        1
    }
}

/// `--chaos-smoke` entry point: run a small-budget adversarial search over
/// `scenario_path` and gate on the chaos layer's contracts — a flip is
/// found, the corpus is a pure function of its seed, and the cheapest
/// counterexample replays bit-identically at 1, 2 and 4 threads. Returns
/// the process exit code.
fn run_chaos_smoke(scenario_path: &str) -> i32 {
    // The shared scenario loader (parse + validate with named errors) —
    // the same path `repro run-scenario` and `unitherm-serve` use.
    let mut scenario = match unitherm_experiments::scenario_file::load(scenario_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chaos smoke failed: {scenario_path}: {e}");
            return 1;
        }
    };
    // Bound the horizon so each candidate evaluation stays cheap; the
    // search is deterministic for any fixed horizon.
    scenario.max_time_s = scenario.max_time_s.min(60.0);
    let cfg = ChaosConfig {
        seed: 42,
        predicate: OutcomePredicate::FailsafeTrip,
        max_evaluations: 40,
        batch: 8,
        ..ChaosConfig::default()
    };
    let corpus = match chaos_search(&scenario, &cfg, &mut NullSink) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos smoke failed: {e}");
            return 1;
        }
    };
    eprintln!(
        "chaos: {} evaluation(s), {} counterexample(s), baseline holds: {}",
        corpus.evaluations,
        corpus.counterexamples.len(),
        corpus.baseline_holds
    );
    let Some(best) = corpus.counterexamples.first() else {
        eprintln!(
            "chaos smoke failed: no counterexample found within {} evaluations",
            cfg.max_evaluations
        );
        return 1;
    };
    eprintln!(
        "chaos: cheapest flip costs {} ({} faulted tick(s), {} window(s)) -> {}",
        best.cost,
        best.faulted_ticks,
        best.windows.len(),
        best.report_digest
    );

    // Seed purity: rerunning the search on a single evaluation thread must
    // reproduce the corpus byte for byte.
    let single = ChaosConfig { threads: 1, ..cfg };
    let rerun = match chaos_search(&scenario, &single, &mut NullSink) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos smoke failed on rerun: {e}");
            return 1;
        }
    };
    let a = serde_json::to_string_pretty(&corpus).expect("corpus serializes");
    let b = serde_json::to_string_pretty(&rerun).expect("corpus serializes");
    if a != b {
        eprintln!("chaos smoke failed: corpus differs between evaluation thread budgets");
        return 1;
    }
    eprintln!("chaos: corpus byte-identical across evaluation thread budgets");

    // Replay fidelity: the cheapest counterexample re-executes to the
    // recorded digest at every intra-run thread count.
    for threads in [1usize, 2, 4] {
        let faulted = match corpus.apply(scenario.clone(), 0) {
            Some(s) => s.with_threads(threads),
            None => {
                eprintln!("chaos smoke failed: corpus entry 0 vanished");
                return 1;
            }
        };
        let report = Simulation::new(faulted).run();
        let digest = report_digest(&report);
        eprintln!("chaos: replay @ {threads} thread(s) -> {digest}");
        if digest != best.report_digest {
            eprintln!(
                "chaos smoke failed: replay at {threads} thread(s) produced {digest}, \
                 corpus recorded {}",
                best.report_digest
            );
            return 1;
        }
    }
    eprintln!("chaos: counterexample replays bit-identically across 1/2/4 threads");
    0
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_cluster.json".to_string();
    let mut min_wall_s: Option<f64> = None;
    let mut journal_path: Option<String> = None;
    let mut journal_format = JournalFormat::Jsonl;
    let mut check_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut chaos_path: Option<String> = None;
    let mut max_regression_pct = 15.0;
    let mut threads = 1usize;
    let mut fleet_nodes: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--min-time" => {
                min_wall_s =
                    Some(args.next().expect("--min-time needs seconds").parse().expect("number"))
            }
            "--journal" => journal_path = Some(args.next().expect("--journal needs a path")),
            "--journal-format" => {
                let raw = args.next().expect("--journal-format needs jsonl|bjl");
                journal_format = JournalFormat::parse(&raw)
                    .unwrap_or_else(|| panic!("--journal-format must be jsonl or bjl, got {raw}"));
            }
            "--check" => check_path = Some(args.next().expect("--check needs a report file")),
            "--replay-faults" => {
                replay_path = Some(args.next().expect("--replay-faults needs a journal file"))
            }
            "--chaos-smoke" => {
                chaos_path = Some(args.next().expect("--chaos-smoke needs a scenario file"))
            }
            "--baseline" => {
                baseline_path = Some(args.next().expect("--baseline needs a report file"))
            }
            "--max-regression-pct" => {
                max_regression_pct = args
                    .next()
                    .expect("--max-regression-pct needs a number")
                    .parse()
                    .expect("number")
            }
            "--threads" => {
                threads = args.next().expect("--threads needs a count").parse().expect("number");
                assert!(threads >= 1, "--threads needs at least 1");
            }
            "--nodes" => {
                let n: usize = args.next().expect("--nodes needs a count").parse().expect("number");
                assert!(n >= 1, "--nodes needs at least 1");
                fleet_nodes = Some(n);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: unitherm-bench [--quick] [--out PATH] [--min-time SECONDS] \
                     [--journal PATH] [--journal-format jsonl|bjl] [--threads N] [--nodes N]"
                );
                eprintln!(
                    "       unitherm-bench --check FILE [--baseline FILE] \
                     [--max-regression-pct N]"
                );
                eprintln!("       unitherm-bench --replay-faults JOURNAL");
                eprintln!("       unitherm-bench --chaos-smoke SCENARIO.json");
                std::process::exit(2);
            }
        }
    }
    if let Some(check) = check_path {
        std::process::exit(run_check(&check, baseline_path.as_deref(), max_regression_pct));
    }
    if let Some(journal) = replay_path {
        std::process::exit(run_replay_check(&journal));
    }
    if let Some(scenario) = chaos_path {
        std::process::exit(run_chaos_smoke(&scenario));
    }
    let min_wall_s = min_wall_s.unwrap_or(if quick { 0.02 } else { 0.5 });

    let node_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 16, 64] };
    let mut cases = Vec::new();
    for &nodes in node_counts {
        for burn in [true, false] {
            for scheme in [Scheme::DynamicFan, Scheme::Hybrid] {
                cases.push(Case { nodes, burn, scheme });
            }
        }
    }

    let mut results = Vec::with_capacity(cases.len());
    for &case in &cases {
        let r = measure_case(case, min_wall_s, threads);
        eprintln!(
            "{:<26} {:>12.0} ticks/s  ({:>12.0} node-ticks/s)",
            r.name, r.ticks_per_s, r.node_ticks_per_s
        );
        results.push(r);
    }

    let sweep = measure_sweep(&cases, if quick { 2.0 } else { 20.0 });
    eprintln!(
        "sweep: {} scenarios on {} threads in {:.2} s",
        sweep.scenarios, sweep.threads, sweep.wall_time_s
    );

    // Overhead probe + journal run use the largest burn/dynamic-fan case
    // the mode covers (16 nodes full, 4 nodes quick).
    let probe_case = Case {
        nodes: *node_counts.last().expect("matrix has node counts").min(&16),
        burn: true,
        scheme: Scheme::DynamicFan,
    };
    let observability = measure_observability(probe_case, min_wall_s.max(0.02));
    eprintln!(
        "observability: {} sink-off {:.0} ticks/s, ring {:.0} ticks/s \
         ({:+.2} % overhead, noise floor {:.2} %)",
        observability.scenario,
        observability.ticks_per_s_sink_off,
        observability.ticks_per_s_ring,
        observability.overhead_pct,
        observability.noise_floor_pct
    );

    // Strong scaling uses the largest burn/dynamic-fan case the mode covers
    // (64 nodes full, 4 nodes quick) — the cell with the most per-tick work
    // to shard.
    let scaling_case = Case {
        nodes: *node_counts.last().expect("matrix has node counts"),
        burn: true,
        scheme: Scheme::DynamicFan,
    };
    let intra_run_scaling = measure_intra_run_scaling(scaling_case, min_wall_s.max(0.02));

    // Fleet scale: 1k/10k/100k-node burn fleets in full mode, the 1k point
    // alone in quick mode (the CI bench-gate case), or whatever `--nodes`
    // pinned.
    let fleet_counts: Vec<usize> = match fleet_nodes {
        Some(n) => vec![n],
        None if quick => vec![1_000],
        None => vec![1_000, 10_000, 100_000],
    };
    let fleet_scale = measure_fleet_scale(&fleet_counts, min_wall_s.max(0.02));

    let determinism = measure_determinism(probe_case, threads);
    eprintln!(
        "determinism: {} @ {} thread(s) -> {}",
        determinism.scenario, determinism.threads, determinism.digest
    );

    if let Some(path) = &journal_path {
        write_journal(probe_case, path, journal_format);
    }

    let journal_formats = measure_journal_formats(probe_case);
    eprintln!(
        "journal formats: {} — jsonl {:.1} B/event {:.0} events/s, bjl {:.1} B/event \
         {:.0} events/s ({:.2}x)",
        journal_formats.scenario,
        journal_formats.jsonl.bytes_per_event,
        journal_formats.jsonl.events_per_s,
        journal_formats.bjl.bytes_per_event,
        journal_formats.bjl.events_per_s,
        journal_formats.bjl_speedup
    );

    let reference = "16x-burn-dynamic-fan";
    let current =
        results.iter().find(|r| r.name == reference).map(|r| r.ticks_per_s).unwrap_or(f64::NAN);
    let improvement_pct = if BASELINE_16NODE_BURN_TICKS_PER_S > 0.0 && current.is_finite() {
        (current / BASELINE_16NODE_BURN_TICKS_PER_S - 1.0) * 100.0
    } else {
        f64::NAN
    };
    if current.is_finite() {
        eprintln!(
            "16-node burn: {current:.0} ticks/s vs baseline {BASELINE_16NODE_BURN_TICKS_PER_S:.0} \
             ({improvement_pct:+.1} %)"
        );
    }

    let report = BenchReport {
        schema: "unitherm-bench/v1".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        commit: git_commit(),
        threads,
        results,
        sweep,
        comparison: Comparison {
            scenario: reference.to_string(),
            baseline_commit: "18f0b99".to_string(),
            baseline_ticks_per_s: BASELINE_16NODE_BURN_TICKS_PER_S,
            current_ticks_per_s: current,
            improvement_pct,
        },
        observability,
        journal_formats,
        intra_run_scaling,
        fleet_scale,
        determinism,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    eprintln!("wrote {out_path}");
}
