#![warn(missing_docs)]

//! Benchmark support crate.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `controller` — the paper-framework hot paths (window push, controller
//!   observe, array build, daemon steps): the "can this run at 4 Hz in a
//!   daemon" numbers;
//! * `simulation` — physics and cluster throughput (simulated seconds per
//!   wall second);
//! * `figures` — one benchmark per paper figure regeneration (Fast scale);
//! * `table1` — the Table 1 six-run sweep;
//! * `ablations` — the DESIGN.md §5 ablation studies.
//!
//! Run with `cargo bench --workspace`.

/// Re-exported so benches share one scale constant.
pub use unitherm_experiments::Scale;

/// The scale every benchmark uses (experiment regeneration benches measure
/// the reduced configuration; shapes are identical to `Full`).
pub const BENCH_SCALE: Scale = Scale::Fast;
