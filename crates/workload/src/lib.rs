#![warn(missing_docs)]

//! Workload models driving the simulated cluster.
//!
//! The paper exercises its controllers with `cpu-burn` \[31\] and NAS Parallel
//! Benchmarks (BT class B and LU on 4 nodes, one MPI process per node). We
//! model workloads as *phase programs*: sequences of compute phases (whose
//! duration scales with CPU frequency), communication phases (wall-clock
//! bound) and BSP barriers (released by the cluster when every rank
//! arrives). This reproduces the two workload properties the paper's
//! evaluation depends on:
//!
//! * alternating compute/communication utilization, which makes the
//!   CPUSPEED governor thrash frequencies (Table 1's 101–139 transitions),
//! * barrier coupling, which makes one DVFS-throttled rank extend every
//!   rank's execution time (Table 1's execution-time column).
//!
//! Modules:
//!
//! * [`phases`] — the phase program machinery and the [`Workload`] trait;
//! * [`npb`] — NAS-style benchmark programs (BT, LU, CG, SP);
//! * [`burn`] — the `cpu-burn` stressor with seeded burst patterns;
//! * [`synthetic`] — scripted utilization traces that reproduce the
//!   sudden / gradual / jitter thermal profile of the paper's Figure 2;
//! * [`trace`] — CSV utilization-trace replay, the bridge for users with
//!   recorded production traces.

pub mod burn;
pub mod npb;
pub mod phases;
pub mod synthetic;
pub mod trace;

pub use burn::CpuBurn;
pub use npb::{NpbBenchmark, NpbClass};
pub use phases::{Phase, PhaseWorkload, StepOutcome, WorkState, Workload};
pub use synthetic::{ScriptWorkload, Segment};
pub use trace::TraceWorkload;
