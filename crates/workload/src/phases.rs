//! Phase programs: the workload execution model.
//!
//! A workload is a sequence of [`Phase`]s executed by one rank:
//!
//! * **Compute** phases carry an amount of work expressed as seconds at the
//!   highest CPU frequency. Progress scales with the CPU's speed factor,
//!   attenuated by the phase's `freq_sensitivity` (a memory-bound phase with
//!   sensitivity 0.3 slows only 30 % as much as the clock does);
//! * **Communicate** phases are wall-clock bound (network/blocking-MPI) and
//!   advance at real time regardless of frequency;
//! * **Barrier** phases park the rank until the cluster releases it (all
//!   ranks arrived) — the BSP coupling that spreads one slow rank's delay to
//!   the whole job.

use serde::{Deserialize, Serialize};

/// What a rank reports for one simulation tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// OS-visible CPU utilization in `[0, 1]` during the tick — what a
    /// utilization governor (CPUSPEED) observes.
    pub utilization: f64,
    /// Switching-activity factor in `[0, 1]` — the multiplier on the CPU's
    /// dynamic power. Stall-heavy code shows high utilization but moderate
    /// activity; busy-polling communication shows low utilization but
    /// non-trivial activity.
    pub activity: f64,
}

impl StepOutcome {
    /// An outcome where activity equals utilization (fully compute-bound).
    pub fn uniform(u: f64) -> Self {
        Self { utilization: u, activity: u }
    }
}

/// Execution state of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkState {
    /// Executing phases.
    Running,
    /// Parked at barrier number `id`, waiting for release.
    AtBarrier(u64),
    /// All phases completed.
    Finished,
}

/// One phase of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Frequency-sensitive computation.
    Compute {
        /// Duration in seconds when running at the highest frequency.
        nominal_s: f64,
        /// OS-visible CPU utilization while computing.
        utilization: f64,
        /// Switching-activity factor (dynamic-power multiplier). Stall-heavy
        /// kernels have high utilization but lower activity.
        activity: f64,
        /// Fraction of the work that slows with the clock (1.0 = fully
        /// CPU-bound, 0.0 = fully memory/IO-bound).
        freq_sensitivity: f64,
    },
    /// Wall-clock-bound communication / IO.
    Communicate {
        /// Duration in seconds (frequency-independent).
        duration_s: f64,
        /// OS-visible CPU utilization while communicating (blocking MPI is
        /// low; busy-polling MPI would be high).
        utilization: f64,
        /// Switching-activity factor (memory/NIC traffic keeps part of the
        /// chip switching even at low OS utilization).
        activity: f64,
    },
    /// BSP synchronization point.
    Barrier,
}

impl Phase {
    /// A compute phase whose activity equals its utilization.
    pub fn compute(nominal_s: f64, utilization: f64, freq_sensitivity: f64) -> Self {
        Phase::Compute { nominal_s, utilization, activity: utilization, freq_sensitivity }
    }

    /// A compute phase with an explicit activity factor.
    pub fn compute_with_activity(
        nominal_s: f64,
        utilization: f64,
        activity: f64,
        freq_sensitivity: f64,
    ) -> Self {
        Phase::Compute { nominal_s, utilization, activity, freq_sensitivity }
    }

    /// A communication phase whose activity equals its utilization.
    pub fn comm(duration_s: f64, utilization: f64) -> Self {
        Phase::Communicate { duration_s, utilization, activity: utilization }
    }

    /// A communication phase with an explicit activity factor.
    pub fn comm_with_activity(duration_s: f64, utilization: f64, activity: f64) -> Self {
        Phase::Communicate { duration_s, utilization, activity }
    }
}

/// CPU utilization while parked at a barrier (blocking MPI wait).
pub const BARRIER_WAIT_UTILIZATION: f64 = 0.05;

/// A rank's workload.
pub trait Workload: Send {
    /// Advances the workload by `dt_s` seconds of wall time at the given CPU
    /// speed factor (1.0 = highest frequency). Returns the utilization the
    /// CPU saw during the tick.
    fn advance(&mut self, dt_s: f64, speed_factor: f64) -> StepOutcome;

    /// Current execution state.
    fn state(&self) -> WorkState;

    /// Releases the rank from its current barrier. No-op unless parked.
    fn release_barrier(&mut self);

    /// Completed fraction in `[0, 1]`; unbounded workloads report 0.
    fn progress(&self) -> f64;

    /// True once all phases completed.
    fn is_finished(&self) -> bool {
        self.state() == WorkState::Finished
    }

    /// True when this workload never parks at a barrier and never finishes
    /// — [`Workload::state`] is `Running` forever. A static property of the
    /// workload type; lets a fleet tick loop skip the per-rank state poll
    /// on its hot path. Conservative default: `false`.
    fn is_endless(&self) -> bool {
        false
    }
}

/// A concrete phase-program workload.
#[derive(Debug, Clone)]
pub struct PhaseWorkload {
    phases: Vec<Phase>,
    current: usize,
    /// Remaining seconds in the current phase (nominal for compute).
    remaining_s: f64,
    state: WorkState,
    barriers_passed: u64,
    total_nominal_s: f64,
    done_nominal_s: f64,
}

impl PhaseWorkload {
    /// Creates a workload from a phase list.
    ///
    /// # Panics
    /// Panics on an empty phase list or non-positive phase durations.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "phase program must not be empty");
        let mut total = 0.0;
        for p in &phases {
            match *p {
                Phase::Compute { nominal_s, utilization, activity, freq_sensitivity } => {
                    assert!(nominal_s > 0.0, "compute phase must have positive duration");
                    assert!((0.0..=1.0).contains(&utilization), "utilization must be in [0,1]");
                    assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
                    assert!(
                        (0.0..=1.0).contains(&freq_sensitivity),
                        "freq sensitivity must be in [0,1]"
                    );
                    total += nominal_s;
                }
                Phase::Communicate { duration_s, utilization, activity } => {
                    assert!(duration_s > 0.0, "communicate phase must have positive duration");
                    assert!((0.0..=1.0).contains(&utilization), "utilization must be in [0,1]");
                    assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
                    total += duration_s;
                }
                Phase::Barrier => {}
            }
        }
        let remaining = Self::phase_duration(&phases[0]);
        let mut w = Self {
            phases,
            current: 0,
            remaining_s: remaining,
            state: WorkState::Running,
            barriers_passed: 0,
            total_nominal_s: total,
            done_nominal_s: 0.0,
        };
        w.settle_entry();
        w
    }

    fn phase_duration(p: &Phase) -> f64 {
        match *p {
            Phase::Compute { nominal_s, .. } => nominal_s,
            Phase::Communicate { duration_s, .. } => duration_s,
            Phase::Barrier => 0.0,
        }
    }

    /// If the current phase is a barrier (or the program is exhausted),
    /// transition the state accordingly.
    fn settle_entry(&mut self) {
        if self.current >= self.phases.len() {
            self.state = WorkState::Finished;
            return;
        }
        self.state = match self.phases[self.current] {
            Phase::Barrier => WorkState::AtBarrier(self.barriers_passed),
            _ => WorkState::Running,
        };
    }

    fn advance_to_next_phase(&mut self) {
        self.current += 1;
        if self.current < self.phases.len() {
            self.remaining_s = Self::phase_duration(&self.phases[self.current]);
        }
        self.settle_entry();
    }

    /// Total nominal duration (at full speed, excluding barrier waits).
    pub fn total_nominal_s(&self) -> f64 {
        self.total_nominal_s
    }

    /// Barriers passed so far.
    pub fn barriers_passed(&self) -> u64 {
        self.barriers_passed
    }
}

impl Workload for PhaseWorkload {
    fn advance(&mut self, dt_s: f64, speed_factor: f64) -> StepOutcome {
        assert!(dt_s > 0.0, "time step must be positive");
        let speed = speed_factor.clamp(0.0, 1.0);
        let mut left = dt_s;
        let mut util_time = 0.0;
        let mut act_time = 0.0;

        while left > 1e-12 {
            match self.state {
                WorkState::Finished => {
                    // Finished ranks idle.
                    break;
                }
                WorkState::AtBarrier(_) => {
                    util_time += BARRIER_WAIT_UTILIZATION * left;
                    act_time += BARRIER_WAIT_UTILIZATION * left;
                    left = 0.0;
                }
                WorkState::Running => {
                    let phase = self.phases[self.current];
                    match phase {
                        Phase::Compute { utilization, activity, freq_sensitivity, .. } => {
                            // Nominal-work progress rate per wall second.
                            let rate = (1.0 - freq_sensitivity) + freq_sensitivity * speed;
                            if rate <= 1e-9 {
                                // Stalled CPU (shutdown): no progress, idle.
                                break;
                            }
                            let wall_needed = self.remaining_s / rate;
                            let wall_used = wall_needed.min(left);
                            let nominal_done = wall_used * rate;
                            self.remaining_s -= nominal_done;
                            self.done_nominal_s += nominal_done;
                            util_time += utilization * wall_used;
                            act_time += activity * wall_used;
                            left -= wall_used;
                            if self.remaining_s <= 1e-9 {
                                self.advance_to_next_phase();
                            }
                        }
                        Phase::Communicate { utilization, activity, .. } => {
                            let wall_used = self.remaining_s.min(left);
                            self.remaining_s -= wall_used;
                            self.done_nominal_s += wall_used;
                            util_time += utilization * wall_used;
                            act_time += activity * wall_used;
                            left -= wall_used;
                            if self.remaining_s <= 1e-9 {
                                self.advance_to_next_phase();
                            }
                        }
                        Phase::Barrier => unreachable!("barrier handled by state"),
                    }
                }
            }
        }
        StepOutcome {
            utilization: (util_time / dt_s).clamp(0.0, 1.0),
            activity: (act_time / dt_s).clamp(0.0, 1.0),
        }
    }

    fn state(&self) -> WorkState {
        self.state
    }

    fn release_barrier(&mut self) {
        if let WorkState::AtBarrier(_) = self.state {
            self.barriers_passed += 1;
            self.advance_to_next_phase();
        }
    }

    fn progress(&self) -> f64 {
        if self.state == WorkState::Finished {
            return 1.0;
        }
        if self.total_nominal_s <= 0.0 {
            return 0.0;
        }
        (self.done_nominal_s / self.total_nominal_s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a workload to completion at a fixed speed; returns wall time.
    fn run_to_completion(w: &mut PhaseWorkload, speed: f64) -> f64 {
        let dt = 0.05;
        let mut t = 0.0;
        for _ in 0..2_000_000 {
            if w.is_finished() {
                return t;
            }
            if let WorkState::AtBarrier(_) = w.state() {
                w.release_barrier(); // single-rank: release immediately
                continue;
            }
            let _ = w.advance(dt, speed);
            t += dt;
        }
        panic!("workload did not finish");
    }

    #[test]
    fn compute_phase_takes_nominal_time_at_full_speed() {
        let mut w = PhaseWorkload::new(vec![Phase::compute(10.0, 1.0, 1.0)]);
        let t = run_to_completion(&mut w, 1.0);
        assert!((t - 10.0).abs() < 0.1, "took {t}");
        assert_eq!(w.progress(), 1.0);
    }

    #[test]
    fn cpu_bound_phase_scales_inversely_with_speed() {
        let mut w = PhaseWorkload::new(vec![Phase::compute(10.0, 1.0, 1.0)]);
        let t = run_to_completion(&mut w, 0.5);
        assert!((t - 20.0).abs() < 0.1, "took {t}");
    }

    #[test]
    fn memory_bound_phase_is_less_sensitive() {
        // Sensitivity 0.4 at half speed: rate = 0.6 + 0.4·0.5 = 0.8 ⇒ 12.5 s.
        let mut w = PhaseWorkload::new(vec![Phase::compute(10.0, 1.0, 0.4)]);
        let t = run_to_completion(&mut w, 0.5);
        assert!((t - 12.5).abs() < 0.1, "took {t}");
    }

    #[test]
    fn communicate_phase_ignores_speed() {
        let mut w = PhaseWorkload::new(vec![Phase::comm(5.0, 0.3)]);
        let t = run_to_completion(&mut w, 0.1);
        assert!((t - 5.0).abs() < 0.1, "took {t}");
    }

    #[test]
    fn utilization_reported_per_phase() {
        let mut w =
            PhaseWorkload::new(vec![Phase::compute(1.0, 0.97, 1.0), Phase::comm(1.0, 0.30)]);
        let u1 = w.advance(0.5, 1.0);
        assert!((u1.utilization - 0.97).abs() < 1e-9);
        let _ = w.advance(0.5, 1.0); // finishes compute
        let u2 = w.advance(0.5, 1.0);
        assert!((u2.utilization - 0.30).abs() < 1e-9);
    }

    #[test]
    fn tick_spanning_phase_boundary_blends_utilization() {
        let mut w = PhaseWorkload::new(vec![Phase::compute(0.5, 1.0, 1.0), Phase::comm(0.5, 0.0)]);
        let u = w.advance(1.0, 1.0);
        assert!((u.utilization - 0.5).abs() < 1e-9, "half busy, half idle: {}", u.utilization);
        assert!(w.is_finished());
    }

    #[test]
    fn barrier_parks_until_released() {
        let mut w = PhaseWorkload::new(vec![
            Phase::compute(0.1, 1.0, 1.0),
            Phase::Barrier,
            Phase::compute(0.1, 1.0, 1.0),
        ]);
        let _ = w.advance(0.1, 1.0);
        assert_eq!(w.state(), WorkState::AtBarrier(0));
        // Waiting burns (almost) no CPU.
        let u = w.advance(1.0, 1.0);
        assert!((u.utilization - BARRIER_WAIT_UTILIZATION).abs() < 1e-9);
        assert_eq!(w.state(), WorkState::AtBarrier(0));
        w.release_barrier();
        assert_eq!(w.state(), WorkState::Running);
        let _ = w.advance(0.1, 1.0);
        assert!(w.is_finished());
        assert_eq!(w.barriers_passed(), 1);
    }

    #[test]
    fn consecutive_barriers_get_distinct_ids() {
        let mut w = PhaseWorkload::new(vec![Phase::Barrier, Phase::Barrier]);
        assert_eq!(w.state(), WorkState::AtBarrier(0));
        w.release_barrier();
        assert_eq!(w.state(), WorkState::AtBarrier(1));
        w.release_barrier();
        assert!(w.is_finished());
    }

    #[test]
    fn zero_speed_makes_no_progress() {
        let mut w = PhaseWorkload::new(vec![Phase::compute(1.0, 1.0, 1.0)]);
        for _ in 0..100 {
            let _ = w.advance(0.1, 0.0);
        }
        assert_eq!(w.progress(), 0.0);
        assert!(!w.is_finished());
    }

    #[test]
    fn finished_workload_idles_quietly() {
        let mut w = PhaseWorkload::new(vec![Phase::compute(0.1, 1.0, 1.0)]);
        let _ = w.advance(0.2, 1.0);
        assert!(w.is_finished());
        let u = w.advance(1.0, 1.0);
        assert_eq!(u.utilization, 0.0);
        assert_eq!(w.progress(), 1.0);
        w.release_barrier(); // harmless no-op
        assert!(w.is_finished());
    }

    #[test]
    fn progress_is_monotone() {
        let mut w = PhaseWorkload::new(vec![
            Phase::compute(1.0, 1.0, 1.0),
            Phase::comm(1.0, 0.3),
            Phase::compute(1.0, 1.0, 0.5),
        ]);
        let mut last = 0.0;
        while !w.is_finished() {
            let _ = w.advance(0.05, 0.8);
            assert!(w.progress() >= last);
            last = w.progress();
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_program_rejected() {
        let _ = PhaseWorkload::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_phase_rejected() {
        let _ = PhaseWorkload::new(vec![Phase::compute(0.0, 1.0, 1.0)]);
    }
}
