//! NAS-Parallel-Benchmark-style phase programs.
//!
//! These are *models* of the NPB codes the paper runs (BT.B.4, LU on 4
//! nodes), not the codes themselves: iteration-structured BSP programs whose
//! phase mix is tuned so that the simulated runs reproduce the paper's
//! observable workload properties — execution time near 219 s for BT.B.4 at
//! full frequency (Table 1), utilization alternation that drives CPUSPEED to
//! ~100+ transitions, and partial frequency sensitivity so that tDVFS's
//! down-scaling costs only a few percent of runtime.
//!
//! Per-rank timing variance (a fraction of a percent per iteration, seeded)
//! models OS noise and load imbalance, making barrier waits non-trivial.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::phases::{Phase, PhaseWorkload};

/// NPB problem classes (affects iteration count / duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NpbClass {
    /// Class A: small.
    A,
    /// Class B: the paper's evaluation class.
    B,
    /// Class C: large.
    C,
}

impl NpbClass {
    /// Scale multiplier relative to class B.
    fn scale(self) -> f64 {
        match self {
            NpbClass::A => 0.25,
            NpbClass::B => 1.0,
            NpbClass::C => 4.0,
        }
    }
}

/// The NPB codes modeled here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NpbBenchmark {
    /// Block tri-diagonal solver — the paper's Table 1 / Figures 6, 7, 9, 10
    /// workload.
    Bt,
    /// Lower-upper Gauss–Seidel solver — the paper's Figure 8 workload.
    Lu,
    /// Conjugate gradient — memory-bound, included for coverage.
    Cg,
    /// Scalar penta-diagonal solver.
    Sp,
    /// Embarrassingly parallel — pure compute, a single reduction at the
    /// end. The contrast case: no utilization dips, so CPUSPEED never
    /// down-steps, and no barrier stalls until the final one.
    Ep,
}

/// Shape parameters for one benchmark.
struct Shape {
    iterations: usize,
    /// Nominal compute seconds per iteration (class B).
    compute_s: f64,
    compute_util: f64,
    /// Switching activity during compute (≠ utilization for stall-heavy
    /// codes: the OS sees 100 % busy but the datapath switches less).
    compute_activity: f64,
    /// Fraction of compute work that scales with frequency.
    freq_sensitivity: f64,
    /// Short per-iteration halo exchange.
    comm_s: f64,
    comm_util: f64,
    /// Switching activity during communication (memory/NIC traffic keeps
    /// part of the chip hot even at low OS utilization).
    comm_activity: f64,
    /// A heavier collective every `exchange_every` iterations.
    exchange_every: usize,
    exchange_s: f64,
    exchange_util: f64,
    exchange_activity: f64,
    /// Startup (initialization, grid setup).
    init_s: f64,
}

impl NpbBenchmark {
    fn shape(self) -> Shape {
        match self {
            // Tuned for ≈ 218 s at class B on 4 ranks at 2.4 GHz
            // (200·(0.80 + 0.10) + 50·0.70 + 3 ≈ 218). The 0.8 s low-
            // utilization stretch (comm + exchange) every 4th iteration is
            // what drives the CPUSPEED governor's ~100 transitions per run
            // (Table 1: 101–139).
            NpbBenchmark::Bt => Shape {
                iterations: 200,
                compute_s: 0.80,
                compute_util: 0.97,
                compute_activity: 0.90,
                freq_sensitivity: 0.45,
                comm_s: 0.10,
                comm_util: 0.25,
                comm_activity: 0.35,
                exchange_every: 4,
                exchange_s: 0.70,
                exchange_util: 0.20,
                exchange_activity: 0.30,
                init_s: 3.0,
            },
            // Longer run for Figure 8's ~300 s trace. LU is stall-heavy:
            // high OS utilization but moderate switching activity, so it
            // runs markedly cooler than BT (matching the paper's Figure 8
            // trace, which one DVFS step suffices to stabilize).
            NpbBenchmark::Lu => Shape {
                iterations: 250,
                compute_s: 0.95,
                compute_util: 0.96,
                compute_activity: 0.50,
                freq_sensitivity: 0.50,
                comm_s: 0.08,
                comm_util: 0.35,
                comm_activity: 0.35,
                exchange_every: 10,
                exchange_s: 0.50,
                exchange_util: 0.25,
                exchange_activity: 0.30,
                init_s: 3.0,
            },
            // Memory-bound: low frequency sensitivity, low activity,
            // spiky communication.
            NpbBenchmark::Cg => Shape {
                iterations: 150,
                compute_s: 0.70,
                compute_util: 0.92,
                compute_activity: 0.45,
                freq_sensitivity: 0.20,
                comm_s: 0.20,
                comm_util: 0.40,
                comm_activity: 0.40,
                exchange_every: 5,
                exchange_s: 0.30,
                exchange_util: 0.30,
                exchange_activity: 0.30,
                init_s: 2.0,
            },
            NpbBenchmark::Sp => Shape {
                iterations: 220,
                compute_s: 0.75,
                compute_util: 0.96,
                compute_activity: 0.75,
                freq_sensitivity: 0.40,
                comm_s: 0.12,
                comm_util: 0.30,
                comm_activity: 0.35,
                exchange_every: 6,
                exchange_s: 0.35,
                exchange_util: 0.25,
                exchange_activity: 0.30,
                init_s: 2.5,
            },
            // Fully CPU-bound random-number kernels: high activity, high
            // frequency sensitivity, essentially no communication (the
            // per-iteration comm below is a vestigial progress ping; the
            // real reduction happens once at the end).
            NpbBenchmark::Ep => Shape {
                iterations: 40,
                compute_s: 4.0,
                compute_util: 1.0,
                compute_activity: 0.95,
                freq_sensitivity: 0.90,
                comm_s: 0.01,
                comm_util: 0.9,
                comm_activity: 0.9,
                exchange_every: usize::MAX,
                exchange_s: 0.1,
                exchange_util: 0.3,
                exchange_activity: 0.3,
                init_s: 1.0,
            },
        }
    }

    /// Short display name like `BT.B`.
    pub fn name(self, class: NpbClass) -> String {
        let b = match self {
            NpbBenchmark::Bt => "BT",
            NpbBenchmark::Lu => "LU",
            NpbBenchmark::Cg => "CG",
            NpbBenchmark::Sp => "SP",
            NpbBenchmark::Ep => "EP",
        };
        let c = match class {
            NpbClass::A => "A",
            NpbClass::B => "B",
            NpbClass::C => "C",
        };
        format!("{b}.{c}")
    }

    /// Builds the phase program for one rank.
    ///
    /// `rank` and `seed` determine the per-iteration timing variance; all
    /// ranks of one job should share `seed` and differ in `rank`.
    pub fn rank_program(self, class: NpbClass, rank: usize, seed: u64) -> PhaseWorkload {
        let s = self.shape();
        let scale = class.scale();
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut phases = Vec::with_capacity(s.iterations * 4 + 2);

        phases.push(Phase::compute_with_activity(s.init_s * scale.max(0.25), 0.8, 0.7, 0.8));
        phases.push(Phase::Barrier);

        let iters = ((s.iterations as f64) * scale).round().max(1.0) as usize;
        for i in 0..iters {
            // ±1.5 % per-rank, per-iteration compute variance (OS noise /
            // imbalance) so barrier waits are realistic.
            let wobble = 1.0 + rng.gen_range(-0.015..0.015);
            phases.push(Phase::compute_with_activity(
                s.compute_s * wobble,
                s.compute_util,
                s.compute_activity,
                s.freq_sensitivity,
            ));
            phases.push(Phase::comm_with_activity(s.comm_s, s.comm_util, s.comm_activity));
            if (i + 1) % s.exchange_every == 0 {
                phases.push(Phase::comm_with_activity(
                    s.exchange_s,
                    s.exchange_util,
                    s.exchange_activity,
                ));
            }
            phases.push(Phase::Barrier);
        }
        PhaseWorkload::new(phases)
    }

    /// Nominal single-rank duration at full frequency (no barrier waits).
    pub fn nominal_duration_s(self, class: NpbClass) -> f64 {
        let s = self.shape();
        let iters = ((s.iterations as f64) * class.scale()).round().max(1.0);
        let exchanges = (iters / s.exchange_every as f64).floor();
        s.init_s * class.scale().max(0.25)
            + iters * (s.compute_s + s.comm_s)
            + exchanges * s.exchange_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{WorkState, Workload};

    /// Single-rank run to completion (barriers release immediately).
    fn solo_time(mut w: PhaseWorkload, speed: f64) -> f64 {
        let dt = 0.05;
        let mut t = 0.0;
        for _ in 0..2_000_000 {
            if w.is_finished() {
                return t;
            }
            if let WorkState::AtBarrier(_) = w.state() {
                w.release_barrier();
                continue;
            }
            let _ = w.advance(dt, speed);
            t += dt;
        }
        panic!("did not finish");
    }

    #[test]
    fn bt_b_nominal_duration_matches_table1() {
        let d = NpbBenchmark::Bt.nominal_duration_s(NpbClass::B);
        assert!((210.0..230.0).contains(&d), "BT.B nominal {d}");
    }

    #[test]
    fn bt_b_solo_run_close_to_nominal() {
        let w = NpbBenchmark::Bt.rank_program(NpbClass::B, 0, 42);
        let t = solo_time(w, 1.0);
        let nominal = NpbBenchmark::Bt.nominal_duration_s(NpbClass::B);
        assert!((t - nominal).abs() < nominal * 0.03, "solo {t} vs nominal {nominal}");
    }

    #[test]
    fn reduced_frequency_extends_bt_by_single_digit_percent() {
        // Table 1 shape: running much of BT at 2.0 GHz extends execution by
        // ~5–7 %, not the naive 20 % — the memory-bound fraction absorbs it.
        let full = solo_time(NpbBenchmark::Bt.rank_program(NpbClass::B, 0, 1), 1.0);
        let reduced = solo_time(NpbBenchmark::Bt.rank_program(NpbClass::B, 0, 1), 2.0 / 2.4);
        let slowdown = reduced / full - 1.0;
        assert!(
            (0.02..0.12).contains(&slowdown),
            "slowdown at 2.0 GHz: {slowdown:.3} (full {full}, reduced {reduced})"
        );
    }

    #[test]
    fn cg_is_least_frequency_sensitive() {
        let slowdown = |b: NpbBenchmark| {
            let full = solo_time(b.rank_program(NpbClass::A, 0, 7), 1.0);
            let half = solo_time(b.rank_program(NpbClass::A, 0, 7), 0.5);
            half / full - 1.0
        };
        assert!(slowdown(NpbBenchmark::Cg) < slowdown(NpbBenchmark::Bt));
        assert!(slowdown(NpbBenchmark::Cg) < slowdown(NpbBenchmark::Lu));
    }

    #[test]
    fn classes_scale_duration() {
        let a = NpbBenchmark::Bt.nominal_duration_s(NpbClass::A);
        let b = NpbBenchmark::Bt.nominal_duration_s(NpbClass::B);
        let c = NpbBenchmark::Bt.nominal_duration_s(NpbClass::C);
        assert!(a < b && b < c);
    }

    #[test]
    fn ranks_differ_but_only_slightly() {
        let r0 = NpbBenchmark::Bt.rank_program(NpbClass::A, 0, 9).total_nominal_s();
        let r1 = NpbBenchmark::Bt.rank_program(NpbClass::A, 1, 9).total_nominal_s();
        assert!((r0 - r1).abs() / r0 < 0.02, "rank variance {r0} vs {r1}");
        assert_ne!(r0, r1, "per-rank wobble must differ");
    }

    #[test]
    fn same_rank_same_seed_is_deterministic() {
        let a = solo_time(NpbBenchmark::Lu.rank_program(NpbClass::A, 2, 5), 1.0);
        let b = solo_time(NpbBenchmark::Lu.rank_program(NpbClass::A, 2, 5), 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn names_format() {
        assert_eq!(NpbBenchmark::Bt.name(NpbClass::B), "BT.B");
        assert_eq!(NpbBenchmark::Lu.name(NpbClass::A), "LU.A");
    }

    #[test]
    fn ep_is_nearly_fully_frequency_sensitive() {
        let full = solo_time(NpbBenchmark::Ep.rank_program(NpbClass::A, 0, 3), 1.0);
        let half = solo_time(NpbBenchmark::Ep.rank_program(NpbClass::A, 0, 3), 0.5);
        let slowdown = half / full - 1.0;
        // sensitivity 0.9 at half speed: rate = 0.1 + 0.9·0.5 = 0.55 ⇒ +82 %.
        assert!((0.7..0.95).contains(&slowdown), "EP slowdown {slowdown:.2}");
    }

    #[test]
    fn ep_utilization_never_dips() {
        // EP is the CPUSPEED contrast case: no communication phases long
        // enough to pull a 1 s interval's utilization below any governor
        // threshold.
        let mut w = NpbBenchmark::Ep.rank_program(NpbClass::A, 0, 3);
        let mut min_interval_util: f64 = 1.0;
        'outer: loop {
            let mut util_sum = 0.0;
            for _ in 0..20 {
                if w.is_finished() {
                    break 'outer;
                }
                if let WorkState::AtBarrier(_) = w.state() {
                    w.release_barrier();
                }
                util_sum += w.advance(0.05, 1.0).utilization;
            }
            min_interval_util = min_interval_util.min(util_sum / 20.0);
        }
        assert!(min_interval_util > 0.85, "min 1 s-interval utilization {min_interval_util}");
    }

    #[test]
    fn lu_is_longer_than_bt() {
        assert!(
            NpbBenchmark::Lu.nominal_duration_s(NpbClass::B)
                > NpbBenchmark::Bt.nominal_duration_s(NpbClass::B)
        );
    }
}
