//! Scripted utilization traces.
//!
//! A [`ScriptWorkload`] replays an explicit schedule of `(duration,
//! utilization)` segments. It is how the Figure 2 experiment reproduces the
//! paper's characteristic thermal profile — a script of idle, sudden-load,
//! sustained-climb, bursty-jitter and sudden-drop segments drives the
//! thermal model through all three behaviour types — and a convenient
//! building block for controller tests.

use serde::{Deserialize, Serialize};

use crate::phases::{StepOutcome, WorkState, Workload};

/// One scripted segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Wall-clock duration in seconds.
    pub duration_s: f64,
    /// CPU utilization during the segment.
    pub utilization: f64,
}

impl Segment {
    /// Creates a segment.
    pub fn new(duration_s: f64, utilization: f64) -> Self {
        assert!(duration_s > 0.0, "segment duration must be positive");
        assert!((0.0..=1.0).contains(&utilization), "utilization must be in [0,1]");
        Self { duration_s, utilization }
    }
}

/// A workload replaying scripted utilization segments.
#[derive(Debug, Clone)]
pub struct ScriptWorkload {
    segments: Vec<Segment>,
    current: usize,
    remaining_s: f64,
    total_s: f64,
    elapsed_s: f64,
}

impl ScriptWorkload {
    /// Creates the workload from a segment list.
    ///
    /// # Panics
    /// Panics on an empty script.
    pub fn new(segments: Vec<Segment>) -> Self {
        assert!(!segments.is_empty(), "script must not be empty");
        let total = segments.iter().map(|s| s.duration_s).sum();
        let first = segments[0].duration_s;
        Self { segments, current: 0, remaining_s: first, total_s: total, elapsed_s: 0.0 }
    }

    /// The paper's Figure 2 profile: idle, sudden load, gradual climb under
    /// sustained load, bursty jitter, sudden drop, and a cool-down tail.
    /// Total duration ≈ 300 s (1200 samples at 4 Hz, like the figure).
    pub fn figure2_profile() -> Self {
        let mut segs = vec![
            Segment::new(30.0, 0.10), // idle baseline
            Segment::new(70.0, 1.00), // sudden rise, then gradual climb
        ];
        // Bursty jitter: 2 s alternation for 80 s.
        for i in 0..40 {
            segs.push(Segment::new(2.0, if i % 2 == 0 { 0.95 } else { 0.45 }));
        }
        segs.push(Segment::new(10.0, 0.10)); // sudden drop
        segs.push(Segment::new(60.0, 0.55)); // moderate plateau
        segs.push(Segment::new(50.0, 0.10)); // cool-down tail
        Self::new(segs)
    }

    /// Total scripted duration in seconds.
    pub fn total_duration_s(&self) -> f64 {
        self.total_s
    }
}

impl Workload for ScriptWorkload {
    fn advance(&mut self, dt_s: f64, _speed_factor: f64) -> StepOutcome {
        assert!(dt_s > 0.0, "time step must be positive");
        if self.current >= self.segments.len() {
            return StepOutcome::uniform(0.0);
        }
        self.elapsed_s += dt_s;
        let mut left = dt_s;
        let mut util_time = 0.0;
        while left > 1e-12 && self.current < self.segments.len() {
            let seg = self.segments[self.current];
            let used = self.remaining_s.min(left);
            util_time += seg.utilization * used;
            self.remaining_s -= used;
            left -= used;
            if self.remaining_s <= 1e-9 {
                self.current += 1;
                if self.current < self.segments.len() {
                    self.remaining_s = self.segments[self.current].duration_s;
                }
            }
        }
        StepOutcome::uniform((util_time / dt_s).clamp(0.0, 1.0))
    }

    fn state(&self) -> WorkState {
        if self.current >= self.segments.len() {
            WorkState::Finished
        } else {
            WorkState::Running
        }
    }

    fn release_barrier(&mut self) {}

    fn progress(&self) -> f64 {
        (self.elapsed_s / self.total_s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_segments_in_order() {
        let mut w = ScriptWorkload::new(vec![Segment::new(1.0, 0.2), Segment::new(1.0, 0.9)]);
        assert_eq!(w.advance(0.5, 1.0).utilization, 0.2);
        assert_eq!(w.advance(0.5, 1.0).utilization, 0.2);
        assert_eq!(w.advance(0.5, 1.0).utilization, 0.9);
        assert_eq!(w.advance(0.5, 1.0).utilization, 0.9);
        assert!(w.is_finished());
    }

    #[test]
    fn tick_spanning_segments_blends() {
        let mut w = ScriptWorkload::new(vec![Segment::new(0.5, 1.0), Segment::new(0.5, 0.0)]);
        let u = w.advance(1.0, 1.0).utilization;
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn finished_script_idles() {
        let mut w = ScriptWorkload::new(vec![Segment::new(0.1, 1.0)]);
        let _ = w.advance(0.2, 1.0);
        assert!(w.is_finished());
        assert_eq!(w.advance(1.0, 1.0).utilization, 0.0);
        assert_eq!(w.progress(), 1.0);
    }

    #[test]
    fn speed_factor_is_irrelevant() {
        let mut a = ScriptWorkload::new(vec![Segment::new(5.0, 0.7)]);
        let mut b = ScriptWorkload::new(vec![Segment::new(5.0, 0.7)]);
        for _ in 0..100 {
            assert_eq!(a.advance(0.05, 1.0), b.advance(0.05, 0.3));
        }
    }

    #[test]
    fn figure2_profile_duration() {
        let w = ScriptWorkload::figure2_profile();
        assert!((w.total_duration_s() - 300.0).abs() < 1.0, "{}", w.total_duration_s());
    }

    #[test]
    fn figure2_profile_has_all_regimes() {
        let mut w = ScriptWorkload::figure2_profile();
        let mut utils = Vec::new();
        while !w.is_finished() {
            utils.push(w.advance(0.25, 1.0).utilization);
        }
        let lo = utils.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = utils.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo <= 0.15, "idle regime present (min {lo})");
        assert!(hi >= 0.95, "full-load regime present (max {hi})");
        // Jitter region: consecutive samples differing by > 0.3.
        let jumps = utils.windows(2).filter(|w| (w[1] - w[0]).abs() > 0.3).count();
        assert!(jumps >= 30, "bursty alternation present ({jumps} jumps)");
    }

    #[test]
    fn progress_tracks_elapsed_time() {
        let mut w = ScriptWorkload::new(vec![Segment::new(10.0, 0.5)]);
        for _ in 0..50 {
            let _ = w.advance(0.1, 1.0);
        }
        assert!((w.progress() - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_script_rejected() {
        let _ = ScriptWorkload::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_segment_rejected() {
        let _ = Segment::new(0.0, 0.5);
    }
}
