//! The `cpu-burn` stressor (paper reference \[31\]).
//!
//! §4.2 runs "three instances of the cpu-burn code … a program that
//! intensively utilizes the CPU and thus can exhibit a wide range of
//! temperature and patterns". On a single-core machine the three competing
//! instances plus scheduler interference produce exactly the pattern the
//! paper's Figure 5 shows: long full-tilt bursts (sudden rises then gradual
//! climbs), short gaps when instances restart (sudden drops), and fine
//! jitter.
//!
//! The model is an unbounded utilization process with seeded burst/gap
//! alternation plus small per-tick jitter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::phases::{StepOutcome, WorkState, Workload};

/// Burst/gap tuning for the cpu-burn model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BurnConfig {
    /// Burst (full-load) duration range in seconds.
    pub burst_s: (f64, f64),
    /// Gap (restart/contention) duration range in seconds.
    pub gap_s: (f64, f64),
    /// Utilization during bursts.
    pub burst_util: f64,
    /// Utilization during gaps.
    pub gap_util: f64,
    /// Peak-to-peak utilization jitter applied every tick.
    pub jitter: f64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        Self {
            burst_s: (8.0, 20.0),
            gap_s: (4.0, 12.0),
            burst_util: 1.0,
            gap_util: 0.18,
            jitter: 0.06,
        }
    }
}

/// The cpu-burn workload: runs forever.
#[derive(Debug, Clone)]
pub struct CpuBurn {
    cfg: BurnConfig,
    rng: SmallRng,
    in_burst: bool,
    remaining_s: f64,
}

impl CpuBurn {
    /// Creates the stressor; `seed` fixes the burst schedule.
    pub fn new(seed: u64) -> Self {
        Self::with_config(BurnConfig::default(), seed)
    }

    /// Creates the stressor with explicit tuning.
    pub fn with_config(cfg: BurnConfig, seed: u64) -> Self {
        assert!(cfg.burst_s.0 > 0.0 && cfg.burst_s.1 >= cfg.burst_s.0, "invalid burst range");
        assert!(cfg.gap_s.0 > 0.0 && cfg.gap_s.1 >= cfg.gap_s.0, "invalid gap range");
        let mut rng = SmallRng::seed_from_u64(seed);
        let first = rng.gen_range(cfg.burst_s.0..=cfg.burst_s.1);
        Self { cfg, rng, in_burst: true, remaining_s: first }
    }

    /// True while in a full-load burst.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

impl Workload for CpuBurn {
    fn advance(&mut self, dt_s: f64, _speed_factor: f64) -> StepOutcome {
        assert!(dt_s > 0.0, "time step must be positive");
        self.remaining_s -= dt_s;
        if self.remaining_s <= 0.0 {
            self.in_burst = !self.in_burst;
            self.remaining_s = if self.in_burst {
                self.rng.gen_range(self.cfg.burst_s.0..=self.cfg.burst_s.1)
            } else {
                self.rng.gen_range(self.cfg.gap_s.0..=self.cfg.gap_s.1)
            };
        }
        let base = if self.in_burst { self.cfg.burst_util } else { self.cfg.gap_util };
        let jitter = (self.rng.gen::<f64>() - 0.5) * self.cfg.jitter;
        StepOutcome::uniform((base + jitter).clamp(0.0, 1.0))
    }

    fn state(&self) -> WorkState {
        WorkState::Running
    }

    fn release_barrier(&mut self) {}

    fn progress(&self) -> f64 {
        0.0
    }

    fn is_endless(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_finishes() {
        let mut b = CpuBurn::new(1);
        for _ in 0..10_000 {
            let _ = b.advance(0.25, 1.0);
        }
        assert!(!b.is_finished());
        assert_eq!(b.progress(), 0.0);
        assert_eq!(b.state(), WorkState::Running);
    }

    #[test]
    fn mostly_full_load() {
        let mut b = CpuBurn::new(2);
        let mut total = 0.0;
        let n = 40_000; // 1000 s at 25 ms
        for _ in 0..n {
            total += b.advance(0.025, 1.0).utilization;
        }
        let avg = total / f64::from(n);
        // Expected ≈ (14 s burst · 1.0 + 8 s gap · 0.18) / 22 s ≈ 0.70.
        assert!((0.6..0.9).contains(&avg), "average burn utilization {avg}");
    }

    #[test]
    fn alternates_bursts_and_gaps() {
        let mut b = CpuBurn::new(3);
        let mut saw_gap = false;
        let mut saw_burst = false;
        for _ in 0..20_000 {
            let u = b.advance(0.05, 1.0).utilization;
            if u < 0.4 {
                saw_gap = true;
            }
            if u > 0.9 {
                saw_burst = true;
            }
        }
        assert!(saw_burst && saw_gap);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = CpuBurn::new(7);
        let mut b = CpuBurn::new(7);
        for _ in 0..1000 {
            assert_eq!(a.advance(0.1, 1.0), b.advance(0.1, 1.0));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = CpuBurn::new(1);
        let mut b = CpuBurn::new(2);
        let matches = (0..1000)
            .filter(|_| {
                (a.advance(0.1, 1.0).utilization - b.advance(0.1, 1.0).utilization).abs() < 1e-12
            })
            .count();
        assert!(matches < 1000);
    }

    #[test]
    fn jitter_is_present_within_bursts() {
        let mut b = CpuBurn::new(4);
        let us: Vec<f64> = (0..20).map(|_| b.advance(0.05, 1.0).utilization).collect();
        let distinct = us.iter().filter(|&&u| (u - us[0]).abs() > 1e-12).count();
        assert!(distinct > 0, "utilization should jitter: {us:?}");
    }

    #[test]
    #[should_panic(expected = "invalid burst range")]
    fn bad_config_rejected() {
        let cfg = BurnConfig { burst_s: (10.0, 5.0), ..Default::default() };
        let _ = CpuBurn::with_config(cfg, 0);
    }
}
