//! Utilization-trace replay.
//!
//! The reproduction substitutes synthetic workloads for the production
//! traces the original testbed could observe directly. Users who *do* have
//! recorded utilization traces (from `/proc/stat` sampling, monitoring
//! systems, or a previous simulation's CSV export) can replay them through
//! [`TraceWorkload`]: each row is `(time_s, utilization[, activity])`, and
//! playback holds each utilization until the next timestamp (zero-order
//! hold), exactly reversing how such traces are recorded.

use crate::phases::{StepOutcome, WorkState, Workload};

/// One trace row.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Row {
    time_s: f64,
    utilization: f64,
    activity: f64,
}

/// A workload replaying a recorded utilization trace.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    rows: Vec<Row>,
    elapsed_s: f64,
    /// Replay the trace in a loop instead of finishing at its end.
    looping: bool,
}

/// Error parsing a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

impl TraceWorkload {
    /// Builds a trace from `(time_s, utilization)` points (activity =
    /// utilization).
    ///
    /// # Panics
    /// Panics on an empty trace, non-monotone timestamps, or out-of-range
    /// utilizations — recorded traces with those defects need cleaning, not
    /// silent repair.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        Self::from_points_with_activity(&points.iter().map(|&(t, u)| (t, u, u)).collect::<Vec<_>>())
    }

    /// Builds a trace from `(time_s, utilization, activity)` points.
    pub fn from_points_with_activity(points: &[(f64, f64, f64)]) -> Self {
        assert!(!points.is_empty(), "trace must not be empty");
        let mut rows = Vec::with_capacity(points.len());
        let mut last_t = f64::NEG_INFINITY;
        for &(t, u, a) in points {
            assert!(t.is_finite() && t >= 0.0, "timestamps must be finite and non-negative");
            assert!(t > last_t, "timestamps must be strictly increasing");
            assert!((0.0..=1.0).contains(&u), "utilization must be in [0,1]");
            assert!((0.0..=1.0).contains(&a), "activity must be in [0,1]");
            rows.push(Row { time_s: t, utilization: u, activity: a });
            last_t = t;
        }
        Self { rows, elapsed_s: 0.0, looping: false }
    }

    /// Parses CSV text with rows `time_s,utilization[,activity]`. Lines
    /// starting with `#` and a leading header row (non-numeric first field)
    /// are skipped.
    pub fn from_csv_str(text: &str) -> Result<Self, TraceParseError> {
        let mut points = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() < 2 {
                return Err(TraceParseError {
                    line: line_no,
                    reason: "expected at least time_s,utilization".into(),
                });
            }
            let t: f64 = match fields[0].parse() {
                Ok(v) => v,
                Err(_) if points.is_empty() => continue, // header row
                Err(e) => {
                    return Err(TraceParseError { line: line_no, reason: format!("bad time: {e}") })
                }
            };
            let u: f64 = fields[1].parse().map_err(|e| TraceParseError {
                line: line_no,
                reason: format!("bad utilization: {e}"),
            })?;
            let a: f64 = match fields.get(2) {
                Some(s) if !s.is_empty() => s.parse().map_err(|e| TraceParseError {
                    line: line_no,
                    reason: format!("bad activity: {e}"),
                })?,
                _ => u,
            };
            if !(0.0..=1.0).contains(&u) || !(0.0..=1.0).contains(&a) {
                return Err(TraceParseError {
                    line: line_no,
                    reason: format!("utilization/activity out of [0,1]: {u}, {a}"),
                });
            }
            points.push((t, u, a));
        }
        if points.is_empty() {
            return Err(TraceParseError { line: 0, reason: "no data rows".into() });
        }
        // Monotonicity is a parse error here (not a panic): the text came
        // from outside the program.
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(TraceParseError {
                    line: 0,
                    reason: format!("timestamps not increasing at t={}", w[1].0),
                });
            }
        }
        Ok(Self::from_points_with_activity(&points))
    }

    /// Reads and parses a CSV trace file.
    pub fn from_csv_file(path: impl AsRef<std::path::Path>) -> Result<Self, std::io::Error> {
        let text = std::fs::read_to_string(path)?;
        Self::from_csv_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Makes the trace repeat forever instead of finishing at its last
    /// timestamp.
    pub fn looped(mut self) -> Self {
        self.looping = true;
        self
    }

    /// Duration of one pass, seconds (the last timestamp).
    pub fn duration_s(&self) -> f64 {
        self.rows.last().expect("non-empty").time_s
    }

    fn row_at(&self, t: f64) -> &Row {
        let idx = self.rows.partition_point(|r| r.time_s <= t);
        &self.rows[idx.saturating_sub(1)]
    }
}

impl Workload for TraceWorkload {
    fn advance(&mut self, dt_s: f64, _speed_factor: f64) -> StepOutcome {
        assert!(dt_s > 0.0, "time step must be positive");
        self.elapsed_s += dt_s;
        let t = if self.looping {
            self.elapsed_s % self.duration_s().max(f64::MIN_POSITIVE)
        } else {
            self.elapsed_s
        };
        if !self.looping && t > self.duration_s() {
            return StepOutcome::uniform(0.0);
        }
        let row = self.row_at(t);
        StepOutcome { utilization: row.utilization, activity: row.activity }
    }

    fn state(&self) -> WorkState {
        if !self.looping && self.elapsed_s > self.duration_s() {
            WorkState::Finished
        } else {
            WorkState::Running
        }
    }

    fn release_barrier(&mut self) {}

    fn progress(&self) -> f64 {
        if self.looping {
            0.0
        } else {
            (self.elapsed_s / self.duration_s()).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_zero_order_hold() {
        let mut w = TraceWorkload::from_points(&[(0.0, 0.2), (1.0, 0.8), (2.0, 0.5)]);
        assert_eq!(w.advance(0.5, 1.0).utilization, 0.2); // t = 0.5
        assert_eq!(w.advance(0.75, 1.0).utilization, 0.8); // t = 1.25
        assert_eq!(w.advance(0.75, 1.0).utilization, 0.5); // t = 2.0 (last row)
        assert!(!w.is_finished(), "finishes only past the last timestamp");
        assert_eq!(w.advance(0.5, 1.0).utilization, 0.0); // t = 2.5
        assert!(w.is_finished());
    }

    #[test]
    fn separate_activity_column() {
        let mut w = TraceWorkload::from_points_with_activity(&[(0.0, 0.9, 0.4), (5.0, 0.9, 0.4)]);
        let out = w.advance(1.0, 1.0);
        assert_eq!(out.utilization, 0.9);
        assert_eq!(out.activity, 0.4);
    }

    #[test]
    fn looped_trace_never_finishes() {
        let mut w = TraceWorkload::from_points(&[(0.0, 0.1), (1.0, 0.9), (2.0, 0.1)]).looped();
        for _ in 0..100 {
            let _ = w.advance(0.3, 1.0);
            assert_eq!(w.state(), WorkState::Running);
        }
        assert_eq!(w.progress(), 0.0);
    }

    #[test]
    fn csv_parses_with_header_and_comments() {
        let csv = "# recorded on node7\ntime_s,util\n0.0,0.2\n1.0,0.9\n2.5,0.4\n";
        let w = TraceWorkload::from_csv_str(csv).unwrap();
        assert_eq!(w.duration_s(), 2.5);
    }

    #[test]
    fn csv_optional_activity_column() {
        let csv = "0.0,0.9,0.4\n1.0,0.9,0.4\n";
        let mut w = TraceWorkload::from_csv_str(csv).unwrap();
        assert_eq!(w.advance(0.5, 1.0).activity, 0.4);
    }

    #[test]
    fn csv_errors_are_located() {
        let err = TraceWorkload::from_csv_str("0.0,0.5\n1.0,abc\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("utilization"));

        let err = TraceWorkload::from_csv_str("0.0,1.5\n").unwrap_err();
        assert!(err.reason.contains("out of [0,1]"));

        let err = TraceWorkload::from_csv_str("0.0,0.5\n0.0,0.6\n").unwrap_err();
        assert!(err.reason.contains("not increasing"));

        let err = TraceWorkload::from_csv_str("# only comments\n").unwrap_err();
        assert!(err.reason.contains("no data rows"));
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("unitherm_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, "0.0,0.3\n2.0,0.8\n").unwrap();
        let w = TraceWorkload::from_csv_file(&path).unwrap();
        assert_eq!(w.duration_s(), 2.0);
        assert!(TraceWorkload::from_csv_file(dir.join("missing.csv")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_rejected() {
        let _ = TraceWorkload::from_points(&[(1.0, 0.5), (0.5, 0.5)]);
    }
}
