//! lm-sensors-style temperature polling.
//!
//! The paper samples the processor's on-die digital thermal sensor through
//! lm-sensors at four samples per second. This driver wraps the sensor read
//! with the same conventions: millidegree integer readings, a cached last
//! good value for transient dropouts, and a read counter for diagnostics.

use unitherm_simnode::node::Node;
use unitherm_simnode::units::MilliCelsius;

use crate::error::HwmonError;

/// The paper's sampling rate: 4 samples per second.
pub const SAMPLE_RATE_HZ: f64 = 4.0;

/// The sampling period implied by [`SAMPLE_RATE_HZ`].
pub const SAMPLE_PERIOD_S: f64 = 1.0 / SAMPLE_RATE_HZ;

/// lm-sensors-style sensor access.
#[derive(Debug, Clone, Default)]
pub struct LmSensors {
    last_good: Option<MilliCelsius>,
    reads: u64,
    dropouts: u64,
}

impl LmSensors {
    /// Creates the sensor interface.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the CPU temperature in millidegrees.
    pub fn read_millic(&mut self, node: &mut Node) -> Result<MilliCelsius, HwmonError> {
        match node.read_sensor() {
            Ok(m) => {
                self.last_good = Some(m);
                self.reads += 1;
                Ok(m)
            }
            Err(e) => {
                self.dropouts += 1;
                Err(e.into())
            }
        }
    }

    /// Reads the CPU temperature in °C.
    pub fn read_celsius(&mut self, node: &mut Node) -> Result<f64, HwmonError> {
        self.read_millic(node).map(MilliCelsius::to_celsius)
    }

    /// Reads with dropout tolerance: on failure, falls back to the last good
    /// reading (what a daemon does when one poll fails), or propagates the
    /// error if no reading ever succeeded.
    pub fn read_celsius_or_last(&mut self, node: &mut Node) -> Result<f64, HwmonError> {
        match self.read_celsius(node) {
            Ok(t) => Ok(t),
            Err(e) => self.last_good.map(MilliCelsius::to_celsius).ok_or(e),
        }
    }

    /// Reads every on-die sensor and returns the hottest reading — the
    /// aggregation thermal control should act on for multi-core parts
    /// (protecting the hottest core protects them all). Fails only when no
    /// sensor responds.
    pub fn read_hottest_millic(&mut self, node: &mut Node) -> Result<MilliCelsius, HwmonError> {
        match node.read_hottest_sensor() {
            Ok(m) => {
                self.last_good = Some(m);
                self.reads += 1;
                Ok(m)
            }
            Err(e) => {
                self.dropouts += 1;
                Err(e.into())
            }
        }
    }

    /// Hottest-sensor read in °C.
    pub fn read_hottest_celsius(&mut self, node: &mut Node) -> Result<f64, HwmonError> {
        self.read_hottest_millic(node).map(MilliCelsius::to_celsius)
    }

    /// Hottest-sensor read with last-good fallback.
    pub fn read_hottest_or_last(&mut self, node: &mut Node) -> Result<f64, HwmonError> {
        match self.read_hottest_celsius(node) {
            Ok(t) => Ok(t),
            Err(e) => self.last_good.map(MilliCelsius::to_celsius).ok_or(e),
        }
    }

    /// The last successful reading.
    pub fn last_good(&self) -> Option<MilliCelsius> {
        self.last_good
    }

    /// Successful read count.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Failed read count.
    pub fn dropout_count(&self) -> u64 {
        self.dropouts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_simnode::faults::{FaultEvent, FaultPlan};
    use unitherm_simnode::NodeConfig;

    #[test]
    fn reads_track_die_temperature() {
        let mut node = Node::new(NodeConfig::default(), 17);
        let mut lm = LmSensors::new();
        let t = lm.read_celsius(&mut node).unwrap();
        assert!((t - node.die_temp_c()).abs() < 2.5, "reading {t} vs die {}", node.die_temp_c());
        assert_eq!(lm.read_count(), 1);
    }

    #[test]
    fn millic_units_are_integers_of_quantized_celsius() {
        let mut node = Node::new(NodeConfig::default(), 17);
        let mut lm = LmSensors::new();
        let m = lm.read_millic(&mut node).unwrap();
        // 0.25 °C quantization ⇒ millidegrees divisible by 250.
        assert_eq!(m.0 % 250, 0, "reading {m}");
    }

    #[test]
    fn dropout_fallback_returns_last_good() {
        let faults = FaultPlan::none().at(1.0, FaultEvent::SensorDropout);
        let mut node = Node::with_faults(NodeConfig::default(), 17, faults);
        let mut lm = LmSensors::new();
        let before = lm.read_celsius_or_last(&mut node).unwrap();
        for _ in 0..40 {
            node.tick(0.05);
        }
        let after = lm.read_celsius_or_last(&mut node).unwrap();
        assert_eq!(before, after, "falls back to cached value");
        assert_eq!(lm.dropout_count(), 1);
        assert_eq!(lm.last_good(), Some(MilliCelsius::from_celsius(before)));
    }

    #[test]
    fn dropout_without_history_propagates() {
        let faults = FaultPlan::none().at(0.01, FaultEvent::SensorDropout);
        let mut node = Node::with_faults(NodeConfig::default(), 17, faults);
        node.tick(0.05);
        let mut lm = LmSensors::new();
        assert!(lm.read_celsius_or_last(&mut node).is_err());
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(SAMPLE_RATE_HZ, 4.0);
        assert_eq!(SAMPLE_PERIOD_S, 0.25);
    }
}
