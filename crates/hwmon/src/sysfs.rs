//! A sysfs-style string-attribute façade over the drivers.
//!
//! Exposes the node's control surface with exactly the Linux conventions a
//! shell user or script would see:
//!
//! | path                                    | unit / encoding            |
//! |-----------------------------------------|----------------------------|
//! | `hwmon0/temp1_input`                    | millidegrees C, read-only  |
//! | `hwmon0/pwm1`                           | 0–255, read-write          |
//! | `hwmon0/pwm1_enable`                    | `1` manual, `2` automatic  |
//! | `hwmon0/fan1_input`                     | RPM (tach), read-only      |
//! | `cpufreq/scaling_cur_freq`              | kHz, read-only             |
//! | `cpufreq/scaling_setspeed`              | kHz, write                 |
//! | `cpufreq/scaling_available_frequencies` | kHz list, read-only        |
//!
//! Unit conversions (percent ↔ 0–255, °C ↔ millidegrees, MHz ↔ kHz) are a
//! classic source of driver bugs; the tests here pin each one.

use unitherm_simnode::adt7467::regs;
use unitherm_simnode::node::{Node, ADT7467_ADDR};
use unitherm_simnode::units::DutyCycle;

use crate::error::HwmonError;
use crate::lm_sensors::LmSensors;

/// The sysfs attribute tree for one node.
#[derive(Debug, Clone, Default)]
pub struct SysfsTree {
    lm: LmSensors,
}

impl SysfsTree {
    /// Creates the tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// All attribute paths this tree serves.
    pub fn paths(&self) -> &'static [&'static str] {
        &[
            "hwmon0/temp1_input",
            "hwmon0/pwm1",
            "hwmon0/pwm1_enable",
            "hwmon0/fan1_input",
            "cpufreq/scaling_cur_freq",
            "cpufreq/scaling_setspeed",
            "cpufreq/scaling_available_frequencies",
        ]
    }

    /// Reads an attribute as its string representation.
    pub fn read(&mut self, node: &mut Node, path: &str) -> Result<String, HwmonError> {
        // `hwmon0/tempN_input` for N ≥ 2 maps to per-core sensors on
        // multi-sensor parts (temp1 stays the primary path below).
        if let Some(rest) = path.strip_prefix("hwmon0/temp") {
            if let Some(idx_str) = rest.strip_suffix("_input") {
                if idx_str != "1" {
                    let n: usize = idx_str
                        .parse()
                        .map_err(|_| HwmonError::NoSuchAttribute { path: path.to_string() })?;
                    if n == 0 || n > node.sensor_count() {
                        return Err(HwmonError::NoSuchAttribute { path: path.to_string() });
                    }
                    return Ok(node.read_sensor_at(n - 1).map_err(HwmonError::from)?.0.to_string());
                }
            }
        }
        match path {
            "hwmon0/temp1_input" => Ok(self.lm.read_millic(node)?.0.to_string()),
            "hwmon0/pwm1" => {
                let raw = node.smbus_read(ADT7467_ADDR, regs::PWM_CURRENT)?;
                Ok(raw.to_string())
            }
            "hwmon0/pwm1_enable" => {
                let mode = node.smbus_read(ADT7467_ADDR, regs::PWM_CONFIG)?;
                // Linux hwmon convention: 1 = manual, 2 = automatic.
                Ok(if mode == 1 { "1" } else { "2" }.to_string())
            }
            "hwmon0/fan1_input" => Ok(format!("{:.0}", node.state().fan_rpm)),
            "cpufreq/scaling_cur_freq" => Ok(node.requested_frequency_khz().to_string()),
            "cpufreq/scaling_available_frequencies" => Ok(node
                .available_frequencies_khz()
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(" ")),
            "cpufreq/scaling_setspeed" => {
                Err(HwmonError::NoSuchAttribute { path: format!("{path} (write-only)") })
            }
            other => Err(HwmonError::NoSuchAttribute { path: other.to_string() }),
        }
    }

    /// Writes an attribute from its string representation.
    pub fn write(&mut self, node: &mut Node, path: &str, value: &str) -> Result<(), HwmonError> {
        let value = value.trim();
        match path {
            "hwmon0/pwm1" => {
                let raw: u8 = value.parse().map_err(|_| HwmonError::InvalidValue {
                    path: path.to_string(),
                    value: value.to_string(),
                })?;
                node.smbus_write(ADT7467_ADDR, regs::PWM_CURRENT, raw)?;
                Ok(())
            }
            "hwmon0/pwm1_enable" => {
                match value {
                    // Linux convention 0 = "full speed": manual mode pinned
                    // at maximum duty.
                    "0" => {
                        node.smbus_write(ADT7467_ADDR, regs::PWM_CONFIG, 1)?;
                        node.smbus_write(
                            ADT7467_ADDR,
                            regs::PWM_CURRENT,
                            DutyCycle::MAX.to_register(),
                        )?;
                    }
                    "1" => {
                        node.smbus_write(ADT7467_ADDR, regs::PWM_CONFIG, 1)?;
                    }
                    "2" => {
                        node.smbus_write(ADT7467_ADDR, regs::PWM_CONFIG, 0)?;
                    }
                    _ => {
                        return Err(HwmonError::InvalidValue {
                            path: path.to_string(),
                            value: value.to_string(),
                        })
                    }
                }
                Ok(())
            }
            "cpufreq/scaling_setspeed" => {
                let khz: u32 = value.parse().map_err(|_| HwmonError::InvalidValue {
                    path: path.to_string(),
                    value: value.to_string(),
                })?;
                node.set_frequency_khz(khz)?;
                Ok(())
            }
            "hwmon0/temp1_input"
            | "hwmon0/fan1_input"
            | "cpufreq/scaling_cur_freq"
            | "cpufreq/scaling_available_frequencies" => {
                Err(HwmonError::ReadOnlyAttribute { path: path.to_string() })
            }
            other => Err(HwmonError::NoSuchAttribute { path: other.to_string() }),
        }
    }

    /// Convenience: reads the PWM duty as a percent, converting from the
    /// 0–255 register encoding.
    pub fn read_pwm_percent(&mut self, node: &mut Node) -> Result<u8, HwmonError> {
        let raw: u8 =
            self.read(node, "hwmon0/pwm1")?.parse().expect("pwm1 read produces a valid u8");
        Ok(DutyCycle::from_register(raw).percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_simnode::NodeConfig;

    fn setup() -> (Node, SysfsTree) {
        (Node::new(NodeConfig::default(), 23), SysfsTree::new())
    }

    #[test]
    fn temp1_input_is_millidegrees() {
        let (mut n, mut t) = setup();
        let v: i64 = t.read(&mut n, "hwmon0/temp1_input").unwrap().parse().unwrap();
        let die = n.die_temp_c();
        assert!((v as f64 / 1000.0 - die).abs() < 2.5, "{v} m°C vs die {die}");
    }

    #[test]
    fn pwm1_roundtrip_in_register_units() {
        let (mut n, mut t) = setup();
        t.write(&mut n, "hwmon0/pwm1_enable", "1").unwrap();
        t.write(&mut n, "hwmon0/pwm1", "128").unwrap();
        assert_eq!(t.read(&mut n, "hwmon0/pwm1").unwrap(), "128");
        assert_eq!(t.read_pwm_percent(&mut n).unwrap(), 50);
    }

    #[test]
    fn pwm1_enable_uses_linux_convention() {
        let (mut n, mut t) = setup();
        assert_eq!(t.read(&mut n, "hwmon0/pwm1_enable").unwrap(), "2", "chip boots automatic");
        t.write(&mut n, "hwmon0/pwm1_enable", "1").unwrap();
        assert_eq!(t.read(&mut n, "hwmon0/pwm1_enable").unwrap(), "1");
        t.write(&mut n, "hwmon0/pwm1_enable", "2").unwrap();
        assert_eq!(t.read(&mut n, "hwmon0/pwm1_enable").unwrap(), "2");
    }

    #[test]
    fn scaling_setspeed_takes_khz() {
        let (mut n, mut t) = setup();
        t.write(&mut n, "cpufreq/scaling_setspeed", "2000000").unwrap();
        assert_eq!(t.read(&mut n, "cpufreq/scaling_cur_freq").unwrap(), "2000000");
        assert_eq!(n.requested_frequency_khz(), 2_000_000);
    }

    #[test]
    fn available_frequencies_listed_in_khz() {
        let (mut n, mut t) = setup();
        let s = t.read(&mut n, "cpufreq/scaling_available_frequencies").unwrap();
        assert_eq!(s, "2400000 2200000 2000000 1800000 1000000");
    }

    #[test]
    fn fan1_input_reports_rpm() {
        let (mut n, mut t) = setup();
        let rpm: f64 = t.read(&mut n, "hwmon0/fan1_input").unwrap().parse().unwrap();
        assert!((rpm - n.state().fan_rpm).abs() < 1.0);
    }

    #[test]
    fn read_only_attributes_reject_writes() {
        let (mut n, mut t) = setup();
        for p in ["hwmon0/temp1_input", "hwmon0/fan1_input", "cpufreq/scaling_cur_freq"] {
            assert!(matches!(t.write(&mut n, p, "1"), Err(HwmonError::ReadOnlyAttribute { .. })));
        }
    }

    #[test]
    fn unknown_path_rejected() {
        let (mut n, mut t) = setup();
        assert!(matches!(
            t.read(&mut n, "hwmon0/nonsense"),
            Err(HwmonError::NoSuchAttribute { .. })
        ));
        assert!(matches!(
            t.write(&mut n, "hwmon0/nonsense", "1"),
            Err(HwmonError::NoSuchAttribute { .. })
        ));
    }

    #[test]
    fn bad_values_rejected() {
        let (mut n, mut t) = setup();
        assert!(matches!(
            t.write(&mut n, "hwmon0/pwm1", "not-a-number"),
            Err(HwmonError::InvalidValue { .. })
        ));
        assert!(matches!(
            t.write(&mut n, "hwmon0/pwm1_enable", "7"),
            Err(HwmonError::InvalidValue { .. })
        ));
        assert!(matches!(
            t.write(&mut n, "cpufreq/scaling_setspeed", "fast"),
            Err(HwmonError::InvalidValue { .. })
        ));
        // Valid number, invalid frequency.
        assert!(matches!(
            t.write(&mut n, "cpufreq/scaling_setspeed", "1234567"),
            Err(HwmonError::Frequency(_))
        ));
    }

    #[test]
    fn whitespace_in_writes_tolerated() {
        let (mut n, mut t) = setup();
        t.write(&mut n, "cpufreq/scaling_setspeed", " 1800000\n").unwrap();
        assert_eq!(n.requested_frequency_khz(), 1_800_000);
    }

    #[test]
    fn pwm1_enable_zero_means_full_speed() {
        let (mut n, mut t) = setup();
        t.write(&mut n, "hwmon0/pwm1_enable", "0").unwrap();
        // Linux "0" = full speed: manual mode at maximum duty.
        assert_eq!(t.read(&mut n, "hwmon0/pwm1_enable").unwrap(), "1");
        assert_eq!(t.read_pwm_percent(&mut n).unwrap(), 100);
    }

    #[test]
    fn multi_sensor_tempn_paths() {
        let mut cfg = unitherm_simnode::NodeConfig::default();
        cfg.sensor.count = 3;
        cfg.sensor.noise_std_c = 0.0;
        let mut n = Node::new(cfg, 31);
        let mut t = SysfsTree::new();
        // temp1..temp3 all readable, monotone in the per-core offsets.
        let v1: i64 = t.read(&mut n, "hwmon0/temp1_input").unwrap().parse().unwrap();
        let v2: i64 = t.read(&mut n, "hwmon0/temp2_input").unwrap().parse().unwrap();
        let v3: i64 = t.read(&mut n, "hwmon0/temp3_input").unwrap().parse().unwrap();
        assert!(v1 < v2 && v2 < v3, "per-core offsets: {v1} {v2} {v3}");
        // Out-of-range and malformed indices rejected.
        assert!(matches!(
            t.read(&mut n, "hwmon0/temp4_input"),
            Err(HwmonError::NoSuchAttribute { .. })
        ));
        assert!(matches!(
            t.read(&mut n, "hwmon0/temp0_input"),
            Err(HwmonError::NoSuchAttribute { .. })
        ));
        assert!(matches!(
            t.read(&mut n, "hwmon0/tempX_input"),
            Err(HwmonError::NoSuchAttribute { .. })
        ));
    }

    #[test]
    fn single_sensor_has_no_temp2() {
        let (mut n, mut t) = setup();
        assert!(matches!(
            t.read(&mut n, "hwmon0/temp2_input"),
            Err(HwmonError::NoSuchAttribute { .. })
        ));
    }

    #[test]
    fn paths_listing_matches_served_attributes() {
        let (mut n, mut t) = setup();
        for p in t.paths().to_vec() {
            if p == "cpufreq/scaling_setspeed" {
                continue; // write-only
            }
            assert!(t.read(&mut n, p).is_ok(), "{p} should read");
        }
    }
}
