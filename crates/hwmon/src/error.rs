//! Unified driver-layer error type.

use unitherm_simnode::cpu::InvalidFrequency;
use unitherm_simnode::i2c::I2cError;
use unitherm_simnode::sensor::SensorDropout;

/// An error raised by a hwmon-layer driver.
#[derive(Debug, Clone, PartialEq)]
pub enum HwmonError {
    /// An i2c transaction failed (NACK, missing device, bad register).
    I2c(I2cError),
    /// The thermal sensor did not respond.
    Sensor(SensorDropout),
    /// A cpufreq request named an unavailable frequency.
    Frequency(InvalidFrequency),
    /// Device probe failed (wrong or missing device ID).
    ProbeFailed {
        /// Human-readable reason.
        reason: String,
    },
    /// A sysfs path does not exist.
    NoSuchAttribute {
        /// The rejected path.
        path: String,
    },
    /// A sysfs attribute is read-only.
    ReadOnlyAttribute {
        /// The attribute path.
        path: String,
    },
    /// A sysfs write carried an unparsable or out-of-range value.
    InvalidValue {
        /// The attribute path.
        path: String,
        /// The rejected raw value.
        value: String,
    },
}

impl std::fmt::Display for HwmonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwmonError::I2c(e) => write!(f, "i2c error: {e}"),
            HwmonError::Sensor(e) => write!(f, "sensor error: {e}"),
            HwmonError::Frequency(e) => write!(f, "cpufreq error: {e}"),
            HwmonError::ProbeFailed { reason } => write!(f, "probe failed: {reason}"),
            HwmonError::NoSuchAttribute { path } => write!(f, "no such attribute: {path}"),
            HwmonError::ReadOnlyAttribute { path } => write!(f, "attribute is read-only: {path}"),
            HwmonError::InvalidValue { path, value } => {
                write!(f, "invalid value {value:?} for {path}")
            }
        }
    }
}

impl std::error::Error for HwmonError {}

impl From<I2cError> for HwmonError {
    fn from(e: I2cError) -> Self {
        HwmonError::I2c(e)
    }
}

impl From<SensorDropout> for HwmonError {
    fn from(e: SensorDropout) -> Self {
        HwmonError::Sensor(e)
    }
}

impl From<InvalidFrequency> for HwmonError {
    fn from(e: InvalidFrequency) -> Self {
        HwmonError::Frequency(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<HwmonError> = vec![
            I2cError::NoDevice { addr: 0x2E }.into(),
            SensorDropout.into(),
            InvalidFrequency { requested_mhz: 2300, available_mhz: vec![2400] }.into(),
            HwmonError::ProbeFailed { reason: "bad id".into() },
            HwmonError::NoSuchAttribute { path: "hwmon0/zzz".into() },
            HwmonError::ReadOnlyAttribute { path: "hwmon0/temp1_input".into() },
            HwmonError::InvalidValue { path: "hwmon0/pwm1".into(), value: "abc".into() },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn from_conversions() {
        let e: HwmonError = I2cError::Nack { addr: 1 }.into();
        assert!(matches!(e, HwmonError::I2c(_)));
        let e: HwmonError = SensorDropout.into();
        assert!(matches!(e, HwmonError::Sensor(_)));
    }
}
