//! The assembled userspace control stack for one node.
//!
//! [`ControlStack`] packages what the paper's machines actually ran — the
//! lm-sensors poller, the manual-mode fan driver, the dynamic fan
//! controller (optionally feedforward-augmented), the tDVFS daemon and the
//! failsafe watchdog — behind one `sample()` call per 4 Hz tick. It is the
//! single-node counterpart of the cluster simulator's daemon wiring, meant
//! for library users driving a [`Node`] directly.
//!
//! ```
//! use unitherm_core::control_array::Policy;
//! use unitherm_hwmon::stack::ControlStack;
//! use unitherm_simnode::{Node, NodeConfig};
//!
//! let mut node = Node::new(NodeConfig::default(), 1);
//! let mut stack = ControlStack::builder(Policy::MODERATE)
//!     .max_fan_duty(50)
//!     .with_tdvfs()
//!     .with_failsafe()
//!     .probe(&mut node)
//!     .expect("hardware reachable");
//!
//! // Drive: 20 Hz physics, 4 Hz control.
//! node.set_utilization(1.0);
//! for tick in 0..1200 {
//!     node.tick(0.05);
//!     if (tick + 1) % 5 == 0 {
//!         stack.sample(&mut node);
//!     }
//! }
//! assert!(node.state().fan_duty.percent() > 10, "controller engaged");
//! ```

use unitherm_core::control_array::Policy;
use unitherm_core::controller::ControllerConfig;
use unitherm_core::failsafe::{Failsafe, FailsafeAction, FailsafeConfig};
use unitherm_core::feedforward::{FeedforwardConfig, FeedforwardFanController};
use unitherm_core::tdvfs::{Tdvfs, TdvfsConfig};
use unitherm_simnode::node::{Node, ADT7467_ADDR};

use crate::error::HwmonError;
use crate::fan_driver::FanDriver;
use crate::lm_sensors::LmSensors;

/// Builder for a [`ControlStack`].
#[derive(Debug, Clone)]
pub struct ControlStackBuilder {
    policy: Policy,
    max_duty: u8,
    controller_cfg: ControllerConfig,
    feedforward: Option<FeedforwardConfig>,
    tdvfs: Option<TdvfsConfig>,
    failsafe: Option<FailsafeConfig>,
}

impl ControlStackBuilder {
    /// Maximum allowed fan duty (emulating weaker fans; default 100 %).
    pub fn max_fan_duty(mut self, duty: u8) -> Self {
        self.max_duty = duty;
        self
    }

    /// Controller tuning (array length, temperature range, window).
    pub fn controller_config(mut self, cfg: ControllerConfig) -> Self {
        self.controller_cfg = cfg;
        self
    }

    /// Enables utilization feedforward with default tuning.
    pub fn with_feedforward(mut self) -> Self {
        self.feedforward = Some(FeedforwardConfig::default());
        self
    }

    /// Enables the tDVFS daemon with default tuning (51 °C threshold),
    /// sharing the builder's policy.
    pub fn with_tdvfs(mut self) -> Self {
        self.tdvfs = Some(TdvfsConfig::default());
        self
    }

    /// Enables the tDVFS daemon with explicit tuning.
    pub fn with_tdvfs_config(mut self, cfg: TdvfsConfig) -> Self {
        self.tdvfs = Some(cfg);
        self
    }

    /// Enables the failsafe watchdog with default tuning.
    pub fn with_failsafe(mut self) -> Self {
        self.failsafe = Some(FailsafeConfig::default());
        self
    }

    /// Probes the node's hardware (ADT7467 over i2c, cpufreq ladder) and
    /// assembles the stack.
    pub fn probe(self, node: &mut Node) -> Result<ControlStack, HwmonError> {
        let fan_driver = FanDriver::probe_at(node, ADT7467_ADDR, self.max_duty)?;
        let fan = FeedforwardFanController::new(
            self.policy,
            self.max_duty,
            self.controller_cfg,
            // Zero-gain feedforward reduces to the plain reactive controller.
            self.feedforward.unwrap_or(FeedforwardConfig {
                gain_c_per_util: 0.0,
                ..Default::default()
            }),
        );
        let tdvfs = match self.tdvfs {
            Some(cfg) => {
                let freqs: Vec<u32> = node
                    .available_frequencies_khz()
                    .iter()
                    .map(|khz| khz / 1000)
                    .collect();
                Some(Tdvfs::new(&freqs, self.policy, cfg))
            }
            None => None,
        };
        Ok(ControlStack {
            lm: LmSensors::new(),
            fan_driver,
            fan,
            tdvfs,
            failsafe: self.failsafe.map(Failsafe::new),
        })
    }
}

/// The assembled per-node control stack.
#[derive(Debug)]
pub struct ControlStack {
    lm: LmSensors,
    fan_driver: FanDriver,
    fan: FeedforwardFanController,
    tdvfs: Option<Tdvfs>,
    failsafe: Option<Failsafe>,
}

/// What happened during one control sample.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleOutcome {
    /// The temperature the controllers acted on, if any reading (fresh or
    /// cached) was available.
    pub temp_c: Option<f64>,
    /// New fan duty commanded this sample.
    pub fan_duty: Option<u8>,
    /// New frequency commanded this sample, MHz.
    pub freq_mhz: Option<u32>,
    /// True while the failsafe owns the actuators.
    pub failsafe_engaged: bool,
}

impl ControlStack {
    /// Starts building a stack under the given policy.
    pub fn builder(policy: Policy) -> ControlStackBuilder {
        ControlStackBuilder {
            policy,
            max_duty: 100,
            controller_cfg: ControllerConfig::default(),
            feedforward: None,
            tdvfs: None,
            failsafe: None,
        }
    }

    /// Runs one 4 Hz control sample against the node.
    pub fn sample(&mut self, node: &mut Node) -> SampleOutcome {
        let mut outcome = SampleOutcome::default();

        let fresh = self.lm.read_hottest_celsius(node).ok();
        let temp = fresh.or_else(|| self.lm.last_good().map(|m| m.to_celsius()));
        outcome.temp_c = temp;

        if let Some(fs) = &mut self.failsafe {
            match fs.observe(fresh) {
                Some(FailsafeAction::Engage(_)) => {
                    let _ = self.fan_driver.set_duty(node, 100);
                    let lowest =
                        *node.available_frequencies_khz().last().expect("non-empty ladder");
                    let _ = node.set_frequency_khz(lowest);
                    outcome.fan_duty = Some(self.fan_driver.last_commanded());
                    outcome.freq_mhz = Some(lowest / 1000);
                }
                Some(FailsafeAction::Release) => {
                    let _ = self.fan_driver.set_duty(node, self.fan.current_duty());
                    let mhz = self
                        .tdvfs
                        .as_ref()
                        .map(Tdvfs::current_frequency_mhz)
                        .unwrap_or_else(|| node.available_frequencies_khz()[0] / 1000);
                    let _ = node.set_frequency_khz(mhz * 1000);
                }
                None => {}
            }
        }
        let engaged = self.failsafe.as_ref().is_some_and(Failsafe::is_engaged);
        outcome.failsafe_engaged = engaged;

        if let Some(t) = temp {
            let util = node.utilization();
            if let Some(decision) = self.fan.observe(t, util) {
                if !engaged && self.fan_driver.set_duty(node, decision.mode).is_ok() {
                    outcome.fan_duty = Some(decision.mode);
                }
            }
            if let Some(d) = &mut self.tdvfs {
                if let Some(event) = d.observe(t) {
                    let mhz = event.frequency_mhz();
                    if !engaged && node.set_frequency_khz(mhz * 1000).is_ok() {
                        outcome.freq_mhz = Some(mhz);
                    }
                }
            }
        }
        outcome
    }

    /// The fan controller (for inspection).
    pub fn fan(&self) -> &FeedforwardFanController {
        &self.fan
    }

    /// The tDVFS daemon, if attached.
    pub fn tdvfs(&self) -> Option<&Tdvfs> {
        self.tdvfs.as_ref()
    }

    /// The failsafe watchdog, if attached.
    pub fn failsafe(&self) -> Option<&Failsafe> {
        self.failsafe.as_ref()
    }

    /// The sensor poller statistics.
    pub fn sensors(&self) -> &LmSensors {
        &self.lm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_simnode::faults::{FaultEvent, FaultPlan};
    use unitherm_simnode::NodeConfig;

    /// Drives node + stack for `seconds` under constant utilization.
    fn drive(node: &mut Node, stack: &mut ControlStack, seconds: f64, util: f64) {
        let steps = (seconds / 0.05).round() as usize;
        for tick in 0..steps {
            node.set_utilization(util);
            node.tick(0.05);
            if (tick + 1) % 5 == 0 {
                stack.sample(node);
            }
        }
    }

    #[test]
    fn stack_controls_a_burning_node() {
        let mut node = Node::new(NodeConfig::default(), 41);
        let mut stack = ControlStack::builder(Policy::MODERATE)
            .with_tdvfs()
            .probe(&mut node)
            .unwrap();
        drive(&mut node, &mut stack, 300.0, 1.0);
        assert!(node.state().fan_duty.percent() > 20, "fan engaged");
        assert_eq!(node.cpu().throttle_event_count(), 0, "no emergencies");
    }

    #[test]
    fn capped_stack_uses_tdvfs() {
        let mut node = Node::new(NodeConfig::default(), 42);
        let mut stack = ControlStack::builder(Policy::MODERATE)
            .max_fan_duty(20)
            .with_tdvfs()
            .probe(&mut node)
            .unwrap();
        drive(&mut node, &mut stack, 300.0, 1.0);
        assert!(
            stack.tdvfs().unwrap().scale_down_count() > 0,
            "weak fan forces in-band action"
        );
    }

    #[test]
    fn failsafe_covers_sensor_blackout() {
        let faults = FaultPlan::none().at(5.0, FaultEvent::SensorDropout);
        let mut node = Node::with_faults(NodeConfig::default(), 43, faults);
        let mut stack = ControlStack::builder(Policy::MODERATE)
            .with_failsafe()
            .probe(&mut node)
            .unwrap();
        drive(&mut node, &mut stack, 60.0, 1.0);
        assert!(stack.failsafe().unwrap().is_engaged());
        assert_eq!(node.state().fan_duty.percent(), 100, "failsafe forced full fan");
    }

    #[test]
    fn feedforward_option_wires_through() {
        let mut node = Node::new(NodeConfig::default(), 44);
        let mut stack = ControlStack::builder(Policy::MODERATE)
            .with_feedforward()
            .probe(&mut node)
            .unwrap();
        // Idle for a while, then a hard load step: the feedforward fires.
        drive(&mut node, &mut stack, 20.0, 0.05);
        drive(&mut node, &mut stack, 5.0, 1.0);
        assert!(stack.fan().feedforward_decision_count() > 0);
    }

    #[test]
    fn sample_outcome_reports_temperature() {
        let mut node = Node::new(NodeConfig::default(), 45);
        let mut stack = ControlStack::builder(Policy::MODERATE).probe(&mut node).unwrap();
        node.tick(0.25);
        let out = stack.sample(&mut node);
        let t = out.temp_c.expect("sensor readable");
        assert!((t - node.die_temp_c()).abs() < 3.0);
        assert!(!out.failsafe_engaged);
    }
}
