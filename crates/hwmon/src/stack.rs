//! The assembled userspace control stack for one node.
//!
//! [`ControlStack`] is now a thin platform binding over the core control
//! plane: it polls lm-sensors, feeds each 4 Hz sample to a
//! [`ControlPlane`] daemon pipeline built by [`SchemeSpec::build`] — the
//! same factory the cluster simulator uses — and actuates through the
//! probed [`PlatformBinding`]. The builder API mirrors what the paper's
//! machines actually ran: the dynamic fan controller (optionally
//! feedforward-augmented), the tDVFS daemon and the failsafe watchdog.
//!
//! ```
//! use unitherm_core::control_array::Policy;
//! use unitherm_hwmon::stack::ControlStack;
//! use unitherm_simnode::{Node, NodeConfig};
//!
//! let mut node = Node::new(NodeConfig::default(), 1);
//! let mut stack = ControlStack::builder(Policy::MODERATE)
//!     .max_fan_duty(50)
//!     .with_tdvfs()
//!     .with_failsafe()
//!     .probe(&mut node)
//!     .expect("hardware reachable");
//!
//! // Drive: 20 Hz physics, 4 Hz control.
//! node.set_utilization(1.0);
//! for tick in 0..1200 {
//!     node.tick(0.05);
//!     if (tick + 1) % 5 == 0 {
//!         stack.sample(&mut node);
//!     }
//! }
//! assert!(node.state().fan_duty.percent() > 10, "controller engaged");
//! ```

use unitherm_core::control_array::Policy;
use unitherm_core::control_plane::{
    BuildContext, ControlPlane, DvfsScheme, FanScheme, FeedforwardFan, SchemeSpec, SensorSample,
    TdvfsDaemon,
};
use unitherm_core::controller::ControllerConfig;
use unitherm_core::failsafe::{Failsafe, FailsafeConfig};
use unitherm_core::feedforward::{FeedforwardConfig, FeedforwardFanController};
use unitherm_core::tdvfs::{Tdvfs, TdvfsConfig};
use unitherm_obs::{Counters, Observer, RingSink};
use unitherm_simnode::node::Node;

use crate::binding::{PlatformActuators, PlatformBinding};
use crate::error::HwmonError;
use crate::lm_sensors::LmSensors;

/// Builder for a [`ControlStack`].
#[derive(Debug, Clone)]
pub struct ControlStackBuilder {
    policy: Policy,
    max_duty: u8,
    controller_cfg: ControllerConfig,
    feedforward: Option<FeedforwardConfig>,
    tdvfs: Option<TdvfsConfig>,
    failsafe: Option<FailsafeConfig>,
    event_capacity: usize,
}

impl ControlStackBuilder {
    /// Maximum allowed fan duty (emulating weaker fans; default 100 %).
    pub fn max_fan_duty(mut self, duty: u8) -> Self {
        self.max_duty = duty;
        self
    }

    /// Controller tuning (array length, temperature range, window).
    pub fn controller_config(mut self, cfg: ControllerConfig) -> Self {
        self.controller_cfg = cfg;
        self
    }

    /// Enables utilization feedforward with default tuning.
    pub fn with_feedforward(mut self) -> Self {
        self.feedforward = Some(FeedforwardConfig::default());
        self
    }

    /// Enables the tDVFS daemon with default tuning (51 °C threshold),
    /// sharing the builder's policy.
    pub fn with_tdvfs(mut self) -> Self {
        self.tdvfs = Some(TdvfsConfig::default());
        self
    }

    /// Enables the tDVFS daemon with explicit tuning.
    pub fn with_tdvfs_config(mut self, cfg: TdvfsConfig) -> Self {
        self.tdvfs = Some(cfg);
        self
    }

    /// Enables the failsafe watchdog with default tuning.
    pub fn with_failsafe(mut self) -> Self {
        self.failsafe = Some(FailsafeConfig::default());
        self
    }

    /// Capacity of the stack's event ring (most recent control-plane
    /// events retained; 0 keeps counters only). Default 256.
    pub fn event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// The [`SchemeSpec`] this builder describes: the feedforward fan
    /// daemon (zero-gain feedforward reduces to the plain reactive
    /// controller) plus the optional tDVFS arm.
    pub fn scheme(&self) -> SchemeSpec {
        SchemeSpec::Split {
            fan: FanScheme::DynamicFeedforward {
                policy: self.policy,
                max_duty: self.max_duty,
                config: self.controller_cfg,
                feedforward: self
                    .feedforward
                    .unwrap_or(FeedforwardConfig { gain_c_per_util: 0.0, ..Default::default() }),
            },
            dvfs: match self.tdvfs {
                Some(config) => DvfsScheme::Tdvfs { policy: self.policy, config },
                None => DvfsScheme::None,
            },
        }
    }

    /// Probes the node's hardware (ADT7467 over i2c, cpufreq ladder) and
    /// assembles the stack through the scheme factory.
    pub fn probe(self, node: &mut Node) -> Result<ControlStack, HwmonError> {
        let spec = self.scheme();
        // Direct-node frequency semantics: a request is "accepted" even
        // when it is a no-op, with no cpufreq transition accounting.
        let mut binding = PlatformBinding::probe_direct_freq(node, &spec)?;
        let ctx = BuildContext { available_mhz: PlatformBinding::available_mhz(node) };
        let mut plane = ControlPlane::new(spec.build(&ctx), self.failsafe);
        let attach_sample = SensorSample {
            now_s: 0.0,
            fresh_temp_c: None,
            temp_c: None,
            utilization: node.utilization(),
            die_temp_c: node.die_temp_c(),
        };
        plane.attach(&attach_sample, &mut PlatformActuators { node, binding: &mut binding });
        Ok(ControlStack {
            lm: LmSensors::new(),
            binding,
            plane,
            samples: 0,
            events: RingSink::with_capacity(self.event_capacity),
            counters: Counters::default(),
        })
    }
}

/// The assembled per-node control stack.
#[derive(Debug)]
pub struct ControlStack {
    lm: LmSensors,
    binding: PlatformBinding,
    plane: ControlPlane,
    samples: u64,
    events: RingSink,
    counters: Counters,
}

/// What happened during one control sample.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleOutcome {
    /// The temperature the controllers acted on, if any reading (fresh or
    /// cached) was available.
    pub temp_c: Option<f64>,
    /// New fan duty commanded this sample.
    pub fan_duty: Option<u8>,
    /// New frequency commanded this sample, MHz.
    pub freq_mhz: Option<u32>,
    /// True while the failsafe owns the actuators.
    pub failsafe_engaged: bool,
}

impl ControlStack {
    /// Starts building a stack under the given policy.
    pub fn builder(policy: Policy) -> ControlStackBuilder {
        ControlStackBuilder {
            policy,
            max_duty: 100,
            controller_cfg: ControllerConfig::default(),
            feedforward: None,
            tdvfs: None,
            failsafe: None,
            event_capacity: 256,
        }
    }

    /// Runs one 4 Hz control sample against the node.
    pub fn sample(&mut self, node: &mut Node) -> SampleOutcome {
        let fresh = self.lm.read_hottest_celsius(node).ok();
        let temp = fresh.or_else(|| self.lm.last_good().map(|m| m.to_celsius()));
        let now_s = self.samples as f64 / 4.0;
        let sample = SensorSample {
            now_s,
            fresh_temp_c: fresh,
            temp_c: temp,
            utilization: node.utilization(),
            die_temp_c: node.die_temp_c(),
        };
        self.samples += 1;
        let mut obs = Observer::new(&mut self.events, &mut self.counters, 0, now_s);
        let out = self.plane.on_sample_observed(
            &sample,
            &mut PlatformActuators { node, binding: &mut self.binding },
            &mut obs,
        );
        SampleOutcome {
            temp_c: out.temp_c,
            fan_duty: out.forced_fan_duty.or(out.fan_duty),
            freq_mhz: out.forced_freq_mhz.or(out.freq_mhz),
            failsafe_engaged: out.failsafe_engaged,
        }
    }

    /// The fan controller (for inspection).
    pub fn fan(&self) -> &FeedforwardFanController {
        self.plane
            .daemon::<FeedforwardFan>()
            .expect("stack always runs the feedforward fan daemon")
            .controller()
    }

    /// The tDVFS daemon, if attached.
    pub fn tdvfs(&self) -> Option<&Tdvfs> {
        self.plane.daemon::<TdvfsDaemon>().map(TdvfsDaemon::inner)
    }

    /// The failsafe watchdog, if attached.
    pub fn failsafe(&self) -> Option<&Failsafe> {
        self.plane.failsafe()
    }

    /// The sensor poller statistics.
    pub fn sensors(&self) -> &LmSensors {
        &self.lm
    }

    /// The daemon pipeline behind this stack.
    pub fn plane(&self) -> &ControlPlane {
        &self.plane
    }

    /// The probed platform binding.
    pub fn binding(&self) -> &PlatformBinding {
        &self.binding
    }

    /// Monotonic control-plane counters accumulated since probe.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The event ring holding the most recent control-plane events.
    pub fn events(&self) -> &RingSink {
        &self.events
    }

    /// Renders this stack's counters in Prometheus text exposition
    /// format, ready to serve from a `/metrics` endpoint.
    pub fn prometheus_text(&self) -> String {
        unitherm_obs::prometheus_text(&self.counters, "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_simnode::faults::{FaultEvent, FaultPlan};
    use unitherm_simnode::NodeConfig;

    /// Drives node + stack for `seconds` under constant utilization.
    fn drive(node: &mut Node, stack: &mut ControlStack, seconds: f64, util: f64) {
        let steps = (seconds / 0.05).round() as usize;
        for tick in 0..steps {
            node.set_utilization(util);
            node.tick(0.05);
            if (tick + 1) % 5 == 0 {
                stack.sample(node);
            }
        }
    }

    #[test]
    fn stack_controls_a_burning_node() {
        let mut node = Node::new(NodeConfig::default(), 41);
        let mut stack =
            ControlStack::builder(Policy::MODERATE).with_tdvfs().probe(&mut node).unwrap();
        drive(&mut node, &mut stack, 300.0, 1.0);
        assert!(node.state().fan_duty.percent() > 20, "fan engaged");
        assert_eq!(node.cpu().throttle_event_count(), 0, "no emergencies");
    }

    #[test]
    fn capped_stack_uses_tdvfs() {
        let mut node = Node::new(NodeConfig::default(), 42);
        let mut stack = ControlStack::builder(Policy::MODERATE)
            .max_fan_duty(20)
            .with_tdvfs()
            .probe(&mut node)
            .unwrap();
        drive(&mut node, &mut stack, 300.0, 1.0);
        assert!(stack.tdvfs().unwrap().scale_down_count() > 0, "weak fan forces in-band action");
    }

    #[test]
    fn failsafe_covers_sensor_blackout() {
        let faults = FaultPlan::none().at(5.0, FaultEvent::SensorDropout);
        let mut node = Node::with_faults(NodeConfig::default(), 43, faults);
        let mut stack =
            ControlStack::builder(Policy::MODERATE).with_failsafe().probe(&mut node).unwrap();
        drive(&mut node, &mut stack, 60.0, 1.0);
        assert!(stack.failsafe().unwrap().is_engaged());
        assert_eq!(node.state().fan_duty.percent(), 100, "failsafe forced full fan");
    }

    #[test]
    fn feedforward_option_wires_through() {
        let mut node = Node::new(NodeConfig::default(), 44);
        let mut stack =
            ControlStack::builder(Policy::MODERATE).with_feedforward().probe(&mut node).unwrap();
        // Idle for a while, then a hard load step: the feedforward fires.
        drive(&mut node, &mut stack, 20.0, 0.05);
        drive(&mut node, &mut stack, 5.0, 1.0);
        assert!(stack.fan().feedforward_decision_count() > 0);
    }

    #[test]
    fn sample_outcome_reports_temperature() {
        let mut node = Node::new(NodeConfig::default(), 45);
        let mut stack = ControlStack::builder(Policy::MODERATE).probe(&mut node).unwrap();
        node.tick(0.25);
        let out = stack.sample(&mut node);
        let t = out.temp_c.expect("sensor readable");
        assert!((t - node.die_temp_c()).abs() < 3.0);
        assert!(!out.failsafe_engaged);
    }

    #[test]
    fn stack_exposes_events_and_counters() {
        let mut node = Node::new(NodeConfig::default(), 47);
        let mut stack = ControlStack::builder(Policy::MODERATE)
            .with_tdvfs()
            .event_capacity(64)
            .probe(&mut node)
            .unwrap();
        drive(&mut node, &mut stack, 300.0, 1.0);
        let counters = stack.counters();
        assert!(counters.samples > 0, "every sample is counted");
        assert!(counters.events_emitted > 0, "burn run produces control events");
        assert!(!stack.events().is_empty(), "ring retains recent events");
        assert!(stack.events().len() <= 64, "ring bounded by configured capacity");
        let text = stack.prometheus_text();
        assert!(text.contains("unitherm_samples_total"), "metrics exported: {text}");
        assert!(text.contains("# TYPE unitherm_events_total counter"));
    }

    #[test]
    fn stack_pipeline_comes_from_the_scheme_factory() {
        let mut node = Node::new(NodeConfig::default(), 46);
        let stack = ControlStack::builder(Policy::MODERATE).with_tdvfs().probe(&mut node).unwrap();
        assert_eq!(stack.plane().labels(), vec!["feedforward-fan", "tdvfs"]);
        assert!(stack.plane().controls_frequency());
        assert!(stack.binding().fan_driver().is_some());
    }
}
