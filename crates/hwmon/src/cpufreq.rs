//! The cpufreq interface: in-band DVFS control in Linux units (kHz).
//!
//! Mirrors the userspace-governor control path the paper's tDVFS daemon
//! uses: read `scaling_available_frequencies`, write `scaling_setspeed`.

use unitherm_core::actuator::FreqMhz;
use unitherm_simnode::node::Node;

use crate::error::HwmonError;

/// Driver state for the CPU's frequency-scaling interface.
#[derive(Debug, Clone)]
pub struct CpufreqDriver {
    available_mhz: Vec<FreqMhz>,
    transitions_requested: u64,
}

impl CpufreqDriver {
    /// Probes the available frequency ladder.
    pub fn probe(node: &Node) -> Self {
        let available_mhz =
            node.available_frequencies_khz().into_iter().map(|khz| khz / 1000).collect();
        Self { available_mhz, transitions_requested: 0 }
    }

    /// Available frequencies in MHz, descending.
    pub fn available_mhz(&self) -> &[FreqMhz] {
        &self.available_mhz
    }

    /// The currently requested frequency in MHz.
    pub fn current_mhz(&self, node: &Node) -> FreqMhz {
        node.requested_frequency_khz() / 1000
    }

    /// Requests a frequency in MHz. Returns `true` when the request changed
    /// the operating point.
    pub fn set_mhz(&mut self, node: &mut Node, mhz: FreqMhz) -> Result<bool, HwmonError> {
        let changed = node.set_frequency_khz(mhz * 1000)?;
        if changed {
            self.transitions_requested += 1;
        }
        Ok(changed)
    }

    /// Snaps an arbitrary frequency to the nearest available one and
    /// requests it (governors produced by the control array always emit
    /// exact ladder values, but tooling may not).
    pub fn set_nearest_mhz(
        &mut self,
        node: &mut Node,
        mhz: FreqMhz,
    ) -> Result<FreqMhz, HwmonError> {
        let nearest = *self
            .available_mhz
            .iter()
            .min_by_key(|&&f| f.abs_diff(mhz))
            .expect("ladder is non-empty");
        self.set_mhz(node, nearest)?;
        Ok(nearest)
    }

    /// Number of accepted transition requests through this driver.
    pub fn transitions_requested(&self) -> u64 {
        self.transitions_requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_simnode::NodeConfig;

    fn node() -> Node {
        Node::new(NodeConfig::default(), 13)
    }

    #[test]
    fn probe_reads_ladder_in_mhz() {
        let n = node();
        let d = CpufreqDriver::probe(&n);
        assert_eq!(d.available_mhz(), &[2400, 2200, 2000, 1800, 1000]);
        assert_eq!(d.current_mhz(&n), 2400);
    }

    #[test]
    fn set_mhz_roundtrip() {
        let mut n = node();
        let mut d = CpufreqDriver::probe(&n);
        assert_eq!(d.set_mhz(&mut n, 2000), Ok(true));
        assert_eq!(d.current_mhz(&n), 2000);
        assert_eq!(d.set_mhz(&mut n, 2000), Ok(false), "no-op request");
        assert_eq!(d.transitions_requested(), 1);
    }

    #[test]
    fn invalid_frequency_rejected() {
        let mut n = node();
        let mut d = CpufreqDriver::probe(&n);
        let err = d.set_mhz(&mut n, 2300).unwrap_err();
        assert!(matches!(err, HwmonError::Frequency(_)), "{err}");
        assert_eq!(d.transitions_requested(), 0);
    }

    #[test]
    fn nearest_snaps() {
        let mut n = node();
        let mut d = CpufreqDriver::probe(&n);
        assert_eq!(d.set_nearest_mhz(&mut n, 2300).unwrap(), 2400); // tie-break toward first (2400 vs 2200 both 100 off → min_by_key keeps first)
        assert_eq!(d.set_nearest_mhz(&mut n, 1100).unwrap(), 1000);
        assert_eq!(d.set_nearest_mhz(&mut n, 1999).unwrap(), 2000);
    }
}
