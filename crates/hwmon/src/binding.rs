//! The platform binding: how a [`SchemeSpec`] maps onto this node's
//! hardware seams, and the [`Actuators`] implementation the control plane
//! drives.
//!
//! [`PlatformBinding::probe`] does the one-time hardware setup a scheme
//! needs — writing the ADT7467's `PWM_MAX` cap for chip-automatic schemes,
//! probing the manual-mode fan driver for software-controlled ones, and
//! binding the cpufreq driver when the scheme scales frequency — and then
//! [`PlatformActuators`] adapts `(Node, PlatformBinding)` to the
//! hardware-agnostic [`Actuators`] trait so core daemons never see driver
//! types.

use unitherm_core::acpi::SleepState;
use unitherm_core::actuator::{FanDuty, FreqMhz};
use unitherm_core::control_plane::{Actuators, FanBinding, SchemeSpec};
use unitherm_simnode::adt7467::regs;
use unitherm_simnode::node::{Node, ADT7467_ADDR};
use unitherm_simnode::units::DutyCycle;

use crate::cpufreq::CpufreqDriver;
use crate::error::HwmonError;
use crate::fan_driver::FanDriver;

/// The probed hardware seams one scheme needs on one node.
#[derive(Debug)]
pub struct PlatformBinding {
    /// Manual-mode fan driver; `None` for chip-automatic schemes (the chip
    /// runs its own curve and software stays out of the way).
    fan_driver: Option<FanDriver>,
    /// cpufreq driver; `None` when the scheme never scales frequency or
    /// when frequency requests should go straight to the node.
    cpufreq: Option<CpufreqDriver>,
}

impl PlatformBinding {
    /// Probes the hardware a scheme needs: the fan path per
    /// [`SchemeSpec::fan_binding`], and a cpufreq driver when the scheme
    /// wants one (frequency transitions are then counted by the driver).
    pub fn probe(node: &mut Node, spec: &SchemeSpec) -> Result<Self, HwmonError> {
        let mut binding = Self::probe_direct_freq(node, spec)?;
        if spec.wants_cpufreq() {
            binding.cpufreq = Some(CpufreqDriver::probe(node));
        }
        Ok(binding)
    }

    /// Probes the fan path only; frequency requests bypass cpufreq and go
    /// straight to the node (a direct request is "accepted" even when it is
    /// a no-op, and no transition accounting happens).
    pub fn probe_direct_freq(node: &mut Node, spec: &SchemeSpec) -> Result<Self, HwmonError> {
        let fan_driver = match spec.fan_binding() {
            FanBinding::ChipAuto { cap } => {
                // Cap the automatic curve in hardware; the chip keeps
                // running the fan itself.
                node.smbus_write(ADT7467_ADDR, regs::PWM_MAX, DutyCycle::new(cap).to_register())?;
                None
            }
            FanBinding::Manual { max_duty } => {
                Some(FanDriver::probe_at(node, ADT7467_ADDR, max_duty)?)
            }
        };
        Ok(Self { fan_driver, cpufreq: None })
    }

    /// The node's frequency ladder in descending MHz (the
    /// [`unitherm_core::control_plane::BuildContext`] input).
    pub fn available_mhz(node: &Node) -> Vec<FreqMhz> {
        node.available_frequencies_khz().iter().map(|khz| khz / 1000).collect()
    }

    /// The manual-mode fan driver, if this binding took the fan over.
    pub fn fan_driver(&self) -> Option<&FanDriver> {
        self.fan_driver.as_ref()
    }

    /// The cpufreq driver, if bound.
    pub fn cpufreq(&self) -> Option<&CpufreqDriver> {
        self.cpufreq.as_ref()
    }
}

/// Adapter implementing the control plane's [`Actuators`] trait over a
/// node and its probed binding.
#[derive(Debug)]
pub struct PlatformActuators<'a> {
    /// The node being actuated.
    pub node: &'a mut Node,
    /// The probed hardware seams.
    pub binding: &'a mut PlatformBinding,
}

impl Actuators for PlatformActuators<'_> {
    fn set_fan_duty(&mut self, duty: FanDuty) -> bool {
        match self.binding.fan_driver.as_mut() {
            Some(drv) => drv.set_duty(self.node, duty).is_ok(),
            None => false,
        }
    }

    fn last_commanded_duty(&self) -> FanDuty {
        self.binding
            .fan_driver
            .as_ref()
            .map_or_else(|| self.node.state().fan_duty.percent(), FanDriver::last_commanded)
    }

    fn restore_fan_auto(&mut self) -> bool {
        self.node.smbus_write(ADT7467_ADDR, regs::PWM_CONFIG, 0).is_ok()
    }

    fn set_frequency_mhz(&mut self, mhz: FreqMhz) -> bool {
        match self.binding.cpufreq.as_mut() {
            // Through cpufreq: true means the request *changed* the state
            // (and was counted as a transition).
            Some(drv) => drv.set_mhz(self.node, mhz).unwrap_or(false),
            // Direct: true means the request was *accepted*, no-op or not.
            None => self.node.set_frequency_khz(mhz * 1000).is_ok(),
        }
    }

    fn restore_frequency_mhz(&mut self, mhz: FreqMhz) -> bool {
        self.node.set_frequency_khz(mhz * 1000).is_ok()
    }

    fn restore_max_frequency(&mut self) -> bool {
        let mhz = self.node.available_frequencies_khz()[0] / 1000;
        self.node.set_frequency_khz(mhz * 1000).is_ok()
    }

    fn force_max_cooling(&mut self) -> (FanDuty, FreqMhz) {
        let duty = match self.binding.fan_driver.as_mut() {
            Some(drv) => {
                // The driver clamps to its max-allowed duty: a capped fan
                // can only be forced to its cap.
                let _ = drv.set_duty(self.node, 100);
                drv.last_commanded()
            }
            None => {
                // Chip-automatic scheme: seize the channel and floor it.
                let _ = self.node.smbus_write(ADT7467_ADDR, regs::PWM_CONFIG, 1);
                let _ = self.node.smbus_write(ADT7467_ADDR, regs::PWM_CURRENT, 0xFF);
                self.node.state().fan_duty.percent()
            }
        };
        let lowest = *self.node.available_frequencies_khz().last().expect("non-empty ladder");
        let _ = self.node.set_frequency_khz(lowest);
        (duty, lowest / 1000)
    }

    fn set_sleep_state(&mut self, state: SleepState) -> bool {
        self.node.set_sleep_gate(state.power_fraction());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_core::control_array::Policy;
    use unitherm_core::control_plane::{DvfsScheme, FanScheme};
    use unitherm_simnode::NodeConfig;

    fn node() -> Node {
        Node::new(NodeConfig::default(), 11)
    }

    #[test]
    fn chip_auto_scheme_probes_without_a_driver() {
        let mut n = node();
        let spec = SchemeSpec::split(FanScheme::ChipAutomatic { max_duty: 60 }, DvfsScheme::None);
        let binding = PlatformBinding::probe(&mut n, &spec).unwrap();
        assert!(binding.fan_driver().is_none());
        assert!(binding.cpufreq().is_none());
        // The hardware cap was written: even a hot die cannot exceed 60 %.
        n.set_utilization(1.0);
        for _ in 0..4000 {
            n.tick(0.05);
        }
        assert!(n.state().fan_duty.percent() <= 60, "{}", n.state().fan_duty.percent());
    }

    #[test]
    fn manual_scheme_probes_driver_and_cpufreq() {
        let mut n = node();
        let spec =
            SchemeSpec::split(FanScheme::dynamic(Policy::MODERATE, 80), DvfsScheme::cpuspeed());
        let binding = PlatformBinding::probe(&mut n, &spec).unwrap();
        assert_eq!(binding.fan_driver().unwrap().max_duty(), 80);
        assert!(binding.cpufreq().is_some());
    }

    #[test]
    fn actuators_route_through_the_binding() {
        let mut n = node();
        let spec = SchemeSpec::split(FanScheme::dynamic(Policy::MODERATE, 50), DvfsScheme::None);
        let mut binding = PlatformBinding::probe(&mut n, &spec).unwrap();
        {
            let mut act = PlatformActuators { node: &mut n, binding: &mut binding };
            assert!(act.set_fan_duty(40));
            assert_eq!(act.last_commanded_duty(), 40);
            // Driver clamp: forcing max cooling on a 50 %-capped driver
            // yields 50.
            let (duty, mhz) = act.force_max_cooling();
            assert_eq!(duty, 50);
            assert_eq!(mhz, 1000);
            // Direct frequency requests are "accepted" even as no-ops.
            assert!(act.set_frequency_mhz(1000));
            assert!(act.restore_max_frequency());
        }
        assert_eq!(n.requested_frequency_khz(), 2_400_000);
    }

    #[test]
    fn sleep_state_actuation_gates_the_cpu() {
        let mut n = node();
        let spec = SchemeSpec::acpi_sleep(Policy::MODERATE, FanScheme::Constant { duty: 40 });
        let mut binding = PlatformBinding::probe(&mut n, &spec).unwrap();
        {
            let mut act = PlatformActuators { node: &mut n, binding: &mut binding };
            assert!(act.set_sleep_state(SleepState::C2));
        }
        assert!((n.cpu().sleep_gate() - SleepState::C2.power_fraction()).abs() < 1e-12);
        {
            let mut act = PlatformActuators { node: &mut n, binding: &mut binding };
            assert!(act.set_sleep_state(SleepState::C0));
        }
        assert_eq!(n.cpu().sleep_gate(), 1.0);
    }
}
