#![warn(missing_docs)]

//! The driver layer: lm-sensors / sysfs-style bindings from the unitherm
//! controllers to the simulated platform.
//!
//! On the paper's cluster the control stack is:
//!
//! ```text
//!   controller daemon ──sysfs──► cpufreq driver      (in-band, DVFS)
//!   controller daemon ──lm-sensors──► on-die DTS      (temperature @ 4 Hz)
//!   fan driver ──i2c──► ADT7467 PWM registers         (out-of-band, fan)
//! ```
//!
//! This crate reproduces each seam against `unitherm-simnode`:
//!
//! * [`fan_driver`] — the paper's custom Linux fan driver: probes the
//!   ADT7467 by device ID over i2c, switches it to manual mode, and writes
//!   duty-cycle registers;
//! * [`cpufreq`] — the cpufreq `scaling_setspeed` interface in kHz;
//! * [`lm_sensors`] — quantized millidegree temperature reads;
//! * [`sysfs`] — a string-attribute façade (`hwmon0/temp1_input`,
//!   `hwmon0/pwm1`, `cpufreq/scaling_setspeed`, …) with Linux unit
//!   conventions (millidegrees, 0–255 PWM, kHz), for tooling and tests;
//! * [`binding`] — the platform binding: probes the hardware seams a
//!   `SchemeSpec` needs and adapts them to the control plane's
//!   hardware-agnostic `Actuators` trait;
//! * [`stack`] — the assembled per-node control stack (sensor poller +
//!   platform binding + control-plane daemon pipeline) behind one
//!   `sample()` call;
//! * [`error`] — the unified driver error type.
//!
//! Controllers never touch simulator internals: everything flows through
//! the same register transactions and unit conversions a real driver would
//! perform.

pub mod binding;
pub mod cpufreq;
pub mod error;
pub mod fan_driver;
pub mod lm_sensors;
pub mod stack;
pub mod sysfs;

pub use binding::{PlatformActuators, PlatformBinding};
pub use cpufreq::CpufreqDriver;
pub use error::HwmonError;
pub use fan_driver::FanDriver;
pub use lm_sensors::LmSensors;
pub use stack::{ControlStack, SampleOutcome};
pub use sysfs::SysfsTree;
