//! The fan driver: the paper's custom Linux device driver for the ADT7467.
//!
//! §4.1: "we bought an ADT7467 dBCool remote thermal monitor and fan
//! controller … and connected it to the system. We then developed a Linux
//! device driver that regulates fan speed using the i2c protocol. In this
//! driver, we discretize the continuous fan speed into 100 distinct speeds
//! from duty cycle of 1 % to 100 %."
//!
//! The driver here does the same against the simulated chip: it probes the
//! device ID over i2c, takes the PWM channel into manual mode, clamps every
//! command to a configurable maximum-allowed duty (how the paper emulates
//! less-capable fans), and exposes a release path that returns the chip to
//! its automatic (traditional static) mode.

use unitherm_core::actuator::FanDuty;
use unitherm_simnode::adt7467::{regs, DEVICE_ID};
use unitherm_simnode::node::{Node, ADT7467_ADDR};
use unitherm_simnode::units::DutyCycle;

use crate::error::HwmonError;

/// Driver state for one ADT7467 PWM channel.
#[derive(Debug, Clone)]
pub struct FanDriver {
    addr: u8,
    max_duty: FanDuty,
    last_commanded: FanDuty,
    writes: u64,
}

impl FanDriver {
    /// Probes the chip at the standard address, verifies its device ID, and
    /// switches the PWM channel to manual mode at the minimum running duty.
    pub fn probe(node: &mut Node) -> Result<Self, HwmonError> {
        Self::probe_at(node, ADT7467_ADDR, 100)
    }

    /// Probes with an explicit address and maximum allowed duty.
    pub fn probe_at(node: &mut Node, addr: u8, max_duty: FanDuty) -> Result<Self, HwmonError> {
        let id = node.smbus_read(addr, regs::DEVICE_ID)?;
        if id != DEVICE_ID {
            return Err(HwmonError::ProbeFailed {
                reason: format!(
                    "device at 0x{addr:02x} reports id 0x{id:02x}, expected 0x{DEVICE_ID:02x}"
                ),
            });
        }
        let max_duty = max_duty.clamp(1, 100);
        // Cap the channel in hardware too, then take manual control.
        node.smbus_write(addr, regs::PWM_MAX, DutyCycle::new(max_duty).to_register())?;
        node.smbus_write(addr, regs::PWM_CONFIG, 1)?;
        let mut driver = Self { addr, max_duty, last_commanded: 1, writes: 0 };
        driver.set_duty(node, 1)?;
        Ok(driver)
    }

    /// The maximum allowed duty cycle.
    pub fn max_duty(&self) -> FanDuty {
        self.max_duty
    }

    /// The last successfully commanded duty.
    pub fn last_commanded(&self) -> FanDuty {
        self.last_commanded
    }

    /// Number of successful duty writes.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Commands a duty cycle, clamped to `[1, max_duty]`.
    pub fn set_duty(&mut self, node: &mut Node, duty: FanDuty) -> Result<(), HwmonError> {
        let duty = duty.clamp(1, self.max_duty);
        node.smbus_write(self.addr, regs::PWM_CURRENT, DutyCycle::new(duty).to_register())?;
        self.last_commanded = duty;
        self.writes += 1;
        Ok(())
    }

    /// Reads the duty currently programmed in the chip.
    pub fn read_duty(&self, node: &mut Node) -> Result<FanDuty, HwmonError> {
        let raw = node.smbus_read(self.addr, regs::PWM_CURRENT)?;
        Ok(DutyCycle::from_register(raw).percent())
    }

    /// Releases the channel back to the chip's automatic (traditional
    /// static) control and removes the hardware duty cap.
    pub fn release(self, node: &mut Node) -> Result<(), HwmonError> {
        node.smbus_write(self.addr, regs::PWM_MAX, DutyCycle::MAX.to_register())?;
        node.smbus_write(self.addr, regs::PWM_CONFIG, 0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_simnode::NodeConfig;

    fn node() -> Node {
        Node::new(NodeConfig::default(), 11)
    }

    #[test]
    fn probe_succeeds_on_real_chip() {
        let mut n = node();
        let d = FanDriver::probe(&mut n).expect("probe");
        assert_eq!(d.max_duty(), 100);
        assert_eq!(d.last_commanded(), 1);
        // Chip is now in manual mode.
        assert_eq!(n.smbus_read(ADT7467_ADDR, regs::PWM_CONFIG).unwrap(), 1);
    }

    #[test]
    fn probe_fails_on_missing_device() {
        let mut n = node();
        let err = FanDriver::probe_at(&mut n, 0x10, 100).unwrap_err();
        assert!(matches!(err, HwmonError::I2c(_)), "{err}");
    }

    #[test]
    fn set_and_read_duty_roundtrip() {
        let mut n = node();
        let mut d = FanDriver::probe(&mut n).unwrap();
        for duty in [1u8, 25, 50, 75, 100] {
            d.set_duty(&mut n, duty).unwrap();
            assert_eq!(d.read_duty(&mut n).unwrap(), duty);
            assert_eq!(d.last_commanded(), duty);
        }
        assert_eq!(d.write_count(), 6); // probe writes 1 % once, then 5 more
    }

    #[test]
    fn duty_clamps_to_max() {
        let mut n = node();
        let mut d = FanDriver::probe_at(&mut n, ADT7467_ADDR, 25).unwrap();
        d.set_duty(&mut n, 80).unwrap();
        assert_eq!(d.last_commanded(), 25);
        assert_eq!(d.read_duty(&mut n).unwrap(), 25);
    }

    #[test]
    fn zero_duty_clamps_to_one() {
        let mut n = node();
        let mut d = FanDriver::probe(&mut n).unwrap();
        d.set_duty(&mut n, 0).unwrap();
        assert_eq!(d.last_commanded(), 1);
    }

    #[test]
    fn driver_actually_moves_the_fan() {
        let mut n = node();
        let mut d = FanDriver::probe(&mut n).unwrap();
        d.set_duty(&mut n, 80).unwrap();
        for _ in 0..200 {
            n.tick(0.05);
        }
        let rpm = n.state().fan_rpm;
        assert!((rpm - 0.8 * 4300.0).abs() < 60.0, "rpm {rpm}");
    }

    #[test]
    fn release_returns_chip_to_automatic() {
        let mut n = node();
        let d = FanDriver::probe_at(&mut n, ADT7467_ADDR, 30).unwrap();
        d.release(&mut n).unwrap();
        assert_eq!(n.smbus_read(ADT7467_ADDR, regs::PWM_CONFIG).unwrap(), 0);
        // The hardware duty cap is lifted back to 100 %.
        assert_eq!(n.smbus_read(ADT7467_ADDR, regs::PWM_MAX).unwrap(), 0xFF);
        // And the automatic curve drives the fan past the old 30 % cap
        // under load (the auto-controlled burn settles with ~40 % duty).
        n.set_utilization(1.0);
        for _ in 0..20_000 {
            n.tick(0.05);
        }
        assert!(
            n.state().fan_duty.percent() > 30,
            "auto curve past the old cap: {}",
            n.state().fan_duty
        );
    }

    #[test]
    fn max_duty_clamped_to_valid_range() {
        let mut n = node();
        let d = FanDriver::probe_at(&mut n, ADT7467_ADDR, 0).unwrap();
        assert_eq!(d.max_duty(), 1);
        let mut n2 = node();
        let d2 = FanDriver::probe_at(&mut n2, ADT7467_ADDR, 255).unwrap();
        assert_eq!(d2.max_duty(), 100);
    }
}
