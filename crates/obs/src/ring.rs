//! The fixed-capacity, allocation-free steady-state sink.

use crate::event::EventRecord;
use crate::sink::EventSink;

/// A ring buffer of the most recent events.
///
/// All storage is reserved at construction; `record` is a copy into that
/// storage (or, at capacity, an overwrite of the oldest slot) and never
/// touches the allocator — the property the cluster's counting-allocator
/// regression test pins. Overwritten records are counted in
/// [`RingSink::dropped`] so post-run analysis knows the window was clipped.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<EventRecord>,
    capacity: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records. A capacity of 0
    /// drops (but still counts) everything.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity), capacity, head: 0, dropped: 0 }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records overwritten (or, at capacity 0, discarded) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held records in emission order (oldest first). Allocates the
    /// returned `Vec`; call off the hot path.
    pub fn to_vec(&self) -> Vec<EventRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Iterates the held records in emission order without allocating.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Clears the ring (storage stays reserved).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

impl EventSink for RingSink {
    fn record(&mut self, rec: &EventRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            // Within reserved capacity: push cannot reallocate.
            self.buf.push(*rec);
        } else {
            self.buf[self.head] = *rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn rec(t: f64) -> EventRecord {
        EventRecord { time_s: t, node: 0, event: Event::FailsafeRelease }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut ring = RingSink::with_capacity(3);
        for t in 0..5 {
            ring.record(&rec(f64::from(t)));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let times: Vec<f64> = ring.to_vec().iter().map(|r| r.time_s).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0], "oldest records were overwritten");
        let iter_times: Vec<f64> = ring.iter().map(|r| r.time_s).collect();
        assert_eq!(iter_times, times);
    }

    #[test]
    fn zero_capacity_counts_drops() {
        let mut ring = RingSink::with_capacity(0);
        ring.record(&rec(1.0));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut ring = RingSink::with_capacity(2);
        ring.record(&rec(1.0));
        ring.record(&rec(2.0));
        ring.record(&rec(3.0));
        ring.clear();
        assert!(ring.is_empty());
        ring.record(&rec(4.0));
        assert_eq!(ring.to_vec()[0].time_s, 4.0);
    }
}
