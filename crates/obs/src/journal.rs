//! JSONL event journal: one [`EventRecord`] per line.

use std::io::{self, BufRead, Write};

use crate::event::EventRecord;
use crate::sink::EventSink;

/// Streams every recorded event to a writer as one JSON object per line.
///
/// This is the offline sink: serialization allocates, so keep it off the
/// allocation-free hot path (the cluster tees into it only at sample
/// boundaries when a journal is attached). Write errors are latched into
/// [`JournalWriter::io_error`] rather than panicking mid-simulation.
pub struct JournalWriter<W: Write> {
    out: W,
    written: u64,
    io_error: Option<io::Error>,
}

impl<W: Write> JournalWriter<W> {
    /// Wraps a writer. Callers wanting buffering should pass a
    /// `BufWriter` themselves.
    pub fn new(out: W) -> Self {
        Self { out, written: 0, io_error: None }
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit while writing, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    /// Flushes and returns the inner writer, or the latched/flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.io_error {
            return Err(err);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> EventSink for JournalWriter<W> {
    fn record(&mut self, rec: &EventRecord) {
        if self.io_error.is_some() {
            return;
        }
        let line = match serde_json::to_string(rec) {
            Ok(line) => line,
            Err(err) => {
                self.io_error = Some(io::Error::new(io::ErrorKind::InvalidData, err.to_string()));
                return;
            }
        };
        match self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n")) {
            Ok(()) => self.written += 1,
            Err(err) => self.io_error = Some(err),
        }
    }
}

/// Parses a JSONL journal back into records. Blank lines are skipped;
/// a malformed line is an `InvalidData` error naming its line number.
pub fn read_journal<R: BufRead>(reader: R) -> io::Result<Vec<EventRecord>> {
    let mut records = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: EventRecord = serde_json::from_str(&line).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("journal line {}: {err}", idx + 1))
        })?;
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TripCause};

    #[test]
    fn writes_and_reads_round_trip() {
        let records = vec![
            EventRecord {
                time_s: 1.0,
                node: 0,
                event: Event::TdvfsEngage { from_mhz: 2400, to_mhz: 2200 },
            },
            EventRecord {
                time_s: 2.5,
                node: 1,
                event: Event::FailsafeTrip { cause: TripCause::OverTemperature },
            },
        ];
        let mut writer = JournalWriter::new(Vec::new());
        for rec in &records {
            writer.record(rec);
        }
        assert_eq!(writer.written(), 2);
        let bytes = writer.finish().expect("finish");
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 2);
        let back = read_journal(bytes.as_slice()).expect("read");
        assert_eq!(back, records);
    }

    #[test]
    fn blank_lines_skipped_malformed_lines_named() {
        let rec = EventRecord { time_s: 0.0, node: 0, event: Event::FailsafeRelease };
        let good = serde_json::to_string(&rec).unwrap();
        let text = format!("{good}\n\n{good}\n");
        let back = read_journal(text.as_bytes()).expect("read");
        assert_eq!(back.len(), 2);

        let bad = format!("{good}\nnot json\n");
        let err = read_journal(bad.as_bytes()).expect_err("malformed");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn write_errors_latch_instead_of_panicking() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut writer = JournalWriter::new(Failing);
        let rec = EventRecord { time_s: 0.0, node: 0, event: Event::FailsafeRelease };
        writer.record(&rec);
        writer.record(&rec);
        assert_eq!(writer.written(), 0);
        assert!(writer.io_error().is_some());
        assert!(writer.finish().is_err());
    }
}
