//! JSONL event journal: one [`EventRecord`] per line.

use std::io::{self, BufRead, Write};

use crate::event::EventRecord;
use crate::sink::EventSink;

/// Streams every recorded event to a writer as one JSON object per line.
///
/// This is the offline sink: serialization allocates, so keep it off the
/// allocation-free hot path (the cluster tees into it only at sample
/// boundaries when a journal is attached). Write errors are latched into
/// [`JournalWriter::io_error`] rather than panicking mid-simulation.
pub struct JournalWriter<W: Write> {
    out: W,
    written: u64,
    io_error: Option<io::Error>,
}

impl<W: Write> JournalWriter<W> {
    /// Wraps a writer. Callers wanting buffering should pass a
    /// `BufWriter` themselves.
    pub fn new(out: W) -> Self {
        Self { out, written: 0, io_error: None }
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit while writing, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    /// Flushes and returns the inner writer, or the latched/flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.io_error {
            return Err(err);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> EventSink for JournalWriter<W> {
    fn record(&mut self, rec: &EventRecord) {
        if self.io_error.is_some() {
            return;
        }
        let line = match serde_json::to_string(rec) {
            Ok(line) => line,
            Err(err) => {
                self.io_error = Some(io::Error::new(io::ErrorKind::InvalidData, err.to_string()));
                return;
            }
        };
        match self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n")) {
            Ok(()) => self.written += 1,
            Err(err) => self.io_error = Some(err),
        }
    }
}

/// A forward-only cursor over a parsed journal.
///
/// Replay tooling walks a recorded event stream in order, peeking at the
/// next record to decide whether it is "interesting" (a mode change, a
/// tDVFS engagement, a failsafe trip) before consuming it. The cursor keeps
/// that walk allocation-free and position-aware; [`JournalCursor::seek_time`]
/// skips ahead without consuming interesting records.
pub struct JournalCursor<'a> {
    records: &'a [EventRecord],
    pos: usize,
}

impl<'a> JournalCursor<'a> {
    /// Starts a cursor at the beginning of `records` (as returned by
    /// [`read_journal`]).
    pub fn new(records: &'a [EventRecord]) -> Self {
        Self { records, pos: 0 }
    }

    /// The next record without consuming it.
    pub fn peek(&self) -> Option<&'a EventRecord> {
        self.records.get(self.pos)
    }

    /// Consumes and returns the next record.
    #[allow(clippy::should_implement_trait)] // iterator-style by design; Iterator impl below
    pub fn next(&mut self) -> Option<&'a EventRecord> {
        let rec = self.records.get(self.pos)?;
        self.pos += 1;
        Some(rec)
    }

    /// Advances past every record stamped strictly before `time_s`.
    /// Returns how many records were skipped.
    pub fn seek_time(&mut self, time_s: f64) -> usize {
        let start = self.pos;
        while self.records.get(self.pos).is_some_and(|r| r.time_s < time_s) {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Records not yet consumed.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.pos
    }

    /// Index of the next record within the journal.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for JournalCursor<'a> {
    type Item = &'a EventRecord;

    fn next(&mut self) -> Option<Self::Item> {
        JournalCursor::next(self)
    }
}

/// Parses a JSONL journal back into records. Blank lines are skipped;
/// a malformed line is an `InvalidData` error naming its line number.
pub fn read_journal<R: BufRead>(reader: R) -> io::Result<Vec<EventRecord>> {
    let mut records = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: EventRecord = serde_json::from_str(&line).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("journal line {}: {err}", idx + 1))
        })?;
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TripCause};

    #[test]
    fn writes_and_reads_round_trip() {
        let records = vec![
            EventRecord {
                time_s: 1.0,
                node: 0,
                event: Event::TdvfsEngage { from_mhz: 2400, to_mhz: 2200 },
            },
            EventRecord {
                time_s: 2.5,
                node: 1,
                event: Event::FailsafeTrip { cause: TripCause::OverTemperature },
            },
        ];
        let mut writer = JournalWriter::new(Vec::new());
        for rec in &records {
            writer.record(rec);
        }
        assert_eq!(writer.written(), 2);
        let bytes = writer.finish().expect("finish");
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 2);
        let back = read_journal(bytes.as_slice()).expect("read");
        assert_eq!(back, records);
    }

    #[test]
    fn blank_lines_skipped_malformed_lines_named() {
        let rec = EventRecord { time_s: 0.0, node: 0, event: Event::FailsafeRelease };
        let good = serde_json::to_string(&rec).unwrap();
        let text = format!("{good}\n\n{good}\n");
        let back = read_journal(text.as_bytes()).expect("read");
        assert_eq!(back.len(), 2);

        let bad = format!("{good}\nnot json\n");
        let err = read_journal(bad.as_bytes()).expect_err("malformed");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn cursor_walks_peeks_and_seeks() {
        let records: Vec<EventRecord> = (0..5)
            .map(|i| EventRecord { time_s: f64::from(i), node: 0, event: Event::FailsafeRelease })
            .collect();
        let mut cur = JournalCursor::new(&records);
        assert_eq!(cur.remaining(), 5);
        assert_eq!(cur.peek().unwrap().time_s, 0.0);
        assert_eq!(cur.next().unwrap().time_s, 0.0);
        assert_eq!(cur.seek_time(3.0), 2, "skips records before t=3");
        assert_eq!(cur.position(), 3);
        assert_eq!(cur.peek().unwrap().time_s, 3.0);
        // The cursor is an iterator over what remains.
        assert_eq!(cur.count(), 2);

        let mut empty = JournalCursor::new(&[]);
        assert_eq!(empty.seek_time(10.0), 0);
        assert!(empty.next().is_none());
    }

    #[test]
    fn write_errors_latch_instead_of_panicking() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut writer = JournalWriter::new(Failing);
        let rec = EventRecord { time_s: 0.0, node: 0, event: Event::FailsafeRelease };
        writer.record(&rec);
        writer.record(&rec);
        assert_eq!(writer.written(), 0);
        assert!(writer.io_error().is_some());
        assert!(writer.finish().is_err());
    }
}
