//! JSONL event journal: one [`EventRecord`] per line.

use std::io::{self, BufRead, Write};

use crate::binary::BinaryJournalReader;
use crate::event::EventRecord;
use crate::sink::EventSink;

/// Which on-disk encoding an event journal uses: JSONL text
/// (`docs/FORMATS.md` §2) or the `unitherm-bjl/v1` fixed-width binary
/// format (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFormat {
    /// One JSON object per line — human-greppable, ~120 bytes/event.
    Jsonl,
    /// `unitherm-bjl/v1` — 32 bytes/event, seekable by tick.
    Bjl,
}

impl JournalFormat {
    /// Parses a `--journal-format` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "jsonl" => Some(JournalFormat::Jsonl),
            "bjl" => Some(JournalFormat::Bjl),
            _ => None,
        }
    }

    /// Sniffs the encoding from the first bytes of a journal (the binary
    /// format always opens with the `UBJL` magic).
    pub fn sniff(data: &[u8]) -> Self {
        if crate::binary::is_bjl(data) {
            JournalFormat::Bjl
        } else {
            JournalFormat::Jsonl
        }
    }
}

impl std::fmt::Display for JournalFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JournalFormat::Jsonl => "jsonl",
            JournalFormat::Bjl => "bjl",
        })
    }
}

/// Streams every recorded event to a writer as one JSON object per line.
///
/// This is the offline sink: serialization allocates, so keep it off the
/// allocation-free hot path (the cluster tees into it only at sample
/// boundaries when a journal is attached). Write errors are latched into
/// [`JournalWriter::io_error`] rather than panicking mid-simulation.
pub struct JournalWriter<W: Write> {
    out: W,
    written: u64,
    io_error: Option<io::Error>,
}

impl<W: Write> JournalWriter<W> {
    /// Wraps a writer. Callers wanting buffering should pass a
    /// `BufWriter` themselves.
    pub fn new(out: W) -> Self {
        Self { out, written: 0, io_error: None }
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit while writing, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    /// Flushes and returns the inner writer, or the latched/flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.io_error {
            return Err(err);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> EventSink for JournalWriter<W> {
    fn record(&mut self, rec: &EventRecord) {
        if self.io_error.is_some() {
            return;
        }
        let line = match serde_json::to_string(rec) {
            Ok(line) => line,
            Err(err) => {
                self.io_error = Some(io::Error::new(io::ErrorKind::InvalidData, err.to_string()));
                return;
            }
        };
        match self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n")) {
            Ok(()) => self.written += 1,
            Err(err) => self.io_error = Some(err),
        }
    }

    fn sink_error(&self) -> Option<String> {
        self.io_error.as_ref().map(|e| format!("journal sink failed: {e}"))
    }
}

enum CursorSource<'a> {
    /// Parsed JSONL records held in memory.
    Parsed(&'a [EventRecord]),
    /// A validated binary journal, decoded frame-by-frame on demand.
    Binary(&'a BinaryJournalReader<'a>),
}

/// A forward-only cursor over a recorded journal in either encoding.
///
/// Replay tooling walks a recorded event stream in order, peeking at the
/// next record to decide whether it is "interesting" (a mode change, a
/// tDVFS engagement, a failsafe trip) before consuming it. The cursor keeps
/// that walk position-aware and encoding-agnostic: [`JournalCursor::new`]
/// wraps parsed JSONL records, [`JournalCursor::from_binary`] wraps a
/// [`BinaryJournalReader`], and every accessor behaves identically so
/// `derive_fault_plan` produces the same plan from both. Records are
/// yielded by value — [`EventRecord`] is `Copy` and fits in a cache line.
///
/// [`JournalCursor::seek_tick`] is where the encodings diverge in cost:
/// the binary source binary-searches the frame time column (`O(log n)`),
/// the parsed source walks forward.
pub struct JournalCursor<'a> {
    source: CursorSource<'a>,
    pos: usize,
}

impl<'a> JournalCursor<'a> {
    /// Starts a cursor at the beginning of `records` (as returned by
    /// [`read_journal`]).
    pub fn new(records: &'a [EventRecord]) -> Self {
        Self { source: CursorSource::Parsed(records), pos: 0 }
    }

    /// Starts a cursor at the beginning of a validated binary journal.
    pub fn from_binary(reader: &'a BinaryJournalReader<'a>) -> Self {
        Self { source: CursorSource::Binary(reader), pos: 0 }
    }

    fn len(&self) -> usize {
        match self.source {
            CursorSource::Parsed(records) => records.len(),
            CursorSource::Binary(reader) => reader.len(),
        }
    }

    fn get(&self, i: usize) -> Option<EventRecord> {
        match self.source {
            CursorSource::Parsed(records) => records.get(i).copied(),
            CursorSource::Binary(reader) => (i < reader.len()).then(|| reader.get(i)),
        }
    }

    /// The next record without consuming it.
    pub fn peek(&self) -> Option<EventRecord> {
        self.get(self.pos)
    }

    /// Consumes and returns the next record.
    #[allow(clippy::should_implement_trait)] // iterator-style by design; Iterator impl below
    pub fn next(&mut self) -> Option<EventRecord> {
        let rec = self.get(self.pos)?;
        self.pos += 1;
        Some(rec)
    }

    /// Advances past every record stamped strictly before `time_s`.
    /// Returns how many records were skipped.
    pub fn seek_time(&mut self, time_s: f64) -> usize {
        let start = self.pos;
        while self.get(self.pos).is_some_and(|r| r.time_s < time_s) {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Advances past every record whose tick (`round(time_s / dt_s)`) is
    /// strictly before `tick`, never moving backwards. Returns how many
    /// records were skipped.
    ///
    /// A record with a non-finite or negative timestamp has no tick; it is
    /// never skipped, so replay validation still sees it and can reject the
    /// journal with a named error. On a binary source this is a binary
    /// search over the frame time column (times were validated finite and
    /// non-decreasing at open) instead of a scan.
    pub fn seek_tick(&mut self, tick: u64, dt_s: f64) -> usize {
        let start = self.pos;
        match self.source {
            CursorSource::Parsed(records) => {
                while records
                    .get(self.pos)
                    .is_some_and(|r| record_tick(r.time_s, dt_s).is_some_and(|t| t < tick))
                {
                    self.pos += 1;
                }
            }
            CursorSource::Binary(reader) => {
                self.pos = self.pos.max(reader.seek_tick(tick));
            }
        }
        self.pos - start
    }

    /// Records not yet consumed.
    pub fn remaining(&self) -> usize {
        self.len() - self.pos
    }

    /// Index of the next record within the journal.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// The tick a journal timestamp addresses under tick width `dt_s`, or
/// `None` when the timestamp is not a finite non-negative time (replay
/// rejects such records with a named error rather than skipping them).
pub fn record_tick(time_s: f64, dt_s: f64) -> Option<u64> {
    if !time_s.is_finite() || time_s < 0.0 {
        return None;
    }
    Some((time_s / dt_s).round() as u64)
}

impl Iterator for JournalCursor<'_> {
    type Item = EventRecord;

    fn next(&mut self) -> Option<Self::Item> {
        JournalCursor::next(self)
    }
}

/// Parses a JSONL journal back into records. Blank lines are skipped;
/// a malformed line is an `InvalidData` error naming its line number.
pub fn read_journal<R: BufRead>(reader: R) -> io::Result<Vec<EventRecord>> {
    let mut records = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: EventRecord = serde_json::from_str(&line).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("journal line {}: {err}", idx + 1))
        })?;
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TripCause};

    #[test]
    fn writes_and_reads_round_trip() {
        let records = vec![
            EventRecord {
                time_s: 1.0,
                node: 0,
                event: Event::TdvfsEngage { from_mhz: 2400, to_mhz: 2200 },
            },
            EventRecord {
                time_s: 2.5,
                node: 1,
                event: Event::FailsafeTrip { cause: TripCause::OverTemperature },
            },
        ];
        let mut writer = JournalWriter::new(Vec::new());
        for rec in &records {
            writer.record(rec);
        }
        assert_eq!(writer.written(), 2);
        let bytes = writer.finish().expect("finish");
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 2);
        let back = read_journal(bytes.as_slice()).expect("read");
        assert_eq!(back, records);
    }

    #[test]
    fn blank_lines_skipped_malformed_lines_named() {
        let rec = EventRecord { time_s: 0.0, node: 0, event: Event::FailsafeRelease };
        let good = serde_json::to_string(&rec).unwrap();
        let text = format!("{good}\n\n{good}\n");
        let back = read_journal(text.as_bytes()).expect("read");
        assert_eq!(back.len(), 2);

        let bad = format!("{good}\nnot json\n");
        let err = read_journal(bad.as_bytes()).expect_err("malformed");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn cursor_walks_peeks_and_seeks() {
        let records: Vec<EventRecord> = (0..5)
            .map(|i| EventRecord { time_s: f64::from(i), node: 0, event: Event::FailsafeRelease })
            .collect();
        let mut cur = JournalCursor::new(&records);
        assert_eq!(cur.remaining(), 5);
        assert_eq!(cur.peek().unwrap().time_s, 0.0);
        assert_eq!(cur.next().unwrap().time_s, 0.0);
        assert_eq!(cur.seek_time(3.0), 2, "skips records before t=3");
        assert_eq!(cur.position(), 3);
        assert_eq!(cur.peek().unwrap().time_s, 3.0);
        // The cursor is an iterator over what remains.
        assert_eq!(cur.count(), 2);

        let mut empty = JournalCursor::new(&[]);
        assert_eq!(empty.seek_time(10.0), 0);
        assert!(empty.next().is_none());
    }

    #[test]
    fn cursor_behaves_identically_over_both_encodings() {
        let records: Vec<EventRecord> = (0..5)
            .map(|i| EventRecord { time_s: f64::from(i), node: 0, event: Event::FailsafeRelease })
            .collect();
        let bytes = crate::binary::records_to_bjl(&records, 0.5);
        let reader = crate::binary::BinaryJournalReader::new(&bytes).expect("open");

        let mut parsed = JournalCursor::new(&records);
        let mut binary = JournalCursor::from_binary(&reader);
        // dt = 0.5, so record i sits at tick 2i; tick 5 lands on t=3.0.
        assert_eq!(parsed.seek_tick(5, 0.5), 3);
        assert_eq!(binary.seek_tick(5, 0.5), 3);
        assert_eq!(parsed.position(), binary.position());
        assert_eq!(parsed.peek(), binary.peek());
        // Seeking backwards never rewinds.
        assert_eq!(parsed.seek_tick(0, 0.5), 0);
        assert_eq!(binary.seek_tick(0, 0.5), 0);
        let rest_parsed: Vec<EventRecord> = parsed.collect();
        let rest_binary: Vec<EventRecord> = binary.collect();
        assert_eq!(rest_parsed, rest_binary);
    }

    #[test]
    fn invalid_timestamps_have_no_tick_and_are_never_skipped() {
        assert_eq!(record_tick(f64::NAN, 0.05), None);
        assert_eq!(record_tick(-1.0, 0.05), None);
        assert_eq!(record_tick(1.0000000000000002, 0.05), Some(20));
        let records =
            vec![EventRecord { time_s: f64::NAN, node: 0, event: Event::FailsafeRelease }];
        let mut cur = JournalCursor::new(&records);
        assert_eq!(cur.seek_tick(u64::MAX, 0.05), 0, "invalid time must reach the validator");
        assert!(cur.peek().is_some());
    }

    #[test]
    fn format_parses_and_sniffs() {
        assert_eq!(JournalFormat::parse("jsonl"), Some(JournalFormat::Jsonl));
        assert_eq!(JournalFormat::parse("bjl"), Some(JournalFormat::Bjl));
        assert_eq!(JournalFormat::parse("csv"), None);
        assert_eq!(JournalFormat::sniff(b"{\"time_s\":0.0}"), JournalFormat::Jsonl);
        let bytes = crate::binary::records_to_bjl(&[], 0.05);
        assert_eq!(JournalFormat::sniff(&bytes), JournalFormat::Bjl);
        assert_eq!(JournalFormat::Jsonl.to_string(), "jsonl");
        assert_eq!(JournalFormat::Bjl.to_string(), "bjl");
    }

    #[test]
    fn write_errors_latch_instead_of_panicking() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut writer = JournalWriter::new(Failing);
        let rec = EventRecord { time_s: 0.0, node: 0, event: Event::FailsafeRelease };
        writer.record(&rec);
        writer.record(&rec);
        assert_eq!(writer.written(), 0);
        assert!(writer.io_error().is_some());
        assert!(writer.finish().is_err());
    }
}
