//! Server-Sent Events framing over the journal event stream.
//!
//! `unitherm-serve` streams a running job's control-plane events to HTTP
//! subscribers as `text/event-stream` frames (see `docs/API.md`). The
//! framing rules live here, next to the event vocabulary, so every server
//! and test agrees on the bytes:
//!
//! * each frame carries an `id:` (the record's 0-based sequence number in
//!   the journal), an `event:` name, and one `data:` line per line of
//!   payload;
//! * journal frames use `event: journal` and carry **exactly the JSONL
//!   encoding** of the [`EventRecord`] (`docs/FORMATS.md` §2) as their
//!   payload — stripping the SSE framing off a complete stream reproduces
//!   the journal file byte for byte.

use crate::event::EventRecord;

/// Renders one SSE frame: optional `id:` and `event:` fields followed by
/// one `data:` line per line of `data`, terminated by the blank line that
/// ends an SSE frame.
///
/// Multi-line payloads are split across `data:` lines per the SSE spec (the
/// receiver rejoins them with `\n`); a trailing newline in `data` is not
/// preserved by that round trip, so keep payloads newline-free when byte
/// identity matters (JSONL journal lines are).
///
/// # Example
///
/// ```
/// use unitherm_obs::sse_frame;
///
/// let frame = sse_frame(Some(7), Some("journal"), "{\"time_s\":1.0}");
/// assert_eq!(frame, "id: 7\nevent: journal\ndata: {\"time_s\":1.0}\n\n");
/// ```
pub fn sse_frame(id: Option<u64>, event: Option<&str>, data: &str) -> String {
    let mut out = String::with_capacity(data.len() + 32);
    if let Some(id) = id {
        out.push_str("id: ");
        out.push_str(&id.to_string());
        out.push('\n');
    }
    if let Some(event) = event {
        out.push_str("event: ");
        out.push_str(event);
        out.push('\n');
    }
    for line in data.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Renders one journal record as its SSE frame: `id:` is `seq` (the
/// record's position in the journal), `event:` is `journal`, and the data
/// payload is the record's JSONL line — the same bytes a
/// [`crate::JournalWriter`] would emit for it, minus the trailing newline.
///
/// # Example
///
/// ```
/// use unitherm_obs::{sse_journal_frame, Event, EventRecord};
///
/// let rec = EventRecord { time_s: 1.5, node: 0, event: Event::FailsafeRelease };
/// let frame = sse_journal_frame(3, &rec);
/// assert!(frame.starts_with("id: 3\nevent: journal\ndata: {"));
/// assert!(frame.ends_with("}\n\n"));
/// ```
pub fn sse_journal_frame(seq: u64, rec: &EventRecord) -> String {
    let line = serde_json::to_string(rec).expect("event records always serialize");
    sse_frame(Some(seq), Some("journal"), &line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::journal::JournalWriter;
    use crate::sink::EventSink;

    #[test]
    fn journal_frame_payload_matches_jsonl_encoding_exactly() {
        let records = vec![
            EventRecord {
                time_s: 0.25,
                node: 1,
                event: Event::TdvfsEngage { from_mhz: 2400, to_mhz: 2200 },
            },
            EventRecord { time_s: 0.5, node: 0, event: Event::FailsafeRelease },
        ];
        let mut writer = JournalWriter::new(Vec::new());
        for rec in &records {
            writer.record(rec);
        }
        let jsonl = String::from_utf8(writer.finish().expect("finish")).expect("utf8");

        // Stripping the SSE framing must reproduce the journal byte for byte.
        let mut reassembled = String::new();
        for (i, rec) in records.iter().enumerate() {
            let frame = sse_journal_frame(i as u64, rec);
            assert!(frame.starts_with(&format!("id: {i}\nevent: journal\ndata: ")), "{frame}");
            for line in frame.lines().filter_map(|l| l.strip_prefix("data: ")) {
                reassembled.push_str(line);
                reassembled.push('\n');
            }
        }
        assert_eq!(reassembled, jsonl);
    }

    #[test]
    fn multi_line_payloads_split_into_data_lines() {
        let frame = sse_frame(None, Some("done"), "line1\nline2");
        assert_eq!(frame, "event: done\ndata: line1\ndata: line2\n\n");
        let bare = sse_frame(None, None, "x");
        assert_eq!(bare, "data: x\n\n");
    }
}
