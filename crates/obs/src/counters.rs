//! Per-daemon monotonic counters and their Prometheus text exporter.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Monotonic counters maintained by the control plane.
///
/// Incrementing a counter is a plain integer add — safe on the hot path.
/// The block is `Copy` so reports can embed a snapshot, and fields are all
/// `u64` with `serde(default)`-friendly zero defaults so old journal/report
/// files keep parsing as the set grows.
///
/// # Example
///
/// Aggregate per-node blocks and export them:
///
/// ```
/// use unitherm_obs::{prometheus_text, Counters};
///
/// let node0 = Counters { samples: 400, l2_fallbacks: 3, ..Counters::default() };
/// let node1 = Counters { samples: 400, tdvfs_engagements: 1, ..Counters::default() };
/// let mut cluster = Counters::default();
/// cluster.merge(&node0);
/// cluster.merge(&node1);
/// assert_eq!(cluster.samples, 800);
///
/// let text = prometheus_text(&cluster, "scenario=\"burn\"");
/// assert!(text.contains("unitherm_samples_total{scenario=\"burn\"} 800"));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Sensor samples pushed through the control plane.
    #[serde(default)]
    pub samples: u64,
    /// Hardware ticks short-circuited because no daemon wanted them
    /// (`wants_tick` was false across the pipeline).
    #[serde(default)]
    pub ticks_skipped: u64,
    /// Events emitted through the sink (including any later overwritten in
    /// a ring).
    #[serde(default)]
    pub events_emitted: u64,
    /// Mode changes driven by the level-one (sudden) window.
    #[serde(default)]
    pub l1_decisions: u64,
    /// Mode changes where level one saw nothing and the level-two (gradual)
    /// fallback acted.
    #[serde(default)]
    pub l2_fallbacks: u64,
    /// Mode changes driven by a utilization feedforward prediction.
    #[serde(default)]
    pub feedforward_decisions: u64,
    /// Mode changes driven by a non-window utilization governor (CPUSPEED).
    #[serde(default)]
    pub governor_decisions: u64,
    /// Decisions clamped at an end of the thermal control array.
    #[serde(default)]
    pub saturations: u64,
    /// tDVFS scale-down engagements.
    #[serde(default)]
    pub tdvfs_engagements: u64,
    /// tDVFS frequency restorations.
    #[serde(default)]
    pub tdvfs_releases: u64,
    /// Failsafe watchdog trips.
    #[serde(default)]
    pub failsafe_trips: u64,
    /// Faults delivered to the node's hardware by a fault plan (stochastic
    /// or tick-addressed replay schedule).
    #[serde(default)]
    pub faults_injected: u64,
}

impl Counters {
    /// Field-by-field sum, for aggregating per-node blocks into a cluster
    /// total.
    pub fn merge(&mut self, other: &Counters) {
        self.samples += other.samples;
        self.ticks_skipped += other.ticks_skipped;
        self.events_emitted += other.events_emitted;
        self.l1_decisions += other.l1_decisions;
        self.l2_fallbacks += other.l2_fallbacks;
        self.feedforward_decisions += other.feedforward_decisions;
        self.governor_decisions += other.governor_decisions;
        self.saturations += other.saturations;
        self.tdvfs_engagements += other.tdvfs_engagements;
        self.tdvfs_releases += other.tdvfs_releases;
        self.failsafe_trips += other.failsafe_trips;
        self.faults_injected += other.faults_injected;
    }

    /// The `(metric name, help text, value)` triples behind the Prometheus
    /// exporter, in a stable order.
    pub fn metrics(&self) -> [(&'static str, &'static str, u64); 12] {
        [
            (
                "unitherm_samples_total",
                "Sensor samples processed by the control plane",
                self.samples,
            ),
            (
                "unitherm_ticks_skipped_total",
                "Hardware ticks short-circuited because no daemon wanted them",
                self.ticks_skipped,
            ),
            ("unitherm_events_total", "Structured events emitted", self.events_emitted),
            (
                "unitherm_l1_decisions_total",
                "Mode changes from the level-one window",
                self.l1_decisions,
            ),
            (
                "unitherm_l2_fallbacks_total",
                "Mode changes from the level-two fallback window",
                self.l2_fallbacks,
            ),
            (
                "unitherm_feedforward_decisions_total",
                "Mode changes from utilization feedforward",
                self.feedforward_decisions,
            ),
            (
                "unitherm_governor_decisions_total",
                "Mode changes from the utilization governor",
                self.governor_decisions,
            ),
            (
                "unitherm_saturations_total",
                "Decisions clamped at a control-array end",
                self.saturations,
            ),
            ("unitherm_tdvfs_engage_total", "tDVFS scale-down engagements", self.tdvfs_engagements),
            ("unitherm_tdvfs_release_total", "tDVFS frequency restorations", self.tdvfs_releases),
            ("unitherm_failsafe_trips_total", "Failsafe watchdog trips", self.failsafe_trips),
            (
                "unitherm_faults_injected_total",
                "Faults delivered by fault plans",
                self.faults_injected,
            ),
        ]
    }
}

/// Renders a counter block in the Prometheus text exposition format.
///
/// `labels` is spliced verbatim into each sample line (e.g. `node="3"`);
/// pass `""` for an unlabelled export.
pub fn prometheus_text(counters: &Counters, labels: &str) -> String {
    let mut out = String::new();
    let braces = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
    for (name, help, value) in counters.metrics() {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}{braces} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_field() {
        let mut a = Counters { samples: 1, l2_fallbacks: 2, ..Counters::default() };
        let b = Counters { samples: 3, failsafe_trips: 4, ..Counters::default() };
        a.merge(&b);
        assert_eq!(a.samples, 4);
        assert_eq!(a.l2_fallbacks, 2);
        assert_eq!(a.failsafe_trips, 4);
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let c = Counters { samples: 10, tdvfs_engagements: 2, ..Counters::default() };
        let text = prometheus_text(&c, "node=\"3\"");
        assert!(text.contains("# TYPE unitherm_samples_total counter"), "{text}");
        assert!(text.contains("unitherm_samples_total{node=\"3\"} 10"), "{text}");
        assert!(text.contains("unitherm_tdvfs_engage_total{node=\"3\"} 2"), "{text}");
        // Every sample line must carry the label set.
        let unlabelled = prometheus_text(&c, "");
        assert!(unlabelled.contains("unitherm_samples_total 10"), "{unlabelled}");
    }

    #[test]
    fn counters_round_trip_and_tolerate_missing_fields() {
        let c = Counters { ticks_skipped: 7, ..Counters::default() };
        let json = serde_json::to_string(&c).expect("serialize");
        let back: Counters = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, c);
        // Older files without newer fields still parse.
        let sparse: Counters = serde_json::from_str("{\"samples\":5}").expect("sparse");
        assert_eq!(sparse.samples, 5);
        assert_eq!(sparse.ticks_skipped, 0);
    }
}
