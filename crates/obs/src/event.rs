//! The typed event taxonomy.
//!
//! Every variant is `Copy` and carries only fixed-size scalars: recording an
//! event is a plain memcpy, never a heap allocation. Actuation values are
//! widened to `u32` (fan duty percent, MHz, sleep-state ordinal) so one
//! `ModeChange` shape covers every technique the control array unifies.

use serde::{Deserialize, Serialize};

/// Which actuation technique an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActuatorKind {
    /// Out-of-band: fan duty (percent).
    Fan,
    /// In-band: CPU frequency (MHz).
    Dvfs,
    /// In-band: ACPI processor sleep state (ordinal, C0 = 0).
    Sleep,
}

/// Which prediction path produced a mode change (mirrors the core
/// controller's `DecisionLevel`, plus the non-window governor path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowLevel {
    /// The level-one (sudden) window delta moved the index.
    L1,
    /// Level one saw no change; the level-two (gradual) fallback moved it.
    L2,
    /// A utilization feedforward prediction moved it.
    Feedforward,
    /// Not window-driven at all: a utilization governor (CPUSPEED) acted.
    Governor,
}

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossDirection {
    /// The temperature rose through the threshold.
    Above,
    /// The temperature fell back through the threshold.
    Below,
}

/// Why the failsafe watchdog tripped (mirrors the core `FailsafeReason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TripCause {
    /// The sensor path produced no fresh reading for too long.
    StaleSensor,
    /// A fresh reading crossed the panic line.
    OverTemperature,
}

/// The kind of fault a fault plan delivered to a node.
///
/// Mirrors the simulator's fault vocabulary (`unitherm-simnode`'s
/// `FaultEvent`) without depending on it — this crate sits at the bottom of
/// the dependency graph, so the cluster layer maps between the two when it
/// emits [`Event::FaultInjected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedFault {
    /// The fan rotor seized.
    FanFailure,
    /// The fan was repaired.
    FanRepair,
    /// The thermal sensors stopped responding.
    SensorDropout,
    /// The thermal sensors recovered.
    SensorRestore,
    /// The i2c fan controller started NACKing transactions.
    I2cFailure,
    /// The i2c fan controller recovered.
    I2cRecovery,
    /// The intake-air temperature stepped (magnitude = new °C).
    AmbientStep,
    /// The fan PWM line latched at its current duty.
    PwmStuck,
    /// The stuck PWM line released.
    PwmRelease,
    /// Extra gaussian noise was added to every sensor (magnitude = extra
    /// standard deviation in °C; 0 clears it).
    SensorJitter,
}

/// Which phase of the chaos search emitted a [`Event::SearchProgress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchPhase {
    /// Seeded random sampling over the candidate space.
    Sample,
    /// Greedy hold/magnitude mutation of the best candidates.
    Mutate,
    /// Window bisection: dropping and shrinking windows to minimize cost.
    Bisect,
}

/// One structured control-plane event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A daemon moved its actuator to a new mode.
    ModeChange {
        /// Which technique acted.
        actuator: ActuatorKind,
        /// Previous mode value (duty %, MHz, or sleep ordinal).
        from: u32,
        /// New mode value.
        to: u32,
        /// Which window level (or the governor path) drove the change.
        window_level: WindowLevel,
    },
    /// A monitored temperature crossed a control threshold (e.g. the tDVFS
    /// 51 °C trigger).
    ThresholdCross {
        /// The threshold crossed, °C.
        threshold_c: f64,
        /// The sample that crossed it, °C.
        temp_c: f64,
        /// Crossing direction.
        direction: CrossDirection,
    },
    /// tDVFS scaled the CPU down (in-band control engaged because
    /// out-of-band cooling could not hold the threshold).
    TdvfsEngage {
        /// Frequency before the scale-down, MHz.
        from_mhz: u32,
        /// Frequency after, MHz.
        to_mhz: u32,
    },
    /// tDVFS restored the original frequency after sustained cooling.
    TdvfsRelease {
        /// The restored frequency, MHz.
        to_mhz: u32,
    },
    /// The failsafe watchdog engaged maximum cooling.
    FailsafeTrip {
        /// What tripped it.
        cause: TripCause,
    },
    /// The failsafe released control back to the daemon pipeline.
    FailsafeRelease,
    /// A feedforward prediction fired: the utilization step it saw and the
    /// temperature boost it pre-positioned the fan for.
    PredictionSample {
        /// CPU utilization in `[0, 1]` at prediction time.
        utilization: f64,
        /// Predicted temperature delta the controller acted on, °C.
        predicted_delta_c: f64,
    },
    /// A fault plan delivered a fault to the node's hardware this tick
    /// (fault injection / deterministic replay).
    FaultInjected {
        /// What was injected.
        kind: InjectedFault,
        /// Variant-specific magnitude: the new ambient °C for
        /// [`InjectedFault::AmbientStep`], the extra noise std-dev for
        /// [`InjectedFault::SensorJitter`], 0 otherwise.
        magnitude: f64,
    },
    /// Progress from the adversarial chaos search (the record's `time_s`
    /// carries the simulated seconds evaluated so far, not wall-clock; the
    /// search itself has no clock so reruns stay bit-identical).
    SearchProgress {
        /// Which phase of the search emitted this.
        phase: SearchPhase,
        /// Candidate evaluations completed so far.
        evaluated: u32,
        /// Outcome-flipping counterexamples found so far.
        counterexamples: u32,
        /// Cost of the cheapest counterexample so far (`u64::MAX` until one
        /// is found); cost = total faulted ticks + window count.
        best_cost: u64,
    },
}

/// An [`Event`] stamped with when and where it happened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Simulated wall-clock time of the emitting sample, seconds.
    pub time_s: f64,
    /// Node (rank) index within the cluster; 0 for single-node stacks.
    pub node: u32,
    /// The event itself.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_fixed_size_and_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Event>();
        assert_copy::<EventRecord>();
        // The record must stay a small, flat value: recording one is a
        // memcpy into the ring, never a pointer chase or allocation.
        assert!(std::mem::size_of::<EventRecord>() <= 64);
    }

    #[test]
    fn events_serialize_to_tagged_json() {
        let rec = EventRecord {
            time_s: 12.25,
            node: 3,
            event: Event::ModeChange {
                actuator: ActuatorKind::Fan,
                from: 25,
                to: 40,
                window_level: WindowLevel::L1,
            },
        };
        let json = serde_json::to_string(&rec).expect("serialize");
        assert!(json.contains("\"ModeChange\""), "{json}");
        assert!(json.contains("\"node\":3"), "{json}");
        let back: EventRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, rec);
    }

    #[test]
    fn search_progress_events_round_trip() {
        let rec = EventRecord {
            time_s: 720.0,
            node: 0,
            event: Event::SearchProgress {
                phase: SearchPhase::Mutate,
                evaluated: 24,
                counterexamples: 3,
                best_cost: 141,
            },
        };
        let json = serde_json::to_string(&rec).expect("serialize");
        assert!(json.contains("\"SearchProgress\""), "{json}");
        assert!(json.contains("\"Mutate\""), "{json}");
        let back: EventRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, rec);
    }

    #[test]
    fn fault_injection_events_round_trip() {
        let rec = EventRecord {
            time_s: 42.0,
            node: 1,
            event: Event::FaultInjected { kind: InjectedFault::SensorJitter, magnitude: 0.75 },
        };
        let json = serde_json::to_string(&rec).expect("serialize");
        assert!(json.contains("\"FaultInjected\""), "{json}");
        assert!(json.contains("\"SensorJitter\""), "{json}");
        let back: EventRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, rec);
    }
}
