#![warn(missing_docs)]

//! Zero-allocation observability for the thermal control plane.
//!
//! The control loop is only trustworthy if we can see *why* it acted: which
//! window level (sudden L1 vs gradual L2 fallback) drove a fan mode change,
//! when tDVFS engaged because a capped fan could not hold the 51 °C
//! threshold, when the failsafe watchdog tripped. This crate provides the
//! shared vocabulary and plumbing:
//!
//! * [`Event`] / [`EventRecord`] — the typed, fixed-size (`Copy`, heap-free)
//!   event taxonomy every control layer emits;
//! * [`EventSink`] — the pluggable recording trait. [`RingSink`] is the
//!   steady-state sink: a fixed-capacity ring buffer whose `record` path
//!   performs **zero heap allocations** (enforced by the counting-allocator
//!   test in `unitherm-cluster`). [`JournalWriter`] streams records as JSONL
//!   for offline analysis; [`BinaryJournalWriter`] streams the same records
//!   as compact seekable `unitherm-bjl/v1` frames (see [`binary`]);
//!   [`TeeSink`] fans one stream out to both.
//! * [`Observer`] — the per-sample emission context threaded through
//!   `unitherm-core::control_plane`: a sink plus the [`Counters`] block and
//!   the record metadata (node id, timestamp);
//! * [`Counters`] — per-daemon monotonic counters (ticks skipped, L2
//!   fallbacks, saturations, …) with a Prometheus text-format exporter;
//! * [`sse`] — Server-Sent Events framing over the journal stream, shared
//!   by `unitherm-serve` and its clients so the SSE payload is bit-for-bit
//!   the JSONL journal encoding.
//!
//! The crate is deliberately at the bottom of the dependency graph (only
//! `serde` for the journal schema) so `unitherm-core`, the cluster
//! simulator, the hwmon stack and the bench harness can all share it.

pub mod binary;
pub mod counters;
pub mod event;
pub mod journal;
pub mod ring;
pub mod sink;
pub mod sse;

pub use binary::{
    bjl_to_records, is_bjl, records_to_bjl, BinaryJournalError, BinaryJournalReader,
    BinaryJournalWriter, BJL_FRAME_LEN, BJL_HEADER_LEN, BJL_MAGIC, BJL_VERSION,
};
pub use counters::{prometheus_text, Counters};
pub use event::{
    ActuatorKind, CrossDirection, Event, EventRecord, InjectedFault, SearchPhase, TripCause,
    WindowLevel,
};
pub use journal::{read_journal, record_tick, JournalCursor, JournalFormat, JournalWriter};
pub use ring::RingSink;
pub use sink::{EventSink, NullSink, Observer, TeeSink, VecSink};
pub use sse::{sse_frame, sse_journal_frame};
