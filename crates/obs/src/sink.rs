//! The pluggable event-recording trait and the emission context.

use crate::counters::Counters;
use crate::event::{ActuatorKind, Event, EventRecord, InjectedFault, TripCause, WindowLevel};

/// Where emitted events go.
///
/// Implementations used on the simulation hot path must not allocate in
/// `record` — the counting-allocator regression test in `unitherm-cluster`
/// enforces this for [`crate::RingSink`]. Offline sinks (the JSONL
/// [`crate::JournalWriter`]) may allocate freely.
///
/// # Example
///
/// A custom sink is one method; [`VecSink`] is the simplest built-in:
///
/// ```
/// use unitherm_obs::{Event, EventRecord, EventSink, VecSink};
///
/// let mut sink = VecSink::default();
/// sink.record(&EventRecord { time_s: 1.5, node: 0, event: Event::FailsafeRelease });
/// assert_eq!(sink.records.len(), 1);
/// assert_eq!(sink.records[0].time_s, 1.5);
/// ```
pub trait EventSink {
    /// Records one event. The record is borrowed — hot-path sinks copy it
    /// into pre-reserved storage.
    fn record(&mut self, rec: &EventRecord);

    /// A human-readable description of a failure the sink entered while
    /// recording, if any. In-memory sinks never fail; journal writers latch
    /// their first I/O error here so the simulation can surface "your
    /// journal is incomplete" in the run report instead of silently
    /// dropping the tail of the stream.
    fn sink_error(&self) -> Option<String> {
        None
    }
}

/// Discards every event (the default when observability is off).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _rec: &EventRecord) {}
}

/// Collects every event into a growable `Vec` (tests, offline analysis —
/// not for the allocation-free hot path).
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The collected records, in emission order.
    pub records: Vec<EventRecord>,
}

impl EventSink for VecSink {
    fn record(&mut self, rec: &EventRecord) {
        self.records.push(*rec);
    }
}

/// Fans one event stream out to two sinks (e.g. the per-node ring buffer
/// plus a shared JSONL journal).
pub struct TeeSink<'a> {
    a: &'a mut dyn EventSink,
    b: &'a mut dyn EventSink,
}

impl<'a> TeeSink<'a> {
    /// Combines two sinks; both receive every record.
    pub fn new(a: &'a mut dyn EventSink, b: &'a mut dyn EventSink) -> Self {
        Self { a, b }
    }
}

impl EventSink for TeeSink<'_> {
    fn record(&mut self, rec: &EventRecord) {
        self.a.record(rec);
        self.b.record(rec);
    }

    fn sink_error(&self) -> Option<String> {
        self.a.sink_error().or_else(|| self.b.sink_error())
    }
}

/// The emission context the control plane threads through one sample or
/// tick: a sink, the counter block, and the metadata every record carries.
///
/// The helper methods keep the counters consistent with the event stream —
/// a `ModeChange` at level 2 always bumps `l2_fallbacks`, a trip always
/// bumps `failsafe_trips` — so callers cannot drift the two apart.
pub struct Observer<'a> {
    sink: &'a mut dyn EventSink,
    /// The monotonic counter block being maintained.
    pub counters: &'a mut Counters,
    node: u32,
    time_s: f64,
}

impl<'a> Observer<'a> {
    /// Creates an observer stamping records with `node` and `time_s`.
    pub fn new(
        sink: &'a mut dyn EventSink,
        counters: &'a mut Counters,
        node: u32,
        time_s: f64,
    ) -> Self {
        Self { sink, counters, node, time_s }
    }

    /// The timestamp records are being stamped with.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Emits one event through the sink.
    pub fn emit(&mut self, event: Event) {
        self.counters.events_emitted += 1;
        self.sink.record(&EventRecord { time_s: self.time_s, node: self.node, event });
    }

    /// Emits a [`Event::ModeChange`] and maintains the per-level decision
    /// counters. `saturated` marks a decision clamped at an array end.
    pub fn mode_change(
        &mut self,
        actuator: ActuatorKind,
        from: u32,
        to: u32,
        window_level: WindowLevel,
        saturated: bool,
    ) {
        match window_level {
            WindowLevel::L1 => self.counters.l1_decisions += 1,
            WindowLevel::L2 => self.counters.l2_fallbacks += 1,
            WindowLevel::Feedforward => self.counters.feedforward_decisions += 1,
            WindowLevel::Governor => self.counters.governor_decisions += 1,
        }
        if saturated {
            self.counters.saturations += 1;
        }
        self.emit(Event::ModeChange { actuator, from, to, window_level });
    }

    /// Emits a [`Event::TdvfsEngage`] and bumps its counter.
    pub fn tdvfs_engage(&mut self, from_mhz: u32, to_mhz: u32) {
        self.counters.tdvfs_engagements += 1;
        self.emit(Event::TdvfsEngage { from_mhz, to_mhz });
    }

    /// Emits a [`Event::TdvfsRelease`] and bumps its counter.
    pub fn tdvfs_release(&mut self, to_mhz: u32) {
        self.counters.tdvfs_releases += 1;
        self.emit(Event::TdvfsRelease { to_mhz });
    }

    /// Emits a [`Event::FailsafeTrip`] and bumps its counter.
    pub fn failsafe_trip(&mut self, cause: TripCause) {
        self.counters.failsafe_trips += 1;
        self.emit(Event::FailsafeTrip { cause });
    }

    /// Emits a [`Event::FaultInjected`] and bumps its counter.
    pub fn fault_injected(&mut self, kind: InjectedFault, magnitude: f64) {
        self.counters.faults_injected += 1;
        self.emit(Event::FaultInjected { kind, magnitude });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CrossDirection;

    #[test]
    fn observer_stamps_and_counts() {
        let mut sink = VecSink::default();
        let mut counters = Counters::default();
        {
            let mut obs = Observer::new(&mut sink, &mut counters, 7, 3.5);
            obs.mode_change(ActuatorKind::Fan, 1, 30, WindowLevel::L2, false);
            obs.tdvfs_engage(2400, 2200);
            obs.failsafe_trip(TripCause::StaleSensor);
            obs.emit(Event::ThresholdCross {
                threshold_c: 51.0,
                temp_c: 51.3,
                direction: CrossDirection::Above,
            });
        }
        assert_eq!(sink.records.len(), 4);
        assert!(sink.records.iter().all(|r| r.node == 7 && r.time_s == 3.5));
        assert_eq!(counters.events_emitted, 4);
        assert_eq!(counters.l2_fallbacks, 1);
        assert_eq!(counters.tdvfs_engagements, 1);
        assert_eq!(counters.failsafe_trips, 1);
        assert_eq!(counters.l1_decisions, 0);
    }

    #[test]
    fn tee_duplicates_records() {
        let mut a = VecSink::default();
        let mut b = VecSink::default();
        let rec = EventRecord { time_s: 0.0, node: 0, event: Event::FailsafeRelease };
        TeeSink::new(&mut a, &mut b).record(&rec);
        assert_eq!(a.records, vec![rec]);
        assert_eq!(b.records, vec![rec]);
    }
}
