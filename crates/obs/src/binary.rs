//! The `unitherm-bjl/v1` compact binary journal.
//!
//! JSONL journals cost ~120 bytes per event and force replay tooling to
//! re-parse every preceding line to find a decision tick. This module
//! defines a versioned fixed-width encoding of the same
//! [`EventRecord`] stream — a 16-byte header followed by 32-byte frames —
//! so week-long and large-fleet traces are cheap to write and a reader can
//! binary-search to a tick without decoding anything before it:
//!
//! * [`BinaryJournalWriter`] — the streaming [`EventSink`]: one fixed-width
//!   frame per record, no per-event heap allocation after construction;
//! * [`BinaryJournalReader`] — a zero-copy view over the raw bytes
//!   (validated once at open); [`BinaryJournalReader::seek_tick`] finds the
//!   first frame at or past a tick in `O(log n)` frame-time reads;
//! * [`records_to_bjl`] / [`bjl_to_records`] — lossless converters to and
//!   from the JSONL [`EventRecord`] vocabulary (`time_s` is stored as raw
//!   IEEE-754 bits, so JSONL → bjl → JSONL is byte-identical).
//!
//! The full byte layout is specified in `docs/FORMATS.md` §5; this module
//! is the normative implementation.
//!
//! ## Layout
//!
//! Header (16 bytes): magic `b"UBJL"`, version `u16`, frame length `u16`,
//! then the scenario tick width `dt_s` as an `f64` — everything
//! little-endian. The `dt_s` in the header is what makes frames
//! tick-addressable: `tick = round(time_s / dt_s)`.
//!
//! Frame (32 bytes): `time_s` (`f64` bits, offset 0), `node` (`u32`,
//! offset 8), event tag (`u8`, offset 12), a reserved byte, then an
//! 18-byte variant-specific payload zero-padded to the frame end.

use std::io::{self, Write};

use crate::event::{
    ActuatorKind, CrossDirection, Event, EventRecord, InjectedFault, SearchPhase, TripCause,
    WindowLevel,
};
use crate::sink::EventSink;

/// The four magic bytes every `unitherm-bjl` file starts with.
pub const BJL_MAGIC: [u8; 4] = *b"UBJL";
/// The format version this module reads and writes.
pub const BJL_VERSION: u16 = 1;
/// Header length in bytes: magic, version, frame length, `dt_s`.
pub const BJL_HEADER_LEN: usize = 16;
/// Fixed frame length in bytes (one frame per [`EventRecord`]).
pub const BJL_FRAME_LEN: usize = 32;

/// Why a byte stream is not a readable `unitherm-bjl/v1` journal. Every
/// variant names the offending location so a corrupt multi-gigabyte trace
/// can be diagnosed without a hex editor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BinaryJournalError {
    /// The stream is shorter than the 16-byte header.
    TruncatedHeader {
        /// Bytes actually present.
        len: usize,
    },
    /// The first four bytes are not [`BJL_MAGIC`].
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The header names a version this reader does not speak. Version
    /// negotiation is strict: v1 readers refuse rather than guess at
    /// future frame layouts.
    UnsupportedVersion {
        /// The version the header carries.
        found: u16,
    },
    /// The header's frame length is not [`BJL_FRAME_LEN`]; a future
    /// version may widen frames, v1 cannot.
    BadFrameLen {
        /// The frame length the header carries.
        found: u16,
    },
    /// The header's `dt_s` is not a finite positive tick width, so frames
    /// cannot be tick-addressed.
    InvalidDt {
        /// The offending tick width.
        dt_s: f64,
    },
    /// The byte stream ends mid-frame: the payload after the header is not
    /// a whole number of 32-byte frames.
    TruncatedFrame {
        /// Complete frames before the truncation.
        frames: usize,
        /// Dangling bytes after the last complete frame.
        trailing: usize,
    },
    /// A frame carries an event discriminant outside the v1 taxonomy.
    UnknownTag {
        /// Zero-based frame index.
        frame: usize,
        /// The unknown tag byte.
        tag: u8,
    },
    /// A frame's enum payload byte (actuator, window level, trip cause, …)
    /// is outside its vocabulary.
    BadEnum {
        /// Zero-based frame index.
        frame: usize,
        /// Which payload field was out of range.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A frame's `time_s` is NaN, infinite, or negative — it has no tick,
    /// so the journal cannot be seeked.
    InvalidTime {
        /// Zero-based frame index.
        frame: usize,
        /// The offending timestamp.
        time_s: f64,
    },
    /// A frame's `time_s` went backwards. Journals are written in tick
    /// order; a decreasing timestamp breaks the binary-search contract of
    /// [`BinaryJournalReader::seek_tick`].
    NonMonotonicTime {
        /// Zero-based index of the frame whose time went backwards.
        frame: usize,
    },
}

impl std::fmt::Display for BinaryJournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryJournalError::TruncatedHeader { len } => {
                write!(f, "binary journal truncated: {len} byte(s), header needs {BJL_HEADER_LEN}")
            }
            BinaryJournalError::BadMagic { found } => {
                write!(f, "not a unitherm-bjl journal: magic {found:02x?} != {BJL_MAGIC:02x?}")
            }
            BinaryJournalError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported unitherm-bjl version {found} (this reader speaks v{BJL_VERSION})"
                )
            }
            BinaryJournalError::BadFrameLen { found } => {
                write!(f, "unsupported frame length {found} (v{BJL_VERSION} frames are {BJL_FRAME_LEN} bytes)")
            }
            BinaryJournalError::InvalidDt { dt_s } => {
                write!(f, "header dt_s {dt_s} is not a finite positive tick width")
            }
            BinaryJournalError::TruncatedFrame { frames, trailing } => write!(
                f,
                "binary journal truncated: {trailing} dangling byte(s) after frame {frames}"
            ),
            BinaryJournalError::UnknownTag { frame, tag } => {
                write!(f, "frame {frame}: unknown event tag {tag}")
            }
            BinaryJournalError::BadEnum { frame, field, value } => {
                write!(f, "frame {frame}: {field} byte {value} is out of range")
            }
            BinaryJournalError::InvalidTime { frame, time_s } => {
                write!(f, "frame {frame}: time_s {time_s} is not a finite, non-negative timestamp")
            }
            BinaryJournalError::NonMonotonicTime { frame } => {
                write!(f, "frame {frame}: time_s went backwards (journals are tick-ordered)")
            }
        }
    }
}

impl std::error::Error for BinaryJournalError {}

impl From<BinaryJournalError> for io::Error {
    fn from(e: BinaryJournalError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

// ------------------------------------------------------------ enum codecs

fn actuator_to_u8(v: ActuatorKind) -> u8 {
    match v {
        ActuatorKind::Fan => 0,
        ActuatorKind::Dvfs => 1,
        ActuatorKind::Sleep => 2,
    }
}

fn actuator_from_u8(b: u8) -> Option<ActuatorKind> {
    Some(match b {
        0 => ActuatorKind::Fan,
        1 => ActuatorKind::Dvfs,
        2 => ActuatorKind::Sleep,
        _ => return None,
    })
}

fn level_to_u8(v: WindowLevel) -> u8 {
    match v {
        WindowLevel::L1 => 0,
        WindowLevel::L2 => 1,
        WindowLevel::Feedforward => 2,
        WindowLevel::Governor => 3,
    }
}

fn level_from_u8(b: u8) -> Option<WindowLevel> {
    Some(match b {
        0 => WindowLevel::L1,
        1 => WindowLevel::L2,
        2 => WindowLevel::Feedforward,
        3 => WindowLevel::Governor,
        _ => return None,
    })
}

fn direction_to_u8(v: CrossDirection) -> u8 {
    match v {
        CrossDirection::Above => 0,
        CrossDirection::Below => 1,
    }
}

fn direction_from_u8(b: u8) -> Option<CrossDirection> {
    Some(match b {
        0 => CrossDirection::Above,
        1 => CrossDirection::Below,
        _ => return None,
    })
}

fn cause_to_u8(v: TripCause) -> u8 {
    match v {
        TripCause::StaleSensor => 0,
        TripCause::OverTemperature => 1,
    }
}

fn cause_from_u8(b: u8) -> Option<TripCause> {
    Some(match b {
        0 => TripCause::StaleSensor,
        1 => TripCause::OverTemperature,
        _ => return None,
    })
}

fn fault_to_u8(v: InjectedFault) -> u8 {
    match v {
        InjectedFault::FanFailure => 0,
        InjectedFault::FanRepair => 1,
        InjectedFault::SensorDropout => 2,
        InjectedFault::SensorRestore => 3,
        InjectedFault::I2cFailure => 4,
        InjectedFault::I2cRecovery => 5,
        InjectedFault::AmbientStep => 6,
        InjectedFault::PwmStuck => 7,
        InjectedFault::PwmRelease => 8,
        InjectedFault::SensorJitter => 9,
    }
}

fn fault_from_u8(b: u8) -> Option<InjectedFault> {
    Some(match b {
        0 => InjectedFault::FanFailure,
        1 => InjectedFault::FanRepair,
        2 => InjectedFault::SensorDropout,
        3 => InjectedFault::SensorRestore,
        4 => InjectedFault::I2cFailure,
        5 => InjectedFault::I2cRecovery,
        6 => InjectedFault::AmbientStep,
        7 => InjectedFault::PwmStuck,
        8 => InjectedFault::PwmRelease,
        9 => InjectedFault::SensorJitter,
        _ => return None,
    })
}

fn phase_to_u8(v: SearchPhase) -> u8 {
    match v {
        SearchPhase::Sample => 0,
        SearchPhase::Mutate => 1,
        SearchPhase::Bisect => 2,
    }
}

fn phase_from_u8(b: u8) -> Option<SearchPhase> {
    Some(match b {
        0 => SearchPhase::Sample,
        1 => SearchPhase::Mutate,
        2 => SearchPhase::Bisect,
        _ => return None,
    })
}

// ----------------------------------------------------------- frame codec

/// Encodes the 16-byte `unitherm-bjl/v1` header.
pub fn encode_header(dt_s: f64) -> [u8; BJL_HEADER_LEN] {
    let mut h = [0u8; BJL_HEADER_LEN];
    h[0..4].copy_from_slice(&BJL_MAGIC);
    h[4..6].copy_from_slice(&BJL_VERSION.to_le_bytes());
    h[6..8].copy_from_slice(&(BJL_FRAME_LEN as u16).to_le_bytes());
    h[8..16].copy_from_slice(&dt_s.to_le_bytes());
    h
}

/// Encodes one record into its 32-byte frame.
pub fn encode_frame(rec: &EventRecord) -> [u8; BJL_FRAME_LEN] {
    let mut b = [0u8; BJL_FRAME_LEN];
    b[0..8].copy_from_slice(&rec.time_s.to_le_bytes());
    b[8..12].copy_from_slice(&rec.node.to_le_bytes());
    match rec.event {
        Event::ModeChange { actuator, from, to, window_level } => {
            b[12] = 0;
            b[14] = actuator_to_u8(actuator);
            b[15] = level_to_u8(window_level);
            b[16..20].copy_from_slice(&from.to_le_bytes());
            b[20..24].copy_from_slice(&to.to_le_bytes());
        }
        Event::ThresholdCross { threshold_c, temp_c, direction } => {
            b[12] = 1;
            b[14] = direction_to_u8(direction);
            b[16..24].copy_from_slice(&threshold_c.to_le_bytes());
            b[24..32].copy_from_slice(&temp_c.to_le_bytes());
        }
        Event::TdvfsEngage { from_mhz, to_mhz } => {
            b[12] = 2;
            b[16..20].copy_from_slice(&from_mhz.to_le_bytes());
            b[20..24].copy_from_slice(&to_mhz.to_le_bytes());
        }
        Event::TdvfsRelease { to_mhz } => {
            b[12] = 3;
            b[16..20].copy_from_slice(&to_mhz.to_le_bytes());
        }
        Event::FailsafeTrip { cause } => {
            b[12] = 4;
            b[14] = cause_to_u8(cause);
        }
        Event::FailsafeRelease => {
            b[12] = 5;
        }
        Event::PredictionSample { utilization, predicted_delta_c } => {
            b[12] = 6;
            b[16..24].copy_from_slice(&utilization.to_le_bytes());
            b[24..32].copy_from_slice(&predicted_delta_c.to_le_bytes());
        }
        Event::FaultInjected { kind, magnitude } => {
            b[12] = 7;
            b[14] = fault_to_u8(kind);
            b[16..24].copy_from_slice(&magnitude.to_le_bytes());
        }
        Event::SearchProgress { phase, evaluated, counterexamples, best_cost } => {
            b[12] = 8;
            b[14] = phase_to_u8(phase);
            b[16..20].copy_from_slice(&evaluated.to_le_bytes());
            b[20..24].copy_from_slice(&counterexamples.to_le_bytes());
            b[24..32].copy_from_slice(&best_cost.to_le_bytes());
        }
    }
    b
}

fn read_f64(b: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(b[at..at + 8].try_into().expect("8-byte slice"))
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("4-byte slice"))
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("8-byte slice"))
}

/// Decodes one 32-byte frame. `frame` is the zero-based index used in
/// error reports.
pub fn decode_frame(b: &[u8], frame: usize) -> Result<EventRecord, BinaryJournalError> {
    assert_eq!(b.len(), BJL_FRAME_LEN, "decode_frame wants exactly one frame");
    let bad = |field: &'static str, value: u8| BinaryJournalError::BadEnum { frame, field, value };
    let time_s = read_f64(b, 0);
    let node = read_u32(b, 8);
    let event = match b[12] {
        0 => Event::ModeChange {
            actuator: actuator_from_u8(b[14]).ok_or(bad("actuator", b[14]))?,
            window_level: level_from_u8(b[15]).ok_or(bad("window_level", b[15]))?,
            from: read_u32(b, 16),
            to: read_u32(b, 20),
        },
        1 => Event::ThresholdCross {
            direction: direction_from_u8(b[14]).ok_or(bad("direction", b[14]))?,
            threshold_c: read_f64(b, 16),
            temp_c: read_f64(b, 24),
        },
        2 => Event::TdvfsEngage { from_mhz: read_u32(b, 16), to_mhz: read_u32(b, 20) },
        3 => Event::TdvfsRelease { to_mhz: read_u32(b, 16) },
        4 => Event::FailsafeTrip { cause: cause_from_u8(b[14]).ok_or(bad("cause", b[14]))? },
        5 => Event::FailsafeRelease,
        6 => Event::PredictionSample {
            utilization: read_f64(b, 16),
            predicted_delta_c: read_f64(b, 24),
        },
        7 => Event::FaultInjected {
            kind: fault_from_u8(b[14]).ok_or(bad("kind", b[14]))?,
            magnitude: read_f64(b, 16),
        },
        8 => Event::SearchProgress {
            phase: phase_from_u8(b[14]).ok_or(bad("phase", b[14]))?,
            evaluated: read_u32(b, 16),
            counterexamples: read_u32(b, 20),
            best_cost: read_u64(b, 24),
        },
        tag => return Err(BinaryJournalError::UnknownTag { frame, tag }),
    };
    Ok(EventRecord { time_s, node, event })
}

// ---------------------------------------------------------------- writer

/// Streams every recorded event as one fixed-width `unitherm-bjl/v1`
/// frame.
///
/// The binary sibling of [`crate::JournalWriter`]: same latched-error
/// discipline (write errors park in [`BinaryJournalWriter::io_error`]
/// instead of panicking mid-simulation), but each record costs one 32-byte
/// stack buffer and a single `write_all` — no serialization allocations.
/// The header is written at construction.
pub struct BinaryJournalWriter<W: Write> {
    out: W,
    written: u64,
    io_error: Option<io::Error>,
}

impl<W: Write> BinaryJournalWriter<W> {
    /// Wraps a writer and emits the header stamped with the scenario tick
    /// width `dt_s` (what makes frames tick-addressable on read). Callers
    /// wanting buffering should pass a `BufWriter` themselves.
    pub fn new(out: W, dt_s: f64) -> Self {
        let mut w = Self { out, written: 0, io_error: None };
        if let Err(err) = w.out.write_all(&encode_header(dt_s)) {
            w.io_error = Some(err);
        }
        w
    }

    /// Records successfully written so far (header excluded).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit while writing, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    /// Flushes and returns the inner writer, or the latched/flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.io_error {
            return Err(err);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> EventSink for BinaryJournalWriter<W> {
    fn record(&mut self, rec: &EventRecord) {
        if self.io_error.is_some() {
            return;
        }
        match self.out.write_all(&encode_frame(rec)) {
            Ok(()) => self.written += 1,
            Err(err) => self.io_error = Some(err),
        }
    }

    fn sink_error(&self) -> Option<String> {
        self.io_error.as_ref().map(|e| format!("binary journal sink failed: {e}"))
    }
}

// ---------------------------------------------------------------- reader

/// A zero-copy view over a `unitherm-bjl/v1` byte stream.
///
/// Construction validates the header and every frame's discriminant bytes
/// once (plus the time column: finite, non-negative, non-decreasing — the
/// ordering contract journals are written under), so every accessor after
/// that is infallible and decodes straight off the borrowed slice; no
/// record is materialized until asked for.
///
/// [`BinaryJournalReader::seek_tick`] is the point of the format: finding
/// the first frame at or past a tick reads `O(log n)` 8-byte time fields
/// instead of parsing everything before it.
#[derive(Debug)]
pub struct BinaryJournalReader<'a> {
    frames: &'a [u8],
    dt_s: f64,
    len: usize,
}

impl<'a> BinaryJournalReader<'a> {
    /// Opens and fully validates a byte stream.
    ///
    /// # Errors
    /// A named [`BinaryJournalError`] on a bad magic, an unsupported
    /// version or frame length, a truncated stream, an unknown event tag,
    /// an out-of-range enum byte, or a corrupt time column.
    pub fn new(data: &'a [u8]) -> Result<Self, BinaryJournalError> {
        if data.len() < BJL_HEADER_LEN {
            return Err(BinaryJournalError::TruncatedHeader { len: data.len() });
        }
        let found: [u8; 4] = data[0..4].try_into().expect("4-byte slice");
        if found != BJL_MAGIC {
            return Err(BinaryJournalError::BadMagic { found });
        }
        let version = u16::from_le_bytes(data[4..6].try_into().expect("2-byte slice"));
        if version != BJL_VERSION {
            return Err(BinaryJournalError::UnsupportedVersion { found: version });
        }
        let frame_len = u16::from_le_bytes(data[6..8].try_into().expect("2-byte slice"));
        if usize::from(frame_len) != BJL_FRAME_LEN {
            return Err(BinaryJournalError::BadFrameLen { found: frame_len });
        }
        let dt_s = read_f64(data, 8);
        if !dt_s.is_finite() || dt_s <= 0.0 {
            return Err(BinaryJournalError::InvalidDt { dt_s });
        }
        let frames = &data[BJL_HEADER_LEN..];
        let trailing = frames.len() % BJL_FRAME_LEN;
        if trailing != 0 {
            return Err(BinaryJournalError::TruncatedFrame {
                frames: frames.len() / BJL_FRAME_LEN,
                trailing,
            });
        }
        let reader = Self { frames, dt_s, len: frames.len() / BJL_FRAME_LEN };
        let mut prev = 0.0f64;
        for i in 0..reader.len {
            // Decode eagerly so later accessors are infallible; the cost is
            // one linear pass at open, which every consumer needs anyway to
            // trust the stream.
            decode_frame(reader.frame(i), i)?;
            let t = reader.time_s(i);
            if !t.is_finite() || t < 0.0 {
                return Err(BinaryJournalError::InvalidTime { frame: i, time_s: t });
            }
            if t < prev {
                return Err(BinaryJournalError::NonMonotonicTime { frame: i });
            }
            prev = t;
        }
        Ok(reader)
    }

    fn frame(&self, i: usize) -> &'a [u8] {
        &self.frames[i * BJL_FRAME_LEN..(i + 1) * BJL_FRAME_LEN]
    }

    /// Number of frames (= records).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the journal holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tick width the journal was recorded under (header `dt_s`).
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// Frame `i`'s timestamp — an 8-byte read, no payload decode.
    ///
    /// # Panics
    /// When `i >= len()`.
    pub fn time_s(&self, i: usize) -> f64 {
        read_f64(self.frame(i), 0)
    }

    /// Frame `i`'s tick index: `round(time_s / dt_s)` against the header's
    /// tick width.
    ///
    /// # Panics
    /// When `i >= len()`.
    pub fn tick(&self, i: usize) -> u64 {
        (self.time_s(i) / self.dt_s).round() as u64
    }

    /// Decodes frame `i`. Infallible: every frame was validated at open.
    ///
    /// # Panics
    /// When `i >= len()`.
    pub fn get(&self, i: usize) -> EventRecord {
        decode_frame(self.frame(i), i).expect("frames validated at open")
    }

    /// Index of the first frame whose tick is `>= tick`, or `len()` when
    /// every frame is earlier — a binary search over the time column, no
    /// payload decoding. `O(log n)` where a JSONL journal must parse every
    /// preceding line.
    pub fn seek_tick(&self, tick: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.tick(mid) < tick {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Iterates the decoded records in frame order.
    pub fn iter(&self) -> impl Iterator<Item = EventRecord> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Materializes every record (the JSONL interchange path).
    pub fn to_records(&self) -> Vec<EventRecord> {
        self.iter().collect()
    }
}

// ------------------------------------------------------------ converters

/// Encodes records into a complete in-memory `unitherm-bjl/v1` journal
/// (header + frames).
pub fn records_to_bjl(records: &[EventRecord], dt_s: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(BJL_HEADER_LEN + records.len() * BJL_FRAME_LEN);
    out.extend_from_slice(&encode_header(dt_s));
    for rec in records {
        out.extend_from_slice(&encode_frame(rec));
    }
    out
}

/// Decodes a complete `unitherm-bjl/v1` byte stream back into records.
///
/// # Errors
/// A named [`BinaryJournalError`] when the stream is not a valid v1
/// journal (see [`BinaryJournalReader::new`]).
pub fn bjl_to_records(data: &[u8]) -> Result<Vec<EventRecord>, BinaryJournalError> {
    Ok(BinaryJournalReader::new(data)?.to_records())
}

/// True when `data` starts with the `unitherm-bjl` magic — the cheap
/// format sniff `--replay-faults` and `journal convert` use to accept
/// either encoding.
pub fn is_bjl(data: &[u8]) -> bool {
    data.len() >= 4 && data[0..4] == BJL_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<EventRecord> {
        vec![
            EventRecord {
                time_s: 0.25,
                node: 0,
                event: Event::ModeChange {
                    actuator: ActuatorKind::Fan,
                    from: 1,
                    to: 2,
                    window_level: WindowLevel::L2,
                },
            },
            EventRecord {
                time_s: 0.5,
                node: 3,
                event: Event::ThresholdCross {
                    threshold_c: 51.0,
                    temp_c: 51.25,
                    direction: CrossDirection::Above,
                },
            },
            EventRecord {
                time_s: 0.5,
                node: 3,
                event: Event::TdvfsEngage { from_mhz: 2400, to_mhz: 2200 },
            },
            EventRecord { time_s: 0.75, node: 1, event: Event::TdvfsRelease { to_mhz: 2400 } },
            EventRecord {
                time_s: 1.0,
                node: 2,
                event: Event::FailsafeTrip { cause: TripCause::OverTemperature },
            },
            EventRecord { time_s: 1.25, node: 2, event: Event::FailsafeRelease },
            EventRecord {
                time_s: 1.5,
                node: 0,
                event: Event::PredictionSample { utilization: 0.875, predicted_delta_c: 2.5 },
            },
            EventRecord {
                time_s: 1.75,
                node: 1,
                event: Event::FaultInjected { kind: InjectedFault::SensorJitter, magnitude: 0.75 },
            },
            EventRecord {
                time_s: 2.0,
                node: 0,
                event: Event::SearchProgress {
                    phase: SearchPhase::Bisect,
                    evaluated: 17,
                    counterexamples: 2,
                    best_cost: 141,
                },
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_a_frame() {
        for (i, rec) in sample_records().iter().enumerate() {
            let frame = encode_frame(rec);
            assert_eq!(frame.len(), BJL_FRAME_LEN);
            let back = decode_frame(&frame, i).expect("decode");
            assert_eq!(back, *rec, "variant {i}");
        }
    }

    #[test]
    fn writer_reader_round_trip_and_sizes() {
        let records = sample_records();
        let mut writer = BinaryJournalWriter::new(Vec::new(), 0.05);
        for rec in &records {
            writer.record(rec);
        }
        assert_eq!(writer.written(), records.len() as u64);
        let bytes = writer.finish().expect("finish");
        assert_eq!(bytes.len(), BJL_HEADER_LEN + records.len() * BJL_FRAME_LEN);
        let reader = BinaryJournalReader::new(&bytes).expect("open");
        assert_eq!(reader.len(), records.len());
        assert_eq!(reader.dt_s(), 0.05);
        assert_eq!(reader.to_records(), records);
    }

    #[test]
    fn nan_payload_bits_survive_the_round_trip() {
        // `time_s` itself must be finite (ordering contract), but payload
        // floats may carry any bit pattern, including NaNs from faulted
        // sensors; the codec must preserve the exact bits.
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let rec = EventRecord {
            time_s: 1.0,
            node: 0,
            event: Event::FaultInjected { kind: InjectedFault::AmbientStep, magnitude: weird },
        };
        let back = decode_frame(&encode_frame(&rec), 0).expect("decode");
        match back.event {
            Event::FaultInjected { magnitude, .. } => {
                assert_eq!(magnitude.to_bits(), weird.to_bits());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn corrupt_streams_are_named_errors() {
        let records = sample_records();
        let bytes = records_to_bjl(&records, 0.05);

        // Header truncation.
        assert_eq!(
            BinaryJournalReader::new(&bytes[..10]).unwrap_err(),
            BinaryJournalError::TruncatedHeader { len: 10 }
        );
        // Corrupt magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            BinaryJournalReader::new(&bad).unwrap_err(),
            BinaryJournalError::BadMagic { .. }
        ));
        // Future version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert_eq!(
            BinaryJournalReader::new(&bad).unwrap_err(),
            BinaryJournalError::UnsupportedVersion { found: 9 }
        );
        // Frame truncation.
        let cut = bytes.len() - 7;
        assert_eq!(
            BinaryJournalReader::new(&bytes[..cut]).unwrap_err(),
            BinaryJournalError::TruncatedFrame { frames: records.len() - 1, trailing: 25 }
        );
        // Unknown tag.
        let mut bad = bytes.clone();
        bad[BJL_HEADER_LEN + 12] = 200;
        assert_eq!(
            BinaryJournalReader::new(&bad).unwrap_err(),
            BinaryJournalError::UnknownTag { frame: 0, tag: 200 }
        );
        // Out-of-range enum byte.
        let mut bad = bytes.clone();
        bad[BJL_HEADER_LEN + 14] = 9; // actuator of the ModeChange frame
        assert_eq!(
            BinaryJournalReader::new(&bad).unwrap_err(),
            BinaryJournalError::BadEnum { frame: 0, field: "actuator", value: 9 }
        );
        // Corrupt time column.
        let mut bad = bytes.clone();
        bad[BJL_HEADER_LEN..BJL_HEADER_LEN + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            BinaryJournalReader::new(&bad).unwrap_err(),
            BinaryJournalError::InvalidTime { frame: 0, .. }
        ));
        // Time going backwards.
        let mut bad = bytes.clone();
        let second = BJL_HEADER_LEN + BJL_FRAME_LEN;
        bad[second..second + 8].copy_from_slice(&0.01f64.to_le_bytes());
        assert_eq!(
            BinaryJournalReader::new(&bad).unwrap_err(),
            BinaryJournalError::NonMonotonicTime { frame: 1 }
        );
    }

    #[test]
    fn seek_tick_lands_on_first_frame_at_or_past_tick() {
        // Ticks (dt = 0.05): 5, 10, 10, 15, 20, 25, 30, 35, 40.
        let bytes = records_to_bjl(&sample_records(), 0.05);
        let reader = BinaryJournalReader::new(&bytes).expect("open");
        assert_eq!(reader.seek_tick(0), 0);
        assert_eq!(reader.seek_tick(5), 0);
        assert_eq!(reader.seek_tick(6), 1);
        assert_eq!(reader.seek_tick(10), 1, "first of the two tick-10 frames");
        assert_eq!(reader.seek_tick(11), 3);
        assert_eq!(reader.seek_tick(40), 8);
        assert_eq!(reader.seek_tick(41), reader.len(), "past the end");
    }

    #[test]
    fn write_errors_latch_and_surface_as_sink_error() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut writer = BinaryJournalWriter::new(Failing, 0.05);
        let rec = EventRecord { time_s: 0.0, node: 0, event: Event::FailsafeRelease };
        writer.record(&rec);
        assert_eq!(writer.written(), 0);
        assert!(writer.io_error().is_some());
        assert!(writer.sink_error().expect("latched").contains("closed"));
        assert!(writer.finish().is_err());
    }

    #[test]
    fn empty_journal_is_valid() {
        let bytes = records_to_bjl(&[], 0.05);
        let reader = BinaryJournalReader::new(&bytes).expect("open");
        assert!(reader.is_empty());
        assert_eq!(reader.seek_tick(10), 0);
        assert!(bjl_to_records(&bytes).expect("decode").is_empty());
    }

    #[test]
    fn sniffing_recognizes_the_magic() {
        assert!(is_bjl(&records_to_bjl(&[], 0.05)));
        assert!(!is_bjl(b"{\"time_s\":0.0}"));
        assert!(!is_bjl(b"UB"));
    }
}
