//! Straggler study (extension): one thermally handicapped node in a BSP
//! job.
//!
//! The sharpest version of the paper's *system-level* claim: in a
//! barrier-coupled job, the cluster runs at the pace of its slowest rank.
//! Give one node a dusty, undersized fan (capped at 12 % duty) and compare:
//!
//! * **unmanaged** — no DVFS anywhere: the handicapped node marches into
//!   the hardware thermal throttle (an *emergency*, the event the paper's
//!   introduction warns "reduces system reliability and life expectancy");
//! * **coordinated** — tDVFS on every node: the handicapped node is eased
//!   down gracefully before any emergency fires.
//!
//! Healthy nodes are identical in both arms; every difference comes from
//! how the one bad node is handled. The defensible system-level claims —
//! enforced as shape criteria — are: zero emergencies under coordination, a
//! straggler that runs several degrees cooler, and a bounded (≤ 15 %)
//! cluster-wide execution-time cost for that protection. (Whether graceful
//! degradation also beats emergency throttling on *wall-clock* depends on
//! the throttle duty cycle, which this platform's slow heatsink makes
//! long-period; we do not assert it.)

use std::path::Path;

use unitherm_cluster::{
    run_scenarios_parallel, DvfsScheme, FanScheme, RunReport, Scenario, WorkloadSpec,
};
use unitherm_core::control_array::Policy;
use unitherm_metrics::{CsvWriter, TextTable, TimeSeries};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// Index of the handicapped node.
pub const STRAGGLER: usize = 2;

/// Straggler-study result.
#[derive(Debug, Clone)]
pub struct StragglerStudy {
    /// No DVFS: hardware emergencies do the throttling.
    pub unmanaged: RunReport,
    /// tDVFS everywhere: graceful degradation.
    pub coordinated: RunReport,
}

/// Runs the straggler study.
pub fn run(scale: Scale) -> StragglerStudy {
    let wl = WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: scale.npb_class() };
    // Node 2 sits at the top of a hot rack (intake +8 °C) with a dusty fan
    // capped at 12 % duty.
    let mut hot_position = unitherm_simnode::NodeConfig::default();
    hot_position.thermal.ambient_c += 8.0;
    let base = |name: &str| {
        Scenario::new(name)
            .with_nodes(4)
            .with_seed(0x57A6)
            .with_workload(wl.clone())
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_node_fan(STRAGGLER, FanScheme::dynamic(Policy::MODERATE, 12))
            .with_node_config(STRAGGLER, hot_position.clone())
            .with_max_time(scale.npb_time_limit_s() + 300.0)
    };
    let scenarios = vec![
        base("straggler-unmanaged"),
        base("straggler-coordinated").with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE)),
    ];
    let mut reports = run_scenarios_parallel(scenarios, 2);
    let coordinated = reports.pop().expect("two runs");
    let unmanaged = reports.pop().expect("two runs");
    StragglerStudy { unmanaged, coordinated }
}

impl Experiment for StragglerStudy {
    fn id(&self) -> &'static str {
        "straggler"
    }

    fn render(&self) -> String {
        let mut t = TextTable::new(
            "Straggler study: node 2's fan capped at 12 % duty (BT ×4, BSP-coupled)",
            &[
                "arm",
                "exec time (s)",
                "straggler max T (°C)",
                "straggler emergencies",
                "straggler final freq",
                "completed",
            ],
        );
        for (name, r) in [("unmanaged", &self.unmanaged), ("coordinated", &self.coordinated)] {
            let s = &r.nodes[STRAGGLER];
            t.row(&[
                name.to_string(),
                format!("{:.1}", r.exec_time_s),
                format!("{:.1}", s.temp_summary.max),
                s.throttle_events.to_string(),
                s.freq.last().map(|x| format!("{:.0} MHz", x.value)).unwrap_or_else(|| "?".into()),
                r.completed.to_string(),
            ]);
        }
        let mut out = t.render();
        out.push_str(
            "the BSP barrier makes the whole job pay for node 2 either way; \n\
             coordination trades a bounded slowdown for zero hardware emergencies\n\
             and a straggler ~10°C cooler — reliability bought at a known price.\n",
        );
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        // The handicap is real: the unmanaged straggler hits the hardware
        // monitor.
        let un = &self.unmanaged.nodes[STRAGGLER];
        if un.throttle_events == 0 && !un.shut_down {
            v.push("unmanaged straggler never hit a hardware emergency".into());
        }
        // Coordination prevents emergencies on the same node.
        let co = &self.coordinated.nodes[STRAGGLER];
        if co.throttle_events > 0 || co.shut_down {
            v.push(format!("coordinated straggler still hit {} emergencies", co.throttle_events));
        }
        // Coordination runs the straggler materially cooler.
        if co.temp_summary.max > un.temp_summary.max - 3.0 {
            v.push(format!(
                "coordinated straggler max {:.1}°C not clearly below unmanaged {:.1}°C",
                co.temp_summary.max, un.temp_summary.max
            ));
        }
        // The protection's cluster-wide performance cost is bounded.
        if !self.coordinated.completed {
            v.push("coordinated run did not complete".into());
        }
        if self.coordinated.completed && self.unmanaged.completed {
            let penalty = self.coordinated.exec_time_s / self.unmanaged.exec_time_s;
            if penalty > 1.15 {
                v.push(format!(
                    "coordination costs {:.1}% execution time (bound: 15%)",
                    (penalty - 1.0) * 100.0
                ));
            }
        }
        // Healthy nodes never get hot enough to care in either arm.
        for (name, r) in [("unmanaged", &self.unmanaged), ("coordinated", &self.coordinated)] {
            for (i, n) in r.nodes.iter().enumerate() {
                if i != STRAGGLER && n.throttle_events > 0 {
                    v.push(format!("{name}: healthy node {i} hit the hardware throttle"));
                }
            }
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut ut = self.unmanaged.nodes[STRAGGLER].temp.clone();
        ut.name = "straggler_temp_unmanaged".into();
        let mut ct = self.coordinated.nodes[STRAGGLER].temp.clone();
        ct.name = "straggler_temp_coordinated".into();
        let mut uf = self.unmanaged.nodes[STRAGGLER].freq.clone();
        uf.name = "straggler_freq_unmanaged".into();
        let mut cf = self.coordinated.nodes[STRAGGLER].freq.clone();
        cf.name = "straggler_freq_coordinated".into();
        let mut exec = TimeSeries::new("exec_time", "s");
        exec.push(0.0, self.unmanaged.exec_time_s);
        exec.push(1.0, self.coordinated.exec_time_s);
        w.add(ut);
        w.add(ct);
        w.add(uf);
        w.add(cf);
        w.add(exec);
        w.write_to_file(dir.join("straggler.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }

    #[test]
    fn straggler_runs_hotter_than_peers() {
        let r = run(Scale::Fast);
        let straggler_max = r.coordinated.nodes[STRAGGLER].temp_summary.max;
        for (i, n) in r.coordinated.nodes.iter().enumerate() {
            if i != STRAGGLER {
                assert!(
                    n.temp_summary.max < straggler_max,
                    "node {i} max {:.1} vs straggler {:.1}",
                    n.temp_summary.max,
                    straggler_max
                );
            }
        }
    }
}
