//! Table 1: performance and power of BT under CPUSPEED vs tDVFS across fan
//! capabilities.
//!
//! The paper's table (reproduced for reference):
//!
//! | max PWM | CPUSPEED #chg | time | power | PDP | tDVFS #chg | time | power | PDP |
//! |---------|---------------|------|-------|-----|------------|------|-------|-----|
//! | 75 %    | 101 | 219 | 99.78 | 21853 | 2 | 219 | 97.93 | 21447 |
//! | 50 %    | 122 | 222 | 99.30 | 22044 | 2 | 233 | 94.19 | 21946 |
//! | 25 %    | 139 | 223 | 100.80| 22479 | 3 | 234 | 92.78 | 21710 |
//!
//! Shape criteria: tDVFS makes far fewer frequency changes; tDVFS draws less
//! average power at every cap; tDVFS extends execution time at the capped
//! settings (50/25 %) but matches at 75 %; tDVFS wins on power-delay
//! product.

use std::path::Path;

use unitherm_cluster::{
    run_scenarios_parallel, DvfsScheme, FanScheme, RunReport, Scenario, WorkloadSpec,
};
use unitherm_core::control_array::Policy;
use unitherm_metrics::{CsvWriter, TextTable, TimeSeries};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// One row of Table 1 (one governor at one fan cap).
#[derive(Debug, Clone)]
pub struct Table1Cell {
    /// Max allowed PWM duty, percent.
    pub max_pwm: u8,
    /// Governor name (`"CPUSPEED"` or `"tDVFS"`).
    pub governor: &'static str,
    /// Cluster-total frequency changes.
    pub freq_changes: u64,
    /// Execution time, seconds.
    pub exec_time_s: f64,
    /// Average per-node wall power, watts.
    pub avg_power_w: f64,
    /// Power-delay product, watt-seconds.
    pub pdp: f64,
}

/// Table 1 result.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// All six cells: caps {75, 50, 25} × {CPUSPEED, tDVFS}.
    pub cells: Vec<Table1Cell>,
    /// Full reports (same order as `cells`) for trace inspection.
    pub reports: Vec<RunReport>,
}

/// Regenerates Table 1.
pub fn run(scale: Scale) -> Table1Result {
    let caps = [75u8, 50, 25];
    let mut scenarios = Vec::new();
    let mut meta = Vec::new();
    for &cap in &caps {
        for governor in ["CPUSPEED", "tDVFS"] {
            let dvfs = match governor {
                "CPUSPEED" => DvfsScheme::cpuspeed(),
                _ => DvfsScheme::tdvfs(Policy::MODERATE),
            };
            scenarios.push(
                Scenario::new(format!("table1-{governor}-max{cap}"))
                    .with_nodes(4)
                    .with_seed(0x007A_B1E1)
                    .with_workload(WorkloadSpec::Npb {
                        bench: NpbBenchmark::Bt,
                        class: scale.npb_class(),
                    })
                    .with_fan(FanScheme::dynamic(Policy::MODERATE, cap))
                    .with_dvfs(dvfs)
                    .with_max_time(scale.npb_time_limit_s()),
            );
            meta.push((cap, governor));
        }
    }
    let reports = run_scenarios_parallel(scenarios, 6);
    let cells = meta
        .iter()
        .zip(&reports)
        .map(|(&(max_pwm, governor), r)| Table1Cell {
            max_pwm,
            governor: if governor == "CPUSPEED" { "CPUSPEED" } else { "tDVFS" },
            freq_changes: r.total_freq_transitions(),
            exec_time_s: r.exec_time_s,
            avg_power_w: r.avg_node_power_w(),
            pdp: r.power_delay_product(),
        })
        .collect();
    Table1Result { cells, reports }
}

impl Table1Result {
    /// The cell for a governor at a cap.
    pub fn cell(&self, governor: &str, max_pwm: u8) -> &Table1Cell {
        self.cells
            .iter()
            .find(|c| c.governor == governor && c.max_pwm == max_pwm)
            .expect("cell exists")
    }
}

impl Experiment for Table1Result {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 1: BT under CPUSPEED vs tDVFS (dynamic fan, P_p = 50)",
            &[
                "max PWM",
                "governor",
                "# freq changes",
                "exec time (s)",
                "avg power (W)",
                "PDP (W·s)",
            ],
        );
        for c in &self.cells {
            t.row(&[
                format!("{}%", c.max_pwm),
                c.governor.to_string(),
                c.freq_changes.to_string(),
                format!("{:.1}", c.exec_time_s),
                format!("{:.2}", c.avg_power_w),
                format!("{:.0}", c.pdp),
            ]);
        }
        let mut out = t.render();
        out.push_str(
            "paper:  CPUSPEED 101/122/139 changes, 219-223 s, 99.3-100.8 W;\n        tDVFS 2/2/3 changes, 219-234 s, 92.8-97.9 W, lower PDP at every cap\n",
        );
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for &cap in &[75u8, 50, 25] {
            let cs = self.cell("CPUSPEED", cap);
            let td = self.cell("tDVFS", cap);
            // tDVFS makes far fewer transitions (paper: up to 98 % fewer).
            if td.freq_changes * 5 > cs.freq_changes {
                v.push(format!(
                    "cap {cap}%: tDVFS changes {} not ≪ CPUSPEED {}",
                    td.freq_changes, cs.freq_changes
                ));
            }
            // tDVFS uses less average power. At the 75 % cap the threshold
            // is barely exceeded and both governors run near full speed, so
            // allow a 1 % tolerance there; at the capped settings the win
            // must be strict.
            let power_slack = if cap == 75 { cs.avg_power_w * 0.01 } else { 0.0 };
            if td.avg_power_w >= cs.avg_power_w + power_slack {
                v.push(format!(
                    "cap {cap}%: tDVFS power {:.2}W not below CPUSPEED {:.2}W",
                    td.avg_power_w, cs.avg_power_w
                ));
            }
            // tDVFS wins on power-delay product (same tolerance at 75 %).
            let pdp_slack = if cap == 75 { cs.pdp * 0.01 } else { 0.0 };
            if td.pdp >= cs.pdp + pdp_slack {
                v.push(format!(
                    "cap {cap}%: tDVFS PDP {:.0} not below CPUSPEED {:.0}",
                    td.pdp, cs.pdp
                ));
            }
        }
        // At 75 % the fan holds the threshold, so tDVFS costs (almost) no
        // time; at 25 % it extends execution measurably.
        let t75 = self.cell("tDVFS", 75).exec_time_s / self.cell("CPUSPEED", 75).exec_time_s;
        if !(0.97..=1.04).contains(&t75) {
            v.push(format!("cap 75%: tDVFS/CPUSPEED time ratio {t75:.3} not ≈ 1"));
        }
        let t25 = self.cell("tDVFS", 25).exec_time_s / self.cell("CPUSPEED", 25).exec_time_s;
        if t25 <= 1.0 {
            v.push(format!("cap 25%: tDVFS did not extend execution (ratio {t25:.3})"));
        }
        if t25 > 1.15 {
            v.push(format!("cap 25%: tDVFS extension {t25:.3} too large (paper ≈ 1.05)"));
        }
        // CPUSPEED transition counts grow as the fan weakens (paper:
        // 101 → 122 → 139)? The mechanism there is marginal; we only require
        // CPUSPEED to thrash (> 30 changes) at every cap.
        for &cap in &[75u8, 50, 25] {
            let cs = self.cell("CPUSPEED", cap);
            if cs.freq_changes < 30 {
                v.push(format!(
                    "cap {cap}%: CPUSPEED only made {} changes — should thrash",
                    cs.freq_changes
                ));
            }
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        // The table itself as CSV (one row per cell, numeric columns keyed
        // by pseudo-time = row index for the shared writer format).
        let mut w = CsvWriter::new();
        let mut changes = TimeSeries::new("freq_changes", "");
        let mut time = TimeSeries::new("exec_time", "s");
        let mut power = TimeSeries::new("avg_power", "W");
        let mut pdp = TimeSeries::new("pdp", "W·s");
        for (i, c) in self.cells.iter().enumerate() {
            let x = i as f64;
            changes.push(x, c.freq_changes as f64);
            time.push(x, c.exec_time_s);
            power.push(x, c.avg_power_w);
            pdp.push(x, c.pdp);
        }
        w.add(changes);
        w.add(time);
        w.add(power);
        w.add(pdp);
        w.write_to_file(dir.join("table1.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn six_cells() {
        let r = run(Scale::Fast);
        assert_eq!(r.cells.len(), 6);
        assert_eq!(r.cell("tDVFS", 25).max_pwm, 25);
    }

    #[test]
    fn render_is_a_table() {
        let s = run(Scale::Fast).render();
        assert!(s.contains("CPUSPEED"));
        assert!(s.contains("tDVFS"));
        assert!(s.contains("PDP"));
    }
}
