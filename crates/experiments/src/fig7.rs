//! Figure 7: maximum-PWM sweep under dynamic control.
//!
//! "To emulate the cooling effect of different fans, we constrain the
//! maximum PWM duty cycles" — 25 / 50 / 75 / 100 % with `P_p = 50` on NPB
//! BT. Paper findings: a larger cap gives lower temperature; 100 % is ~8 °C
//! cooler than 25 %; but 50 % vs 75 % differ little — a proactively-driven
//! weaker fan matches a stronger one.

use std::path::Path;

use unitherm_cluster::{run_scenarios_parallel, FanScheme, RunReport, Scenario, WorkloadSpec};
use unitherm_core::control_array::Policy;
use unitherm_metrics::{AsciiPlot, CsvWriter};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// Figure 7 result: one report per maximum duty.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// `(max_duty_percent, report)` in ascending cap order (25, 50, 75, 100).
    pub sweeps: Vec<(u8, RunReport)>,
}

/// Regenerates Figure 7.
pub fn run(scale: Scale) -> Fig7Result {
    let caps = [25u8, 50, 75, 100];
    let scenarios: Vec<Scenario> = caps
        .iter()
        .map(|&cap| {
            Scenario::new(format!("fig7-max{cap}"))
                .with_nodes(4)
                .with_seed(0xF167)
                .with_workload(WorkloadSpec::Npb {
                    bench: NpbBenchmark::Bt,
                    class: scale.npb_class(),
                })
                .with_fan(FanScheme::dynamic(Policy::MODERATE, cap))
                .with_max_time(scale.npb_time_limit_s())
        })
        .collect();
    let reports = run_scenarios_parallel(scenarios, 4);
    Fig7Result { sweeps: caps.into_iter().zip(reports).collect() }
}

impl Fig7Result {
    /// Settled (second-half) node-0 temperature per cap, ascending cap order.
    pub fn settled_temps(&self) -> Vec<f64> {
        self.sweeps
            .iter()
            .map(|(_, r)| r.nodes[0].temp.summary_between(r.exec_time_s / 2.0, f64::INFINITY).mean)
            .collect()
    }
}

impl Experiment for Fig7Result {
    fn id(&self) -> &'static str {
        "fig7"
    }

    fn render(&self) -> String {
        let mut out = String::from(
            "Figure 7: temperature under various maximum PWM duty cycles (BT ×4, P_p = 50)\n",
        );
        let mut temp_plot = AsciiPlot::new("  node-0 temperature (°C)").size(72, 14);
        let mut duty_plot = AsciiPlot::new("  node-0 fan duty (%)").size(72, 10);
        for (cap, r) in &self.sweeps {
            let mut t = r.nodes[0].temp.clone();
            t.name = format!("{cap}% max");
            let mut d = r.nodes[0].duty.clone();
            d.name = format!("{cap}% max");
            temp_plot = temp_plot.add(&t);
            duty_plot = duty_plot.add(&d);
        }
        out.push_str(&temp_plot.render());
        out.push_str(&duty_plot.render());
        let temps = self.settled_temps();
        for ((cap, _), t) in self.sweeps.iter().zip(&temps) {
            out.push_str(&format!("  max {cap:>3}%: settled temp {t:.2}°C\n"));
        }
        out.push_str(&format!(
            "  spread 25%→100%: {:.1}°C (paper ≈ 8°C); 50% vs 75%: {:.1}°C\n",
            temps[0] - temps[3],
            (temps[1] - temps[2]).abs()
        ));
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let temps = self.settled_temps(); // [25, 50, 75, 100]
                                          // Larger cap ⇒ lower (or equal) settled temperature.
        if !temps.windows(2).all(|w| w[1] <= w[0] + 0.3) {
            v.push(format!("settled temps not monotone in cap: {temps:?}"));
        }
        // 25 % vs 100 % differ substantially (paper: ~8 °C).
        let full_spread = temps[0] - temps[3];
        if full_spread < 4.0 {
            v.push(format!("25%→100% spread only {full_spread:.1}°C (expected ≥ 4°C)"));
        }
        // 50 % vs 75 % differ much less than 25 % vs 50 % — the paper's
        // "less powerful fan delivers similar cooling" point.
        let gap_25_50 = temps[0] - temps[1];
        let gap_50_75 = temps[1] - temps[2];
        if gap_50_75 >= gap_25_50 {
            v.push(format!(
                "50→75 gap {gap_50_75:.1}°C not smaller than 25→50 gap {gap_25_50:.1}°C"
            ));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        for (cap, r) in &self.sweeps {
            let mut t = r.nodes[0].temp.clone();
            t.name = format!("temp_max{cap}");
            let mut d = r.nodes[0].duty.clone();
            d.name = format!("duty_max{cap}");
            w.add(t);
            w.add(d);
        }
        w.write_to_file(dir.join("fig7.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn four_caps_in_order() {
        let r = run(Scale::Fast);
        let caps: Vec<u8> = r.sweeps.iter().map(|(c, _)| *c).collect();
        assert_eq!(caps, vec![25, 50, 75, 100]);
    }
}
