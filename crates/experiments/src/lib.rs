#![warn(missing_docs)]

//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (§4), plus the ablations listed in `DESIGN.md` §5.
//!
//! Each `figN` / `table1` module exposes:
//!
//! * `run(scale)` — executes the experiment deterministically and returns a
//!   structured result;
//! * `Result::render()` — a terminal rendering (ASCII plot / text table)
//!   matching the paper's presentation;
//! * `Result::shape_violations()` — the experiment's *shape acceptance
//!   criteria* (who wins, orderings, crossovers — per the reproduction
//!   contract, absolute numbers are not expected to match the authors'
//!   testbed). An empty list means the reproduced result has the paper's
//!   shape. Integration tests assert emptiness;
//! * `Result::write_csv(dir)` — raw traces for external re-plotting.
//!
//! [`scale::Scale`] switches between `Full` (paper-sized runs: NPB class B,
//! five-minute burns) and `Fast` (class A, shorter burns) so the same code
//! serves the `repro` binary, the integration tests and the Criterion
//! benches.

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod rack;
pub mod scale;
pub mod scaling;
pub mod scenario_file;
pub mod straggler;
pub mod table1;

pub use scale::Scale;

/// Everything an experiment result can do, for uniform driving from the
/// `repro` binary.
pub trait Experiment {
    /// Experiment identifier (e.g. `"fig5"`).
    fn id(&self) -> &'static str;
    /// Terminal rendering.
    fn render(&self) -> String;
    /// Violated shape criteria (empty = reproduction has the paper's shape).
    fn shape_violations(&self) -> Vec<String>;
    /// Writes raw traces as CSV under `dir`.
    fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<()>;
}
