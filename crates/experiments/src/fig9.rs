//! Figure 9: tDVFS vs. CPUSPEED, both over our dynamic fan control.
//!
//! Setup per the paper: NPB BT on 4 nodes, dynamic fan with `P_p = 50`
//! capped at 25 % duty — deliberately too weak to hold the threshold, so the
//! DVFS layer must act. The paper observes that temperature *continues to
//! increase* under CPUSPEED (which watches utilization, not temperature)
//! while tDVFS *stabilizes* it.

use std::path::Path;

use unitherm_cluster::{
    run_scenarios_parallel, DvfsScheme, FanScheme, RunReport, Scenario, WorkloadSpec,
};
use unitherm_core::control_array::Policy;
use unitherm_metrics::{AsciiPlot, CsvWriter};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// Figure 9 result.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// The CPUSPEED run.
    pub cpuspeed: RunReport,
    /// The tDVFS run.
    pub tdvfs: RunReport,
    /// Threshold used by tDVFS.
    pub threshold_c: f64,
}

/// Regenerates Figure 9.
pub fn run(scale: Scale) -> Fig9Result {
    let base = |name: &str| {
        Scenario::new(name)
            .with_nodes(4)
            .with_seed(0xF169)
            .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: scale.npb_class() })
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 25))
            .with_max_time(scale.npb_time_limit_s())
    };
    let scenarios = vec![
        base("fig9-cpuspeed").with_dvfs(DvfsScheme::cpuspeed()),
        base("fig9-tdvfs").with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE)),
    ];
    let mut reports = run_scenarios_parallel(scenarios, 2);
    let tdvfs = reports.pop().expect("two reports");
    let cpuspeed = reports.pop().expect("two reports");
    Fig9Result { cpuspeed, tdvfs, threshold_c: 51.0 }
}

impl Fig9Result {
    /// Mean node-0 temperature over the final quarter of each run.
    pub fn final_temps(&self) -> (f64, f64) {
        let tail = |r: &RunReport| {
            r.nodes[0].temp.summary_between(r.exec_time_s * 0.75, f64::INFINITY).mean
        };
        (tail(&self.cpuspeed), tail(&self.tdvfs))
    }

    /// Late-run warming slope of the CPUSPEED arm, °C between the third and
    /// fourth quarter means.
    pub fn cpuspeed_late_rise(&self) -> f64 {
        let t = &self.cpuspeed.nodes[0].temp;
        let e = self.cpuspeed.exec_time_s;
        t.summary_between(0.75 * e, e).mean - t.summary_between(0.5 * e, 0.75 * e).mean
    }

    /// The same slope for the tDVFS arm.
    pub fn tdvfs_late_rise(&self) -> f64 {
        let t = &self.tdvfs.nodes[0].temp;
        let e = self.tdvfs.exec_time_s;
        t.summary_between(0.75 * e, e).mean - t.summary_between(0.5 * e, 0.75 * e).mean
    }
}

impl Experiment for Fig9Result {
    fn id(&self) -> &'static str {
        "fig9"
    }

    fn render(&self) -> String {
        let mut out =
            String::from("Figure 9: tDVFS vs CPUSPEED under a 25 %-capped dynamic fan (BT ×4)\n");
        let mut cs = self.cpuspeed.nodes[0].temp.clone();
        cs.name = "CPUSPEED".into();
        let mut td = self.tdvfs.nodes[0].temp.clone();
        td.name = "tDVFS".into();
        out.push_str(
            &AsciiPlot::new("  node-0 temperature (°C)").size(72, 16).add(&cs).add(&td).render(),
        );
        let (c, t) = self.final_temps();
        out.push_str(&format!(
            "  final-quarter temp: CPUSPEED {c:.2}°C (late rise {:+.2}°C), tDVFS {t:.2}°C (late rise {:+.2}°C)\n",
            self.cpuspeed_late_rise(),
            self.tdvfs_late_rise()
        ));
        out.push_str(&format!(
            "  freq transitions: CPUSPEED {} vs tDVFS {}\n",
            self.cpuspeed.total_freq_transitions(),
            self.tdvfs.total_freq_transitions()
        ));
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let (cs_final, td_final) = self.final_temps();
        // tDVFS ends cooler.
        if td_final >= cs_final {
            v.push(format!("tDVFS final {td_final:.2}°C not below CPUSPEED {cs_final:.2}°C"));
        }
        // tDVFS stabilizes near the threshold...
        if td_final > self.threshold_c + 5.0 {
            v.push(format!("tDVFS final {td_final:.2}°C far above threshold"));
        }
        // ...while CPUSPEED overshoots it.
        if cs_final < self.threshold_c + 2.0 {
            v.push(format!("CPUSPEED final {cs_final:.2}°C did not overshoot the threshold"));
        }
        // CPUSPEED still warming late in the run; tDVFS flat or cooling.
        if self.tdvfs_late_rise() > 1.0 {
            v.push(format!("tDVFS still rising late: {:+.2}°C", self.tdvfs_late_rise()));
        }
        if self.cpuspeed_late_rise() < self.tdvfs_late_rise() - 0.05 {
            v.push(format!(
                "CPUSPEED late rise {:+.2}°C not above tDVFS {:+.2}°C",
                self.cpuspeed_late_rise(),
                self.tdvfs_late_rise()
            ));
        }
        // Transition counts: CPUSPEED thrashes, tDVFS does not.
        let cs_tr = self.cpuspeed.total_freq_transitions();
        let td_tr = self.tdvfs.total_freq_transitions();
        if td_tr * 5 > cs_tr {
            v.push(format!("tDVFS transitions {td_tr} not ≪ CPUSPEED {cs_tr}"));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut cs = self.cpuspeed.nodes[0].temp.clone();
        cs.name = "temp_cpuspeed".into();
        let mut csf = self.cpuspeed.nodes[0].freq.clone();
        csf.name = "freq_cpuspeed".into();
        let mut td = self.tdvfs.nodes[0].temp.clone();
        td.name = "temp_tdvfs".into();
        let mut tdf = self.tdvfs.nodes[0].freq.clone();
        tdf.name = "freq_tdvfs".into();
        w.add(cs);
        w.add(csf);
        w.add(td);
        w.add(tdf);
        w.write_to_file(dir.join("fig9.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn both_arms_complete() {
        let r = run(Scale::Fast);
        assert!(r.cpuspeed.completed);
        assert!(r.tdvfs.completed);
    }
}
