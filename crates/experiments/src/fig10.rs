//! Figure 10: hybrid fan + tDVFS control under a shared `P_p`.
//!
//! Setup per the paper: BT on 4 nodes, maximum duty 50 %, threshold 51 °C,
//! the *same* `P_p ∈ {25, 50, 75}` applied to both the dynamic fan
//! controller and tDVFS. Findings: smaller `P_p` controls temperature more
//! effectively; the more aggressive the fan, the *later* tDVFS triggers
//! (coordination); smaller `P_p` reaches lower frequencies and runs longer,
//! but the execution-time spread stays small (4.76 % between P25 and P75).

use std::path::Path;

use unitherm_cluster::{
    run_scenarios_parallel, DvfsScheme, FanScheme, RunReport, Scenario, WorkloadSpec,
};
use unitherm_core::control_array::Policy;
use unitherm_metrics::{AsciiPlot, CsvWriter};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// One policy arm of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Arm {
    /// The shared policy value.
    pub pp: u32,
    /// The run.
    pub report: RunReport,
}

/// Figure 10 result.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Arms in {25, 50, 75} order.
    pub arms: Vec<Fig10Arm>,
}

/// Regenerates Figure 10.
pub fn run(scale: Scale) -> Fig10Result {
    let pps = [25u32, 50, 75];
    let scenarios: Vec<Scenario> = pps
        .iter()
        .map(|&pp| {
            let policy = Policy::new(pp).expect("valid");
            Scenario::new(format!("fig10-p{pp}"))
                .with_nodes(4)
                .with_seed(0x000F_1610)
                .with_workload(WorkloadSpec::Npb {
                    bench: NpbBenchmark::Bt,
                    class: scale.npb_class(),
                })
                .with_fan(FanScheme::dynamic(policy, 50))
                .with_dvfs(DvfsScheme::tdvfs(policy))
                .with_max_time(scale.npb_time_limit_s())
        })
        .collect();
    let reports = run_scenarios_parallel(scenarios, 3);
    Fig10Result {
        arms: pps.iter().zip(reports).map(|(&pp, report)| Fig10Arm { pp, report }).collect(),
    }
}

impl Fig10Result {
    /// The arm for a given policy value.
    pub fn arm(&self, pp: u32) -> &Fig10Arm {
        self.arms.iter().find(|a| a.pp == pp).expect("arm exists")
    }

    /// Average temperature per arm.
    pub fn avg_temps(&self) -> Vec<f64> {
        self.arms.iter().map(|a| a.report.avg_temp_c()).collect()
    }

    /// tDVFS trigger time per arm: the *mean* of per-node first-event times
    /// (`None` if no node fired). The min across nodes is an extreme
    /// statistic that per-node sensor noise dominates; the mean reflects
    /// the coordination effect the paper describes.
    pub fn trigger_times(&self) -> Vec<Option<f64>> {
        self.arms
            .iter()
            .map(|a| {
                let firsts: Vec<f64> = a
                    .report
                    .nodes
                    .iter()
                    .filter_map(|n| n.freq_events.first().map(|(t, _)| *t))
                    .collect();
                if firsts.is_empty() {
                    None
                } else {
                    Some(firsts.iter().sum::<f64>() / firsts.len() as f64)
                }
            })
            .collect()
    }

    /// Mean time at which node temperatures first crossed the threshold,
    /// per arm (the cleaner signal behind the trigger ordering).
    pub fn crossing_times(&self, threshold_c: f64) -> Vec<Option<f64>> {
        self.arms
            .iter()
            .map(|a| {
                let crossings: Vec<f64> = a
                    .report
                    .nodes
                    .iter()
                    .filter_map(|n| n.temp.first_crossing_above(threshold_c))
                    .collect();
                if crossings.is_empty() {
                    None
                } else {
                    Some(crossings.iter().sum::<f64>() / crossings.len() as f64)
                }
            })
            .collect()
    }

    /// Execution time per arm.
    pub fn exec_times(&self) -> Vec<f64> {
        self.arms.iter().map(|a| a.report.exec_time_s).collect()
    }
}

impl Experiment for Fig10Result {
    fn id(&self) -> &'static str {
        "fig10"
    }

    fn render(&self) -> String {
        let mut out = String::from(
            "Figure 10: hybrid fan + tDVFS, shared P_p ∈ {25, 50, 75} (BT ×4, max duty 50 %)\n",
        );
        let mut plot = AsciiPlot::new("  node-0 temperature (°C)").size(72, 16);
        for a in &self.arms {
            let mut t = a.report.nodes[0].temp.clone();
            t.name = format!("P_p={}", a.pp);
            plot = plot.add(&t);
        }
        out.push_str(&plot.render());
        for a in &self.arms {
            out.push_str(&format!(
                "  P_p={:<3} avgT={:.2}°C  trigger={}  minFreq={}  exec={:.1}s\n",
                a.pp,
                a.report.avg_temp_c(),
                a.report
                    .first_dvfs_event_time_s()
                    .map(|t| format!("{t:.0}s"))
                    .unwrap_or_else(|| "never".into()),
                a.report
                    .min_commanded_freq_mhz()
                    .map(|f| format!("{f} MHz"))
                    .unwrap_or_else(|| "2400 MHz".into()),
                a.report.exec_time_s,
            ));
        }
        let e = self.exec_times();
        let spread = (e.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            / e.iter().cloned().fold(f64::INFINITY, f64::min)
            - 1.0)
            * 100.0;
        out.push_str(&format!("  exec-time spread {spread:.2}% (paper: 4.76%)\n"));
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let temps = self.avg_temps(); // [25, 50, 75]
                                      // Smaller P_p controls temperature more effectively.
        if !(temps[0] < temps[1] && temps[1] < temps[2]) {
            v.push(format!(
                "avg temps not ordered P25 < P50 < P75: {:.2}/{:.2}/{:.2}",
                temps[0], temps[1], temps[2]
            ));
        }
        // Coordination: the more aggressive the fan, the later the
        // threshold is reached and the later tDVFS fires (mean across
        // nodes; a 2 s tolerance absorbs sensor-noise in the confirmation
        // timing).
        let crossings = self.crossing_times(51.0);
        match (crossings[0], crossings[2]) {
            (Some(c25), Some(c75)) => {
                if c25 <= c75 {
                    v.push(format!("P25 crossing {c25:.1}s not later than P75 crossing {c75:.1}s"));
                }
            }
            (None, Some(_)) => {} // P25 held below threshold entirely: stronger form of "later"
            (_, None) => v.push("P75 never crossed the threshold".to_string()),
        }
        let triggers = self.trigger_times();
        match (triggers[0], triggers[2]) {
            (Some(t25), Some(t75)) => {
                if t25 <= t75 - 2.0 {
                    v.push(format!(
                        "P25 trigger {t25:.1}s clearly earlier than P75 trigger {t75:.1}s"
                    ));
                }
            }
            (None, Some(_)) => {
                // P25's fan held the threshold entirely: an even stronger
                // form of "later" — acceptable.
            }
            (_, None) => v.push("tDVFS never triggered under P75".to_string()),
        }
        // All arms complete, with a small execution-time spread (≤ 10 %).
        for a in &self.arms {
            if !a.report.completed {
                v.push(format!("P{} run did not complete", a.pp));
            }
        }
        let e = self.exec_times();
        let spread = e.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            / e.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread > 1.10 {
            v.push(format!("exec-time spread {:.2}% exceeds 10%", (spread - 1.0) * 100.0));
        }
        // Every arm's DVFS engaged (the 50 %-capped fan cannot hold the
        // threshold alone). Note: the *final* depth each arm reaches is
        // dominated by how long its run spent above the threshold, not by
        // the policy; the paper's per-step depth claim (aggressive arrays
        // map one escalation to lower frequencies) is validated at the unit
        // level and by `ablate-fill`.
        for a in &self.arms {
            if a.report.min_commanded_freq_mhz().is_none() {
                v.push(format!("P{}: DVFS never engaged", a.pp));
            }
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        for a in &self.arms {
            let mut t = a.report.nodes[0].temp.clone();
            t.name = format!("temp_p{}", a.pp);
            let mut f = a.report.nodes[0].freq.clone();
            f.name = format!("freq_p{}", a.pp);
            w.add(t);
            w.add(f);
        }
        w.write_to_file(dir.join("fig10.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn arms_in_order() {
        let r = run(Scale::Fast);
        assert_eq!(r.arms.iter().map(|a| a.pp).collect::<Vec<_>>(), vec![25, 50, 75]);
    }
}
