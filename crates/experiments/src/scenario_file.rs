//! JSON scenario files: experiments as data.
//!
//! Every scenario component serializes, so downstream users can describe a
//! run — workload, control schemes, faults, rack coupling, hardware
//! constants — as a JSON document and execute it with
//! `repro run-scenario <file>`, no Rust required. See
//! `examples/scenarios/` for ready-made files.

use std::path::Path;

use unitherm_cluster::{
    derive_fault_plan, ReplayOptions, RunReport, Scenario, ScenarioError, Simulation,
};
use unitherm_metrics::AsciiPlot;
use unitherm_obs::{read_journal, JournalWriter};

/// Errors loading or validating a scenario file.
#[derive(Debug)]
pub enum ScenarioFileError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The JSON did not parse into a [`Scenario`].
    Parse(serde_json::Error),
    /// The scenario parsed but cannot be run as described.
    Invalid(ScenarioError),
    /// An event journal could not be read or written.
    Journal(std::io::Error),
}

impl std::fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioFileError::Io(e) => write!(f, "cannot read scenario file: {e}"),
            ScenarioFileError::Parse(e) => write!(f, "invalid scenario JSON: {e}"),
            ScenarioFileError::Invalid(e) => write!(f, "unusable scenario: {e}"),
            ScenarioFileError::Journal(e) => write!(f, "cannot access event journal: {e}"),
        }
    }
}

impl std::error::Error for ScenarioFileError {}

/// Loads a scenario from a JSON file and validates it.
pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioFileError> {
    let text = std::fs::read_to_string(path).map_err(ScenarioFileError::Io)?;
    let scenario: Scenario = serde_json::from_str(&text).map_err(ScenarioFileError::Parse)?;
    scenario.validate().map_err(ScenarioFileError::Invalid)?;
    Ok(scenario)
}

/// Serializes a scenario to pretty JSON (the round-trip counterpart of
/// [`load`]; useful for generating templates).
pub fn to_json(scenario: &Scenario) -> String {
    serde_json::to_string_pretty(scenario).expect("scenarios always serialize")
}

/// Reads a JSONL event journal and derives a tick-addressed fault plan for
/// `scenario` (see `unitherm_cluster::replay`), returning the faulted
/// scenario and a one-line-per-window description of the derived plan.
pub fn apply_replay(
    scenario: Scenario,
    journal_path: impl AsRef<Path>,
) -> Result<(Scenario, String), ScenarioFileError> {
    let file = std::fs::File::open(journal_path).map_err(ScenarioFileError::Journal)?;
    let records =
        read_journal(std::io::BufReader::new(file)).map_err(ScenarioFileError::Journal)?;
    let plan = derive_fault_plan(&records, &scenario, &ReplayOptions::default());
    let mut desc = format!(
        "derived {} fault window(s) from {} journal event(s):\n",
        plan.len(),
        records.len()
    );
    for d in &plan.derived {
        desc.push_str(&format!(
            "  node {} tick {} (t={:.2} s): {:?} until tick {}\n",
            d.node, d.tick, d.trigger_time_s, d.fault, d.recovery_tick
        ));
    }
    Ok((plan.apply(scenario), desc))
}

/// Runs a loaded scenario and renders a human-readable report: summary
/// line, per-node statistics, temperature plot. When `journal_out` is
/// given, every control-plane event is also streamed to that path as JSONL
/// (one [`unitherm_obs::EventRecord`] per line — see `docs/FORMATS.md`).
pub fn run_and_render_with_journal(
    scenario: Scenario,
    journal_out: Option<&Path>,
) -> Result<(RunReport, String), ScenarioFileError> {
    let mut sim = Simulation::new(scenario);
    if let Some(path) = journal_out {
        let file = std::fs::File::create(path).map_err(ScenarioFileError::Journal)?;
        sim.attach_journal(Box::new(JournalWriter::new(std::io::BufWriter::new(file))));
    }
    Ok(render(sim.run()))
}

/// Runs a loaded scenario and renders a human-readable report: summary
/// line, per-node statistics, temperature plot.
pub fn run_and_render(scenario: Scenario) -> (RunReport, String) {
    let report = Simulation::new(scenario).run();
    render(report)
}

fn render(report: RunReport) -> (RunReport, String) {
    let mut out = String::new();
    out.push_str(&report.summary_line());
    out.push('\n');
    if let Some(node) = report.nodes.first() {
        if !node.temp.is_empty() {
            out.push_str(
                &AsciiPlot::new("node-0 temperature (°C)").size(72, 12).add(&node.temp).render(),
            );
        }
    }
    if let Some(air) = &report.rack_air {
        if !air.is_empty() {
            out.push_str(&AsciiPlot::new("rack intake air (°C)").size(72, 8).add(air).render());
        }
    }
    for (i, n) in report.nodes.iter().enumerate() {
        out.push_str(&format!(
            "  node{i}: avgT={:.2}°C maxT={:.2}°C duty={:.1}% power={:.2}W freqChg={} throttles={} failsafe={}\n",
            n.temp_summary.mean,
            n.temp_summary.max,
            n.duty_summary.mean,
            n.avg_wall_power_w,
            n.freq_transitions,
            n.throttle_events,
            n.failsafe_engagements,
        ));
    }
    (report, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_cluster::{DvfsScheme, FanScheme, WorkloadSpec};
    use unitherm_core::control_array::Policy;

    fn sample() -> Scenario {
        Scenario::new("json-roundtrip")
            .with_nodes(2)
            .with_seed(99)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 60))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(30.0)
            .with_failsafe(unitherm_core::failsafe::FailsafeConfig::default())
            .with_rack(unitherm_cluster::rack::RackConfig::default())
    }

    #[test]
    fn json_roundtrip_preserves_scenario() {
        let s = sample();
        let json = to_json(&s);
        let dir = std::env::temp_dir().join("unitherm_scn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        std::fs::write(&path, &json).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.name, s.name);
        assert_eq!(loaded.nodes, s.nodes);
        assert_eq!(loaded.fan, s.fan);
        assert_eq!(loaded.dvfs, s.dvfs);
        assert_eq!(loaded.workload, s.workload);
        assert_eq!(loaded.rack, s.rack);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtripped_scenario_runs_identically() {
        let direct = Simulation::new(sample()).run();
        let json = to_json(&sample());
        let reparsed: Scenario = serde_json::from_str(&json).unwrap();
        let via_json = Simulation::new(reparsed).run();
        assert_eq!(direct.avg_temp_c(), via_json.avg_temp_c());
        assert_eq!(direct.avg_node_power_w(), via_json.avg_node_power_w());
    }

    #[test]
    fn run_and_render_produces_report_text() {
        let (report, text) = run_and_render(sample());
        assert_eq!(report.nodes.len(), 2);
        assert!(text.contains("node0:"));
        assert!(text.contains("rack intake air"));
    }

    #[test]
    fn missing_file_errors() {
        let err = load("/nonexistent/scenario.json").unwrap_err();
        assert!(matches!(err, ScenarioFileError::Io(_)));
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn bad_json_errors() {
        let dir = std::env::temp_dir().join("unitherm_scn_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, ScenarioFileError::Parse(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
