//! JSON scenario files: experiments as data.
//!
//! Every scenario component serializes, so downstream users can describe a
//! run — workload, control schemes, faults, rack coupling, hardware
//! constants — as a JSON document and execute it with
//! `repro run-scenario <file>`, no Rust required. See
//! `examples/scenarios/` for ready-made files.

use std::path::Path;

use unitherm_cluster::derive_fault_plan_from_cursor;
use unitherm_cluster::{
    derive_fault_plan, ChaosCorpus, ReplayError, ReplayOptions, RunReport, Scenario, ScenarioError,
    Simulation, CHAOS_SCHEMA,
};
use unitherm_metrics::AsciiPlot;
use unitherm_obs::{
    read_journal, records_to_bjl, BinaryJournalReader, EventRecord, JournalCursor, JournalFormat,
    JournalWriter,
};

/// Errors loading or validating a scenario file.
#[derive(Debug)]
pub enum ScenarioFileError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The JSON did not parse into a [`Scenario`].
    Parse(serde_json::Error),
    /// The scenario parsed but cannot be run as described.
    Invalid(ScenarioError),
    /// An event journal could not be read or written.
    Journal(std::io::Error),
    /// The journal read cleanly but cannot be replayed against the
    /// scenario (corrupt timestamp or out-of-range node).
    Replay(ReplayError),
    /// A chaos counterexample corpus could not be used as requested
    /// (wrong schema tag, or a counterexample index out of range).
    Corpus(String),
}

impl std::fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioFileError::Io(e) => write!(f, "cannot read scenario file: {e}"),
            ScenarioFileError::Parse(e) => write!(f, "invalid scenario JSON: {e}"),
            ScenarioFileError::Invalid(e) => write!(f, "unusable scenario: {e}"),
            ScenarioFileError::Journal(e) => write!(f, "cannot access event journal: {e}"),
            ScenarioFileError::Replay(e) => write!(f, "cannot replay event journal: {e}"),
            ScenarioFileError::Corpus(msg) => write!(f, "cannot use chaos corpus: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioFileError {}

/// Parses and validates a scenario from JSON text.
///
/// The shared loading path for everything that accepts scenario JSON: the
/// `repro run-scenario` / `unitherm-bench` CLIs go through [`load`] (this
/// plus file I/O), and `unitherm-serve` feeds `POST /jobs` request bodies
/// straight in — so a scenario rejected on the command line is rejected
/// with the same named error over HTTP.
pub fn parse(text: &str) -> Result<Scenario, ScenarioFileError> {
    let scenario: Scenario = serde_json::from_str(text).map_err(ScenarioFileError::Parse)?;
    scenario.validate().map_err(ScenarioFileError::Invalid)?;
    Ok(scenario)
}

/// Loads a scenario from a JSON file and validates it.
pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioFileError> {
    let text = std::fs::read_to_string(path).map_err(ScenarioFileError::Io)?;
    parse(&text)
}

/// Serializes a scenario to pretty JSON (the round-trip counterpart of
/// [`load`]; useful for generating templates).
pub fn to_json(scenario: &Scenario) -> String {
    serde_json::to_string_pretty(scenario).expect("scenarios always serialize")
}

/// Reads an event journal in either encoding, sniffing the format from the
/// file's first bytes (`unitherm-bjl` opens with the `UBJL` magic, JSONL
/// with `{`). Returns the records and the detected format.
pub fn read_any_journal(
    path: impl AsRef<Path>,
) -> Result<(Vec<EventRecord>, JournalFormat), ScenarioFileError> {
    let bytes = std::fs::read(path).map_err(ScenarioFileError::Journal)?;
    match JournalFormat::sniff(&bytes) {
        JournalFormat::Bjl => {
            let records = unitherm_obs::bjl_to_records(&bytes)
                .map_err(|e| ScenarioFileError::Journal(e.into()))?;
            Ok((records, JournalFormat::Bjl))
        }
        JournalFormat::Jsonl => {
            let records = read_journal(bytes.as_slice()).map_err(ScenarioFileError::Journal)?;
            Ok((records, JournalFormat::Jsonl))
        }
    }
}

/// Reads an event journal (JSONL or `unitherm-bjl/v1`, sniffed from the
/// file) and derives a tick-addressed fault plan for `scenario` (see
/// `unitherm_cluster::replay`), returning the faulted scenario and a
/// one-line-per-window description of the derived plan. The binary path
/// seeks the journal by tick instead of scanning it; both encodings of the
/// same journal derive the identical plan.
pub fn apply_replay(
    scenario: Scenario,
    journal_path: impl AsRef<Path>,
) -> Result<(Scenario, String), ScenarioFileError> {
    let bytes = std::fs::read(journal_path).map_err(ScenarioFileError::Journal)?;
    let opts = ReplayOptions::default();
    let (plan, events, format) = match JournalFormat::sniff(&bytes) {
        JournalFormat::Bjl => {
            let reader = BinaryJournalReader::new(&bytes)
                .map_err(|e| ScenarioFileError::Journal(e.into()))?;
            let plan = derive_fault_plan_from_cursor(
                JournalCursor::from_binary(&reader),
                &scenario,
                &opts,
            )
            .map_err(ScenarioFileError::Replay)?;
            (plan, reader.len(), JournalFormat::Bjl)
        }
        JournalFormat::Jsonl => {
            let records = read_journal(bytes.as_slice()).map_err(ScenarioFileError::Journal)?;
            let plan =
                derive_fault_plan(&records, &scenario, &opts).map_err(ScenarioFileError::Replay)?;
            (plan, records.len(), JournalFormat::Jsonl)
        }
    };
    let mut desc = format!(
        "derived {} fault window(s) from {} journal event(s) ({format}):\n",
        plan.len(),
        events
    );
    for d in &plan.derived {
        desc.push_str(&format!(
            "  node {} tick {} (t={:.2} s): {:?} until tick {}\n",
            d.node, d.tick, d.trigger_time_s, d.fault, d.recovery_tick
        ));
    }
    Ok((plan.apply(scenario), desc))
}

/// Converts an event journal between the JSONL and `unitherm-bjl/v1`
/// encodings; the direction is inferred from the input's magic bytes.
/// `dt_s` stamps the binary header on the JSONL→bjl direction (pass the
/// scenario tick width the journal was recorded under; it is ignored
/// bjl→JSONL, where the header already carries it). Returns a one-line
/// description of what was converted. The conversion is lossless: `time_s`
/// round-trips through raw IEEE-754 bits, so converting back reproduces a
/// `JournalWriter`-produced JSONL file byte for byte.
pub fn convert_journal(
    input: impl AsRef<Path>,
    output: impl AsRef<Path>,
    dt_s: f64,
) -> Result<String, ScenarioFileError> {
    let bytes = std::fs::read(&input).map_err(ScenarioFileError::Journal)?;
    match JournalFormat::sniff(&bytes) {
        JournalFormat::Bjl => {
            let records = unitherm_obs::bjl_to_records(&bytes)
                .map_err(|e| ScenarioFileError::Journal(e.into()))?;
            let mut writer = JournalWriter::new(Vec::new());
            for rec in &records {
                unitherm_obs::EventSink::record(&mut writer, rec);
            }
            let out = writer.finish().map_err(ScenarioFileError::Journal)?;
            std::fs::write(&output, out).map_err(ScenarioFileError::Journal)?;
            Ok(format!("converted {} event(s): bjl -> jsonl\n", records.len()))
        }
        JournalFormat::Jsonl => {
            let records = read_journal(bytes.as_slice()).map_err(ScenarioFileError::Journal)?;
            std::fs::write(&output, records_to_bjl(&records, dt_s))
                .map_err(ScenarioFileError::Journal)?;
            Ok(format!("converted {} event(s): jsonl -> bjl (dt_s = {dt_s})\n", records.len()))
        }
    }
}

/// True when the file at `path` looks like a chaos counterexample corpus
/// (a JSON object carrying the `unitherm-chaos` schema tag) rather than a
/// JSONL event journal. Used by `--replay-faults` to accept either format.
pub fn is_chaos_corpus(path: impl AsRef<Path>) -> bool {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let t = text.trim_start();
            // Match the schema family, not the exact version: a corpus from
            // a future/wrong version should fail with a named schema error
            // from `load_corpus`, not fall through to the journal parser.
            t.starts_with('{') && t.contains("unitherm-chaos")
        }
        Err(_) => false,
    }
}

/// Loads a chaos counterexample corpus from JSON and checks its schema tag.
pub fn load_corpus(path: impl AsRef<Path>) -> Result<ChaosCorpus, ScenarioFileError> {
    let text = std::fs::read_to_string(path).map_err(ScenarioFileError::Io)?;
    let corpus: ChaosCorpus = serde_json::from_str(&text).map_err(ScenarioFileError::Parse)?;
    if corpus.schema != CHAOS_SCHEMA {
        return Err(ScenarioFileError::Corpus(format!(
            "unknown schema {:?} (expected {CHAOS_SCHEMA:?})",
            corpus.schema
        )));
    }
    Ok(corpus)
}

/// Installs corpus counterexample `entry` on a scenario, returning the
/// faulted scenario, a human-readable description, and the report digest
/// the corpus recorded for the entry (re-executions must reproduce it
/// bit-identically).
pub fn apply_corpus(
    scenario: Scenario,
    corpus: &ChaosCorpus,
    entry: usize,
) -> Result<(Scenario, String, String), ScenarioFileError> {
    let ce = corpus.counterexamples.get(entry).ok_or_else(|| {
        ScenarioFileError::Corpus(format!(
            "corpus has {} counterexample(s); entry {entry} does not exist",
            corpus.counterexamples.len()
        ))
    })?;
    let mut desc = format!(
        "corpus {} (seed {}): installing counterexample {entry} (cost {}, {} window(s)):\n",
        corpus.scenario,
        corpus.seed,
        ce.cost,
        ce.windows.len()
    );
    for w in &ce.windows {
        desc.push_str(&format!(
            "  node {} tick {}..{}: {:?} (magnitude {})\n",
            w.node,
            w.start_tick,
            w.start_tick + w.hold_ticks,
            w.kind,
            w.magnitude
        ));
    }
    desc.push_str(&format!("  expected report digest: {}\n", ce.report_digest));
    let faulted = corpus.apply(scenario, entry).expect("entry existence checked above");
    Ok((faulted, desc, ce.report_digest.clone()))
}

/// Runs a loaded scenario and renders a human-readable report: summary
/// line, per-node statistics, temperature plot. When `journal_out` is
/// given, every control-plane event is also streamed to that path in the
/// requested encoding: JSONL (one [`unitherm_obs::EventRecord`] per line)
/// or `unitherm-bjl/v1` binary frames — see `docs/FORMATS.md` §2 and §5.
pub fn run_and_render_with_journal(
    scenario: Scenario,
    journal_out: Option<&Path>,
    format: JournalFormat,
) -> Result<(RunReport, String), ScenarioFileError> {
    let mut sim = Simulation::new(scenario);
    if let Some(path) = journal_out {
        let file = std::fs::File::create(path).map_err(ScenarioFileError::Journal)?;
        let buffered = std::io::BufWriter::new(file);
        match format {
            JournalFormat::Jsonl => sim.attach_journal(Box::new(JournalWriter::new(buffered))),
            JournalFormat::Bjl => sim.attach_binary_journal(buffered),
        }
    }
    Ok(render(sim.run()))
}

/// Runs a loaded scenario and renders a human-readable report: summary
/// line, per-node statistics, temperature plot.
pub fn run_and_render(scenario: Scenario) -> (RunReport, String) {
    let report = Simulation::new(scenario).run();
    render(report)
}

fn render(report: RunReport) -> (RunReport, String) {
    let mut out = String::new();
    out.push_str(&report.summary_line());
    out.push('\n');
    if let Some(warning) = &report.journal_warning {
        out.push_str(&format!("WARNING: {warning} — the journal on disk is incomplete\n"));
    }
    if let Some(node) = report.nodes.first() {
        if !node.temp.is_empty() {
            out.push_str(
                &AsciiPlot::new("node-0 temperature (°C)").size(72, 12).add(&node.temp).render(),
            );
        }
    }
    if let Some(air) = &report.rack_air {
        if !air.is_empty() {
            out.push_str(&AsciiPlot::new("rack intake air (°C)").size(72, 8).add(air).render());
        }
    }
    for (i, n) in report.nodes.iter().enumerate() {
        out.push_str(&format!(
            "  node{i}: avgT={:.2}°C maxT={:.2}°C duty={:.1}% power={:.2}W freqChg={} throttles={} failsafe={}\n",
            n.temp_summary.mean,
            n.temp_summary.max,
            n.duty_summary.mean,
            n.avg_wall_power_w,
            n.freq_transitions,
            n.throttle_events,
            n.failsafe_engagements,
        ));
    }
    (report, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_cluster::{DvfsScheme, FanScheme, WorkloadSpec};
    use unitherm_core::control_array::Policy;

    fn sample() -> Scenario {
        Scenario::new("json-roundtrip")
            .with_nodes(2)
            .with_seed(99)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 60))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(30.0)
            .with_failsafe(unitherm_core::failsafe::FailsafeConfig::default())
            .with_rack(unitherm_cluster::rack::RackConfig::default())
    }

    #[test]
    fn json_roundtrip_preserves_scenario() {
        let s = sample();
        let json = to_json(&s);
        let dir = std::env::temp_dir().join("unitherm_scn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        std::fs::write(&path, &json).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.name, s.name);
        assert_eq!(loaded.nodes, s.nodes);
        assert_eq!(loaded.fan, s.fan);
        assert_eq!(loaded.dvfs, s.dvfs);
        assert_eq!(loaded.workload, s.workload);
        assert_eq!(loaded.rack, s.rack);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtripped_scenario_runs_identically() {
        let direct = Simulation::new(sample()).run();
        let json = to_json(&sample());
        let reparsed: Scenario = serde_json::from_str(&json).unwrap();
        let via_json = Simulation::new(reparsed).run();
        assert_eq!(direct.avg_temp_c(), via_json.avg_temp_c());
        assert_eq!(direct.avg_node_power_w(), via_json.avg_node_power_w());
    }

    #[test]
    fn run_and_render_produces_report_text() {
        let (report, text) = run_and_render(sample());
        assert_eq!(report.nodes.len(), 2);
        assert!(text.contains("node0:"));
        assert!(text.contains("rack intake air"));
    }

    #[test]
    fn journal_converts_both_directions_byte_identically() {
        let dir = std::env::temp_dir().join("unitherm_scn_convert");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("events.jsonl");
        let bjl = dir.join("events.bjl");
        let back = dir.join("events_back.jsonl");

        // Record a real journal through the simulation's JSONL sink.
        let (_, _) = run_and_render_with_journal(sample(), Some(&jsonl), JournalFormat::Jsonl)
            .expect("record");
        let desc = convert_journal(&jsonl, &bjl, 0.05).expect("jsonl -> bjl");
        assert!(desc.contains("jsonl -> bjl"), "{desc}");
        let desc = convert_journal(&bjl, &back, 0.05).expect("bjl -> jsonl");
        assert!(desc.contains("bjl -> jsonl"), "{desc}");
        let original = std::fs::read(&jsonl).unwrap();
        let round_tripped = std::fs::read(&back).unwrap();
        assert!(!original.is_empty());
        assert_eq!(original, round_tripped, "round trip must be byte-identical");

        // Both encodings parse to the same records; the sniffing reader
        // agrees on the formats.
        let (rec_jsonl, f1) = read_any_journal(&jsonl).expect("read jsonl");
        let (rec_bjl, f2) = read_any_journal(&bjl).expect("read bjl");
        assert_eq!(f1, JournalFormat::Jsonl);
        assert_eq!(f2, JournalFormat::Bjl);
        assert_eq!(rec_jsonl, rec_bjl);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn apply_replay_accepts_both_encodings_identically() {
        let dir = std::env::temp_dir().join("unitherm_scn_replay_fmt");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("events.jsonl");
        let bjl = dir.join("events.bjl");
        let (_, _) = run_and_render_with_journal(sample(), Some(&jsonl), JournalFormat::Jsonl)
            .expect("record");
        convert_journal(&jsonl, &bjl, 0.05).expect("convert");

        let (s1, d1) = apply_replay(sample(), &jsonl).expect("jsonl replay");
        let (s2, d2) = apply_replay(sample(), &bjl).expect("bjl replay");
        assert_eq!(s1.tick_faults, s2.tick_faults, "both encodings derive the same plan");
        assert!(d1.contains("(jsonl)"), "{d1}");
        assert!(d2.contains("(bjl)"), "{d2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_errors() {
        let err = load("/nonexistent/scenario.json").unwrap_err();
        assert!(matches!(err, ScenarioFileError::Io(_)));
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn bad_json_errors() {
        let dir = std::env::temp_dir().join("unitherm_scn_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, ScenarioFileError::Parse(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
