//! JSON scenario files: experiments as data.
//!
//! Every scenario component serializes, so downstream users can describe a
//! run — workload, control schemes, faults, rack coupling, hardware
//! constants — as a JSON document and execute it with
//! `repro run-scenario <file>`, no Rust required. See
//! `examples/scenarios/` for ready-made files.

use std::path::Path;

use unitherm_cluster::{
    derive_fault_plan, ChaosCorpus, ReplayError, ReplayOptions, RunReport, Scenario, ScenarioError,
    Simulation, CHAOS_SCHEMA,
};
use unitherm_metrics::AsciiPlot;
use unitherm_obs::{read_journal, JournalWriter};

/// Errors loading or validating a scenario file.
#[derive(Debug)]
pub enum ScenarioFileError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The JSON did not parse into a [`Scenario`].
    Parse(serde_json::Error),
    /// The scenario parsed but cannot be run as described.
    Invalid(ScenarioError),
    /// An event journal could not be read or written.
    Journal(std::io::Error),
    /// The journal read cleanly but cannot be replayed against the
    /// scenario (corrupt timestamp or out-of-range node).
    Replay(ReplayError),
    /// A chaos counterexample corpus could not be used as requested
    /// (wrong schema tag, or a counterexample index out of range).
    Corpus(String),
}

impl std::fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioFileError::Io(e) => write!(f, "cannot read scenario file: {e}"),
            ScenarioFileError::Parse(e) => write!(f, "invalid scenario JSON: {e}"),
            ScenarioFileError::Invalid(e) => write!(f, "unusable scenario: {e}"),
            ScenarioFileError::Journal(e) => write!(f, "cannot access event journal: {e}"),
            ScenarioFileError::Replay(e) => write!(f, "cannot replay event journal: {e}"),
            ScenarioFileError::Corpus(msg) => write!(f, "cannot use chaos corpus: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioFileError {}

/// Loads a scenario from a JSON file and validates it.
pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioFileError> {
    let text = std::fs::read_to_string(path).map_err(ScenarioFileError::Io)?;
    let scenario: Scenario = serde_json::from_str(&text).map_err(ScenarioFileError::Parse)?;
    scenario.validate().map_err(ScenarioFileError::Invalid)?;
    Ok(scenario)
}

/// Serializes a scenario to pretty JSON (the round-trip counterpart of
/// [`load`]; useful for generating templates).
pub fn to_json(scenario: &Scenario) -> String {
    serde_json::to_string_pretty(scenario).expect("scenarios always serialize")
}

/// Reads a JSONL event journal and derives a tick-addressed fault plan for
/// `scenario` (see `unitherm_cluster::replay`), returning the faulted
/// scenario and a one-line-per-window description of the derived plan.
pub fn apply_replay(
    scenario: Scenario,
    journal_path: impl AsRef<Path>,
) -> Result<(Scenario, String), ScenarioFileError> {
    let file = std::fs::File::open(journal_path).map_err(ScenarioFileError::Journal)?;
    let records =
        read_journal(std::io::BufReader::new(file)).map_err(ScenarioFileError::Journal)?;
    let plan = derive_fault_plan(&records, &scenario, &ReplayOptions::default())
        .map_err(ScenarioFileError::Replay)?;
    let mut desc = format!(
        "derived {} fault window(s) from {} journal event(s):\n",
        plan.len(),
        records.len()
    );
    for d in &plan.derived {
        desc.push_str(&format!(
            "  node {} tick {} (t={:.2} s): {:?} until tick {}\n",
            d.node, d.tick, d.trigger_time_s, d.fault, d.recovery_tick
        ));
    }
    Ok((plan.apply(scenario), desc))
}

/// True when the file at `path` looks like a chaos counterexample corpus
/// (a JSON object carrying the `unitherm-chaos` schema tag) rather than a
/// JSONL event journal. Used by `--replay-faults` to accept either format.
pub fn is_chaos_corpus(path: impl AsRef<Path>) -> bool {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let t = text.trim_start();
            // Match the schema family, not the exact version: a corpus from
            // a future/wrong version should fail with a named schema error
            // from `load_corpus`, not fall through to the journal parser.
            t.starts_with('{') && t.contains("unitherm-chaos")
        }
        Err(_) => false,
    }
}

/// Loads a chaos counterexample corpus from JSON and checks its schema tag.
pub fn load_corpus(path: impl AsRef<Path>) -> Result<ChaosCorpus, ScenarioFileError> {
    let text = std::fs::read_to_string(path).map_err(ScenarioFileError::Io)?;
    let corpus: ChaosCorpus = serde_json::from_str(&text).map_err(ScenarioFileError::Parse)?;
    if corpus.schema != CHAOS_SCHEMA {
        return Err(ScenarioFileError::Corpus(format!(
            "unknown schema {:?} (expected {CHAOS_SCHEMA:?})",
            corpus.schema
        )));
    }
    Ok(corpus)
}

/// Installs corpus counterexample `entry` on a scenario, returning the
/// faulted scenario, a human-readable description, and the report digest
/// the corpus recorded for the entry (re-executions must reproduce it
/// bit-identically).
pub fn apply_corpus(
    scenario: Scenario,
    corpus: &ChaosCorpus,
    entry: usize,
) -> Result<(Scenario, String, String), ScenarioFileError> {
    let ce = corpus.counterexamples.get(entry).ok_or_else(|| {
        ScenarioFileError::Corpus(format!(
            "corpus has {} counterexample(s); entry {entry} does not exist",
            corpus.counterexamples.len()
        ))
    })?;
    let mut desc = format!(
        "corpus {} (seed {}): installing counterexample {entry} (cost {}, {} window(s)):\n",
        corpus.scenario,
        corpus.seed,
        ce.cost,
        ce.windows.len()
    );
    for w in &ce.windows {
        desc.push_str(&format!(
            "  node {} tick {}..{}: {:?} (magnitude {})\n",
            w.node,
            w.start_tick,
            w.start_tick + w.hold_ticks,
            w.kind,
            w.magnitude
        ));
    }
    desc.push_str(&format!("  expected report digest: {}\n", ce.report_digest));
    let faulted = corpus.apply(scenario, entry).expect("entry existence checked above");
    Ok((faulted, desc, ce.report_digest.clone()))
}

/// Runs a loaded scenario and renders a human-readable report: summary
/// line, per-node statistics, temperature plot. When `journal_out` is
/// given, every control-plane event is also streamed to that path as JSONL
/// (one [`unitherm_obs::EventRecord`] per line — see `docs/FORMATS.md`).
pub fn run_and_render_with_journal(
    scenario: Scenario,
    journal_out: Option<&Path>,
) -> Result<(RunReport, String), ScenarioFileError> {
    let mut sim = Simulation::new(scenario);
    if let Some(path) = journal_out {
        let file = std::fs::File::create(path).map_err(ScenarioFileError::Journal)?;
        sim.attach_journal(Box::new(JournalWriter::new(std::io::BufWriter::new(file))));
    }
    Ok(render(sim.run()))
}

/// Runs a loaded scenario and renders a human-readable report: summary
/// line, per-node statistics, temperature plot.
pub fn run_and_render(scenario: Scenario) -> (RunReport, String) {
    let report = Simulation::new(scenario).run();
    render(report)
}

fn render(report: RunReport) -> (RunReport, String) {
    let mut out = String::new();
    out.push_str(&report.summary_line());
    out.push('\n');
    if let Some(node) = report.nodes.first() {
        if !node.temp.is_empty() {
            out.push_str(
                &AsciiPlot::new("node-0 temperature (°C)").size(72, 12).add(&node.temp).render(),
            );
        }
    }
    if let Some(air) = &report.rack_air {
        if !air.is_empty() {
            out.push_str(&AsciiPlot::new("rack intake air (°C)").size(72, 8).add(air).render());
        }
    }
    for (i, n) in report.nodes.iter().enumerate() {
        out.push_str(&format!(
            "  node{i}: avgT={:.2}°C maxT={:.2}°C duty={:.1}% power={:.2}W freqChg={} throttles={} failsafe={}\n",
            n.temp_summary.mean,
            n.temp_summary.max,
            n.duty_summary.mean,
            n.avg_wall_power_w,
            n.freq_transitions,
            n.throttle_events,
            n.failsafe_engagements,
        ));
    }
    (report, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unitherm_cluster::{DvfsScheme, FanScheme, WorkloadSpec};
    use unitherm_core::control_array::Policy;

    fn sample() -> Scenario {
        Scenario::new("json-roundtrip")
            .with_nodes(2)
            .with_seed(99)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 60))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(30.0)
            .with_failsafe(unitherm_core::failsafe::FailsafeConfig::default())
            .with_rack(unitherm_cluster::rack::RackConfig::default())
    }

    #[test]
    fn json_roundtrip_preserves_scenario() {
        let s = sample();
        let json = to_json(&s);
        let dir = std::env::temp_dir().join("unitherm_scn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        std::fs::write(&path, &json).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.name, s.name);
        assert_eq!(loaded.nodes, s.nodes);
        assert_eq!(loaded.fan, s.fan);
        assert_eq!(loaded.dvfs, s.dvfs);
        assert_eq!(loaded.workload, s.workload);
        assert_eq!(loaded.rack, s.rack);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtripped_scenario_runs_identically() {
        let direct = Simulation::new(sample()).run();
        let json = to_json(&sample());
        let reparsed: Scenario = serde_json::from_str(&json).unwrap();
        let via_json = Simulation::new(reparsed).run();
        assert_eq!(direct.avg_temp_c(), via_json.avg_temp_c());
        assert_eq!(direct.avg_node_power_w(), via_json.avg_node_power_w());
    }

    #[test]
    fn run_and_render_produces_report_text() {
        let (report, text) = run_and_render(sample());
        assert_eq!(report.nodes.len(), 2);
        assert!(text.contains("node0:"));
        assert!(text.contains("rack intake air"));
    }

    #[test]
    fn missing_file_errors() {
        let err = load("/nonexistent/scenario.json").unwrap_err();
        assert!(matches!(err, ScenarioFileError::Io(_)));
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn bad_json_errors() {
        let dir = std::env::temp_dir().join("unitherm_scn_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, ScenarioFileError::Parse(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
