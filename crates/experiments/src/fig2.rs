//! Figure 2: the thermal profile taxonomy (sudden / gradual / jitter).
//!
//! The paper's Figure 2 is a CPU thermal profile of an Athlon64 system at
//! constant fan speed, sampled at 4 Hz, exhibiting all three behaviour
//! types. We drive one simulated node with the scripted Figure-2 utilization
//! profile under constant fan speed, sample its sensor at 4 Hz, and run the
//! §3.1 classifier over the trace.

use std::collections::BTreeMap;
use std::path::Path;

use unitherm_cluster::{FanScheme, Scenario, Simulation, WorkloadSpec};
use unitherm_core::classify::{BehaviorClassifier, ThermalBehavior};
use unitherm_metrics::{AsciiPlot, CsvWriter, TimeSeries};
use unitherm_workload::ScriptWorkload;

use crate::{Experiment, Scale};

/// Figure 2 result.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// The 4 Hz sensor temperature trace.
    pub temp: TimeSeries,
    /// One label per completed classifier round (1 s each).
    pub labels: Vec<ThermalBehavior>,
    /// Label histogram.
    pub histogram: BTreeMap<&'static str, usize>,
}

/// Regenerates Figure 2.
pub fn run(scale: Scale) -> Fig2Result {
    let profile = ScriptWorkload::figure2_profile();
    let segments = WorkloadSpec::Script(
        // Re-derive the segments by replaying the canonical profile is not
        // possible (the workload is consumed); build it again instead.
        figure2_segments(),
    );
    let max_time = match scale {
        Scale::Full => profile.total_duration_s() + 10.0,
        Scale::Fast => profile.total_duration_s() + 10.0, // trace length defines the figure
    };
    let report = Simulation::new(
        Scenario::new("fig2")
            .with_nodes(1)
            .with_workload(segments)
            // "constant fan speed" per the figure caption; 40 % keeps the
            // interesting temperature range.
            .with_fan(FanScheme::Constant { duty: 40 })
            .with_max_time(max_time),
    )
    .run();

    let temp = report.nodes[0].temp.clone();
    let labels = BehaviorClassifier::classify_trace(temp.values());
    let mut histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
    for l in &labels {
        let key = match l {
            ThermalBehavior::Sudden => "sudden",
            ThermalBehavior::Gradual => "gradual",
            ThermalBehavior::Jitter => "jitter",
            ThermalBehavior::Steady => "steady",
        };
        *histogram.entry(key).or_insert(0) += 1;
    }
    Fig2Result { temp, labels, histogram }
}

/// The utilization script behind [`ScriptWorkload::figure2_profile`],
/// exposed as segments for the scenario spec.
fn figure2_segments() -> Vec<unitherm_workload::Segment> {
    use unitherm_workload::Segment;
    let mut segs = vec![Segment::new(30.0, 0.10), Segment::new(70.0, 1.00)];
    for i in 0..40 {
        segs.push(Segment::new(2.0, if i % 2 == 0 { 0.95 } else { 0.45 }));
    }
    segs.push(Segment::new(10.0, 0.10));
    segs.push(Segment::new(60.0, 0.55));
    segs.push(Segment::new(50.0, 0.10));
    segs
}

impl Experiment for Fig2Result {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn render(&self) -> String {
        let mut out =
            String::from("Figure 2: CPU thermal profile with constant fan speed (4 samples/s)\n");
        out.push_str(&AsciiPlot::new("").size(72, 16).add(&self.temp).render());
        out.push_str("  behaviour rounds: ");
        for (k, v) in &self.histogram {
            out.push_str(&format!("{k}={v} "));
        }
        out.push('\n');
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        // All three paper behaviour types must be present.
        for ty in ["sudden", "gradual", "jitter"] {
            if self.histogram.get(ty).copied().unwrap_or(0) == 0 {
                v.push(format!("no {ty} rounds detected"));
            }
        }
        // The trace must span a meaningful range (the paper's spans ~25 °C).
        let s = self.temp.summary();
        if s.range() < 10.0 {
            v.push(format!("temperature range only {:.1} °C", s.range()));
        }
        // Sampled at 4 Hz: ~4 samples per simulated second.
        let rate = self.temp.len() as f64 / self.temp.duration_s();
        if (rate - 4.0).abs() > 0.2 {
            v.push(format!("sample rate {rate:.2} Hz, expected 4 Hz"));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        w.add(self.temp.clone());
        // Encode labels as a numeric series aligned to round ends (1 s).
        let mut lbl = TimeSeries::new("behavior", "0=steady 1=jitter 2=gradual 3=sudden");
        for (i, l) in self.labels.iter().enumerate() {
            let code = match l {
                ThermalBehavior::Steady => 0.0,
                ThermalBehavior::Jitter => 1.0,
                ThermalBehavior::Gradual => 2.0,
                ThermalBehavior::Sudden => 3.0,
            };
            lbl.push((i + 1) as f64, code);
        }
        w.add(lbl);
        w.write_to_file(dir.join("fig2.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn histogram_sums_to_rounds() {
        let r = run(Scale::Fast);
        let total: usize = r.histogram.values().sum();
        assert_eq!(total, r.labels.len());
        assert!(!r.labels.is_empty());
    }

    #[test]
    fn render_lists_behaviours() {
        let s = run(Scale::Fast).render();
        assert!(s.contains("sudden"));
        assert!(s.contains("jitter"));
    }
}
