//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--fast] [--csv DIR]
//! repro run-scenario <file.json> [--journal OUT] [--journal-format jsonl|bjl]
//!                    [--replay-faults IN] [--digest]
//! repro journal convert <IN> <OUT> [--dt S]
//! repro chaos-search <file.json> [--out CORPUS.json] [--seed N] [--budget N]
//!                    [--batch N] [--threads N] [--predicate P]
//!
//! experiments:
//!   fig1 fig2 fig5 fig6 fig7 fig8 fig9 fig10 table1
//!   ablate-window ablate-l1size ablate-fill ablate-hybrid ablate-hysteresis
//!   feedforward rack scaling
//!   all            run everything
//!
//! `run-scenario` executes a JSON scenario file (see examples/scenarios/)
//! and prints its report. `--journal OUT` streams every control-plane
//! event to a journal as the run executes — JSONL by default,
//! `--journal-format bjl` for the compact seekable `unitherm-bjl/v1`
//! binary encoding; `--replay-faults IN` reads either a journal recorded by
//! an earlier run in either encoding, sniffed from the file (faults land at
//! the exact ticks where that run made interesting decisions), or a
//! chaos-search counterexample corpus (entry 0's fault windows are
//! installed and the resulting report digest is checked against the corpus)
//! — see docs/FORMATS.md and DESIGN.md §12–§13. The two flags compose:
//! replay a faulted run while recording its journal to diff fault delivery
//! against the plan. `--digest` prints the report's FNV-1a digest
//! (`fnv1a64:…`) on stdout — the same digest `unitherm-serve` reports for a
//! submitted job, so operators can check service runs against direct CLI
//! runs (docs/API.md).
//!
//! `journal convert` translates a journal between the JSONL and binary
//! encodings (direction inferred from the input's magic bytes); `--dt S`
//! sets the tick width stamped into the binary header on the jsonl→bjl
//! direction (default 0.05, the standard scenario tick). The conversion is
//! lossless and round-trips byte-identically.
//!
//! `chaos-search` runs the seeded adversarial search (DESIGN.md §13) over a
//! scenario, hunting the cheapest fault sequence that flips the outcome
//! predicate P (one of `failsafe-trip`, `thermal-limit:<°C>`, `shutdown`,
//! `completion-miss`, `sla-miss:<seconds>`; default `failsafe-trip`). The
//! ranked counterexample corpus is written to `--out` (default
//! `chaos_corpus.json`); exit code 1 when no counterexample was found.
//! ```
//!
//! Exit code 0 when every run experiment reproduces the paper's shape; 1 on
//! shape violations or bad usage.

use std::path::PathBuf;
use std::process::ExitCode;

use unitherm_cluster::chaos::{chaos_search, report_digest, ChaosConfig, OutcomePredicate};
use unitherm_experiments::{
    ablations, fig1, fig10, fig2, fig5, fig6, fig7, fig8, fig9, rack, scaling, scenario_file,
    straggler, table1, Experiment, Scale,
};
use unitherm_obs::{Event, EventRecord, EventSink};

const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table1",
    "ablate-window",
    "ablate-l1size",
    "ablate-fill",
    "ablate-hybrid",
    "ablate-hysteresis",
    "feedforward",
    "rack",
    "straggler",
    "scaling",
];

fn usage() -> String {
    format!(
        "usage: repro <experiment> [--fast] [--csv DIR]\n       repro run-scenario <file.json> [--journal OUT] [--journal-format jsonl|bjl] [--replay-faults IN.jsonl|IN.bjl|CORPUS.json] [--digest]\n       repro journal convert <IN> <OUT> [--dt S]\n       repro chaos-search <file.json> [--out CORPUS.json] [--seed N] [--budget N] [--batch N] [--threads N] [--predicate failsafe-trip|thermal-limit:<C>|shutdown|completion-miss|sla-miss:<S>]\n       experiments: {} all",
        ALL.join(" ")
    )
}

/// The `journal convert <IN> <OUT> [--dt S]` subcommand: lossless
/// translation between the JSONL and `unitherm-bjl/v1` journal encodings,
/// direction inferred from the input's magic bytes.
fn journal_convert_mode(args: &[String]) -> ExitCode {
    let (Some(input), Some(output)) = (args.first(), args.get(1)) else {
        eprintln!("journal convert requires <IN> and <OUT> paths\n{}", usage());
        return ExitCode::FAILURE;
    };
    let mut dt_s = 0.05f64;
    let mut it = args.iter().skip(2);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dt" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => dt_s = v,
                _ => {
                    eprintln!("--dt wants a positive tick width in seconds\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    match scenario_file::convert_journal(input, output, dt_s) {
        Ok(desc) => {
            eprint!("{desc}");
            eprintln!("written to {output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses a `--predicate` string into an [`OutcomePredicate`].
fn parse_predicate(s: &str) -> Result<OutcomePredicate, String> {
    match s {
        "failsafe-trip" => Ok(OutcomePredicate::FailsafeTrip),
        "shutdown" => Ok(OutcomePredicate::Shutdown),
        "completion-miss" => Ok(OutcomePredicate::CompletionMiss),
        _ => {
            if let Some(v) = s.strip_prefix("thermal-limit:") {
                let limit_c: f64 =
                    v.parse().map_err(|_| format!("thermal-limit wants a °C number, got {v:?}"))?;
                Ok(OutcomePredicate::ThermalLimit { limit_c })
            } else if let Some(v) = s.strip_prefix("sla-miss:") {
                let max_exec_time_s: f64 =
                    v.parse().map_err(|_| format!("sla-miss wants seconds, got {v:?}"))?;
                Ok(OutcomePredicate::SlaMiss { max_exec_time_s })
            } else {
                Err(format!(
                    "unknown predicate {s:?} (want failsafe-trip, thermal-limit:<C>, shutdown, completion-miss, or sla-miss:<S>)"
                ))
            }
        }
    }
}

/// Streams chaos-search progress lines to stderr as they arrive.
struct StderrProgress;

impl EventSink for StderrProgress {
    fn record(&mut self, rec: &EventRecord) {
        if let Event::SearchProgress { phase, evaluated, counterexamples, best_cost } = rec.event {
            let best = if best_cost == u64::MAX { "-".to_string() } else { best_cost.to_string() };
            eprintln!(
                "  [{phase:?}] evaluated={evaluated} counterexamples={counterexamples} best_cost={best}"
            );
        }
    }
}

/// The `chaos-search` subcommand: adversarial search for the cheapest
/// outcome-flipping fault sequence, written out as a replayable corpus.
fn chaos_search_mode(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("chaos-search requires a scenario file\n{}", usage());
        return ExitCode::FAILURE;
    };
    let mut cfg = ChaosConfig::default();
    let mut out = PathBuf::from("chaos_corpus.json");
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("{flag} requires a value\n{}", usage());
                ExitCode::FAILURE
            })
        };
        let result = match arg.as_str() {
            "--out" => take("--out").map(|v| out = PathBuf::from(v)),
            "--seed" => take("--seed").and_then(|v| {
                v.parse().map(|n| cfg.seed = n).map_err(|_| {
                    eprintln!("--seed wants an integer, got {v:?}");
                    ExitCode::FAILURE
                })
            }),
            "--budget" => take("--budget").and_then(|v| {
                v.parse().map(|n| cfg.max_evaluations = n).map_err(|_| {
                    eprintln!("--budget wants an integer, got {v:?}");
                    ExitCode::FAILURE
                })
            }),
            "--batch" => take("--batch").and_then(|v| {
                v.parse().map(|n| cfg.batch = n).map_err(|_| {
                    eprintln!("--batch wants an integer, got {v:?}");
                    ExitCode::FAILURE
                })
            }),
            "--threads" => take("--threads").and_then(|v| {
                v.parse().map(|n| cfg.threads = n).map_err(|_| {
                    eprintln!("--threads wants an integer, got {v:?}");
                    ExitCode::FAILURE
                })
            }),
            "--predicate" => take("--predicate").and_then(|v| {
                parse_predicate(&v).map(|p| cfg.predicate = p).map_err(|e| {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                })
            }),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        };
        if let Err(code) = result {
            return code;
        }
    }
    let scenario = match scenario_file::load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "== chaos-search over scenario {:?} (seed {}, budget {}, predicate {:?}) ==",
        scenario.name, cfg.seed, cfg.max_evaluations, cfg.predicate
    );
    let corpus = match chaos_search(&scenario, &cfg, &mut StderrProgress) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos search failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = match serde_json::to_string_pretty(&corpus) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot serialize corpus: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("cannot write corpus to {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "evaluated {} run(s); baseline predicate holds: {}",
        corpus.evaluations, corpus.baseline_holds
    );
    for (i, ce) in corpus.counterexamples.iter().enumerate() {
        println!(
            "  #{i}: cost={} ({} faulted tick(s), {} window(s)) digest={}",
            ce.cost,
            ce.faulted_ticks,
            ce.windows.len(),
            ce.report_digest
        );
    }
    println!("corpus written to {}", out.display());
    if corpus.counterexamples.is_empty() {
        eprintln!("no counterexample found within the evaluation budget");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_one(id: &str, scale: Scale) -> Option<Box<dyn Experiment>> {
    match id {
        "fig1" => Some(Box::new(fig1::run(scale))),
        "fig2" => Some(Box::new(fig2::run(scale))),
        "fig5" => Some(Box::new(fig5::run(scale))),
        "fig6" => Some(Box::new(fig6::run(scale))),
        "fig7" => Some(Box::new(fig7::run(scale))),
        "fig8" => Some(Box::new(fig8::run(scale))),
        "fig9" => Some(Box::new(fig9::run(scale))),
        "fig10" => Some(Box::new(fig10::run(scale))),
        "table1" => Some(Box::new(table1::run(scale))),
        "ablate-window" => Some(Box::new(ablations::window_levels(scale))),
        "ablate-l1size" => Some(Box::new(ablations::l1_size(scale))),
        "ablate-fill" => Some(Box::new(ablations::fill_rule(scale))),
        "ablate-hybrid" => Some(Box::new(ablations::hybrid_isolation(scale))),
        "ablate-hysteresis" => Some(Box::new(ablations::tdvfs_hysteresis(scale))),
        "feedforward" => Some(Box::new(ablations::feedforward(scale))),
        "rack" => Some(Box::new(rack::run(scale))),
        "straggler" => Some(Box::new(straggler::run(scale))),
        "scaling" => Some(Box::new(scaling::run(scale))),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `chaos-search <file>` is its own mode.
    if args.first().map(String::as_str) == Some("chaos-search") {
        return chaos_search_mode(&args[1..]);
    }
    // `journal convert <IN> <OUT>` is its own mode.
    if args.first().map(String::as_str) == Some("journal") {
        if args.get(1).map(String::as_str) != Some("convert") {
            eprintln!("the journal subcommand is `journal convert`\n{}", usage());
            return ExitCode::FAILURE;
        }
        return journal_convert_mode(&args[2..]);
    }
    // `run-scenario <file>` is its own mode.
    if args.first().map(String::as_str) == Some("run-scenario") {
        let Some(path) = args.get(1) else {
            eprintln!("run-scenario requires a file\n{}", usage());
            return ExitCode::FAILURE;
        };
        let mut journal_out: Option<PathBuf> = None;
        let mut journal_format = unitherm_obs::JournalFormat::Jsonl;
        let mut replay_in: Option<PathBuf> = None;
        let mut print_digest = false;
        let mut it = args.iter().skip(2);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--digest" => print_digest = true,
                "--journal" => match it.next() {
                    Some(p) => journal_out = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--journal requires a path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                },
                "--journal-format" => {
                    match it.next().and_then(|v| unitherm_obs::JournalFormat::parse(v)) {
                        Some(f) => journal_format = f,
                        None => {
                            eprintln!("--journal-format wants jsonl or bjl\n{}", usage());
                            return ExitCode::FAILURE;
                        }
                    }
                }
                "--replay-faults" => match it.next() {
                    Some(p) => replay_in = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--replay-faults requires a path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                },
                other => {
                    eprintln!("unexpected argument {other:?}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
        }
        let mut scenario = match scenario_file::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        // `--replay-faults` accepts either a JSONL journal or a chaos
        // corpus; for a corpus, the resulting report must reproduce the
        // digest the corpus recorded for the entry, bit for bit.
        let mut expected_digest: Option<String> = None;
        if let Some(input) = &replay_in {
            if scenario_file::is_chaos_corpus(input) {
                let result = scenario_file::load_corpus(input)
                    .and_then(|corpus| scenario_file::apply_corpus(scenario.clone(), &corpus, 0));
                match result {
                    Ok((faulted, desc, digest)) => {
                        eprint!("{desc}");
                        scenario = faulted;
                        expected_digest = Some(digest);
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match scenario_file::apply_replay(scenario, input) {
                    Ok((faulted, desc)) => {
                        eprint!("{desc}");
                        scenario = faulted;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        eprintln!("== running scenario {:?} from {path} ==", scenario.name);
        let (report, text) = match scenario_file::run_and_render_with_journal(
            scenario,
            journal_out.as_deref(),
            journal_format,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(out) = &journal_out {
            eprintln!("journal written to {} ({journal_format})", out.display());
        }
        println!("{text}");
        if print_digest {
            println!("report digest: {}", report_digest(&report));
        }
        if let Some(expected) = &expected_digest {
            let actual = report_digest(&report);
            if actual == *expected {
                eprintln!("report digest matches the corpus: {actual}");
            } else {
                eprintln!(
                    "report digest mismatch: corpus recorded {expected}, this run produced {actual}"
                );
                return ExitCode::FAILURE;
            }
        }
        return if report.any_shutdown() {
            eprintln!("a node shut down during the run");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut target: Option<String> = None;
    let mut fast = false;
    let mut csv_dir: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv requires a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if target.is_none() => target = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let target = match target {
        Some(t) => t,
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let scale = Scale::from_fast_flag(fast);
    let ids: Vec<&str> = if target == "all" {
        ALL.to_vec()
    } else if let Some(&id) = ALL.iter().find(|&&s| s == target) {
        vec![id]
    } else {
        eprintln!("unknown experiment {target:?}\n{}", usage());
        return ExitCode::FAILURE;
    };

    let mut failures = 0usize;
    for id in ids {
        eprintln!("== running {id} ({scale:?}) ==");
        let result = run_one(id, scale).expect("id validated against ALL");
        println!("{}", result.render());
        if let Some(dir) = &csv_dir {
            match result.write_csv(dir) {
                Ok(()) => eprintln!("   CSV written under {}", dir.display()),
                Err(e) => eprintln!("warning: CSV export for {id} failed: {e}"),
            }
        }
        let violations = result.shape_violations();
        if violations.is_empty() {
            println!("SHAPE OK: {id} reproduces the paper's qualitative result\n");
        } else {
            failures += 1;
            println!("SHAPE VIOLATIONS in {id}:");
            for v in &violations {
                println!("  - {v}");
            }
            println!();
        }
    }

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} experiment(s) violated their shape criteria");
        ExitCode::FAILURE
    }
}
