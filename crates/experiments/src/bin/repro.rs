//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--fast] [--csv DIR]
//! repro run-scenario <file.json> [--journal OUT.jsonl] [--replay-faults IN.jsonl]
//!
//! experiments:
//!   fig1 fig2 fig5 fig6 fig7 fig8 fig9 fig10 table1
//!   ablate-window ablate-l1size ablate-fill ablate-hybrid ablate-hysteresis
//!   feedforward rack scaling
//!   all            run everything
//!
//! `run-scenario` executes a JSON scenario file (see examples/scenarios/)
//! and prints its report. `--journal OUT.jsonl` streams every control-plane
//! event to a JSONL journal as the run executes; `--replay-faults IN.jsonl`
//! reads a journal recorded by an earlier run and injects faults at the
//! exact ticks where that run made interesting decisions (see
//! docs/FORMATS.md and DESIGN.md §12 for the record → derive → replay
//! workflow). The two flags compose: replay a faulted run while recording
//! its journal to diff fault delivery against the plan.
//! ```
//!
//! Exit code 0 when every run experiment reproduces the paper's shape; 1 on
//! shape violations or bad usage.

use std::path::PathBuf;
use std::process::ExitCode;

use unitherm_experiments::{
    ablations, fig1, fig10, fig2, fig5, fig6, fig7, fig8, fig9, rack, scaling, scenario_file,
    straggler, table1, Experiment, Scale,
};

const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table1",
    "ablate-window",
    "ablate-l1size",
    "ablate-fill",
    "ablate-hybrid",
    "ablate-hysteresis",
    "feedforward",
    "rack",
    "straggler",
    "scaling",
];

fn usage() -> String {
    format!(
        "usage: repro <experiment> [--fast] [--csv DIR]\n       repro run-scenario <file.json> [--journal OUT.jsonl] [--replay-faults IN.jsonl]\n       experiments: {} all",
        ALL.join(" ")
    )
}

fn run_one(id: &str, scale: Scale) -> Option<Box<dyn Experiment>> {
    match id {
        "fig1" => Some(Box::new(fig1::run(scale))),
        "fig2" => Some(Box::new(fig2::run(scale))),
        "fig5" => Some(Box::new(fig5::run(scale))),
        "fig6" => Some(Box::new(fig6::run(scale))),
        "fig7" => Some(Box::new(fig7::run(scale))),
        "fig8" => Some(Box::new(fig8::run(scale))),
        "fig9" => Some(Box::new(fig9::run(scale))),
        "fig10" => Some(Box::new(fig10::run(scale))),
        "table1" => Some(Box::new(table1::run(scale))),
        "ablate-window" => Some(Box::new(ablations::window_levels(scale))),
        "ablate-l1size" => Some(Box::new(ablations::l1_size(scale))),
        "ablate-fill" => Some(Box::new(ablations::fill_rule(scale))),
        "ablate-hybrid" => Some(Box::new(ablations::hybrid_isolation(scale))),
        "ablate-hysteresis" => Some(Box::new(ablations::tdvfs_hysteresis(scale))),
        "feedforward" => Some(Box::new(ablations::feedforward(scale))),
        "rack" => Some(Box::new(rack::run(scale))),
        "straggler" => Some(Box::new(straggler::run(scale))),
        "scaling" => Some(Box::new(scaling::run(scale))),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `run-scenario <file>` is its own mode.
    if args.first().map(String::as_str) == Some("run-scenario") {
        let Some(path) = args.get(1) else {
            eprintln!("run-scenario requires a file\n{}", usage());
            return ExitCode::FAILURE;
        };
        let mut journal_out: Option<PathBuf> = None;
        let mut replay_in: Option<PathBuf> = None;
        let mut it = args.iter().skip(2);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--journal" => match it.next() {
                    Some(p) => journal_out = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--journal requires a path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                },
                "--replay-faults" => match it.next() {
                    Some(p) => replay_in = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--replay-faults requires a path\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                },
                other => {
                    eprintln!("unexpected argument {other:?}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
        }
        let mut scenario = match scenario_file::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(journal) = &replay_in {
            match scenario_file::apply_replay(scenario, journal) {
                Ok((faulted, desc)) => {
                    eprint!("{desc}");
                    scenario = faulted;
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        eprintln!("== running scenario {:?} from {path} ==", scenario.name);
        let (report, text) =
            match scenario_file::run_and_render_with_journal(scenario, journal_out.as_deref()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
        if let Some(out) = &journal_out {
            eprintln!("journal written to {}", out.display());
        }
        println!("{text}");
        return if report.any_shutdown() {
            eprintln!("a node shut down during the run");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut target: Option<String> = None;
    let mut fast = false;
    let mut csv_dir: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv requires a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if target.is_none() => target = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let target = match target {
        Some(t) => t,
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let scale = Scale::from_fast_flag(fast);
    let ids: Vec<&str> = if target == "all" {
        ALL.to_vec()
    } else if let Some(&id) = ALL.iter().find(|&&s| s == target) {
        vec![id]
    } else {
        eprintln!("unknown experiment {target:?}\n{}", usage());
        return ExitCode::FAILURE;
    };

    let mut failures = 0usize;
    for id in ids {
        eprintln!("== running {id} ({scale:?}) ==");
        let result = run_one(id, scale).expect("id validated against ALL");
        println!("{}", result.render());
        if let Some(dir) = &csv_dir {
            match result.write_csv(dir) {
                Ok(()) => eprintln!("   CSV written under {}", dir.display()),
                Err(e) => eprintln!("warning: CSV export for {id} failed: {e}"),
            }
        }
        let violations = result.shape_violations();
        if violations.is_empty() {
            println!("SHAPE OK: {id} reproduces the paper's qualitative result\n");
        } else {
            failures += 1;
            println!("SHAPE VIOLATIONS in {id}:");
            for v in &violations {
                println!("  - {v}");
            }
            println!();
        }
    }

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} experiment(s) violated their shape criteria");
        ExitCode::FAILURE
    }
}
