//! Figure 1: the traditional static fan curve (temperature → PWM duty).
//!
//! The paper's Figure 1 is the ADT7467 automatic control map: duty pinned at
//! `PWMmin` up to `Tmin`, rising linearly to full speed at `Tmax`. We
//! regenerate it two ways and check they agree: by evaluating the software
//! [`StaticFanCurve`] and by sweeping the simulated chip's automatic mode
//! through the same temperatures over the i2c register interface.

use std::path::Path;

use unitherm_core::baseline::StaticFanCurve;
use unitherm_metrics::{AsciiPlot, CsvWriter, TimeSeries};
use unitherm_simnode::adt7467::Adt7467;
use unitherm_simnode::units::DutyCycle;

use crate::{Experiment, Scale};

/// Figure 1 result: the curve sampled from both implementations.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Temperature sweep (x-axis), °C.
    pub temps_c: Vec<f64>,
    /// Duty from the software curve, percent.
    pub software_duty: Vec<u8>,
    /// Duty from the simulated chip's automatic mode, percent.
    pub chip_duty: Vec<u8>,
    /// The curve parameters (paper: PWMmin = 10 %, Tmin = 38, Tmax = 82).
    pub curve: StaticFanCurve,
}

/// Regenerates Figure 1 (scale-independent; the sweep is analytic).
pub fn run(_scale: Scale) -> Fig1Result {
    let curve = StaticFanCurve::default();
    let mut chip = Adt7467::new();
    let temps_c: Vec<f64> = (200..=1000).map(|t| f64::from(t) / 10.0).collect();
    let software_duty = temps_c.iter().map(|&t| curve.duty_for(t)).collect();
    let chip_duty = temps_c
        .iter()
        .map(|&t| {
            chip.set_measured_temp_c(t);
            chip.commanded_duty().percent()
        })
        .collect();
    Fig1Result { temps_c, software_duty, chip_duty, curve }
}

impl Fig1Result {
    fn duty_series(&self, name: &str, duties: &[u8]) -> TimeSeries {
        // Abuse the time axis as the temperature axis for plotting/CSV.
        let mut s = TimeSeries::new(name, "%");
        for (t, d) in self.temps_c.iter().zip(duties) {
            s.push(*t, f64::from(*d));
        }
        s
    }
}

impl Experiment for Fig1Result {
    fn id(&self) -> &'static str {
        "fig1"
    }

    fn render(&self) -> String {
        let mut out = String::from(
            "Figure 1: traditional static fan control map (PWM duty vs temperature)\n",
        );
        out.push_str(&format!(
            "  PWMmin={}%  Tmin={}°C  Tmax={}°C  (x-axis is °C, not seconds)\n",
            self.curve.pwm_min, self.curve.t_min_c, self.curve.t_max_c
        ));
        let plot = AsciiPlot::new("")
            .size(72, 16)
            .add(&self.duty_series("static curve", &self.software_duty));
        out.push_str(&plot.render());
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let curve = &self.curve;
        // Flat at PWMmin below Tmin.
        for (t, d) in self.temps_c.iter().zip(&self.software_duty) {
            if *t <= curve.t_min_c && *d != curve.pwm_min {
                v.push(format!("duty {d}% below Tmin at {t}°C (expected {}%)", curve.pwm_min));
                break;
            }
        }
        // Saturated at PWMmax at/above Tmax.
        for (t, d) in self.temps_c.iter().zip(&self.software_duty) {
            if *t >= curve.t_max_c && *d != curve.pwm_max {
                v.push(format!("duty {d}% above Tmax at {t}°C (expected {}%)", curve.pwm_max));
                break;
            }
        }
        // Monotone non-decreasing.
        if self.software_duty.windows(2).any(|w| w[1] < w[0]) {
            v.push("software curve is not monotone".to_string());
        }
        // The chip's automatic mode implements the same map (±1 % for the
        // 0–255 register quantization).
        let max_dev = self
            .software_duty
            .iter()
            .zip(&self.chip_duty)
            .map(|(a, b)| (i16::from(*a) - i16::from(*b)).unsigned_abs())
            .max()
            .unwrap_or(0);
        if max_dev > 1 {
            v.push(format!("chip vs software curve deviate by {max_dev}% (max allowed 1%)"));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        w.add(self.duty_series("software_duty", &self.software_duty));
        w.add(self.duty_series("chip_duty", &self.chip_duty));
        w.write_to_file(dir.join("fig1.csv"))
    }
}

/// The midpoint duty the paper's parameters imply (10 + 90·(60−38)/44 = 55).
pub fn midpoint_duty() -> DutyCycle {
    DutyCycle::new(StaticFanCurve::default().duty_for(60.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn render_mentions_parameters() {
        let r = run(Scale::Fast);
        let s = r.render();
        assert!(s.contains("PWMmin=10%"));
        assert!(s.contains("38"));
        assert!(s.contains("82"));
    }

    #[test]
    fn midpoint() {
        assert_eq!(midpoint_duty().percent(), 55);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("unitherm_fig1");
        run(Scale::Fast).write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig1.csv")).unwrap();
        assert!(content.contains("software_duty"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
