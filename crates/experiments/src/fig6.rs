//! Figure 6: dynamic vs. traditional static vs. constant fan control on
//! NPB BT on 4 nodes.
//!
//! The paper caps all fans at 75 % duty, sets `P_p = 50` for the dynamic
//! method, and observes: the traditional method reacts only to absolute
//! temperature, stabilizing latest and hottest; the dynamic method
//! proactively raises duty (45 % vs 32 %) and stabilizes sooner and lower;
//! constant 75 % keeps the lowest temperature but burns the most fan power.

use std::path::Path;

use unitherm_cluster::{run_scenarios_parallel, FanScheme, RunReport, Scenario, WorkloadSpec};
use unitherm_core::baseline::StaticFanCurve;
use unitherm_core::control_array::Policy;
use unitherm_metrics::{AsciiPlot, CsvWriter};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// The three control arms of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig6Arm {
    /// Traditional static curve, capped at 75 %.
    Traditional,
    /// Our dynamic controller, `P_p = 50`, capped at 75 %.
    Dynamic,
    /// Constant 75 % duty.
    ConstantMax,
}

impl Fig6Arm {
    fn label(self) -> &'static str {
        match self {
            Fig6Arm::Traditional => "traditional",
            Fig6Arm::Dynamic => "dynamic",
            Fig6Arm::ConstantMax => "constant-75%",
        }
    }
}

/// Figure 6 result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Reports keyed by arm, in [Traditional, Dynamic, ConstantMax] order.
    pub reports: Vec<(Fig6Arm, RunReport)>,
}

/// Regenerates Figure 6.
pub fn run(scale: Scale) -> Fig6Result {
    let arms = [Fig6Arm::Traditional, Fig6Arm::Dynamic, Fig6Arm::ConstantMax];
    let scenarios: Vec<Scenario> = arms
        .iter()
        .map(|arm| {
            let fan = match arm {
                Fig6Arm::Traditional => {
                    FanScheme::SoftwareStatic { curve: StaticFanCurve::with_max(75) }
                }
                Fig6Arm::Dynamic => FanScheme::dynamic(Policy::MODERATE, 75),
                Fig6Arm::ConstantMax => FanScheme::Constant { duty: 75 },
            };
            Scenario::new(format!("fig6-{}", arm.label()))
                .with_nodes(4)
                .with_seed(0xF166)
                .with_workload(WorkloadSpec::Npb {
                    bench: NpbBenchmark::Bt,
                    class: scale.npb_class(),
                })
                .with_fan(fan)
                .with_max_time(scale.npb_time_limit_s())
        })
        .collect();
    let reports = run_scenarios_parallel(scenarios, 3);
    Fig6Result { reports: arms.into_iter().zip(reports).collect() }
}

impl Fig6Result {
    fn report(&self, arm: Fig6Arm) -> &RunReport {
        &self.reports.iter().find(|(a, _)| *a == arm).expect("arm present").1
    }

    /// Average temperature in the settled second half of the run.
    fn settled_temp(&self, arm: Fig6Arm) -> f64 {
        let r = self.report(arm);
        let temp = &r.nodes[0].temp;
        let half = r.exec_time_s / 2.0;
        temp.summary_between(half, f64::INFINITY).mean
    }
}

impl Experiment for Fig6Result {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn render(&self) -> String {
        let mut out = String::from(
            "Figure 6: fan-control comparison on NPB BT ×4 nodes (max duty 75 %, P_p = 50)\n",
        );
        let mut temp_plot = AsciiPlot::new("  node-0 temperature (°C)").size(72, 14);
        let mut duty_plot = AsciiPlot::new("  node-0 fan duty (%)").size(72, 10);
        for (arm, r) in &self.reports {
            let mut t = r.nodes[0].temp.clone();
            t.name = arm.label().to_string();
            let mut d = r.nodes[0].duty.clone();
            d.name = arm.label().to_string();
            temp_plot = temp_plot.add(&t);
            duty_plot = duty_plot.add(&d);
        }
        out.push_str(&temp_plot.render());
        out.push_str(&duty_plot.render());
        for (arm, r) in &self.reports {
            out.push_str(&format!(
                "  {:<13} settled temp {:.2}°C  max {:.2}°C  avg duty {:.1}%  avg power {:.2}W\n",
                arm.label(),
                self.settled_temp(*arm),
                r.max_temp_c(),
                r.avg_duty_pct(),
                r.avg_node_power_w(),
            ));
        }
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let trad = self.settled_temp(Fig6Arm::Traditional);
        let dyn_ = self.settled_temp(Fig6Arm::Dynamic);
        let cons = self.settled_temp(Fig6Arm::ConstantMax);

        // Dynamic stabilizes lower than traditional ("ours proactively
        // scales up fan speed and effectively prevents temperature from
        // increasing").
        if dyn_ >= trad {
            v.push(format!("dynamic settled {dyn_:.2}°C not below traditional {trad:.2}°C"));
        }
        // Constant-max keeps the lowest temperature...
        if !(cons <= dyn_ && cons < trad) {
            v.push(format!(
                "constant-75% settled {cons:.2}°C not the coolest (dynamic {dyn_:.2}, traditional {trad:.2})"
            ));
        }
        // ...but consumes the most fan power (highest average duty).
        let trad_duty = self.report(Fig6Arm::Traditional).avg_duty_pct();
        let dyn_duty = self.report(Fig6Arm::Dynamic).avg_duty_pct();
        let cons_duty = self.report(Fig6Arm::ConstantMax).avg_duty_pct();
        if !(cons_duty > dyn_duty && cons_duty > trad_duty) {
            v.push(format!(
                "constant-75% avg duty {cons_duty:.1}% not the highest (dynamic {dyn_duty:.1}, traditional {trad_duty:.1})"
            ));
        }
        // Proactive: dynamic raises duty beyond what the static map commands
        // at the same temperatures (paper: 45 % vs 32 %).
        if dyn_duty <= trad_duty {
            v.push(format!(
                "dynamic avg duty {dyn_duty:.1}% not above traditional {trad_duty:.1}%"
            ));
        }
        // All arms finished the job.
        for (arm, r) in &self.reports {
            if !r.completed {
                v.push(format!("{} run did not complete", arm.label()));
            }
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        for (arm, r) in &self.reports {
            let mut t = r.nodes[0].temp.clone();
            t.name = format!("temp_{}", arm.label());
            let mut d = r.nodes[0].duty.clone();
            d.name = format!("duty_{}", arm.label());
            w.add(t);
            w.add(d);
        }
        w.write_to_file(dir.join("fig6.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn three_arms() {
        let r = run(Scale::Fast);
        assert_eq!(r.reports.len(), 3);
    }
}
