//! Figure 5: dynamic fan control under `P_p ∈ {75, 50, 25}` on cpu-burn.
//!
//! The paper runs cpu-burn for about five minutes under three policies and
//! reports (a) temperature and fan-speed traces, (b) average PWM duty of
//! 36 % / 53 % / 70 % for `P_p` = 75 / 50 / 25, and (c) that the controller
//! responds to sudden and gradual changes but not jitter.
//!
//! Shape criteria: smaller `P_p` ⇒ strictly higher average duty and strictly
//! lower average temperature; the fan must track load bursts (duty range is
//! wide); jitter alone must not saturate the controller.

use std::path::Path;

use unitherm_cluster::{run_scenarios_parallel, FanScheme, RunReport, Scenario, WorkloadSpec};
use unitherm_core::control_array::Policy;
use unitherm_metrics::{AsciiPlot, CsvWriter};

use crate::{Experiment, Scale};

/// One policy arm of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Arm {
    /// The policy value (75, 50, 25).
    pub pp: u32,
    /// Full run report (temperature and duty traces inside).
    pub report: RunReport,
}

/// Figure 5 result: one arm per policy, same workload seed across arms.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Arms ordered as the paper presents them: P75, P50, P25.
    pub arms: Vec<Fig5Arm>,
}

/// Regenerates Figure 5.
pub fn run(scale: Scale) -> Fig5Result {
    let pps = [75u32, 50, 25];
    let scenarios: Vec<Scenario> = pps
        .iter()
        .map(|&pp| {
            Scenario::new(format!("fig5-p{pp}"))
                .with_nodes(1)
                .with_seed(0xF165) // identical burn pattern across arms
                .with_workload(WorkloadSpec::CpuBurn)
                .with_fan(FanScheme::dynamic(Policy::new(pp).expect("valid"), 100))
                .with_max_time(scale.burn_duration_s())
        })
        .collect();
    let reports = run_scenarios_parallel(scenarios, 3);
    Fig5Result {
        arms: pps.iter().zip(reports).map(|(&pp, report)| Fig5Arm { pp, report }).collect(),
    }
}

impl Fig5Result {
    /// Average commanded duty per arm, ordered as `arms`.
    pub fn avg_duties(&self) -> Vec<f64> {
        self.arms.iter().map(|a| a.report.avg_duty_pct()).collect()
    }

    /// Average temperature per arm, ordered as `arms`.
    pub fn avg_temps(&self) -> Vec<f64> {
        self.arms.iter().map(|a| a.report.avg_temp_c()).collect()
    }
}

impl Experiment for Fig5Result {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn render(&self) -> String {
        let mut out =
            String::from("Figure 5: dynamic fan control under P_p = 75 / 50 / 25 (cpu-burn)\n");
        for arm in &self.arms {
            let n = &arm.report.nodes[0];
            out.push_str(&format!(
                "\n-- P_p = {} --   avg duty {:.1}%   avg temp {:.2}°C\n",
                arm.pp, n.duty_summary.mean, n.temp_summary.mean
            ));
            out.push_str(
                &AsciiPlot::new("temperature (top) / fan duty (bottom)")
                    .size(72, 10)
                    .add(&n.temp)
                    .render(),
            );
            out.push_str(&AsciiPlot::new("").size(72, 8).y_range(0.0, 100.0).add(&n.duty).render());
        }
        out.push_str(&format!(
            "\npaper avg PWM duty: P75=36 P50=53 P25=70; reproduced: P75={:.0} P50={:.0} P25={:.0}\n",
            self.avg_duties()[0], self.avg_duties()[1], self.avg_duties()[2]
        ));
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let duties = self.avg_duties(); // [P75, P50, P25]
        let temps = self.avg_temps();
        if !(duties[2] > duties[1] && duties[1] > duties[0]) {
            v.push(format!(
                "avg duty not ordered P25 > P50 > P75: {:.1} / {:.1} / {:.1}",
                duties[2], duties[1], duties[0]
            ));
        }
        if !(temps[2] < temps[1] && temps[1] < temps[0]) {
            v.push(format!(
                "avg temp not ordered P25 < P50 < P75: {:.2} / {:.2} / {:.2}",
                temps[2], temps[1], temps[0]
            ));
        }
        // The controller must actually exercise the fan (respond to sudden
        // bursts): each arm's duty trace spans a wide range.
        for arm in &self.arms {
            let span = arm.report.nodes[0].duty_summary;
            if span.max - span.min < 20.0 {
                v.push(format!("P{} duty range only {:.0}–{:.0}%", arm.pp, span.min, span.max));
            }
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        for arm in &self.arms {
            let n = &arm.report.nodes[0];
            let mut temp = n.temp.clone();
            temp.name = format!("temp_p{}", arm.pp);
            let mut duty = n.duty.clone();
            duty.name = format!("duty_p{}", arm.pp);
            w.add(temp);
            w.add(duty);
        }
        w.write_to_file(dir.join("fig5.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn three_arms_in_paper_order() {
        let r = run(Scale::Fast);
        let pps: Vec<u32> = r.arms.iter().map(|a| a.pp).collect();
        assert_eq!(pps, vec![75, 50, 25]);
    }

    #[test]
    fn render_reports_paper_reference() {
        let s = run(Scale::Fast).render();
        assert!(s.contains("paper avg PWM duty"));
    }
}
