//! Rack hot-pocket study (extension): the paper's motivating scenario made
//! concrete.
//!
//! The introduction motivates the whole work with hot spots that form "when
//! room air circulation is not effective". Here four BT ranks share a
//! poorly ventilated rack (node exhaust recirculates into the intake air)
//! and we compare traditional static fan control against the coordinated
//! fan + tDVFS controller. The coupled ambient means every node's operating
//! point climbs as the run proceeds — the regime where coordination matters
//! most.

use std::path::Path;

use unitherm_cluster::rack::RackConfig;
use unitherm_cluster::{
    run_scenarios_parallel, DvfsScheme, FanScheme, RunReport, Scenario, WorkloadSpec,
};
use unitherm_core::baseline::StaticFanCurve;
use unitherm_core::control_array::Policy;
use unitherm_metrics::{AsciiPlot, CsvWriter};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// Rack-study result.
#[derive(Debug, Clone)]
pub struct RackStudy {
    /// Traditional static fan control in the hot rack.
    pub traditional: RunReport,
    /// Coordinated (dynamic fan + tDVFS) control in the same rack.
    pub coordinated: RunReport,
}

/// Runs the rack hot-pocket study.
pub fn run(scale: Scale) -> RackStudy {
    let wl = WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: scale.npb_class() };
    let rack = RackConfig::poor_circulation();
    let scenarios = vec![
        Scenario::new("rack-traditional")
            .with_nodes(4)
            .with_seed(0x4ACC)
            .with_workload(wl.clone())
            .with_fan(FanScheme::SoftwareStatic { curve: StaticFanCurve::with_max(75) })
            .with_rack(rack)
            .with_max_time(scale.npb_time_limit_s()),
        Scenario::new("rack-coordinated")
            .with_nodes(4)
            .with_seed(0x4ACC)
            .with_workload(wl)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 75))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_rack(rack)
            .with_max_time(scale.npb_time_limit_s()),
    ];
    let mut reports = run_scenarios_parallel(scenarios, 2);
    let coordinated = reports.pop().expect("two runs");
    let traditional = reports.pop().expect("two runs");
    RackStudy { traditional, coordinated }
}

impl RackStudy {
    /// Rack-air rise over the run for a report, °C.
    fn air_rise(r: &RunReport) -> f64 {
        let air = r.rack_air.as_ref().expect("rack coupling enabled");
        air.summary().max - air.first().map(|s| s.value).unwrap_or(0.0)
    }
}

impl Experiment for RackStudy {
    fn id(&self) -> &'static str {
        "rack"
    }

    fn render(&self) -> String {
        let mut out = String::from(
            "Rack hot-pocket study: BT ×4 in a poorly ventilated rack (recirculating air)\n",
        );
        let mut air_plot = AsciiPlot::new("  rack intake-air temperature (°C)").size(72, 10);
        let mut trad_air = self.traditional.rack_air.clone().expect("rack air");
        trad_air.name = "traditional".into();
        let mut coord_air = self.coordinated.rack_air.clone().expect("rack air");
        coord_air.name = "coordinated".into();
        air_plot = air_plot.add(&trad_air).add(&coord_air);
        out.push_str(&air_plot.render());
        for (name, r) in [("traditional", &self.traditional), ("coordinated", &self.coordinated)] {
            out.push_str(&format!(
                "  {:<12} exec={:.1}s  maxT={:.2}°C  avgT={:.2}°C  air rise={:.2}°C  emergencies={}\n",
                name,
                r.exec_time_s,
                r.max_temp_c(),
                r.avg_temp_c(),
                Self::air_rise(r),
                r.total_throttle_events(),
            ));
        }
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (name, r) in [("traditional", &self.traditional), ("coordinated", &self.coordinated)] {
            if !r.completed {
                v.push(format!("{name} run did not complete"));
            }
        }
        // The hot pocket is real: intake air rises materially under load.
        let trad_rise = Self::air_rise(&self.traditional);
        if trad_rise < 2.0 {
            v.push(format!("rack air rose only {trad_rise:.2}°C — no hot pocket formed"));
        }
        // Coordination keeps the hottest die cooler than traditional
        // control in the same rack.
        if self.coordinated.max_temp_c() >= self.traditional.max_temp_c() {
            v.push(format!(
                "coordinated max {:.2}°C not below traditional {:.2}°C",
                self.coordinated.max_temp_c(),
                self.traditional.max_temp_c()
            ));
        }
        // And keeps the rack air itself no hotter (cooler dies exhaust
        // less leaked heat; DVFS reduces total dissipation).
        let coord_rise = Self::air_rise(&self.coordinated);
        if coord_rise > trad_rise + 0.2 {
            v.push(format!(
                "coordinated air rise {coord_rise:.2}°C above traditional {trad_rise:.2}°C"
            ));
        }
        // Neither run may hit a hardware emergency.
        if self.coordinated.total_throttle_events() > 0 {
            v.push("coordinated run hit the hardware throttle".into());
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut ta = self.traditional.rack_air.clone().expect("rack air");
        ta.name = "air_traditional".into();
        let mut ca = self.coordinated.rack_air.clone().expect("rack air");
        ca.name = "air_coordinated".into();
        let mut tt = self.traditional.nodes[0].temp.clone();
        tt.name = "temp_traditional".into();
        let mut ct = self.coordinated.nodes[0].temp.clone();
        ct.name = "temp_coordinated".into();
        w.add(ta);
        w.add(ca);
        w.add(tt);
        w.add(ct);
        w.write_to_file(dir.join("rack.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }

    #[test]
    fn rack_air_recorded_for_both_arms() {
        let r = run(Scale::Fast);
        assert!(r.traditional.rack_air.is_some());
        assert!(r.coordinated.rack_air.is_some());
        assert!(!r.traditional.rack_air.as_ref().unwrap().is_empty());
    }
}
