//! Experiment scale selection.

use unitherm_workload::NpbClass;

/// How big to run each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized runs: NPB class B (~220 s for BT.4), five-minute burns.
    Full,
    /// Reduced runs for tests and benches: NPB class A (~55 s), short burns.
    Fast,
}

impl Scale {
    /// The NPB problem class to use.
    ///
    /// Both scales use class B: the thermal dynamics (sink time constant
    /// ≈ 100 s) need the paper-length ~220 s runs for temperatures to cross
    /// the tDVFS threshold at all; a class-A run ends before the platform
    /// warms up. The simulation is cheap enough that tests afford it.
    pub fn npb_class(self) -> NpbClass {
        match self {
            Scale::Full | Scale::Fast => NpbClass::B,
        }
    }

    /// Duration for unbounded (cpu-burn) experiments, seconds.
    pub fn burn_duration_s(self) -> f64 {
        match self {
            Scale::Full => 300.0, // "Each run lasts about five minutes" (§4.2)
            Scale::Fast => 200.0,
        }
    }

    /// Generous wall-clock ceiling for NPB jobs, seconds.
    pub fn npb_time_limit_s(self) -> f64 {
        match self {
            Scale::Full | Scale::Fast => 600.0,
        }
    }

    /// Parses from a `--fast` flag.
    pub fn from_fast_flag(fast: bool) -> Self {
        if fast {
            Scale::Fast
        } else {
            Scale::Full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_scales_use_class_b() {
        assert_eq!(Scale::Full.npb_class(), NpbClass::B);
        assert_eq!(Scale::Fast.npb_class(), NpbClass::B);
    }

    #[test]
    fn durations_ordered() {
        assert!(Scale::Full.burn_duration_s() > Scale::Fast.burn_duration_s());
        assert!(Scale::Full.npb_time_limit_s() >= Scale::Fast.npb_time_limit_s());
    }

    #[test]
    fn flag_parsing() {
        assert_eq!(Scale::from_fast_flag(true), Scale::Fast);
        assert_eq!(Scale::from_fast_flag(false), Scale::Full);
    }
}
