//! Figure 8: tDVFS coupled with traditional static fan control on NPB LU.
//!
//! Setup per the paper: maximum allowed fan duty 25 %, trigger threshold
//! 51 °C, `P_p = 50`, LU on four nodes. Expected behaviour: tDVFS scales
//! down only when the *average* temperature is consistently above the
//! threshold (2.4 → 2.2 GHz in the paper), ignores short-term spikes (the
//! red-circled region), and scales back to the original frequency once the
//! temperature is consistently below threshold.

use std::path::Path;

use unitherm_cluster::{DvfsScheme, FanScheme, RunReport, Scenario, Simulation, WorkloadSpec};
use unitherm_core::baseline::StaticFanCurve;
use unitherm_core::control_array::Policy;
use unitherm_metrics::{AsciiPlot, CsvWriter};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// Figure 8 result.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// The full run report (node 0 carries the plotted trace).
    pub report: RunReport,
    /// The tDVFS trigger threshold used.
    pub threshold_c: f64,
}

/// Regenerates Figure 8.
pub fn run(scale: Scale) -> Fig8Result {
    let report = Simulation::new(
        Scenario::new("fig8")
            .with_nodes(4)
            .with_seed(0xF168)
            .with_workload(WorkloadSpec::Npb { bench: NpbBenchmark::Lu, class: scale.npb_class() })
            .with_fan(FanScheme::SoftwareStatic { curve: StaticFanCurve::with_max(25) })
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(scale.npb_time_limit_s() + 120.0)
            // Observe the post-job cooldown so the restore-to-original
            // transition (2.2 → 2.4 GHz in the paper's trace) is captured.
            .with_cooldown(60.0),
    )
    .run();
    Fig8Result { report, threshold_c: 51.0 }
}

impl Fig8Result {
    /// All frequency events across nodes, time-ordered.
    pub fn all_events(&self) -> Vec<(f64, u32)> {
        let mut ev: Vec<(f64, u32)> =
            self.report.nodes.iter().flat_map(|n| n.freq_events.iter().copied()).collect();
        ev.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        ev
    }

    /// Scale-down events (frequency below 2400 MHz).
    pub fn scale_downs(&self) -> usize {
        self.all_events().iter().filter(|&&(_, f)| f < 2400).count()
    }

    /// Restore events (frequency back to 2400 MHz).
    pub fn restores(&self) -> usize {
        self.all_events().iter().filter(|&&(_, f)| f == 2400).count()
    }
}

impl Experiment for Fig8Result {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn render(&self) -> String {
        let mut out = String::from(
            "Figure 8: tDVFS + traditional static fan (max 25 %), NPB LU ×4, threshold 51 °C\n",
        );
        let n = &self.report.nodes[0];
        out.push_str(
            &AsciiPlot::new("  node-0 temperature (°C)").size(72, 14).add(&n.temp).render(),
        );
        out.push_str(
            &AsciiPlot::new("  node-0 requested frequency (MHz)").size(72, 8).add(&n.freq).render(),
        );
        out.push_str("  frequency events (node, time, MHz):\n");
        for (i, node) in self.report.nodes.iter().enumerate() {
            for (t, f) in &node.freq_events {
                out.push_str(&format!("    node{i} t={t:.0}s → {f} MHz\n"));
            }
        }
        out.push_str(&format!(
            "  exec time {:.1}s; per-node freq transitions: {:?}\n",
            self.report.exec_time_s,
            self.report.nodes.iter().map(|n| n.freq_transitions).collect::<Vec<_>>()
        ));
        out
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.report.completed {
            v.push("LU did not complete".to_string());
        }
        // tDVFS must have scaled down: the 25 %-capped fan cannot hold LU
        // under the threshold.
        if self.scale_downs() == 0 {
            v.push("no scale-down event".to_string());
        }
        // And must have restored the original frequency once cool
        // (during the run or the cooldown window).
        if self.restores() == 0 {
            v.push("no restore-to-original event".to_string());
        }
        // Threshold-triggered, not utilization-thrash: a handful of events
        // per node at most (the paper's trace shows 2).
        for (i, n) in self.report.nodes.iter().enumerate() {
            if n.freq_transitions > 8 {
                v.push(format!(
                    "node{i} made {} transitions — tDVFS should make only a few",
                    n.freq_transitions
                ));
            }
        }
        // The first scale-down must come after a sustained excess, not at
        // the first hot sample: later than the first threshold crossing by
        // at least the confirmation time (8 rounds ≈ 8 s).
        let first_cross = self.report.nodes[0].temp.first_crossing_above(self.threshold_c);
        if let (Some(cross), Some(first_ev)) = (first_cross, self.report.first_dvfs_event_time_s())
        {
            if first_ev < cross + 4.0 {
                v.push(format!(
                    "tDVFS fired {first_ev:.1}s, too soon after first crossing {cross:.1}s"
                ));
            }
        }
        // Temperature must be controlled: the settled mean stays within a
        // few degrees of the threshold instead of running away.
        let settled = self.report.nodes[0]
            .temp
            .summary_between(self.report.exec_time_s * 0.5, self.report.exec_time_s)
            .mean;
        if settled > self.threshold_c + 6.0 {
            v.push(format!("settled temp {settled:.1}°C runs away above threshold"));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let n = &self.report.nodes[0];
        w.add(n.temp.clone());
        w.add(n.freq.clone());
        w.add(n.duty.clone());
        w.write_to_file(dir.join("fig8.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{:?}", r.shape_violations());
    }

    #[test]
    fn events_are_time_ordered() {
        let r = run(Scale::Fast);
        let ev = r.all_events();
        assert!(ev.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
