//! Ablation studies for the design choices `DESIGN.md` §5 calls out.
//!
//! Each ablation isolates one mechanism of the paper's controller and
//! measures what breaks without it:
//!
//! * [`window_levels`] — two-level window vs level-1-only vs level-2-only;
//! * [`l1_size`] — level-one window length (2/4/8/16): the paper's claim
//!   that 4 entries catch sudden changes while nullifying jitter;
//! * [`fill_rule`] — Eq.(1)'s pinned-`g_N` fill vs a plain linear spread;
//! * [`hybrid_isolation`] — coordinated fan + DVFS vs either in isolation
//!   (the headline claim);
//! * [`tdvfs_hysteresis`] — the "consistently above/below" confirmation vs
//!   a naive instantaneous threshold.

use std::path::Path;

use unitherm_cluster::{run_scenarios_parallel, DvfsScheme, FanScheme, Scenario, WorkloadSpec};
use unitherm_core::control_array::{Policy, ThermalControlArray};
use unitherm_core::controller::{ControllerConfig, UnifiedController};
use unitherm_core::tdvfs::TdvfsConfig;
use unitherm_core::window::WindowConfig;
use unitherm_metrics::{CsvWriter, TextTable, TimeSeries};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

// ---------------------------------------------------------------- helpers

/// A deterministic synthetic sensor trace: flat with jitter, one sudden
/// step, then a slow ramp. Exercises all three behaviour regimes without
/// simulator noise, so ablation differences are attributable.
fn synthetic_trace() -> Vec<f64> {
    let mut t = Vec::new();
    // 0–60 s: 45 °C with ±0.25 °C alternating jitter.
    for i in 0..240 {
        t.push(45.0 + if i % 2 == 0 { 0.25 } else { -0.25 });
    }
    // Sudden +6 °C step (lands mid-window).
    t.extend([45.0, 45.0, 51.0, 51.0]);
    // 60–120 s: hold at 51 °C with jitter.
    for i in 0..236 {
        t.push(51.0 + if i % 2 == 0 { 0.25 } else { -0.25 });
    }
    // 120–240 s: slow ramp +0.02 °C/sample (gradual, sub-deadband).
    for i in 0..480 {
        t.push(51.0 + 0.02 * f64::from(i));
    }
    t
}

/// Drives a controller over a trace; returns (decisions, final duty,
/// samples-to-first-response-after-step).
fn drive(mut ctl: UnifiedController<u8>, trace: &[f64]) -> (u64, u8, Option<usize>) {
    let step_at = 240; // index where the sudden step begins
    let mut first_response = None;
    for (i, &temp) in trace.iter().enumerate() {
        if ctl.observe(temp).is_some() && i >= step_at && first_response.is_none() {
            first_response = Some(i - step_at);
        }
    }
    let stats = ctl.stats();
    (stats.level1 + stats.level2, ctl.current_mode(), first_response)
}

fn duties() -> Vec<u8> {
    (1..=100).collect()
}

// ---------------------------------------------------- window-level ablation

/// Result of the two-level-window ablation.
#[derive(Debug, Clone)]
pub struct WindowAblation {
    /// (variant name, decisions, final duty, response delay in samples).
    pub rows: Vec<(&'static str, u64, u8, Option<usize>)>,
}

/// Runs the window-level ablation (controller-level, simulator-free).
pub fn window_levels(_scale: Scale) -> WindowAblation {
    let trace = synthetic_trace();
    let mk = || UnifiedController::new(&duties(), Policy::MODERATE, ControllerConfig::default());
    let rows = vec![
        ("two-level", mk()),
        ("level1-only", mk().with_level2_disabled()),
        ("level2-only", mk().with_level1_disabled()),
    ]
    .into_iter()
    .map(|(name, ctl)| {
        let (dec, duty, resp) = drive(ctl, &trace);
        (name, dec, duty, resp)
    })
    .collect();
    WindowAblation { rows }
}

impl Experiment for WindowAblation {
    fn id(&self) -> &'static str {
        "ablate-window"
    }

    fn render(&self) -> String {
        let mut t = TextTable::new(
            "Ablation: two-level window vs single levels (synthetic trace)",
            &["variant", "decisions", "final duty (%)", "step response (samples)"],
        );
        for (name, dec, duty, resp) in &self.rows {
            t.row(&[
                name.to_string(),
                dec.to_string(),
                duty.to_string(),
                resp.map(|r| r.to_string()).unwrap_or_else(|| "—".into()),
            ]);
        }
        t.render()
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let get =
            |name: &str| self.rows.iter().find(|(n, ..)| *n == name).expect("variant present");
        let (_, _, two_duty, two_resp) = *get("two-level");
        let (_, _, l1_duty, l1_resp) = *get("level1-only");
        let (_, _, l2_duty, _) = *get("level2-only");

        // Two-level and level1-only both catch the sudden step fast.
        for (name, resp) in [("two-level", two_resp), ("level1-only", l1_resp)] {
            match resp {
                Some(r) if r <= 8 => {}
                other => v.push(format!("{name} step response {other:?}, expected ≤ 8 samples")),
            }
        }
        // Level-1-only misses the slow ramp: its final duty falls short of
        // the two-level controller's.
        if l1_duty >= two_duty {
            v.push(format!(
                "level1-only final duty {l1_duty}% not below two-level {two_duty}% — ramp should be missed"
            ));
        }
        // Level-2-only eventually reacts (non-trivial duty) but more
        // sluggishly than the full controller responds to the step.
        if l2_duty <= 1 {
            v.push("level2-only never engaged".to_string());
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut dec = TimeSeries::new("decisions", "");
        let mut duty = TimeSeries::new("final_duty", "%");
        for (i, (_, d, fd, _)) in self.rows.iter().enumerate() {
            dec.push(i as f64, *d as f64);
            duty.push(i as f64, f64::from(*fd));
        }
        w.add(dec);
        w.add(duty);
        w.write_to_file(dir.join("ablate_window.csv"))
    }
}

// ------------------------------------------------------- L1 size ablation

/// Result of the level-one-size ablation.
#[derive(Debug, Clone)]
pub struct L1SizeAblation {
    /// (l1 length, jitter decisions, step response in samples).
    pub rows: Vec<(usize, u64, Option<usize>)>,
}

/// Runs the level-one window-size ablation.
pub fn l1_size(_scale: Scale) -> L1SizeAblation {
    let rows = [2usize, 4, 8, 16]
        .into_iter()
        .map(|len| {
            let cfg = ControllerConfig {
                window: WindowConfig { l1_len: len, l2_len: 5 },
                // No deadband: isolate the window's own jitter rejection,
                // which is the paper's §3.2.1 argument for sizing.
                l1_deadband_c: 0.0,
                ..Default::default()
            };
            // Jitter phase: ±0.6 °C alternation, 400 samples. Start the
            // controller mid-array so both index directions are available
            // (at index 1, downward jitter reactions clamp invisibly).
            let mut jitter_ctl = UnifiedController::new(&duties(), Policy::MODERATE, cfg);
            jitter_ctl.force_index(50);
            let mut jitter_decisions = 0;
            for i in 0..400 {
                let t = 45.0 + if i % 2 == 0 { 0.6 } else { -0.6 };
                if jitter_ctl.observe(t).is_some() {
                    jitter_decisions += 1;
                }
            }
            // Step phase (fresh controller): response delay to +6 °C.
            let mut step_ctl = UnifiedController::new(&duties(), Policy::MODERATE, cfg);
            let mut resp = None;
            for i in 0..200 {
                let t = if i < len + len / 2 { 45.0 } else { 51.0 };
                if step_ctl.observe(t).is_some() && resp.is_none() && i >= len + len / 2 {
                    resp = Some(i - (len + len / 2));
                }
            }
            (len, jitter_decisions, resp)
        })
        .collect();
    L1SizeAblation { rows }
}

impl Experiment for L1SizeAblation {
    fn id(&self) -> &'static str {
        "ablate-l1size"
    }

    fn render(&self) -> String {
        let mut t = TextTable::new(
            "Ablation: level-one window length (paper picks 4)",
            &["l1 length", "jitter decisions (of 400 samples)", "step response (samples)"],
        );
        for (len, jd, resp) in &self.rows {
            t.row(&[
                len.to_string(),
                jd.to_string(),
                resp.map(|r| r.to_string()).unwrap_or_else(|| "—".into()),
            ]);
        }
        t.render()
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let get = |len: usize| self.rows.iter().find(|(l, ..)| *l == len).expect("row");
        let (_, j2, _) = *get(2);
        let (_, j4, r4) = *get(4);
        let (_, _, r16) = *get(16);
        // A 2-entry window mistakes alternating jitter for sudden change
        // (each window is [hi, lo] ⇒ a full-swing delta every round).
        if j2 == 0 {
            v.push("2-entry window did not react to jitter — expected it to".to_string());
        }
        // The paper's 4-entry window nullifies this jitter entirely.
        if j4 > 0 {
            v.push(format!("4-entry window made {j4} jitter decisions, expected 0"));
        }
        // Larger windows respond slower to a sudden step.
        match (r4, r16) {
            (Some(a), Some(b)) if b > a => {}
            other => v.push(format!("16-entry window not slower than 4-entry: {other:?}")),
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut jd = TimeSeries::new("jitter_decisions", "");
        let mut rs = TimeSeries::new("step_response", "samples");
        for (len, j, r) in &self.rows {
            jd.push(*len as f64, *j as f64);
            if let Some(r) = r {
                rs.push(*len as f64, *r as f64);
            }
        }
        w.add(jd);
        w.add(rs);
        w.write_to_file(dir.join("ablate_l1size.csv"))
    }
}

// ----------------------------------------------------- fill-rule ablation

/// Result of the array-fill ablation.
#[derive(Debug, Clone)]
pub struct FillAblation {
    /// Duty commanded at each quartile index for both fills at P_p = 25.
    pub eq1_duties: Vec<u8>,
    /// Same indices under the plain linear spread.
    pub linear_duties: Vec<u8>,
    /// Indices probed.
    pub indices: Vec<usize>,
}

/// Runs the fill-rule ablation: Eq.(1) at `P_p = 25` vs a linear spread
/// (which is what Eq.(1) degenerates to at `P_p = 100`).
pub fn fill_rule(_scale: Scale) -> FillAblation {
    let modes = duties();
    let eq1 = ThermalControlArray::with_default_len(&modes, Policy::AGGRESSIVE);
    let linear = ThermalControlArray::with_default_len(&modes, Policy::new(100).expect("valid"));
    let indices = vec![10usize, 25, 50, 75, 100];
    FillAblation {
        eq1_duties: indices.iter().map(|&i| eq1.mode_at(i)).collect(),
        linear_duties: indices.iter().map(|&i| linear.mode_at(i)).collect(),
        indices,
    }
}

impl Experiment for FillAblation {
    fn id(&self) -> &'static str {
        "ablate-fill"
    }

    fn render(&self) -> String {
        let mut t = TextTable::new(
            "Ablation: Eq.(1) fill (P_p = 25) vs linear fill",
            &["index", "Eq.(1) duty (%)", "linear duty (%)"],
        );
        for ((i, e), l) in self.indices.iter().zip(&self.eq1_duties).zip(&self.linear_duties) {
            t.row(&[i.to_string(), e.to_string(), l.to_string()]);
        }
        t.render()
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        // Eq.(1) at P25 commands at least as much duty at every index, and
        // strictly more in the interior.
        let mut strictly = 0;
        for ((i, e), l) in self.indices.iter().zip(&self.eq1_duties).zip(&self.linear_duties) {
            if e < l {
                v.push(format!("index {i}: Eq.(1) duty {e}% below linear {l}%"));
            }
            if e > l {
                strictly += 1;
            }
        }
        if strictly < 2 {
            v.push("Eq.(1) fill not strictly more aggressive anywhere in the interior".into());
        }
        // Both pin the extremes identically.
        if self.eq1_duties.last() != self.linear_duties.last() {
            v.push("arrays disagree at g_N".into());
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut e = TimeSeries::new("eq1_duty", "%");
        let mut l = TimeSeries::new("linear_duty", "%");
        for ((i, a), b) in self.indices.iter().zip(&self.eq1_duties).zip(&self.linear_duties) {
            e.push(*i as f64, f64::from(*a));
            l.push(*i as f64, f64::from(*b));
        }
        w.add(e);
        w.add(l);
        w.write_to_file(dir.join("ablate_fill.csv"))
    }
}

// ---------------------------------------------- hybrid-isolation ablation

/// Result of the hybrid-vs-isolation ablation (the headline claim).
#[derive(Debug, Clone)]
pub struct HybridAblation {
    /// (arm name, settled temp °C, time above threshold s, exec time s,
    /// avg power W). Settled temp is the mean over the second half of the
    /// run.
    pub rows: Vec<(&'static str, f64, f64, f64, f64)>,
    /// Threshold used for the time-above metric.
    pub threshold_c: f64,
}

/// Runs hybrid vs fan-only vs DVFS-only on BT with a 50 %-capped fan.
pub fn hybrid_isolation(scale: Scale) -> HybridAblation {
    let threshold = 51.0;
    let wl = WorkloadSpec::Npb { bench: NpbBenchmark::Bt, class: scale.npb_class() };
    let scenarios = vec![
        Scenario::new("hybrid")
            .with_nodes(4)
            .with_seed(0xAB1A7E)
            .with_workload(wl.clone())
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(scale.npb_time_limit_s()),
        Scenario::new("fan-only")
            .with_nodes(4)
            .with_seed(0xAB1A7E)
            .with_workload(wl.clone())
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
            .with_max_time(scale.npb_time_limit_s()),
        Scenario::new("dvfs-only")
            .with_nodes(4)
            .with_seed(0xAB1A7E)
            .with_workload(wl)
            // A fixed weak fan: DVFS is the only adaptive mechanism.
            .with_fan(FanScheme::Constant { duty: 25 })
            .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
            .with_max_time(scale.npb_time_limit_s()),
    ];
    let names = ["hybrid", "fan-only", "dvfs-only"];
    let reports = run_scenarios_parallel(scenarios, 3);
    let rows = names
        .iter()
        .zip(&reports)
        .map(|(name, r)| {
            let temp = &r.nodes[0].temp;
            let above: f64 = temp
                .samples()
                .windows(2)
                .filter(|w| w[0].value > threshold)
                .map(|w| w[1].time_s - w[0].time_s)
                .sum();
            let settled = temp.summary_between(r.exec_time_s * 0.75, f64::INFINITY).mean;
            (*name, settled, above, r.exec_time_s, r.avg_node_power_w())
        })
        .collect();
    HybridAblation { rows, threshold_c: threshold }
}

impl Experiment for HybridAblation {
    fn id(&self) -> &'static str {
        "ablate-hybrid"
    }

    fn render(&self) -> String {
        let mut t = TextTable::new(
            "Ablation: coordinated control vs isolation (BT ×4, max duty 50 %)",
            &["arm", "settled temp (°C)", "time > 51°C (s)", "exec time (s)", "avg power (W)"],
        );
        for (name, temp, above, exec, power) in &self.rows {
            t.row(&[
                name.to_string(),
                format!("{temp:.2}"),
                format!("{above:.1}"),
                format!("{exec:.1}"),
                format!("{power:.2}"),
            ]);
        }
        t.render()
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let get = |name: &str| *self.rows.iter().find(|(n, ..)| *n == name).expect("arm present");
        let (_, hybrid_temp, _, hybrid_exec, _) = get("hybrid");
        let (_, fan_temp, _, _, _) = get("fan-only");
        let (_, _, _, dvfs_exec, _) = get("dvfs-only");
        // Hybrid settles cooler than fan-only (DVFS backs the capped fan up
        // once the fan saturates); measured over the final quarter where
        // fan-only keeps drifting toward its hotter asymptote.
        if hybrid_temp >= fan_temp - 0.5 {
            v.push(format!("hybrid settled {hybrid_temp:.2}°C not below fan-only {fan_temp:.2}°C"));
        }
        // Hybrid finishes no slower than DVFS-only (the fan absorbs load
        // that would otherwise cost frequency).
        if hybrid_exec > dvfs_exec + 0.5 {
            v.push(format!("hybrid exec {hybrid_exec:.1}s slower than dvfs-only {dvfs_exec:.1}s"));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut temp = TimeSeries::new("settled_temp", "°C");
        let mut above = TimeSeries::new("time_above", "s");
        let mut exec = TimeSeries::new("exec_time", "s");
        for (i, (_, t, a, e, _)) in self.rows.iter().enumerate() {
            temp.push(i as f64, *t);
            above.push(i as f64, *a);
            exec.push(i as f64, *e);
        }
        w.add(temp);
        w.add(above);
        w.add(exec);
        w.write_to_file(dir.join("ablate_hybrid.csv"))
    }
}

// --------------------------------------------- tDVFS hysteresis ablation

/// Result of the hysteresis ablation.
#[derive(Debug, Clone)]
pub struct HysteresisAblation {
    /// Transitions with the paper's confirmation rule.
    pub confirmed_transitions: u64,
    /// Transitions with a naive instantaneous threshold.
    pub naive_transitions: u64,
}

/// Runs tDVFS with the paper's sustained-excess confirmation vs a naive
/// 1-round threshold on bursty cpu-burn with a capped fan.
pub fn tdvfs_hysteresis(scale: Scale) -> HysteresisAblation {
    let mk = |name: &str, cfg: TdvfsConfig| {
        Scenario::new(name)
            .with_nodes(1)
            .with_seed(0xAB1A7F)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 25))
            .with_dvfs(DvfsScheme::Tdvfs { policy: Policy::MODERATE, config: cfg })
            .with_max_time(scale.burn_duration_s())
            .with_recording(false)
    };
    let confirmed = TdvfsConfig::default();
    let naive = TdvfsConfig {
        consecutive_rounds: 1,
        hysteresis_c: 0.0,
        settle_rounds: 0,
        ..Default::default()
    };
    let reports = run_scenarios_parallel(vec![mk("confirmed", confirmed), mk("naive", naive)], 2);
    HysteresisAblation {
        confirmed_transitions: reports[0].total_freq_transitions(),
        naive_transitions: reports[1].total_freq_transitions(),
    }
}

impl Experiment for HysteresisAblation {
    fn id(&self) -> &'static str {
        "ablate-hysteresis"
    }

    fn render(&self) -> String {
        format!(
            "Ablation: tDVFS confirmation rule (cpu-burn, 25 %-capped fan)\n  \
             confirmed (8 rounds + 1°C band): {} transitions\n  \
             naive (instantaneous threshold): {} transitions\n",
            self.confirmed_transitions, self.naive_transitions
        )
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.confirmed_transitions == 0 {
            v.push("confirmed tDVFS never engaged".into());
        }
        if self.naive_transitions <= self.confirmed_transitions {
            v.push(format!(
                "naive threshold made {} transitions, not more than confirmed {}",
                self.naive_transitions, self.confirmed_transitions
            ));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut s = TimeSeries::new("transitions", "");
        s.push(0.0, self.confirmed_transitions as f64);
        s.push(1.0, self.naive_transitions as f64);
        w.add(s);
        w.write_to_file(dir.join("ablate_hysteresis.csv"))
    }
}

// ------------------------------------------- feedforward extension study

/// Result of the feedforward (future-work) study.
#[derive(Debug, Clone)]
pub struct FeedforwardStudy {
    /// Mean temperature over the 60 s after the load step, reactive-only.
    pub reactive_mean_c: f64,
    /// Same window with utilization feedforward.
    pub feedforward_mean_c: f64,
    /// Peak temperature after the step, reactive-only.
    pub reactive_peak_c: f64,
    /// Peak with feedforward.
    pub feedforward_peak_c: f64,
    /// Seconds after the step until the commanded duty first rose 15 points
    /// above its pre-step level, per arm (`None` = never).
    pub reactive_duty_lag_s: Option<f64>,
    /// Feedforward arm's duty lag.
    pub feedforward_duty_lag_s: Option<f64>,
}

/// Runs the §5 future-work study: a hard idle→burn load step at t = 60 s,
/// dynamic fan control with and without utilization feedforward.
pub fn feedforward(_scale: Scale) -> FeedforwardStudy {
    use unitherm_workload::Segment;
    let step_at = 60.0;
    let script = vec![Segment::new(step_at, 0.05), Segment::new(120.0, 1.0)];
    let mk = |name: &str, fan: FanScheme| {
        Scenario::new(name)
            .with_nodes(1)
            .with_seed(0xFF_5EED)
            .with_workload(WorkloadSpec::Script(script.clone()))
            .with_fan(fan)
            .with_max_time(200.0)
    };
    let reports = run_scenarios_parallel(
        vec![
            mk("reactive", FanScheme::dynamic(Policy::MODERATE, 100)),
            mk("feedforward", FanScheme::dynamic_feedforward(Policy::MODERATE, 100)),
        ],
        2,
    );
    let post = |r: &unitherm_cluster::RunReport| {
        let temp = &r.nodes[0].temp;
        let window = temp.summary_between(step_at, step_at + 60.0);
        // The idle-phase controller may already hold a nonzero duty
        // (sensor-noise ratchet), so measure the *response*: time until the
        // duty rises 15 points above its pre-step level.
        let pre_step = r.nodes[0].duty.value_at(step_at).unwrap_or(1.0);
        let lag = r.nodes[0]
            .duty
            .samples()
            .iter()
            .find(|s| s.time_s >= step_at && s.value >= pre_step + 15.0)
            .map(|s| s.time_s - step_at);
        (window.mean, window.max, lag)
    };
    let (r_mean, r_peak, r_lag) = post(&reports[0]);
    let (f_mean, f_peak, f_lag) = post(&reports[1]);
    FeedforwardStudy {
        reactive_mean_c: r_mean,
        feedforward_mean_c: f_mean,
        reactive_peak_c: r_peak,
        feedforward_peak_c: f_peak,
        reactive_duty_lag_s: r_lag,
        feedforward_duty_lag_s: f_lag,
    }
}

impl Experiment for FeedforwardStudy {
    fn id(&self) -> &'static str {
        "feedforward"
    }

    fn render(&self) -> String {
        let mut t = TextTable::new(
            "Future work (§5): utilization feedforward on an idle→burn step",
            &["arm", "post-step mean (°C)", "post-step peak (°C)", "duty +15 pts after (s)"],
        );
        let lag = |l: Option<f64>| l.map(|v| format!("{v:.1}")).unwrap_or_else(|| "never".into());
        t.row(&[
            "reactive".into(),
            format!("{:.2}", self.reactive_mean_c),
            format!("{:.2}", self.reactive_peak_c),
            lag(self.reactive_duty_lag_s),
        ]);
        t.row(&[
            "feedforward".into(),
            format!("{:.2}", self.feedforward_mean_c),
            format!("{:.2}", self.feedforward_peak_c),
            lag(self.feedforward_duty_lag_s),
        ]);
        t.render()
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        // The feedforward fan engages sooner...
        match (self.feedforward_duty_lag_s, self.reactive_duty_lag_s) {
            (Some(f), Some(r)) => {
                if f >= r {
                    v.push(format!("feedforward duty lag {f:.1}s not below reactive {r:.1}s"));
                }
            }
            (None, _) => v.push("feedforward arm never engaged the fan".into()),
            (Some(_), None) => {} // reactive never engaged: even stronger win
        }
        // ...and the post-step window is no hotter (usually slightly
        // cooler; the earlier actuation mostly buys latency, not degrees,
        // because the die's fast RC jump is fan-independent).
        if self.feedforward_mean_c > self.reactive_mean_c + 0.05 {
            v.push(format!(
                "feedforward post-step mean {:.2}°C above reactive {:.2}°C",
                self.feedforward_mean_c, self.reactive_mean_c
            ));
        }
        // Peak never worse.
        if self.feedforward_peak_c > self.reactive_peak_c + 0.3 {
            v.push(format!(
                "feedforward peak {:.2}°C above reactive {:.2}°C",
                self.feedforward_peak_c, self.reactive_peak_c
            ));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut mean = TimeSeries::new("post_step_mean", "°C");
        mean.push(0.0, self.reactive_mean_c);
        mean.push(1.0, self.feedforward_mean_c);
        let mut peak = TimeSeries::new("post_step_peak", "°C");
        peak.push(0.0, self.reactive_peak_c);
        peak.push(1.0, self.feedforward_peak_c);
        w.add(mean);
        w.add(peak);
        w.write_to_file(dir.join("feedforward.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_ablation_shape() {
        let r = window_levels(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }

    #[test]
    fn l1_size_ablation_shape() {
        let r = l1_size(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }

    #[test]
    fn fill_ablation_shape() {
        let r = fill_rule(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }

    #[test]
    fn hybrid_ablation_shape() {
        let r = hybrid_isolation(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }

    #[test]
    fn hysteresis_ablation_shape() {
        let r = tdvfs_hysteresis(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }

    #[test]
    fn feedforward_study_shape() {
        let r = feedforward(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }
}
