//! Cluster-size scaling study (the paper's §5 future work: "how our thermal
//! controllers scale in large-scale clusters").
//!
//! Weak scaling: every rank runs the same per-rank BT program, so execution
//! time should stay roughly flat as the cluster grows, and the per-node
//! controller effectiveness (average temperature) should be independent of
//! cluster size — the controllers are fully decentralized.

use std::path::Path;

use unitherm_cluster::{
    run_scenarios_parallel, DvfsScheme, FanScheme, RunReport, Scenario, WorkloadSpec,
};
use unitherm_core::control_array::Policy;
use unitherm_metrics::{CsvWriter, TextTable, TimeSeries};
use unitherm_workload::NpbBenchmark;

use crate::{Experiment, Scale};

/// Scaling-study result.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// `(cluster size, report)` in ascending size.
    pub runs: Vec<(usize, RunReport)>,
}

/// Runs the weak-scaling study over 2/4/8/16 nodes with hybrid control.
pub fn run(scale: Scale) -> ScalingResult {
    let sizes = [2usize, 4, 8, 16];
    let scenarios: Vec<Scenario> = sizes
        .iter()
        .map(|&n| {
            Scenario::new(format!("scaling-{n}"))
                .with_nodes(n)
                .with_seed(0x5CA1E)
                .with_workload(WorkloadSpec::Npb {
                    bench: NpbBenchmark::Bt,
                    class: scale.npb_class(),
                })
                .with_fan(FanScheme::dynamic(Policy::MODERATE, 50))
                .with_dvfs(DvfsScheme::tdvfs(Policy::MODERATE))
                .with_max_time(scale.npb_time_limit_s())
                .with_recording(false)
        })
        .collect();
    let reports = run_scenarios_parallel(scenarios, 4);
    ScalingResult { runs: sizes.into_iter().zip(reports).collect() }
}

impl Experiment for ScalingResult {
    fn id(&self) -> &'static str {
        "scaling"
    }

    fn render(&self) -> String {
        let mut t = TextTable::new(
            "Scaling study: hybrid control, weak scaling over cluster size",
            &["nodes", "exec time (s)", "avg temp (°C)", "avg power/node (W)", "freq changes/node"],
        );
        for (n, r) in &self.runs {
            t.row(&[
                n.to_string(),
                format!("{:.1}", r.exec_time_s),
                format!("{:.2}", r.avg_temp_c()),
                format!("{:.2}", r.avg_node_power_w()),
                format!("{:.1}", r.total_freq_transitions() as f64 / *n as f64),
            ]);
        }
        t.render()
    }

    fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (n, r) in &self.runs {
            if !r.completed {
                v.push(format!("{n}-node run did not complete"));
            }
        }
        // Weak scaling: execution time flat within 10 % between 2 and 16
        // nodes (barriers add only the max of per-rank wobble).
        let t2 = self.runs.first().expect("runs").1.exec_time_s;
        let t16 = self.runs.last().expect("runs").1.exec_time_s;
        if (t16 / t2 - 1.0).abs() > 0.10 {
            v.push(format!("exec time not flat: {t2:.1}s at 2 nodes vs {t16:.1}s at 16"));
        }
        // Controller effectiveness independent of size: avg temps within
        // 1.5 °C of each other.
        let temps: Vec<f64> = self.runs.iter().map(|(_, r)| r.avg_temp_c()).collect();
        let spread = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - temps.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread > 1.5 {
            v.push(format!("avg-temp spread across sizes {spread:.2}°C"));
        }
        v
    }

    fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        let mut w = CsvWriter::new();
        let mut exec = TimeSeries::new("exec_time", "s");
        let mut temp = TimeSeries::new("avg_temp", "°C");
        for (n, r) in &self.runs {
            exec.push(*n as f64, r.exec_time_s);
            temp.push(*n as f64, r.avg_temp_c());
        }
        w.add(exec);
        w.add(temp);
        w.write_to_file(dir.join("scaling.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds() {
        let r = run(Scale::Fast);
        assert!(r.shape_violations().is_empty(), "{}\n{:?}", r.render(), r.shape_violations());
    }

    #[test]
    fn sizes_ascend() {
        let r = run(Scale::Fast);
        let sizes: Vec<usize> = r.runs.iter().map(|(n, _)| *n).collect();
        assert_eq!(sizes, vec![2, 4, 8, 16]);
    }
}
