//! Fixed-bucket streaming histogram.
//!
//! [`TimeSeries::percentile`](crate::TimeSeries::percentile) sorts the whole
//! sample vector — fine for figure-sized traces, wasteful for day-long
//! monitoring. [`Histogram`] accumulates values into fixed-width buckets in
//! O(1) per sample and answers quantile queries from the bucket counts,
//! which is how long-horizon thermal telemetry is actually kept.

use serde::{Deserialize, Serialize};

/// A fixed-range, fixed-width bucket histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    /// Values below `lo`.
    underflow: u64,
    /// Values at or above `hi`.
    overflow: u64,
    count: u64,
    /// Non-finite samples (NaN/±inf) that were offered to [`Histogram::record`]
    /// and dropped. Not included in `count`. `serde(default)` keeps
    /// histograms serialized before this field existed loadable.
    #[serde(default)]
    dropped_non_finite: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Panics
    /// Panics on an empty range or zero buckets.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets >= 1, "histogram needs at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            dropped_non_finite: 0,
        }
    }

    /// A histogram suited to die temperatures on this platform:
    /// `[20, 100) °C` in 0.5 °C bins.
    pub fn for_temperatures() -> Self {
        Self::new(20.0, 100.0, 160)
    }

    /// Records one value. Non-finite values (NaN/±inf) — which faulted
    /// sensor paths can legitimately produce — are dropped and tallied in
    /// [`Histogram::dropped_non_finite`] rather than poisoning the buckets.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped_non_finite += 1;
            return;
        }
        self.count += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let width = (self.hi - self.lo) / n as f64;
            let idx = (((v - self.lo) / width) as usize).min(n - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total recorded values (including out-of-range ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Values that fell outside the range, `(under, over)`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Non-finite samples dropped by [`Histogram::record`].
    pub fn dropped_non_finite(&self) -> u64 {
        self.dropped_non_finite
    }

    /// The q-th quantile (`q ∈ [0, 100]`) estimated from bucket midpoints.
    /// Returns `None` when empty. Underflow counts resolve to `lo`,
    /// overflow to `hi`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        assert!((0.0..=100.0).contains(&q), "quantile must be in [0, 100]");
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }

    /// Merges another histogram with identical geometry (parallel
    /// reduction across sweep workers).
    ///
    /// # Panics
    /// Panics when geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram ranges differ");
        assert_eq!(self.hi, other.hi, "histogram ranges differ");
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket counts differ");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.dropped_non_finite += other.dropped_non_finite;
    }

    /// Bucket boundaries and counts, for export: `(bucket_lo, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets.iter().enumerate().map(move |(i, &c)| (self.lo + i as f64 * width, c))
    }

    /// One-line stats summary for logs: count, median/p95, out-of-range and
    /// dropped non-finite tallies.
    pub fn stats_line(&self) -> String {
        let fmt_q = |q: f64| match self.quantile(q) {
            Some(v) => format!("{v:.2}"),
            None => "-".to_string(),
        };
        format!(
            "count={} p50={} p95={} under={} over={} dropped_non_finite={}",
            self.count,
            fmt_q(50.0),
            fmt_q(95.0),
            self.underflow,
            self.overflow,
            self.dropped_non_finite,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [0.5, 1.5, 1.6, 9.9] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets[0], (0.0, 1));
        assert_eq!(buckets[1], (1.0, 2));
        assert_eq!(buckets[9], (9.0, 1));
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(10.0);
        h.record(99.0);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_match_sorted_data_within_bucket_width() {
        let mut h = Histogram::new(0.0, 100.0, 200);
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 7.919) % 100.0).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [5.0f64, 50.0, 95.0, 99.0] {
            let exact = sorted[((q / 100.0 * 1000.0).ceil() as usize - 1).min(999)];
            let est = h.quantile(q).unwrap();
            assert!((est - exact).abs() <= 0.5 + 1e-9, "q{q}: est {est} vs exact {exact}");
        }
    }

    #[test]
    fn quantile_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        assert_eq!(h.quantile(50.0), None);
        h.record(-5.0); // underflow only
        assert_eq!(h.quantile(50.0), Some(0.0));
        let mut h2 = Histogram::new(0.0, 10.0, 10);
        h2.record(50.0); // overflow only
        assert_eq!(h2.quantile(50.0), Some(10.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.record(1.0);
        b.record(9.0);
        b.record(-2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.out_of_range(), (1, 0));
    }

    #[test]
    #[should_panic(expected = "ranges differ")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 20.0, 10);
        a.merge(&b);
    }

    #[test]
    fn temperature_preset_covers_platform_range() {
        let mut h = Histogram::for_temperatures();
        h.record(22.0);
        h.record(85.0);
        assert_eq!(h.out_of_range(), (0, 0));
        // 0.5 °C bins.
        let (first, _) = h.buckets().next().unwrap();
        assert_eq!(first, 20.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = Histogram::new(5.0, 5.0, 10);
    }

    #[test]
    fn non_finite_samples_are_dropped_and_counted() {
        // Regression: `record` used to assert on non-finite values, so a
        // single NaN from a faulted sensor path killed the whole pipeline.
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(5.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.dropped_non_finite(), 3);
        assert_eq!(h.out_of_range(), (0, 0));
        assert_eq!(h.quantile(50.0), Some(5.5));
        assert!(h.stats_line().contains("dropped_non_finite=3"), "{}", h.stats_line());
    }

    #[test]
    fn merge_accumulates_dropped_non_finite() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.record(f64::NAN);
        b.record(f64::NAN);
        b.record(1.0);
        a.merge(&b);
        assert_eq!(a.dropped_non_finite(), 2);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn dropped_counter_survives_serde_and_defaults_when_absent() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.record(f64::NAN);
        h.record(2.0);
        let json = serde_json::to_string(&h).expect("serialize");
        let back: Histogram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, h);
        assert_eq!(back.dropped_non_finite(), 1);
        // Histograms serialized before the field existed must still load.
        let legacy = json.replace(",\"dropped_non_finite\":1", "");
        assert!(!legacy.contains("dropped_non_finite"), "replace failed: {legacy}");
        let old: Histogram = serde_json::from_str(&legacy).expect("legacy deserialize");
        assert_eq!(old.dropped_non_finite(), 0);
        assert_eq!(old.count(), 1);
    }
}
