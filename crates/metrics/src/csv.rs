//! CSV export of aligned time series.
//!
//! Experiments write their raw traces as CSV so figures can be re-plotted
//! with external tooling. Series are aligned on the union of their
//! timestamps using zero-order hold; cells before a series' first sample are
//! left empty.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::series::TimeSeries;

/// Builder that renders one or more [`TimeSeries`] into a CSV document.
#[derive(Debug, Default)]
pub struct CsvWriter {
    series: Vec<TimeSeries>,
}

impl CsvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a series as an output column.
    pub fn add(&mut self, series: TimeSeries) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Renders the CSV document to a string.
    ///
    /// The first column is `time_s`; each series contributes one column named
    /// `<name> (<unit>)` (or just `<name>` when the unit is empty).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str("time_s");
        for s in &self.series {
            out.push(',');
            if s.unit.is_empty() {
                out.push_str(&escape(&s.name));
            } else {
                out.push_str(&escape(&format!("{} ({})", s.name, s.unit)));
            }
        }
        out.push('\n');

        // Union of timestamps, deduplicated.
        let mut times: Vec<f64> =
            self.series.iter().flat_map(|s| s.samples().iter().map(|x| x.time_s)).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("timestamps are finite"));
        times.dedup();

        for t in times {
            let _ = write!(out, "{t}");
            for s in &self.series {
                out.push(',');
                if let Some(v) = s.value_at(t) {
                    let _ = write!(out, "{v}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV document to `path`, creating parent directories.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = File::create(path)?;
        f.write_all(self.to_csv_string().as_bytes())
    }
}

/// Quotes a CSV field when it contains separators or quotes.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(name: &str, unit: &str, pts: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new(name, unit);
        for &(t, v) in pts {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn single_series_roundtrip() {
        let mut w = CsvWriter::new();
        w.add(ts("temp", "°C", &[(0.0, 40.0), (0.25, 41.0)]));
        let csv = w.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,temp (°C)");
        assert_eq!(lines[1], "0,40");
        assert_eq!(lines[2], "0.25,41");
    }

    #[test]
    fn aligns_multiple_series_with_holes() {
        let mut w = CsvWriter::new();
        w.add(ts("a", "", &[(0.0, 1.0), (2.0, 2.0)]));
        w.add(ts("b", "", &[(1.0, 10.0)]));
        let csv = w.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,a,b");
        assert_eq!(lines[1], "0,1,"); // b has no value yet
        assert_eq!(lines[2], "1,1,10"); // a holds previous value
        assert_eq!(lines[3], "2,2,10"); // b holds previous value
    }

    #[test]
    fn escapes_commas_and_quotes() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn empty_writer_emits_header_only() {
        let csv = CsvWriter::new().to_csv_string();
        assert_eq!(csv, "time_s\n");
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("unitherm_csv_test");
        let path = dir.join("nested/out.csv");
        let mut w = CsvWriter::new();
        w.add(ts("x", "", &[(0.0, 1.0)]));
        w.write_to_file(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("time_s,x"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
