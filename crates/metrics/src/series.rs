//! Timestamped sample series.
//!
//! A [`TimeSeries`] is an append-only sequence of `(time, value)` samples with
//! monotonically non-decreasing timestamps. It is the interchange format
//! between the simulator (which produces temperature / power / duty-cycle
//! traces) and the analysis layer (which reduces them to the numbers the
//! paper reports).

use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// A single timestamped observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Time in seconds since the start of the experiment.
    pub time_s: f64,
    /// Observed value, in the unit of the owning series.
    pub value: f64,
}

/// An append-only series of timestamped samples.
///
/// Timestamps must be non-decreasing; [`TimeSeries::push`] panics otherwise
/// because an out-of-order trace indicates a simulator bug, not a data error.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Human-readable name, used for CSV headers and plot legends.
    pub name: String,
    /// Unit label, e.g. `"°C"`, `"W"`, `"%"` or `"GHz"`.
    pub unit: String,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series with the given name and unit label.
    pub fn new(name: impl Into<String>, unit: impl Into<String>) -> Self {
        Self { name: name.into(), unit: unit.into(), samples: Vec::new() }
    }

    /// Creates an empty series with capacity for `n` samples.
    pub fn with_capacity(name: impl Into<String>, unit: impl Into<String>, n: usize) -> Self {
        Self { name: name.into(), unit: unit.into(), samples: Vec::with_capacity(n) }
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// Panics if `time_s` is earlier than the previous sample's timestamp or
    /// if either argument is non-finite.
    pub fn push(&mut self, time_s: f64, value: f64) {
        assert!(time_s.is_finite() && value.is_finite(), "non-finite sample in `{}`", self.name);
        if let Some(last) = self.samples.last() {
            assert!(
                time_s >= last.time_s,
                "out-of-order sample in `{}`: {} after {}",
                self.name,
                time_s,
                last.time_s
            );
        }
        self.samples.push(Sample { time_s, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in chronological order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Sample values without timestamps.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|s| s.value)
    }

    /// First sample, if any.
    pub fn first(&self) -> Option<Sample> {
        self.samples.first().copied()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Duration covered by the series in seconds (0 for fewer than 2 samples).
    pub fn duration_s(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.time_s - a.time_s,
            _ => 0.0,
        }
    }

    /// Summary statistics over all sample values.
    pub fn summary(&self) -> Summary {
        Summary::of(self.values())
    }

    /// Summary statistics over samples with `time_s` in `[t0, t1)`.
    pub fn summary_between(&self, t0: f64, t1: f64) -> Summary {
        Summary::of(
            self.samples.iter().filter(|s| s.time_s >= t0 && s.time_s < t1).map(|s| s.value),
        )
    }

    /// Arithmetic mean of all values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let s = self.summary();
        (s.count > 0).then_some(s.mean)
    }

    /// Time-weighted average using the trapezoidal rule.
    ///
    /// For signals sampled at a fixed rate this matches the arithmetic mean;
    /// for irregularly sampled signals (e.g. event-driven frequency traces)
    /// it weights each value by how long it was held.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return self.samples.first().map(|s| s.value);
        }
        let mut area = 0.0;
        for w in self.samples.windows(2) {
            let dt = w[1].time_s - w[0].time_s;
            area += 0.5 * (w[0].value + w[1].value) * dt;
        }
        let dur = self.duration_s();
        if dur > 0.0 {
            Some(area / dur)
        } else {
            // All samples share a timestamp; fall back to arithmetic mean.
            self.mean()
        }
    }

    /// Value at time `t` by zero-order hold (value of the latest sample with
    /// `time_s <= t`). Returns `None` before the first sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let idx = self.samples.partition_point(|s| s.time_s <= t);
        idx.checked_sub(1).map(|i| self.samples[i].value)
    }

    /// First time at which the value reaches (>=) `threshold`, if ever.
    pub fn first_crossing_above(&self, threshold: f64) -> Option<f64> {
        self.samples.iter().find(|s| s.value >= threshold).map(|s| s.time_s)
    }

    /// Stabilization time: the earliest time `t` such that every later sample
    /// stays within `band` of the mean of the samples after `t`.
    ///
    /// This is the metric behind the paper's Figure 6 claim that the
    /// proactive controller "stabilizes temperature in a shorter time at a
    /// lower degree". Returns `None` if the series never settles.
    pub fn stabilization_time(&self, band: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        // Walk backwards maintaining min/max of the suffix; the settle point
        // is the first index (from the front) whose suffix spread fits in the
        // band around the suffix mean.
        let n = self.samples.len();
        let mut suffix_min = vec![0.0f64; n];
        let mut suffix_max = vec![0.0f64; n];
        let mut suffix_sum = vec![0.0f64; n];
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for i in (0..n).rev() {
            let v = self.samples[i].value;
            min = min.min(v);
            max = max.max(v);
            sum += v;
            suffix_min[i] = min;
            suffix_max[i] = max;
            suffix_sum[i] = sum;
        }
        for i in 0..n {
            let cnt = (n - i) as f64;
            let mean = suffix_sum[i] / cnt;
            if suffix_max[i] <= mean + band && suffix_min[i] >= mean - band {
                return Some(self.samples[i].time_s);
            }
        }
        None
    }

    /// Counts transitions where consecutive values differ by more than `eps`.
    ///
    /// Used to count DVFS frequency changes for Table 1.
    pub fn transition_count(&self, eps: f64) -> usize {
        self.samples.windows(2).filter(|w| (w[1].value - w[0].value).abs() > eps).count()
    }

    /// Downsamples by averaging consecutive groups of `factor` samples.
    ///
    /// The timestamp of each output sample is the timestamp of the last input
    /// sample in the group, matching how the paper's level-two window treats
    /// level-one averages.
    pub fn downsample_mean(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "downsample factor must be positive");
        let mut out = TimeSeries::with_capacity(
            self.name.clone(),
            self.unit.clone(),
            self.samples.len() / factor + 1,
        );
        for chunk in self.samples.chunks(factor) {
            let mean = chunk.iter().map(|s| s.value).sum::<f64>() / chunk.len() as f64;
            out.push(chunk.last().expect("chunks are non-empty").time_s, mean);
        }
        out
    }

    /// The q-th percentile of the sample values (nearest-rank method),
    /// `q ∈ [0, 100]`. Returns `None` when the series is empty.
    ///
    /// Data-center thermal reporting cares about tails (P95/P99 die
    /// temperature) at least as much as means.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=100.0).contains(&q), "percentile must be in [0, 100]");
        let mut values: Vec<f64> = self.values().collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        let rank = ((q / 100.0) * values.len() as f64).ceil() as usize;
        Some(values[rank.saturating_sub(1).min(values.len() - 1)])
    }

    /// Integral of the series over time (trapezoidal). For a power series in
    /// watts this yields energy in joules.
    pub fn integral(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| 0.5 * (w[0].value + w[1].value) * (w[1].time_s - w[0].time_s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(f64, f64)]) -> TimeSeries {
        let mut ts = TimeSeries::new("t", "u");
        for &(t, v) in values {
            ts.push(t, v);
        }
        ts
    }

    #[test]
    fn push_and_len() {
        let ts = series(&[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
        assert_eq!(ts.first().unwrap().value, 1.0);
        assert_eq!(ts.last().unwrap().value, 2.0);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn push_rejects_out_of_order() {
        let mut ts = TimeSeries::new("t", "u");
        ts.push(1.0, 0.0);
        ts.push(0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn push_rejects_nan() {
        let mut ts = TimeSeries::new("t", "u");
        ts.push(0.0, f64::NAN);
    }

    #[test]
    fn equal_timestamps_allowed() {
        let ts = series(&[(1.0, 1.0), (1.0, 2.0)]);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn duration() {
        assert_eq!(series(&[(2.0, 0.0), (7.5, 0.0)]).duration_s(), 5.5);
        assert_eq!(series(&[(2.0, 0.0)]).duration_s(), 0.0);
        assert_eq!(TimeSeries::new("e", "u").duration_s(), 0.0);
    }

    #[test]
    fn mean_and_summary() {
        let ts = series(&[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert_eq!(ts.mean().unwrap(), 2.0);
        let s = ts.summary();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn summary_between_filters_window() {
        let ts = series(&[(0.0, 1.0), (1.0, 10.0), (2.0, 100.0)]);
        let s = ts.summary_between(0.5, 1.5);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 10.0);
    }

    #[test]
    fn time_weighted_mean_weights_hold_durations() {
        // Value 0 held for 9 s, value 10 for 1 s: arithmetic mean of samples
        // would be wrong; trapezoid over (0,0)-(9,0)-(10,10) = 5.0 area /10.
        let ts = series(&[(0.0, 0.0), (9.0, 0.0), (10.0, 10.0)]);
        let twm = ts.time_weighted_mean().unwrap();
        assert!((twm - 0.5).abs() < 1e-12, "got {twm}");
    }

    #[test]
    fn time_weighted_mean_degenerate() {
        assert_eq!(series(&[(0.0, 4.0)]).time_weighted_mean(), Some(4.0));
        assert_eq!(TimeSeries::new("e", "u").time_weighted_mean(), None);
        // identical timestamps fall back to arithmetic mean
        assert_eq!(series(&[(1.0, 2.0), (1.0, 4.0)]).time_weighted_mean(), Some(3.0));
    }

    #[test]
    fn value_at_zero_order_hold() {
        let ts = series(&[(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(ts.value_at(0.5), None);
        assert_eq!(ts.value_at(1.0), Some(10.0));
        assert_eq!(ts.value_at(1.5), Some(10.0));
        assert_eq!(ts.value_at(2.0), Some(20.0));
        assert_eq!(ts.value_at(99.0), Some(20.0));
    }

    #[test]
    fn first_crossing() {
        let ts = series(&[(0.0, 1.0), (1.0, 5.0), (2.0, 9.0)]);
        assert_eq!(ts.first_crossing_above(5.0), Some(1.0));
        assert_eq!(ts.first_crossing_above(100.0), None);
    }

    #[test]
    fn stabilization_time_finds_settle_point() {
        // Ramps for 5 samples then flat.
        let mut ts = TimeSeries::new("t", "u");
        for i in 0..5 {
            ts.push(i as f64, i as f64 * 10.0);
        }
        for i in 5..20 {
            ts.push(i as f64, 50.0);
        }
        let t = ts.stabilization_time(0.5).unwrap();
        assert!((4.0..=5.0).contains(&t), "settle at {t}");
    }

    #[test]
    fn stabilization_never_settles() {
        let mut ts = TimeSeries::new("t", "u");
        for i in 0..10 {
            ts.push(i as f64, if i % 2 == 0 { 0.0 } else { 100.0 });
        }
        // Only the final single sample trivially settles; the API returns its
        // timestamp, which callers treat as "settled at the very end".
        let t = ts.stabilization_time(1.0).unwrap();
        assert_eq!(t, 9.0);
    }

    #[test]
    fn transition_count_counts_changes() {
        let ts = series(&[(0.0, 2.4), (1.0, 2.4), (2.0, 2.2), (3.0, 2.2), (4.0, 2.4)]);
        assert_eq!(ts.transition_count(0.01), 2);
    }

    #[test]
    fn downsample_mean_averages_groups() {
        let ts = series(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0), (3.0, 7.0), (4.0, 9.0)]);
        let d = ts.downsample_mean(2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.samples()[0], Sample { time_s: 1.0, value: 2.0 });
        assert_eq!(d.samples()[1], Sample { time_s: 3.0, value: 6.0 });
        assert_eq!(d.samples()[2], Sample { time_s: 4.0, value: 9.0 });
    }

    #[test]
    fn percentiles_nearest_rank() {
        let ts = series(&[(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0), (4.0, 50.0)]);
        assert_eq!(ts.percentile(0.0), Some(10.0));
        assert_eq!(ts.percentile(50.0), Some(30.0));
        assert_eq!(ts.percentile(95.0), Some(50.0));
        assert_eq!(ts.percentile(100.0), Some(50.0));
        assert_eq!(TimeSeries::new("e", "u").percentile(50.0), None);
    }

    #[test]
    fn percentile_order_independent() {
        let ts = series(&[(0.0, 50.0), (1.0, 10.0), (2.0, 30.0)]);
        assert_eq!(ts.percentile(100.0), Some(50.0));
        assert_eq!(ts.percentile(1.0), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        let ts = series(&[(0.0, 1.0)]);
        let _ = ts.percentile(120.0);
    }

    #[test]
    fn integral_is_energy() {
        // 100 W held for 10 s = 1000 J.
        let ts = series(&[(0.0, 100.0), (10.0, 100.0)]);
        assert!((ts.integral() - 1000.0).abs() < 1e-9);
    }
}
