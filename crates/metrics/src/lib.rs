#![warn(missing_docs)]

//! Time-series capture, summary statistics, CSV export and ASCII plotting.
//!
//! Every experiment in the reproduction produces one or more [`TimeSeries`]
//! (temperature, PWM duty, power, frequency, …). This crate provides the
//! shared plumbing for recording those series, reducing them to the summary
//! statistics the paper reports (averages, stabilization times, power-delay
//! products) and rendering them as CSV files or quick terminal plots.
//!
//! The crate is deliberately dependency-light (only `serde` for optional
//! serialization) so that every other crate in the workspace can depend on it
//! without pulling in simulation machinery.

pub mod csv;
pub mod histogram;
pub mod plot;
pub mod series;
pub mod stats;
pub mod table;

pub use csv::CsvWriter;
pub use histogram::Histogram;
pub use plot::AsciiPlot;
pub use series::{Sample, TimeSeries};
pub use stats::{RunningStats, Summary};
pub use table::TextTable;
