//! Terminal (ASCII) line plots.
//!
//! The `repro` binary prints each regenerated figure as a quick ASCII plot so
//! the shape of a result (temperature stabilizing, fan duty stepping, DVFS
//! transitions) can be eyeballed without leaving the terminal. CSV export
//! (see [`crate::csv`]) remains the precise record.

use std::fmt::Write as _;

use crate::series::TimeSeries;

/// Characters used to distinguish overlaid series, in order of addition.
const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

/// An ASCII line-plot builder.
#[derive(Debug)]
pub struct AsciiPlot {
    title: String,
    width: usize,
    height: usize,
    series: Vec<TimeSeries>,
    y_min: Option<f64>,
    y_max: Option<f64>,
}

impl AsciiPlot {
    /// Creates a plot with the given title and a default 72x18 canvas.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            width: 72,
            height: 18,
            series: Vec::new(),
            y_min: None,
            y_max: None,
        }
    }

    /// Sets canvas size in characters (clamped to at least 16x4).
    pub fn size(mut self, width: usize, height: usize) -> Self {
        self.width = width.max(16);
        self.height = height.max(4);
        self
    }

    /// Fixes the y-axis range instead of auto-scaling.
    pub fn y_range(mut self, min: f64, max: f64) -> Self {
        assert!(min < max, "y_range requires min < max");
        self.y_min = Some(min);
        self.y_max = Some(max);
        self
    }

    /// Adds a series to the plot (up to 8 series are distinguished).
    #[allow(clippy::should_implement_trait)] // builder-style `add`, not arithmetic
    pub fn add(mut self, series: &TimeSeries) -> Self {
        self.series.push(series.clone());
        self
    }

    /// Renders the plot to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let drawable: Vec<&TimeSeries> = self.series.iter().filter(|s| !s.is_empty()).collect();
        if drawable.is_empty() {
            out.push_str("  (no data)\n");
            return out;
        }

        let t0 = drawable.iter().map(|s| s.first().unwrap().time_s).fold(f64::INFINITY, f64::min);
        let t1 =
            drawable.iter().map(|s| s.last().unwrap().time_s).fold(f64::NEG_INFINITY, f64::max);
        let mut lo = self.y_min.unwrap_or_else(|| {
            drawable.iter().map(|s| s.summary().min).fold(f64::INFINITY, f64::min)
        });
        let mut hi = self.y_max.unwrap_or_else(|| {
            drawable.iter().map(|s| s.summary().max).fold(f64::NEG_INFINITY, f64::max)
        });
        if (hi - lo).abs() < 1e-9 {
            lo -= 1.0;
            hi += 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in drawable.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (col, row_hits) in (0..self.width).map(|col| {
                let t = if t1 > t0 {
                    t0 + (t1 - t0) * col as f64 / (self.width - 1) as f64
                } else {
                    t0
                };
                (col, s.value_at(t))
            }) {
                if let Some(v) = row_hits {
                    let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                    let row = self.height - 1 - (frac * (self.height - 1) as f64).round() as usize;
                    grid[row][col] = glyph;
                }
            }
        }

        let label_w = 9;
        for (r, row) in grid.iter().enumerate() {
            let y = hi - (hi - lo) * r as f64 / (self.height - 1) as f64;
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{y:>label_w$.1} |{line}");
        }
        let _ = writeln!(out, "{:>label_w$} +{}", "", "-".repeat(self.width));
        let _ = writeln!(
            out,
            "{:>label_w$}  t={t0:.0}s{:>w$}t={t1:.0}s",
            "",
            "",
            w = self.width.saturating_sub(16)
        );
        for (si, s) in drawable.iter().enumerate() {
            let unit = if s.unit.is_empty() { String::new() } else { format!(" [{}]", s.unit) };
            let _ =
                writeln!(out, "{:>label_w$}  {} {}{}", "", GLYPHS[si % GLYPHS.len()], s.name, unit);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(name: &str) -> TimeSeries {
        let mut s = TimeSeries::new(name, "°C");
        for i in 0..100 {
            s.push(i as f64, 40.0 + i as f64 * 0.2);
        }
        s
    }

    #[test]
    fn renders_nonempty_canvas() {
        let plot = AsciiPlot::new("Figure X").add(&ramp("temp"));
        let s = plot.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains('*'));
        assert!(s.contains("temp"));
        assert!(s.lines().count() > 10);
    }

    #[test]
    fn empty_plot_says_no_data() {
        let s = AsciiPlot::new("empty").render();
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let mut flat = TimeSeries::new("flat", "");
        for i in 0..100 {
            flat.push(i as f64, 45.0);
        }
        let s = AsciiPlot::new("two").add(&ramp("ramp")).add(&flat).render();
        assert!(s.contains('*'));
        assert!(s.contains('+'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut flat = TimeSeries::new("flat", "");
        flat.push(0.0, 5.0);
        flat.push(1.0, 5.0);
        let s = AsciiPlot::new("flat").add(&flat).render();
        assert!(s.contains('*'));
    }

    #[test]
    fn fixed_y_range_clamps() {
        let s = AsciiPlot::new("clamped").y_range(0.0, 10.0).add(&ramp("r")).render();
        // The top label should be 10.0 even though the data exceeds it.
        assert!(s.contains("10.0"));
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn bad_y_range_panics() {
        let _ = AsciiPlot::new("bad").y_range(5.0, 5.0);
    }
}
