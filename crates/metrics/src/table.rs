//! Plain-text table rendering for paper-style result tables (e.g. Table 1).

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for rows of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| display_width(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(display_width(cell));
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let _ = writeln!(out, "{sep}");
        out.push('|');
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, " {}{} |", h, " ".repeat(widths[i] - display_width(h)));
        }
        out.push('\n');
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            out.push('|');
            for i in 0..ncols {
                let cell = &row[i];
                let _ = write!(out, " {}{} |", cell, " ".repeat(widths[i] - display_width(cell)));
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{sep}");
        out
    }
}

/// Character count, which is what terminal alignment needs (we only emit
/// ASCII plus the degree sign in practice).
fn display_width(s: &str) -> usize {
    s.chars().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Table 1", &["policy", "power (W)"]);
        t.row(&["tDVFS".into(), "94.19".into()]);
        t.row(&["CPUSPEED".into(), "99.30".into()]);
        let s = t.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("| policy   | power (W) |"));
        assert!(s.contains("| tDVFS    | 94.19     |"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn rejects_mismatched_row() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn row_display_accepts_mixed_types() {
        let mut t = TextTable::new("", &["n", "x"]);
        t.row_display(&[&42usize, &1.5f64]);
        let s = t.render();
        assert!(s.contains("42"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn unicode_degree_sign_aligns() {
        let mut t = TextTable::new("", &["temp (°C)"]);
        t.row(&["51.0".into()]);
        let s = t.render();
        // Each border line must have the same length as the header line.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
    }
}
