//! Summary statistics and streaming (Welford) accumulators.

use serde::{Deserialize, Serialize, Value};

/// Summary statistics of a finite sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples aggregated.
    pub count: usize,
    /// Arithmetic mean (0 when `count == 0`).
    pub mean: f64,
    /// Minimum value (+inf when empty).
    pub min: f64,
    /// Maximum value (-inf when empty).
    pub max: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub std_dev: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self { count: 0, mean: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, std_dev: 0.0 }
    }
}

impl Summary {
    /// Computes summary statistics over an iterator of values.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut acc = RunningStats::new();
        for v in values {
            acc.push(v);
        }
        acc.summary()
    }

    /// Spread between max and min (0 when empty).
    pub fn range(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

// Hand-written serde: an empty summary holds `min = +inf` / `max = −inf`,
// which JSON cannot represent (`serde_json` prints non-finite floats as
// `null`). Serializing would corrupt every report containing a zero-sample
// series, so the empty sentinels are *omitted* on the wire and restored on
// deserialization.
impl Serialize for Summary {
    fn serialize(&self) -> Value {
        let mut map = vec![
            ("count".to_string(), Value::U64(self.count as u64)),
            ("mean".to_string(), Value::F64(self.mean)),
        ];
        if self.count > 0 {
            map.push(("min".to_string(), Value::F64(self.min)));
            map.push(("max".to_string(), Value::F64(self.max)));
        }
        map.push(("std_dev".to_string(), Value::F64(self.std_dev)));
        Value::Map(map)
    }
}

impl Deserialize for Summary {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let field = |key: &str| -> Result<f64, serde::Error> {
            value
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| serde::Error::custom(format!("Summary: missing field `{key}`")))
        };
        let count = value
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| serde::Error::custom("Summary: missing field `count`"))?
            as usize;
        let (min, max) = if count == 0 {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            (field("min")?, field("max")?)
        };
        Ok(Self { count, mean: field("mean")?, min, max, std_dev: field("std_dev")? })
    }
}

/// Numerically stable streaming mean/variance accumulator (Welford's method).
///
/// Used by the simulator's metric sinks where traces are long (hours of
/// 250 ms samples) and we do not want to retain every value.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Accumulates one value.
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite value in RunningStats");
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of accumulated values.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 for fewer than 2 values).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Freezes the accumulator into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean,
            min: self.min,
            max: self.max,
            std_dev: self.std_dev(),
        }
    }
}

/// Relative difference `|a - b| / max(|a|, |b|)`, 0 when both are 0.
///
/// Used by experiment shape checks ("50 % and 75 % max PWM are not
/// significantly different").
pub fn relative_difference(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Power-delay product, the paper's combined power/performance metric
/// (Table 1): average power in watts times execution time in seconds.
pub fn power_delay_product(avg_power_w: f64, exec_time_s: f64) -> f64 {
    avg_power_w * exec_time_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_values() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.range(), 3.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of([]);
        assert_eq!(s.count, 0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn running_matches_batch() {
        let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut r = RunningStats::new();
        for v in values {
            r.push(v);
        }
        let naive_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((r.mean() - naive_mean).abs() < 1e-12);
        let naive_var = values.iter().map(|v| (v - naive_mean).powi(2)).sum::<f64>()
            / (values.len() - 1) as f64;
        assert!((r.variance() - naive_var).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let a_vals = [1.0, 2.0, 3.0];
        let b_vals = [10.0, 20.0, 30.0, 40.0];
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for v in a_vals {
            a.push(v);
        }
        for v in b_vals {
            b.push(v);
        }
        let mut merged = a;
        merged.merge(&b);

        let mut seq = RunningStats::new();
        for v in a_vals.into_iter().chain(b_vals) {
            seq.push(v);
        }
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-12);
        assert!((merged.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(merged.summary().min, 1.0);
        assert_eq!(merged.summary().max, 40.0);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = RunningStats::new();
        a.push(5.0);
        let empty = RunningStats::new();
        let mut left = a;
        left.merge(&empty);
        assert_eq!(left.count(), 1);
        let mut right = RunningStats::new();
        right.merge(&a);
        assert_eq!(right.count(), 1);
        assert_eq!(right.mean(), 5.0);
    }

    #[test]
    fn relative_difference_basics() {
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert!((relative_difference(100.0, 90.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_difference(-2.0, 2.0), 2.0);
    }

    #[test]
    fn pdp() {
        assert_eq!(power_delay_product(99.78, 219.0), 99.78 * 219.0);
    }

    #[test]
    fn empty_summary_serializes_without_null_and_round_trips() {
        // An empty summary carries ±inf sentinels that JSON cannot encode;
        // the serializer must omit them instead of emitting `null`.
        let empty = Summary::default();
        let json = serde_json::to_string(&empty).expect("serialize");
        assert!(!json.contains("null"), "±inf leaked as null: {json}");
        let back: Summary = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, empty);
        assert_eq!(back.min, f64::INFINITY);
        assert_eq!(back.max, f64::NEG_INFINITY);
    }

    #[test]
    fn populated_summary_round_trips_exactly() {
        let s = Summary::of([1.0, 2.5, 4.0]);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: Summary = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);
    }
}
