//! Property tests for the service's HTTP/1.1 request parser: arbitrary
//! byte soup, malformed request lines, oversized headers, and truncated
//! bodies must all come back as named [`HttpError`]s — the parser must
//! never panic and never read past its configured limits.

use proptest::prelude::*;
use std::io::BufReader;

use unitherm_serve::http::{parse_request, HttpError, Limits, Method};

fn parse(bytes: &[u8], limits: &Limits) -> Result<unitherm_serve::http::Request, HttpError> {
    parse_request(&mut BufReader::new(bytes), limits)
}

/// A short word over `alphabet`, 1..=max_len characters.
fn word(alphabet: &'static [u8], max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..alphabet.len(), 1..=max_len)
        .prop_map(move |ix| ix.into_iter().map(|i| alphabet[i] as char).collect())
}

const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
const VALUE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz 0123456789/.,;=()";
const WORD_CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUvwxyz/.0123456789";

proptest! {
    /// Arbitrary bytes never panic the parser — every outcome is either a
    /// parsed request or a named error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse(&bytes, &Limits::default());
    }

    /// Arbitrary bytes spliced after a valid request line still never
    /// panic (exercises the header and body paths, which random bytes
    /// alone rarely reach).
    #[test]
    fn valid_prefix_then_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut input = b"POST /jobs HTTP/1.1\r\n".to_vec();
        input.extend_from_slice(&bytes);
        let _ = parse(&input, &Limits::default());
    }

    /// A structurally valid request round-trips: method, path, each header,
    /// and the exact body bytes all survive parsing.
    #[test]
    fn well_formed_requests_round_trip(
        post in any::<bool>(),
        segment in word(PATH_CHARS, 12),
        header_values in prop::collection::vec(word(VALUE_CHARS, 24), 0..8),
        body in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let method_word = if post { "POST" } else { "GET" };
        let path = format!("/jobs/{segment}");
        let mut input = format!("{method_word} {path} HTTP/1.1\r\n");
        for (i, value) in header_values.iter().enumerate() {
            input.push_str(&format!("x-h{i}: {value}\r\n"));
        }
        // GET carries the Content-Length too: bodies are legal on both.
        input.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        let mut input = input.into_bytes();
        input.extend_from_slice(&body);

        let req = parse(&input, &Limits::default()).expect("well-formed request parses");
        prop_assert_eq!(req.method, if post { Method::Post } else { Method::Get });
        prop_assert_eq!(req.path.as_str(), path.as_str());
        prop_assert_eq!(req.body.as_slice(), body.as_slice());
        for (i, value) in header_values.iter().enumerate() {
            prop_assert_eq!(req.header(&format!("x-h{i}")), Some(value.trim()));
        }
    }

    /// Malformed request lines (wrong word count, unknown methods, bad
    /// versions) produce the specific named error, not a generic one.
    #[test]
    fn malformed_request_lines_get_named_errors(
        words in prop::collection::vec(
            prop_oneof![
                word(WORD_CHARS, 8),
                Just("GET".to_string()),
                Just("POST".to_string()),
                Just("HTTP/1.1".to_string()),
            ],
            0..5,
        ),
    ) {
        let line = words.join(" ");
        let input = format!("{line}\r\n\r\n");
        match parse(input.as_bytes(), &Limits::default()) {
            Ok(req) => {
                // Only a real "METHOD TARGET HTTP/1.x" triple may parse.
                prop_assert_eq!(words.len(), 3);
                prop_assert!(words[0] == "GET" || words[0] == "POST");
                prop_assert!(words[2].starts_with("HTTP/1."));
                prop_assert_eq!(req.path.as_str(), words[1].split('?').next().unwrap());
            }
            Err(HttpError::MalformedRequestLine(_)) => prop_assert!(words.len() != 3),
            Err(HttpError::UnsupportedMethod(m)) => {
                prop_assert_eq!(words.len(), 3);
                prop_assert_eq!(m.as_str(), words[0].as_str());
            }
            Err(HttpError::UnsupportedVersion(v)) => {
                prop_assert_eq!(words.len(), 3);
                prop_assert_eq!(v.as_str(), words[2].as_str());
            }
            Err(HttpError::ConnectionClosed) => prop_assert!(line.is_empty()),
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Oversized inputs hit the matching limit error: long request lines →
    /// RequestLineTooLong, long headers → HeaderTooLarge, too many headers
    /// → TooManyHeaders — always naming the configured limit.
    #[test]
    fn oversized_inputs_name_the_limit(pad in 1usize..200, headers in 1usize..12) {
        let limits = Limits {
            max_request_line: 40,
            max_header_bytes: 40,
            max_headers: 4,
            max_body_bytes: 64,
        };

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(40 + pad));
        prop_assert!(matches!(
            parse(long_line.as_bytes(), &limits),
            Err(HttpError::RequestLineTooLong { limit: 40 })
        ));

        let long_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "b".repeat(40 + pad));
        prop_assert!(matches!(
            parse(long_header.as_bytes(), &limits),
            Err(HttpError::HeaderTooLarge { limit: 40 })
        ));

        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..headers {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        let parsed = parse(many.as_bytes(), &limits);
        if headers > 4 {
            prop_assert!(matches!(parsed, Err(HttpError::TooManyHeaders { limit: 4 })));
        } else {
            prop_assert!(parsed.is_ok(), "{headers} headers fit under the limit");
        }
    }

    /// Truncated bodies report exactly how many bytes arrived versus how
    /// many the Content-Length promised.
    #[test]
    fn truncated_bodies_report_progress(declared in 1usize..200, sent_frac in 0usize..100) {
        let sent = declared * sent_frac / 100;
        prop_assert!(sent < declared);
        let mut input =
            format!("POST /jobs HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n").into_bytes();
        input.extend(std::iter::repeat_n(b'x', sent));
        match parse(&input, &Limits::default()) {
            Err(HttpError::TruncatedBody { expected, got }) => {
                prop_assert_eq!(expected, declared);
                prop_assert_eq!(got, sent);
            }
            other => prop_assert!(false, "expected TruncatedBody, got {other:?}"),
        }
    }

    /// Bodies over the limit are rejected by the declared length alone —
    /// the parser refuses before buffering a single body byte.
    #[test]
    fn oversized_bodies_rejected_by_declaration(excess in 1usize..10_000) {
        let limits = Limits { max_body_bytes: 128, ..Limits::default() };
        let declared = 128 + excess;
        // Note: no body bytes follow at all; the declaration is enough.
        let input = format!("POST /jobs HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        prop_assert!(matches!(
            parse(input.as_bytes(), &limits),
            Err(HttpError::BodyTooLarge { length, limit: 128 }) if length == declared
        ));
    }

    /// Every error knows its HTTP status, and the status is a client or
    /// server error code.
    #[test]
    fn every_error_maps_to_an_error_status(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Err(e) = parse(&bytes, &Limits::default()) {
            let (code, reason) = e.status();
            prop_assert!((400..600).contains(&code), "{e:?} -> {code}");
            prop_assert!(!reason.is_empty());
            prop_assert!(!e.to_string().is_empty());
        }
    }
}
