//! End-to-end test over a live TCP socket: bind a real server on port 0,
//! submit a scenario with a plain HTTP client, tail the SSE stream, and
//! check the service's two determinism guarantees (FORMATS.md §6):
//!
//! 1. the finished report's FNV digest equals a direct `Simulation` run
//!    of the same scenario, and
//! 2. the downloaded journal — JSONL or unitherm-bjl/v1, and the SSE
//!    `data:` payloads — is byte-identical to what a direct run's
//!    `JournalWriter` produces.

use std::io::{Read, Write};
use std::net::TcpStream;

use unitherm_cluster::{report_digest, Simulation};
use unitherm_obs::{records_to_bjl, EventRecord, EventSink, JournalWriter};
use unitherm_serve::{JobStatus, Limits, QueueConfig, ServeConfig, Server};

/// The committed example scenario the CI smoke also submits, shortened so
/// the test finishes in well under a second of wall clock.
fn scenario_json() -> String {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/scenarios/protected_burn.json"),
    )
    .expect("committed example scenario exists");
    // Trim the run to 20 simulated seconds; keep everything else intact.
    text.replace("\"max_time_s\": 180.0", "\"max_time_s\": 20.0")
}

/// Spawns a server on an ephemeral port; returns its base address.
fn start_server() -> String {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_threads: 2,
        queue: QueueConfig { capacity: 4, tenant_quota: 4 },
        limits: Limits::default(),
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let _ = server.run();
    });
    addr
}

/// Minimal HTTP client: one request, reads to EOF (the server closes).
fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(body) = body {
        req.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    req.push_str("\r\n");
    if let Some(body) = body {
        req.push_str(body);
    }
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body boundary");
    let head = String::from_utf8_lossy(&response[..split]).into_owned();
    let body = response[split + 4..].to_vec();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line has a code");
    (status, head, body)
}

/// Pulls a scalar field out of a flat JSON object without a full parser
/// (the status documents this test reads are single-level).
fn json_field(doc: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\":");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        return Some(quoted[..quoted.find('"')?].to_string());
    }
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().to_string())
}

#[test]
fn submitted_job_matches_direct_run_bit_for_bit() {
    let addr = start_server();
    let json = scenario_json();

    // Direct run of the same scenario, journal captured through the same
    // EventSink seam the service uses.
    let scenario = unitherm_experiments::scenario_file::parse(&json).expect("scenario parses");
    let dt_s = scenario.dt_s;
    #[derive(Default, Clone)]
    struct Capture(std::sync::Arc<std::sync::Mutex<Vec<EventRecord>>>);
    impl EventSink for Capture {
        fn record(&mut self, rec: &EventRecord) {
            self.0.lock().unwrap().push(*rec);
        }
    }
    let capture = Capture::default();
    let mut direct = Simulation::try_new(scenario).expect("scenario valid");
    direct.attach_journal(Box::new(capture.clone()));
    let direct_report = direct.run();
    let direct_events = capture.0.lock().unwrap().clone();
    assert!(!direct_events.is_empty(), "protected burn emits journal events");

    // Submit the identical JSON over the wire.
    let (status, head, body) = request(&addr, "POST", "/jobs", Some(&json));
    let body_text = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 202, "{head}\n{body_text}");
    assert!(head.contains("Location: /jobs/"), "{head}");
    let id = json_field(&body_text, "id").expect("submit response carries the job id");

    // Tail the SSE stream to completion; it only returns once the final
    // `event: done` frame is sent, so no polling loop is needed.
    let (status, head, sse) = request(&addr, "GET", &format!("/jobs/{id}/events"), None);
    let sse = String::from_utf8_lossy(&sse).into_owned();
    assert_eq!(status, 200, "{head}");
    assert!(head.contains("Content-Type: text/event-stream"), "{head}");
    assert!(sse.contains("event: done"), "stream ends with the done frame:\n{sse}");

    // Stripping the SSE framing must reproduce the direct run's journal.
    let streamed: Vec<String> = sse
        .lines()
        .skip_while(|l| !l.starts_with("event: journal"))
        .take_while(|l| !l.starts_with("event: done"))
        .filter_map(|l| l.strip_prefix("data: ").map(str::to_string))
        .collect();
    let mut direct_jsonl = Vec::new();
    let mut writer = JournalWriter::new(&mut direct_jsonl);
    for rec in &direct_events {
        writer.record(rec);
    }
    drop(writer);
    let direct_jsonl = String::from_utf8(direct_jsonl).expect("journal is UTF-8");
    assert_eq!(
        streamed.join("\n") + "\n",
        direct_jsonl,
        "SSE data payloads are the exact JSONL journal lines"
    );

    // The status document reports done with the direct run's digest.
    let (status, _, body) = request(&addr, "GET", &format!("/jobs/{id}"), None);
    assert_eq!(status, 200);
    let doc = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(json_field(&doc, "status").as_deref(), Some(JobStatus::Done.as_str()), "{doc}");
    assert_eq!(
        json_field(&doc, "digest").as_deref(),
        Some(report_digest(&direct_report).as_str()),
        "service report digest equals the direct run's"
    );
    assert!(doc.contains("\"report\":"), "finished status embeds the report: {doc}");

    // The JSONL download is byte-identical to the direct journal...
    let (status, _, jsonl) =
        request(&addr, "GET", &format!("/jobs/{id}/events?format=jsonl"), None);
    assert_eq!(status, 200);
    assert_eq!(String::from_utf8_lossy(&jsonl), direct_jsonl, "jsonl download is byte-identical");

    // ...and so is the binary journal.
    let (status, _, bjl) = request(&addr, "GET", &format!("/jobs/{id}/events?format=bjl"), None);
    assert_eq!(status, 200);
    assert_eq!(bjl, records_to_bjl(&direct_events, dt_s), "bjl download is byte-identical");
}

#[test]
fn rejections_are_named_and_slots_recycle() {
    let addr = start_server();

    // Unparseable body → 400 with the parse error in the detail.
    let (status, _, body) = request(&addr, "POST", "/jobs", Some("{not json"));
    assert_eq!(status, 400);
    assert!(!body.is_empty());

    // Valid JSON, invalid scenario → 400 naming the validation failure.
    let (status, _, body) =
        request(&addr, "POST", "/jobs", Some("{\"name\": \"bad\", \"nodes\": 0}"));
    let text = String::from_utf8_lossy(&body);
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("node"), "validation failure is named: {text}");

    // Unknown job → 404.
    let (status, _, _) = request(&addr, "GET", "/jobs/999", None);
    assert_eq!(status, 404);

    // Health and metrics respond even with no jobs.
    let (status, _, body) = request(&addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");
    let (status, _, body) = request(&addr, "GET", "/metrics", None);
    let text = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 200);
    assert!(text.contains("unitherm_serve_jobs_submitted_total 0"), "{text}");
    assert!(text.contains("unitherm_samples_total"), "simulator counters present: {text}");
}

#[test]
fn tenant_quota_rejects_with_429_and_metrics_count_it() {
    // One-slot-per-tenant queue with a single runner; jobs are effectively
    // unbounded (huge max_time_s) so both stay open for the whole test —
    // slot recycling after completion is covered by the queue unit tests.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_threads: 1,
        queue: QueueConfig { capacity: 2, tenant_quota: 1 },
        limits: Limits::default(),
    };
    let server = Server::bind(&cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        let _ = server.run();
    });

    let json = scenario_json()
        .replace("\"max_time_s\": 20.0", "\"max_time_s\": 1000000000.0")
        .replace("\"record_series\": true", "\"record_series\": false");
    let (status, _, _) = request(&addr, "POST", "/jobs?tenant=acme", Some(&json));
    assert_eq!(status, 202);
    // Same tenant again while the first job is open → 429.
    let (status, _, body) = request(&addr, "POST", "/jobs?tenant=acme", Some(&json));
    let text = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("acme"), "rejection names the tenant: {text}");
    // A different tenant still fits.
    let (status, _, _) = request(&addr, "POST", "/jobs?tenant=zeta", Some(&json));
    assert_eq!(status, 202);
    // Queue now holds 2 open jobs → a third tenant sees 503 + Retry-After.
    let (status, head, _) = request(&addr, "POST", "/jobs?tenant=late", Some(&json));
    assert_eq!(status, 503, "{head}");
    assert!(head.contains("Retry-After"), "{head}");

    let (status, _, body) = request(&addr, "GET", "/metrics", None);
    let text = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 200);
    assert!(text.contains("unitherm_serve_jobs_submitted_total 2"), "{text}");
    assert!(text.contains("unitherm_serve_jobs_rejected_total 2"), "{text}");
    assert!(text.contains("unitherm_serve_thread_permits_total 1"), "{text}");
}
