//! A minimal HTTP/1.1 request parser on `std` only.
//!
//! The service speaks exactly the HTTP subset its API needs (`docs/API.md`):
//! `GET`/`POST`, `Content-Length` bodies, one request per connection
//! (`Connection: close` on every response). The parser is defensive — every
//! malformed, oversized or truncated input maps to a named [`HttpError`]
//! carrying its HTTP status code, and nothing panics (pinned by the
//! property tests in `tests/http_props.rs`, which feed it arbitrary bytes).

use std::io::{BufRead, Read};

/// Parser limits. Every bound is enforced with a named error rather than
/// unbounded buffering, so a misbehaving client cannot balloon the server.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_request_line: 8 * 1024,
            max_header_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// The request methods the API uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

/// A parsed request: method, split target, lowercased headers, raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The path component of the target (before any `?`), as sent — no
    /// percent-decoding is performed (API paths and job ids never need it).
    pub path: String,
    /// Query parameters, split on `&` and `=` in order of appearance
    /// (values are not percent-decoded).
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are ASCII-lowercased, values
    /// trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless a `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (lowercase lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First value of the named query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Everything that can go wrong reading one request. Each variant maps to
/// an HTTP status via [`HttpError::status`]; the `Display` text is the
/// response body the server sends back.
#[derive(Debug)]
pub enum HttpError {
    /// The connection closed before any request byte arrived (a normal
    /// client hang-up, not an error worth a response).
    ConnectionClosed,
    /// An I/O error while reading the request.
    Io(std::io::Error),
    /// The request line was not `METHOD TARGET HTTP/1.x`.
    MalformedRequestLine(String),
    /// The request line exceeded [`Limits::max_request_line`].
    RequestLineTooLong {
        /// The enforced limit, bytes.
        limit: usize,
    },
    /// A method other than `GET`/`POST`.
    UnsupportedMethod(String),
    /// An HTTP version other than 1.x.
    UnsupportedVersion(String),
    /// A header line without a `:` or with a non-UTF-8 byte sequence.
    MalformedHeader(String),
    /// One header line exceeded [`Limits::max_header_bytes`].
    HeaderTooLarge {
        /// The enforced limit, bytes.
        limit: usize,
    },
    /// More header lines than [`Limits::max_headers`].
    TooManyHeaders {
        /// The enforced limit.
        limit: usize,
    },
    /// The connection closed in the middle of the header block.
    TruncatedHeaders,
    /// A `Transfer-Encoding` the server does not implement (chunked).
    UnsupportedTransferEncoding(String),
    /// A `Content-Length` that does not parse as an integer.
    InvalidContentLength(String),
    /// A `POST` without a `Content-Length`.
    LengthRequired,
    /// The declared body length exceeded [`Limits::max_body_bytes`].
    BodyTooLarge {
        /// The declared `Content-Length`.
        length: usize,
        /// The enforced limit, bytes.
        limit: usize,
    },
    /// The connection closed before `Content-Length` bytes arrived.
    TruncatedBody {
        /// The declared `Content-Length`.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
}

impl HttpError {
    /// The HTTP status line this error maps to.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::ConnectionClosed | HttpError::Io(_) => (400, "Bad Request"),
            HttpError::MalformedRequestLine(_)
            | HttpError::MalformedHeader(_)
            | HttpError::TruncatedHeaders
            | HttpError::InvalidContentLength(_)
            | HttpError::TruncatedBody { .. } => (400, "Bad Request"),
            HttpError::RequestLineTooLong { .. } => (414, "URI Too Long"),
            HttpError::UnsupportedMethod(_) => (405, "Method Not Allowed"),
            HttpError::UnsupportedVersion(_) => (505, "HTTP Version Not Supported"),
            HttpError::HeaderTooLarge { .. } | HttpError::TooManyHeaders { .. } => {
                (431, "Request Header Fields Too Large")
            }
            HttpError::UnsupportedTransferEncoding(_) => (501, "Not Implemented"),
            HttpError::LengthRequired => (411, "Length Required"),
            HttpError::BodyTooLarge { .. } => (413, "Content Too Large"),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed before a request arrived"),
            HttpError::Io(e) => write!(f, "i/o error reading request: {e}"),
            HttpError::MalformedRequestLine(line) => {
                write!(f, "malformed request line {line:?} (want \"METHOD TARGET HTTP/1.x\")")
            }
            HttpError::RequestLineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            HttpError::UnsupportedMethod(m) => {
                write!(f, "unsupported method {m:?} (this API serves GET and POST)")
            }
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::MalformedHeader(line) => write!(f, "malformed header line {line:?}"),
            HttpError::HeaderTooLarge { limit } => write!(f, "header line exceeds {limit} bytes"),
            HttpError::TooManyHeaders { limit } => write!(f, "more than {limit} header lines"),
            HttpError::TruncatedHeaders => {
                write!(f, "connection closed in the middle of the header block")
            }
            HttpError::UnsupportedTransferEncoding(te) => {
                write!(f, "unsupported transfer-encoding {te:?} (send a Content-Length body)")
            }
            HttpError::InvalidContentLength(v) => write!(f, "invalid content-length {v:?}"),
            HttpError::LengthRequired => write!(f, "POST requires a Content-Length"),
            HttpError::BodyTooLarge { length, limit } => {
                write!(f, "declared body of {length} bytes exceeds the {limit}-byte limit")
            }
            HttpError::TruncatedBody { expected, got } => {
                write!(f, "connection closed after {got} of {expected} body bytes")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Outcome of reading one CRLF/LF-terminated line under a byte limit.
enum Line {
    /// A complete line (terminator stripped).
    Full(String),
    /// End of stream with no bytes read.
    Eof,
    /// End of stream mid-line (bytes read, no terminator).
    Truncated,
    /// The line exceeded the limit before a terminator appeared.
    TooLong,
}

/// Reads one line of at most `limit` bytes. Non-UTF-8 content surfaces as
/// a [`HttpError::MalformedHeader`]-shaped `Err` at the call sites via the
/// lossless byte check here.
fn read_line<R: BufRead>(reader: &mut R, limit: usize) -> Result<Line, HttpError> {
    let mut buf = Vec::with_capacity(128.min(limit));
    // `take` bounds how much one line may consume; +1 distinguishes
    // "exactly limit bytes then newline" from "over the limit".
    let mut bounded = reader.take(limit as u64 + 1);
    match bounded.read_until(b'\n', &mut buf) {
        Ok(0) => return Ok(Line::Eof),
        Ok(_) => {}
        Err(e) => return Err(HttpError::Io(e)),
    }
    if buf.last() != Some(&b'\n') {
        return if buf.len() > limit { Ok(Line::TooLong) } else { Ok(Line::Truncated) };
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    if buf.len() > limit {
        return Ok(Line::TooLong);
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Line::Full(s)),
        Err(e) => {
            let lossy = String::from_utf8_lossy(e.as_bytes()).into_owned();
            Err(HttpError::MalformedHeader(lossy))
        }
    }
}

/// Splits a request target into its path and parsed query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    (path.to_string(), pairs)
}

/// Reads and parses one HTTP/1.1 request from `reader`.
///
/// Bodies are read if and only if a `Content-Length` header is present
/// (mandatory for `POST`); `Transfer-Encoding` is rejected with a named
/// error. The parser never panics — every malformed input becomes an
/// [`HttpError`].
pub fn parse_request<R: BufRead>(reader: &mut R, limits: &Limits) -> Result<Request, HttpError> {
    // --- Request line -----------------------------------------------------
    let line = match read_line(reader, limits.max_request_line)? {
        Line::Full(l) => l,
        Line::Eof => return Err(HttpError::ConnectionClosed),
        Line::Truncated => return Err(HttpError::MalformedRequestLine(String::new())),
        Line::TooLong => {
            return Err(HttpError::RequestLineTooLong { limit: limits.max_request_line })
        }
    };
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::MalformedRequestLine(line.clone())),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(HttpError::UnsupportedMethod(other.to_string())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    let (path, query) = split_target(target);

    // --- Headers ----------------------------------------------------------
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, limits.max_header_bytes)? {
            Line::Full(l) => l,
            Line::Eof | Line::Truncated => return Err(HttpError::TruncatedHeaders),
            Line::TooLong => {
                return Err(HttpError::HeaderTooLarge { limit: limits.max_header_bytes })
            }
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == limits.max_headers {
            return Err(HttpError::TooManyHeaders { limit: limits.max_headers });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::MalformedHeader(line));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // --- Body -------------------------------------------------------------
    let req = Request { method, path, query, headers, body: Vec::new() };
    if let Some(te) = req.header("transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding(te.to_string()));
    }
    let length = match req.header("content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => return Err(HttpError::InvalidContentLength(v.to_string())),
        },
        None if req.method == Method::Post => return Err(HttpError::LengthRequired),
        None => None,
    };
    let mut req = req;
    if let Some(expected) = length {
        if expected > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge { length: expected, limit: limits.max_body_bytes });
        }
        let mut body = vec![0u8; expected];
        let mut got = 0;
        while got < expected {
            match reader.read(&mut body[got..]) {
                Ok(0) => return Err(HttpError::TruncatedBody { expected, got }),
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        req.body = body;
    }
    Ok(req)
}

/// Renders a complete HTTP/1.1 response with a `Content-Length` body and
/// `Connection: close` (the server speaks one request per connection).
/// `extra_headers` lines are spliced in verbatim (no terminators).
pub fn render_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[&str],
    body: &[u8],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for extra in extra_headers {
        head.push_str(extra);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut std::io::BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let req = parse(
            b"GET /jobs/3/events?format=jsonl&tenant=acme HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n",
        )
        .expect("parse");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/jobs/3/events");
        assert_eq!(req.query_param("format"), Some("jsonl"));
        assert_eq!(req.query_param("tenant"), Some("acme"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_exactly() {
        let req =
            parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\":1}\r\n").expect("parse");
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"{\"a\":1}\r\n");
    }

    #[test]
    fn named_errors_for_malformed_inputs() {
        assert!(matches!(parse(b""), Err(HttpError::ConnectionClosed)));
        assert!(matches!(parse(b"GARBAGE\r\n\r\n"), Err(HttpError::MalformedRequestLine(_))));
        assert!(matches!(parse(b"PUT / HTTP/1.1\r\n\r\n"), Err(HttpError::UnsupportedMethod(_))));
        assert!(matches!(parse(b"GET / HTTP/2\r\n\r\n"), Err(HttpError::UnsupportedVersion(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbad\r\n\r\n"),
            Err(HttpError::MalformedHeader(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::TruncatedHeaders)
        ));
        assert!(matches!(parse(b"POST /jobs HTTP/1.1\r\n\r\n"), Err(HttpError::LengthRequired)));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::InvalidContentLength(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::TruncatedBody { expected: 10, got: 3 })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding(_))
        ));
    }

    #[test]
    fn limits_are_enforced_with_named_errors() {
        let limits = Limits {
            max_request_line: 32,
            max_header_bytes: 24,
            max_headers: 2,
            max_body_bytes: 8,
        };
        let parse = |bytes: &[u8]| parse_request(&mut std::io::BufReader::new(bytes), &limits);

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(HttpError::RequestLineTooLong { limit: 32 })
        ));

        let long_header = format!("GET / HTTP/1.1\r\nA: {}\r\n\r\n", "y".repeat(64));
        assert!(matches!(
            parse(long_header.as_bytes()),
            Err(HttpError::HeaderTooLarge { limit: 24 })
        ));

        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n"),
            Err(HttpError::TooManyHeaders { limit: 2 })
        ));

        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n"),
            Err(HttpError::BodyTooLarge { length: 99, limit: 8 })
        ));
    }

    #[test]
    fn error_statuses_are_stable() {
        assert_eq!(HttpError::LengthRequired.status().0, 411);
        assert_eq!(HttpError::UnsupportedMethod("PUT".into()).status().0, 405);
        assert_eq!(HttpError::BodyTooLarge { length: 9, limit: 8 }.status().0, 413);
        assert_eq!(HttpError::TooManyHeaders { limit: 2 }.status().0, 431);
        assert_eq!(HttpError::MalformedRequestLine(String::new()).status().0, 400);
    }

    #[test]
    fn response_renderer_emits_content_length_and_close() {
        let bytes = render_response(202, "Accepted", "application/json", &[], b"{}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
