//! Simulation-as-a-service: a std-only HTTP/1.1 + SSE front end over the
//! unitherm cluster simulator.
//!
//! The `unitherm-serve` binary turns the one-shot `repro run-scenario`
//! flow into a long-lived service with four moving parts, each its own
//! module:
//!
//! - [`http`] — a bounded, never-panicking HTTP/1.1 request parser and
//!   response renderer built on `std::net` alone (no external HTTP stack,
//!   matching the repo's no-new-dependencies rule).
//! - [`queue`] — the bounded multi-tenant [`queue::JobQueue`]: submissions
//!   are validated [`unitherm_cluster::Scenario`]s, rejections are named
//!   ([`queue::SubmitError::QueueFull`] / [`queue::SubmitError::TenantQuota`]),
//!   and every read endpoint snapshots from here.
//! - [`runner`] — claiming threads that execute jobs through
//!   [`unitherm_cluster::Simulation`] under a shared
//!   [`unitherm_cluster::ThreadPermits`] budget, so service concurrency
//!   never oversubscribes intra-run worker pools (DESIGN.md §15).
//! - [`server`] — routing for the HTTP API documented in `docs/API.md`:
//!   `POST /jobs`, `GET /jobs`, `GET /jobs/{id}`, `GET /jobs/{id}/events`
//!   (SSE, JSONL, or unitherm-bjl/v1), `GET /metrics`, `GET /healthz`.
//!
//! # Determinism contract
//!
//! A job's finished report is bit-identical to running the same scenario
//! JSON through `repro run-scenario` — same FNV digest — and its journal
//! (JSONL or bjl download) is byte-identical to the file a direct run
//! would write. The SSE stream's `data:` payloads are the exact JSONL
//! lines, so stripping the framing reproduces the journal. See
//! `docs/FORMATS.md` §6 for the wire formats and the guarantee.

#![warn(missing_docs)]

pub mod http;
pub mod queue;
pub mod runner;
pub mod server;

pub use http::{parse_request, render_response, HttpError, Limits, Method, Request};
pub use queue::{JobId, JobQueue, JobSnapshot, JobStatus, QueueConfig, QueueStats, SubmitError};
pub use runner::{run_one, spawn_runners, QueueSink, RunnerPool};
pub use server::{ServeConfig, Server};
