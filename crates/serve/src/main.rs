//! `unitherm-serve`: run the thermal-control simulator as a service.
//!
//! ```text
//! unitherm-serve [--addr HOST:PORT] [--queue-depth N] [--tenant-quota N]
//!                [--max-threads N]
//! ```
//!
//! See `docs/API.md` for the HTTP API and the README for an operator
//! quick-start (submit with curl, tail the SSE stream, scrape /metrics).

use unitherm_serve::{Limits, QueueConfig, ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: unitherm-serve [--addr HOST:PORT] [--queue-depth N] [--tenant-quota N] [--max-threads N]

  --addr HOST:PORT   listen address                (default 127.0.0.1:7070)
  --queue-depth N    max open jobs across tenants  (default 16)
  --tenant-quota N   max open jobs per tenant      (default 8)
  --max-threads N    simulation-thread budget      (default: available parallelism)

Endpoints (docs/API.md): POST /jobs, GET /jobs, GET /jobs/{{id}},
GET /jobs/{{id}}/events (SSE | ?format=jsonl | ?format=bjl),
GET /metrics, GET /healthz"
    );
    std::process::exit(2)
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("error: {flag} needs a value");
        usage()
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: invalid value {value:?} for {flag}");
            usage()
        }
    }
}

fn main() {
    let mut cfg = ServeConfig::default();
    let mut queue = QueueConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse_flag("--addr", args.next()),
            "--queue-depth" => queue.capacity = parse_flag("--queue-depth", args.next()),
            "--tenant-quota" => queue.tenant_quota = parse_flag("--tenant-quota", args.next()),
            "--max-threads" => cfg.max_threads = parse_flag("--max-threads", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage()
            }
        }
    }
    cfg.queue = queue;
    cfg.limits = Limits::default();

    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1)
        }
    };
    let addr = server.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| cfg.addr.clone());
    println!(
        "unitherm-serve listening on http://{addr} (queue depth {}, tenant quota {}, {} simulation threads)",
        cfg.queue.capacity, cfg.queue.tenant_quota, cfg.max_threads
    );
    if let Err(e) = server.run() {
        eprintln!("error: accept loop failed: {e}");
        std::process::exit(1)
    }
}
