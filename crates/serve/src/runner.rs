//! Runner threads: claim jobs from the [`JobQueue`], execute them through
//! [`Simulation`], and tee every journal event back into the queue.
//!
//! Concurrency discipline (DESIGN.md §15): the service owns one
//! [`ThreadPermits`] budget of `max_threads` permits. Each runner acquires
//! `scenario.threads.min(nodes).max(1)` permits — the exact worker-pool
//! width `Simulation::run` will use — before it starts, so the sum of all
//! intra-run pool widths never exceeds `max_threads` no matter how many
//! jobs are in flight. This is the same arithmetic `sweep::thread_budget`
//! applies to a static sweep, restated for a long-lived service where the
//! job count is open-ended.
//!
//! Determinism: the per-job journal sink collects [`EventRecord`]s in the
//! same order `JournalWriter` would receive them, and attaching a healthy
//! sink does not perturb the run, so the report (and its FNV digest) is
//! bit-identical to `repro run-scenario` on the same scenario JSON.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use unitherm_cluster::{thread_budget, Simulation, ThreadPermits};
use unitherm_obs::{EventRecord, EventSink};

use crate::queue::{JobId, JobQueue};

/// An [`EventSink`] that forwards every record into the queue's per-job
/// event log (the service-side analogue of a `JournalWriter`).
pub struct QueueSink {
    queue: JobQueue,
    id: JobId,
}

impl QueueSink {
    /// A sink feeding job `id` on `queue`.
    pub fn new(queue: JobQueue, id: JobId) -> Self {
        Self { queue, id }
    }
}

impl EventSink for QueueSink {
    fn record(&mut self, rec: &EventRecord) {
        self.queue.append_event(self.id, *rec);
    }
}

/// Handle to the running pool; joining it only makes sense in tests, the
/// service keeps it alive for the process lifetime.
pub struct RunnerPool {
    /// The shared permit budget (exposed for `/metrics`).
    pub permits: Arc<ThreadPermits>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl RunnerPool {
    /// Number of runner threads.
    pub fn runners(&self) -> usize {
        self.handles.len()
    }
}

/// Spawns the runner pool: `thread_budget(max_threads, capacity, 1)`
/// claiming threads sharing a [`ThreadPermits`] budget of `max_threads`.
pub fn spawn_runners(queue: JobQueue, max_threads: usize) -> RunnerPool {
    let max_threads = max_threads.max(1);
    let permits = Arc::new(ThreadPermits::new(max_threads));
    let runners = thread_budget(max_threads, queue.config().capacity, 1);
    let handles = (0..runners)
        .map(|i| {
            let queue = queue.clone();
            let permits = Arc::clone(&permits);
            thread::Builder::new()
                .name(format!("unitherm-runner-{i}"))
                .spawn(move || runner_loop(queue, permits))
                .expect("spawn runner thread")
        })
        .collect();
    RunnerPool { permits, handles }
}

/// Runs one job to completion: acquire permits, execute, record outcome.
/// Exposed so tests can drive a single job synchronously.
pub fn run_one(
    queue: &JobQueue,
    permits: &ThreadPermits,
    id: JobId,
    scenario: unitherm_cluster::Scenario,
) {
    // The pool width Simulation::run will actually use for this scenario;
    // oversized requests clamp to the budget (an oversized pool still runs,
    // just narrower than asked — mirroring thread_budget's floor of one).
    let width = scenario.threads.min(scenario.nodes).max(1);
    let _guard = permits.acquire(width);
    match Simulation::try_new(scenario) {
        Ok(mut sim) => {
            sim.attach_journal(Box::new(QueueSink::new(queue.clone(), id)));
            match catch_unwind(AssertUnwindSafe(move || sim.run())) {
                Ok(report) => queue.complete(id, report),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "simulation panicked".to_string());
                    queue.fail(id, format!("simulation panicked: {msg}"));
                }
            }
        }
        Err(e) => queue.fail(id, format!("scenario rejected: {e}")),
    }
}

fn runner_loop(queue: JobQueue, permits: Arc<ThreadPermits>) {
    loop {
        let (id, scenario) = queue.claim();
        run_one(&queue, &permits, id, scenario);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{JobStatus, QueueConfig};
    use unitherm_cluster::{report_digest, Scenario};

    fn tiny() -> Scenario {
        Scenario::new("runner-test").with_max_time(2.0).with_recording(false)
    }

    /// A short run that reliably emits journal events (dynamic fan + burn).
    fn eventful() -> Scenario {
        use unitherm_core::control_array::Policy;
        tiny()
            .with_max_time(5.0)
            .with_nodes(1)
            .with_fan(unitherm_cluster::FanScheme::dynamic(Policy::MODERATE, 100))
    }

    #[test]
    fn pool_runs_submitted_job_to_done() {
        let queue = JobQueue::new(QueueConfig { capacity: 2, tenant_quota: 2 });
        let _pool = spawn_runners(queue.clone(), 2);
        let id = queue.submit("t", eventful()).expect("submit");
        let snap = queue.wait_done(id).expect("job exists");
        assert_eq!(snap.status, JobStatus::Done, "error: {:?}", snap.error);
        assert!(snap.report.is_some());
        assert!(snap.events_len > 0, "journal tee captured events");
    }

    #[test]
    fn service_report_matches_direct_run_bit_for_bit() {
        let queue = JobQueue::new(QueueConfig::default());
        let permits = ThreadPermits::new(2);
        let scenario = tiny().with_nodes(2).with_threads(2);

        let direct = Simulation::try_new(scenario.clone()).expect("valid").run();
        let id = queue.submit("t", scenario.clone()).expect("submit");
        let (claimed, claimed_scenario) = queue.try_claim().expect("claim");
        run_one(&queue, &permits, claimed, claimed_scenario);

        let snap = queue.snapshot(id).expect("job exists");
        assert_eq!(snap.status, JobStatus::Done, "error: {:?}", snap.error);
        assert_eq!(snap.digest.as_deref(), Some(report_digest(&direct).as_str()));
    }

    #[test]
    fn oversized_thread_request_clamps_instead_of_deadlocking() {
        let queue = JobQueue::new(QueueConfig::default());
        let permits = ThreadPermits::new(1);
        // Asks for 8 threads against a budget of 1; acquire() clamps.
        let scenario = tiny().with_nodes(8).with_threads(8);
        let id = queue.submit("t", scenario).expect("submit");
        let (claimed, claimed_scenario) = queue.try_claim().expect("claim");
        run_one(&queue, &permits, claimed, claimed_scenario);
        assert_eq!(queue.snapshot(id).unwrap().status, JobStatus::Done);
        assert_eq!(permits.available(), 1, "permits returned after the run");
    }

    #[test]
    fn invalid_scenario_fails_with_named_reason() {
        let queue = JobQueue::new(QueueConfig::default());
        let permits = ThreadPermits::new(1);
        let scenario = tiny().with_max_time(-1.0);
        let id = queue.submit("t", scenario).expect("submit accepts; validation is the runner's");
        let (claimed, claimed_scenario) = queue.try_claim().expect("claim");
        run_one(&queue, &permits, claimed, claimed_scenario);
        let snap = queue.snapshot(id).unwrap();
        assert_eq!(snap.status, JobStatus::Failed);
        assert!(snap.error.as_deref().unwrap_or("").contains("scenario rejected"), "{snap:?}");
    }
}
