//! Routing and response rendering for the service's five endpoints
//! (`docs/API.md`): `POST /jobs`, `GET /jobs`, `GET /jobs/{id}`,
//! `GET /jobs/{id}/events`, `GET /metrics`, `GET /healthz`.
//!
//! The server is deliberately plain: one OS thread per connection, one
//! request per connection (`Connection: close`), bodies bounded by
//! [`Limits`]. Connection handling never touches the simulator directly —
//! every route reads or writes through the shared [`JobQueue`], so HTTP
//! concurrency and simulation concurrency stay decoupled.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use unitherm_cluster::ThreadPermits;
use unitherm_experiments::scenario_file;
use unitherm_obs::{prometheus_text, records_to_bjl, sse_frame, sse_journal_frame};

use crate::http::{parse_request, render_response, HttpError, Limits, Method, Request};
use crate::queue::{JobId, JobQueue, JobSnapshot, SubmitError};
use crate::runner::{spawn_runners, RunnerPool};

/// Service configuration (flags of the `unitherm-serve` binary).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (port 0 for tests).
    pub addr: String,
    /// Total simulation-thread budget shared by all concurrent jobs.
    pub max_threads: usize,
    /// Queue bounds.
    pub queue: crate::queue::QueueConfig,
    /// HTTP parser limits.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".to_string(),
            max_threads: thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue: crate::queue::QueueConfig::default(),
            limits: Limits::default(),
        }
    }
}

/// A bound listener plus the queue and runner pool behind it.
pub struct Server {
    listener: TcpListener,
    queue: JobQueue,
    pool: RunnerPool,
    limits: Limits,
}

impl Server {
    /// Binds the listener and spawns the runner pool. The returned server
    /// is not yet accepting — call [`Server::run`] (blocking) to serve.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let queue = JobQueue::new(cfg.queue);
        let pool = spawn_runners(queue.clone(), cfg.max_threads);
        Ok(Server { listener, queue, pool, limits: cfg.limits })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared job queue (tests submit and poll through this).
    pub fn queue(&self) -> JobQueue {
        self.queue.clone()
    }

    /// Accept loop: one thread per connection, forever.
    pub fn run(self) -> std::io::Result<()> {
        let permits = Arc::clone(&self.pool.permits);
        for stream in self.listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let queue = self.queue.clone();
            let permits = Arc::clone(&permits);
            let limits = self.limits;
            let _ = thread::Builder::new().name("unitherm-conn".to_string()).spawn(move || {
                handle_connection(stream, &queue, &permits, &limits);
            });
        }
        Ok(())
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the job-status JSON document (`docs/FORMATS.md` §6).
fn job_status_json(snap: &JobSnapshot) -> String {
    let mut out = format!(
        "{{\"id\":{},\"tenant\":\"{}\",\"name\":\"{}\",\"status\":\"{}\",\"events\":{}",
        snap.id,
        json_escape(&snap.tenant),
        json_escape(&snap.name),
        snap.status.as_str(),
        snap.events_len
    );
    if let Some(digest) = &snap.digest {
        out.push_str(&format!(",\"digest\":\"{}\"", json_escape(digest)));
    }
    if let Some(error) = &snap.error {
        out.push_str(&format!(",\"error\":\"{}\"", json_escape(error)));
    }
    if let Some(report) = &snap.report {
        match serde_json::to_string(report) {
            Ok(json) => out.push_str(&format!(",\"report\":{json}")),
            Err(e) => out.push_str(&format!(
                ",\"error\":\"report serialization: {}\"",
                json_escape(&e.to_string())
            )),
        }
    }
    out.push('}');
    out
}

fn error_json(error: &str, detail: &str) -> Vec<u8> {
    format!("{{\"error\":\"{}\",\"detail\":\"{}\"}}", json_escape(error), json_escape(detail))
        .into_bytes()
}

fn write_all(stream: &mut TcpStream, bytes: &[u8]) {
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(
    mut stream: TcpStream,
    queue: &JobQueue,
    permits: &ThreadPermits,
    limits: &Limits,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        parse_request(&mut reader, limits)
    };
    let request = match request {
        Ok(req) => req,
        Err(HttpError::ConnectionClosed) => return,
        Err(e) => {
            let (status, reason) = e.status();
            let body = error_json(reason, &e.to_string());
            write_all(
                &mut stream,
                &render_response(status, reason, "application/json", &[], &body),
            );
            return;
        }
    };
    let _ = stream.set_read_timeout(None);
    route(&mut stream, &request, queue, permits);
}

fn route(stream: &mut TcpStream, req: &Request, queue: &JobQueue, permits: &ThreadPermits) {
    match (req.method, req.path.as_str()) {
        (Method::Get, "/healthz") => {
            write_all(
                stream,
                &render_response(200, "OK", "text/plain; charset=utf-8", &[], b"ok\n"),
            );
        }
        (Method::Get, "/metrics") => serve_metrics(stream, queue, permits),
        (Method::Post, "/jobs") => serve_submit(stream, req, queue),
        (Method::Get, "/jobs") => serve_job_list(stream, queue),
        (Method::Get, path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            match rest.split_once('/') {
                None => match rest.parse::<JobId>() {
                    Ok(id) => serve_job_status(stream, queue, id),
                    Err(_) => not_found(stream, path),
                },
                Some((id, "events")) => match id.parse::<JobId>() {
                    Ok(id) => serve_job_events(stream, req, queue, id),
                    Err(_) => not_found(stream, path),
                },
                Some(_) => not_found(stream, path),
            }
        }
        (_, path) => not_found(stream, path),
    }
}

fn not_found(stream: &mut TcpStream, path: &str) {
    let body = error_json("Not Found", &format!("no route for {path}"));
    write_all(stream, &render_response(404, "Not Found", "application/json", &[], &body));
}

/// `POST /jobs`: validate the scenario body, enqueue, answer 202 with the
/// job id — or a named 4xx/503 rejection.
fn serve_submit(stream: &mut TcpStream, req: &Request, queue: &JobQueue) {
    let tenant = req
        .header("x-unitherm-tenant")
        .or_else(|| req.query_param("tenant"))
        .unwrap_or("default")
        .to_string();
    if tenant.is_empty()
        || tenant.len() > 64
        || !tenant.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        let body = error_json("Bad Request", "tenant must be 1-64 chars of [A-Za-z0-9_-]");
        write_all(stream, &render_response(400, "Bad Request", "application/json", &[], &body));
        return;
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            let body = error_json("Bad Request", "scenario body must be UTF-8 JSON");
            write_all(stream, &render_response(400, "Bad Request", "application/json", &[], &body));
            return;
        }
    };
    let scenario = match scenario_file::parse(text) {
        Ok(s) => s,
        Err(e) => {
            let body = error_json("Bad Request", &e.to_string());
            write_all(stream, &render_response(400, "Bad Request", "application/json", &[], &body));
            return;
        }
    };
    match queue.submit(&tenant, scenario) {
        Ok(id) => {
            let body = format!(
                "{{\"id\":{id},\"status\":\"queued\",\"tenant\":\"{}\"}}",
                json_escape(&tenant)
            );
            write_all(
                stream,
                &render_response(
                    202,
                    "Accepted",
                    "application/json",
                    &[&format!("Location: /jobs/{id}")],
                    body.as_bytes(),
                ),
            );
        }
        Err(e @ SubmitError::QueueFull { .. }) => {
            let body = error_json("Service Unavailable", &e.to_string());
            write_all(
                stream,
                &render_response(
                    503,
                    "Service Unavailable",
                    "application/json",
                    &["Retry-After: 1"],
                    &body,
                ),
            );
        }
        Err(e @ SubmitError::TenantQuota { .. }) => {
            let body = error_json("Too Many Requests", &e.to_string());
            write_all(
                stream,
                &render_response(
                    429,
                    "Too Many Requests",
                    "application/json",
                    &["Retry-After: 1"],
                    &body,
                ),
            );
        }
    }
}

fn serve_job_list(stream: &mut TcpStream, queue: &JobQueue) {
    let docs: Vec<String> = queue.snapshots().iter().map(job_status_json).collect();
    let body = format!("{{\"jobs\":[{}]}}", docs.join(","));
    write_all(stream, &render_response(200, "OK", "application/json", &[], body.as_bytes()));
}

fn serve_job_status(stream: &mut TcpStream, queue: &JobQueue, id: JobId) {
    match queue.snapshot(id) {
        Some(snap) => {
            let body = job_status_json(&snap);
            write_all(
                stream,
                &render_response(200, "OK", "application/json", &[], body.as_bytes()),
            );
        }
        None => {
            let body = error_json("Not Found", &format!("no job {id}"));
            write_all(stream, &render_response(404, "Not Found", "application/json", &[], &body));
        }
    }
}

/// `GET /jobs/{id}/events`: SSE stream by default; `?format=jsonl` (or
/// `Accept: application/x-ndjson`) downloads the journal as JSONL,
/// `?format=bjl` (or `Accept: application/vnd.unitherm.bjl`) as
/// unitherm-bjl/v1 — both byte-identical to what `repro run-scenario
/// --journal/--bjl` writes for the same scenario (FORMATS.md §6).
fn serve_job_events(stream: &mut TcpStream, req: &Request, queue: &JobQueue, id: JobId) {
    if queue.snapshot(id).is_none() {
        let body = error_json("Not Found", &format!("no job {id}"));
        write_all(stream, &render_response(404, "Not Found", "application/json", &[], &body));
        return;
    }
    let accept = req.header("accept").unwrap_or("");
    let format = req.query_param("format").map(str::to_string).unwrap_or_else(|| {
        if accept.contains("application/vnd.unitherm.bjl") {
            "bjl".to_string()
        } else if accept.contains("application/x-ndjson") {
            "jsonl".to_string()
        } else {
            "sse".to_string()
        }
    });
    match format.as_str() {
        "sse" => stream_sse(stream, queue, id),
        "jsonl" => {
            // Journal downloads wait for the run to finish so the body is
            // the complete journal, not a racing prefix.
            let _ = queue.wait_done(id);
            let events = queue.events(id).unwrap_or_default();
            let mut body = String::new();
            for rec in &events {
                if let Ok(line) = serde_json::to_string(rec) {
                    body.push_str(&line);
                    body.push('\n');
                }
            }
            write_all(
                stream,
                &render_response(200, "OK", "application/x-ndjson", &[], body.as_bytes()),
            );
        }
        "bjl" => {
            let _ = queue.wait_done(id);
            let events = queue.events(id).unwrap_or_default();
            let dt_s = queue.dt_s(id).unwrap_or(0.0);
            let body = records_to_bjl(&events, dt_s);
            write_all(
                stream,
                &render_response(200, "OK", "application/vnd.unitherm.bjl", &[], &body),
            );
        }
        other => {
            let body =
                error_json("Bad Request", &format!("unknown format {other:?} (sse, jsonl, bjl)"));
            write_all(stream, &render_response(400, "Bad Request", "application/json", &[], &body));
        }
    }
}

/// Streams a job's journal as SSE: one `event: journal` frame per record
/// (whose `data:` payload is the exact JSONL line), keep-alive comments
/// while idle, and a final `event: done` frame carrying the job-status
/// document.
fn stream_sse(stream: &mut TcpStream, queue: &JobQueue, id: JobId) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut seq: u64 = 0;
    loop {
        let Some((fresh, done)) = queue.wait_events(id, seq as usize, Duration::from_secs(1))
        else {
            return;
        };
        for rec in &fresh {
            let frame = sse_journal_frame(seq, rec);
            if stream.write_all(frame.as_bytes()).is_err() {
                return;
            }
            seq += 1;
        }
        if done {
            let status = queue
                .snapshot(id)
                .map(|snap| job_status_json(&snap))
                .unwrap_or_else(|| format!("{{\"id\":{id}}}"));
            let _ = stream.write_all(sse_frame(None, Some("done"), &status).as_bytes());
            let _ = stream.flush();
            return;
        }
        if fresh.is_empty() {
            // SSE comment line as a keep-alive so proxies don't cut us off.
            if stream.write_all(b": keep-alive\n\n").is_err() {
                return;
            }
        }
        let _ = stream.flush();
    }
}

/// `GET /metrics`: service-level counters plus the merged control-plane
/// [`Counters`] of every finished job, in Prometheus text exposition.
fn serve_metrics(stream: &mut TcpStream, queue: &JobQueue, permits: &ThreadPermits) {
    let stats = queue.stats();
    let mut body = String::new();
    let mut counter = |name: &str, help: &str, kind: &str, value: u64| {
        body.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"));
    };
    counter(
        "unitherm_serve_jobs_submitted_total",
        "Jobs accepted since start.",
        "counter",
        stats.submitted,
    );
    counter(
        "unitherm_serve_jobs_rejected_total",
        "Submissions rejected (queue full or tenant quota).",
        "counter",
        stats.rejected,
    );
    counter(
        "unitherm_serve_jobs_completed_total",
        "Jobs finished successfully.",
        "counter",
        stats.completed,
    );
    counter("unitherm_serve_jobs_failed_total", "Jobs that failed.", "counter", stats.failed);
    counter(
        "unitherm_serve_jobs_queued",
        "Jobs currently waiting for a runner.",
        "gauge",
        stats.queued as u64,
    );
    counter(
        "unitherm_serve_jobs_running",
        "Jobs currently executing.",
        "gauge",
        stats.running as u64,
    );
    counter(
        "unitherm_serve_thread_permits_total",
        "Total simulation-thread budget.",
        "gauge",
        permits.total() as u64,
    );
    counter(
        "unitherm_serve_thread_permits_available",
        "Simulation-thread permits not currently held by a run.",
        "gauge",
        permits.available() as u64,
    );
    body.push_str(&prometheus_text(&queue.counters_total(), ""));
    write_all(
        stream,
        &render_response(
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &[],
            body.as_bytes(),
        ),
    );
}
