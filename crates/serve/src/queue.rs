//! Bounded multi-tenant job queue shared between the HTTP front end and the
//! runner pool.
//!
//! The queue is the service's only mutable state: submissions enqueue here,
//! runner threads claim from here, and every read endpoint (`GET /jobs/{id}`,
//! the SSE stream, `/metrics`) snapshots from here. Capacity is enforced at
//! submit time with named rejections — [`SubmitError::QueueFull`] when the
//! whole queue is at capacity, [`SubmitError::TenantQuota`] when one tenant
//! would exceed its share — so a burst from one client cannot starve the
//! rest.
//!
//! ```
//! use unitherm_cluster::Scenario;
//! use unitherm_serve::queue::{JobQueue, JobStatus, QueueConfig};
//!
//! let queue = JobQueue::new(QueueConfig { capacity: 2, tenant_quota: 1 });
//! let id = queue.submit("acme", Scenario::new("demo").with_max_time(1.0)).expect("submit");
//! assert_eq!(queue.snapshot(id).unwrap().status, JobStatus::Queued);
//! // The same tenant is over quota until that job finishes:
//! assert!(queue.submit("acme", Scenario::new("demo").with_max_time(1.0)).is_err());
//! // ...but another tenant still fits within the queue capacity.
//! assert!(queue.submit("umbrella", Scenario::new("demo").with_max_time(1.0)).is_ok());
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use unitherm_cluster::{report_digest, RunReport, Scenario};
use unitherm_obs::{Counters, EventRecord};

/// Identifier assigned to each accepted job, monotonically increasing from 1.
pub type JobId = u64;

/// Lifecycle of a job. Serialized lowercase in the status JSON
/// (`docs/FORMATS.md` §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a runner.
    Queued,
    /// A runner is executing the simulation.
    Running,
    /// Finished successfully; the report and digest are available.
    Done,
    /// The simulation could not run; `error` holds the named reason.
    Failed,
}

impl JobStatus {
    /// The lowercase wire name used in job-status JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// Queue sizing. `capacity` bounds jobs that are queued or running across
/// all tenants; `tenant_quota` bounds one tenant's share of that capacity.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Maximum open (queued + running) jobs across all tenants.
    pub capacity: usize,
    /// Maximum open jobs per tenant.
    pub tenant_quota: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self { capacity: 16, tenant_quota: 8 }
    }
}

/// Why a submission was rejected. Both variants name the limit that was hit
/// so the HTTP response can tell the client exactly what to back off on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already holds `capacity` open jobs.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
        /// Open (queued + running) jobs at rejection time.
        open: usize,
    },
    /// The submitting tenant already holds its full quota of open jobs.
    TenantQuota {
        /// The rejected tenant.
        tenant: String,
        /// The configured per-tenant quota.
        quota: usize,
        /// That tenant's open jobs at rejection time.
        open: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, open } => {
                write!(f, "job queue is full ({open} open jobs, capacity {capacity}); retry later")
            }
            SubmitError::TenantQuota { tenant, quota, open } => write!(
                f,
                "tenant {tenant:?} is at its quota ({open} open jobs, quota {quota}); wait for one to finish"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Point-in-time public view of one job (what `GET /jobs/{id}` serves).
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id.
    pub id: JobId,
    /// The submitting tenant.
    pub tenant: String,
    /// The scenario's `name` field.
    pub name: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// FNV-1a digest of the report JSON, once `Done`.
    pub digest: Option<String>,
    /// The finished report, once `Done`.
    pub report: Option<RunReport>,
    /// The failure reason, once `Failed`.
    pub error: Option<String>,
    /// Journal events captured so far.
    pub events_len: usize,
}

struct Job {
    id: JobId,
    tenant: String,
    name: String,
    dt_s: f64,
    /// Present while Queued; taken by the claiming runner.
    scenario: Option<Scenario>,
    status: JobStatus,
    report: Option<RunReport>,
    digest: Option<String>,
    error: Option<String>,
    events: Vec<EventRecord>,
    /// True once no further events will arrive (job reached Done/Failed).
    events_done: bool,
}

#[derive(Default)]
struct State {
    jobs: Vec<Job>,
    /// Ids of jobs awaiting a runner, FIFO.
    pending: VecDeque<JobId>,
    next_id: JobId,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
}

struct Inner {
    state: Mutex<State>,
    /// Signalled when work is enqueued (runners block here).
    work: Condvar,
    /// Signalled on any job progress (event appended, status change);
    /// SSE streams and `wait_done` block here.
    progress: Condvar,
    cfg: QueueConfig,
}

/// Aggregate service-level statistics for `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Jobs accepted since start.
    pub submitted: u64,
    /// Submissions rejected (full queue or tenant quota).
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Jobs currently running.
    pub running: usize,
}

/// Handle to the shared queue; cheap to clone across threads.
#[derive(Clone)]
pub struct JobQueue {
    inner: Arc<Inner>,
}

impl JobQueue {
    /// Creates an empty queue with the given bounds (each clamped to ≥ 1).
    pub fn new(cfg: QueueConfig) -> Self {
        let cfg = QueueConfig {
            capacity: cfg.capacity.max(1),
            tenant_quota: cfg.tenant_quota.max(1).min(cfg.capacity.max(1)),
        };
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State::default()),
                work: Condvar::new(),
                progress: Condvar::new(),
                cfg,
            }),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> QueueConfig {
        self.inner.cfg
    }

    /// Enqueues a validated scenario for `tenant`. Rejects with a named
    /// error when the queue or the tenant's quota is full.
    pub fn submit(&self, tenant: &str, scenario: Scenario) -> Result<JobId, SubmitError> {
        let mut state = self.lock();
        let open = state
            .jobs
            .iter()
            .filter(|j| matches!(j.status, JobStatus::Queued | JobStatus::Running))
            .count();
        if open >= self.inner.cfg.capacity {
            state.rejected += 1;
            return Err(SubmitError::QueueFull { capacity: self.inner.cfg.capacity, open });
        }
        let tenant_open = state
            .jobs
            .iter()
            .filter(|j| {
                j.tenant == tenant && matches!(j.status, JobStatus::Queued | JobStatus::Running)
            })
            .count();
        if tenant_open >= self.inner.cfg.tenant_quota {
            state.rejected += 1;
            return Err(SubmitError::TenantQuota {
                tenant: tenant.to_string(),
                quota: self.inner.cfg.tenant_quota,
                open: tenant_open,
            });
        }
        state.next_id += 1;
        let id = state.next_id;
        state.jobs.push(Job {
            id,
            tenant: tenant.to_string(),
            name: scenario.name.clone(),
            dt_s: scenario.dt_s,
            scenario: Some(scenario),
            status: JobStatus::Queued,
            report: None,
            digest: None,
            error: None,
            events: Vec::new(),
            events_done: false,
        });
        state.pending.push_back(id);
        state.submitted += 1;
        self.inner.work.notify_one();
        Ok(id)
    }

    /// Blocks until a queued job is available, marks it `Running`, and
    /// returns its id and scenario. Used by runner threads.
    pub fn claim(&self) -> (JobId, Scenario) {
        let mut state = self.lock();
        loop {
            if let Some(id) = state.pending.pop_front() {
                let job = state.jobs.iter_mut().find(|j| j.id == id).expect("pending job exists");
                job.status = JobStatus::Running;
                let scenario = job.scenario.take().expect("queued job holds its scenario");
                self.inner.progress.notify_all();
                return (id, scenario);
            }
            state = self.inner.work.wait(state).expect("queue lock poisoned");
        }
    }

    /// Non-blocking [`JobQueue::claim`]; `None` when nothing is queued.
    pub fn try_claim(&self) -> Option<(JobId, Scenario)> {
        let mut state = self.lock();
        let id = state.pending.pop_front()?;
        let job = state.jobs.iter_mut().find(|j| j.id == id).expect("pending job exists");
        job.status = JobStatus::Running;
        let scenario = job.scenario.take().expect("queued job holds its scenario");
        self.inner.progress.notify_all();
        Some((id, scenario))
    }

    /// Appends one journal event to a running job (the runner's
    /// `EventSink` tee lands here).
    pub fn append_event(&self, id: JobId, rec: EventRecord) {
        let mut state = self.lock();
        if let Some(job) = state.jobs.iter_mut().find(|j| j.id == id) {
            job.events.push(rec);
        }
        self.inner.progress.notify_all();
    }

    /// Marks a job `Done`, storing its report and FNV digest.
    pub fn complete(&self, id: JobId, report: RunReport) {
        let mut state = self.lock();
        if let Some(job) = state.jobs.iter_mut().find(|j| j.id == id) {
            job.digest = Some(report_digest(&report));
            job.report = Some(report);
            job.status = JobStatus::Done;
            job.events_done = true;
            state.completed += 1;
        }
        self.inner.progress.notify_all();
    }

    /// Marks a job `Failed` with a named reason.
    pub fn fail(&self, id: JobId, error: String) {
        let mut state = self.lock();
        if let Some(job) = state.jobs.iter_mut().find(|j| j.id == id) {
            job.error = Some(error);
            job.status = JobStatus::Failed;
            job.events_done = true;
            state.failed += 1;
        }
        self.inner.progress.notify_all();
    }

    /// Public snapshot of one job; `None` for unknown ids.
    pub fn snapshot(&self, id: JobId) -> Option<JobSnapshot> {
        let state = self.lock();
        state.jobs.iter().find(|j| j.id == id).map(|job| JobSnapshot {
            id: job.id,
            tenant: job.tenant.clone(),
            name: job.name.clone(),
            status: job.status,
            digest: job.digest.clone(),
            report: job.report.clone(),
            error: job.error.clone(),
            events_len: job.events.len(),
        })
    }

    /// Snapshots of every job, in submission order.
    pub fn snapshots(&self) -> Vec<JobSnapshot> {
        let state = self.lock();
        state
            .jobs
            .iter()
            .map(|job| JobSnapshot {
                id: job.id,
                tenant: job.tenant.clone(),
                name: job.name.clone(),
                status: job.status,
                digest: job.digest.clone(),
                report: job.report.clone(),
                error: job.error.clone(),
                events_len: job.events.len(),
            })
            .collect()
    }

    /// The scenario timestep of a job (needed to render its bjl journal).
    pub fn dt_s(&self, id: JobId) -> Option<f64> {
        let state = self.lock();
        state.jobs.iter().find(|j| j.id == id).map(|j| j.dt_s)
    }

    /// All journal events captured for a job so far.
    pub fn events(&self, id: JobId) -> Option<Vec<EventRecord>> {
        let state = self.lock();
        state.jobs.iter().find(|j| j.id == id).map(|j| j.events.clone())
    }

    /// Waits up to `timeout` for events past index `from`, returning the
    /// new events and whether the job has finished emitting. Returns the
    /// empty slice on timeout so SSE streams can emit keep-alives; `None`
    /// for unknown ids.
    pub fn wait_events(
        &self,
        id: JobId,
        from: usize,
        timeout: Duration,
    ) -> Option<(Vec<EventRecord>, bool)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            let job = state.jobs.iter().find(|j| j.id == id)?;
            if job.events.len() > from || job.events_done {
                let fresh = job.events.get(from..).unwrap_or(&[]).to_vec();
                return Some((fresh, job.events_done));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Some((Vec::new(), false));
            }
            let (next, timed_out) = self
                .inner
                .progress
                .wait_timeout(state, deadline - now)
                .expect("queue lock poisoned");
            state = next;
            if timed_out.timed_out() {
                let job = state.jobs.iter().find(|j| j.id == id)?;
                let fresh = if job.events.len() > from {
                    job.events.get(from..).unwrap_or(&[]).to_vec()
                } else {
                    Vec::new()
                };
                return Some((fresh, job.events_done));
            }
        }
    }

    /// Blocks until the job reaches `Done` or `Failed`, returning its final
    /// snapshot; `None` for unknown ids.
    pub fn wait_done(&self, id: JobId) -> Option<JobSnapshot> {
        let mut state = self.lock();
        loop {
            let finished = {
                let job = state.jobs.iter().find(|j| j.id == id)?;
                matches!(job.status, JobStatus::Done | JobStatus::Failed)
            };
            if finished {
                drop(state);
                return self.snapshot(id);
            }
            state = self.inner.progress.wait(state).expect("queue lock poisoned");
        }
    }

    /// Service-level counters for `/metrics`.
    pub fn stats(&self) -> QueueStats {
        let state = self.lock();
        QueueStats {
            submitted: state.submitted,
            rejected: state.rejected,
            completed: state.completed,
            failed: state.failed,
            queued: state.jobs.iter().filter(|j| j.status == JobStatus::Queued).count(),
            running: state.jobs.iter().filter(|j| j.status == JobStatus::Running).count(),
        }
    }

    /// Sum of the control-plane [`Counters`] over all finished reports —
    /// the simulator-level half of `/metrics`.
    pub fn counters_total(&self) -> Counters {
        let state = self.lock();
        let mut total = Counters::default();
        for job in &state.jobs {
            if let Some(report) = &job.report {
                total.merge(&report.counters_total());
            }
        }
        total
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().expect("queue lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::new("queue-test").with_max_time(1.0).with_recording(false)
    }

    /// A short run that reliably emits journal events: one node under a
    /// dynamic fan controller ramping against cpu-burn heat.
    fn eventful() -> Scenario {
        use unitherm_core::control_array::Policy;
        tiny()
            .with_max_time(5.0)
            .with_nodes(1)
            .with_fan(unitherm_cluster::FanScheme::dynamic(Policy::MODERATE, 100))
    }

    #[test]
    fn submit_claim_complete_roundtrip() {
        let queue = JobQueue::new(QueueConfig { capacity: 4, tenant_quota: 4 });
        let id = queue.submit("t", tiny()).expect("submit");
        assert_eq!(queue.snapshot(id).unwrap().status, JobStatus::Queued);

        let (claimed, scenario) = queue.try_claim().expect("claim");
        assert_eq!(claimed, id);
        assert_eq!(queue.snapshot(id).unwrap().status, JobStatus::Running);

        let report =
            unitherm_cluster::Simulation::try_new(scenario).expect("scenario is valid").run();
        queue.complete(id, report);
        let snap = queue.snapshot(id).unwrap();
        assert_eq!(snap.status, JobStatus::Done);
        assert!(snap.digest.as_deref().unwrap_or("").starts_with("fnv1a64:"), "{snap:?}");
        assert!(snap.report.is_some());
    }

    #[test]
    fn capacity_and_quota_reject_by_name() {
        let queue = JobQueue::new(QueueConfig { capacity: 2, tenant_quota: 1 });
        queue.submit("a", tiny()).expect("first fits");
        match queue.submit("a", tiny()) {
            Err(SubmitError::TenantQuota { tenant, quota: 1, open: 1 }) => assert_eq!(tenant, "a"),
            other => panic!("expected tenant quota rejection, got {other:?}"),
        }
        queue.submit("b", tiny()).expect("second tenant fits");
        match queue.submit("c", tiny()) {
            Err(SubmitError::QueueFull { capacity: 2, open: 2 }) => {}
            other => panic!("expected queue-full rejection, got {other:?}"),
        }
        assert_eq!(queue.stats().rejected, 2);
    }

    #[test]
    fn finished_jobs_free_their_slots() {
        let queue = JobQueue::new(QueueConfig { capacity: 1, tenant_quota: 1 });
        let id = queue.submit("t", tiny()).expect("submit");
        assert!(queue.submit("t", tiny()).is_err());
        let (claimed, _scenario) = queue.try_claim().expect("claim");
        queue.fail(claimed, "synthetic failure".to_string());
        assert_eq!(queue.snapshot(id).unwrap().status, JobStatus::Failed);
        queue.submit("t", tiny()).expect("slot freed after failure");
    }

    #[test]
    fn wait_events_sees_appends_and_completion() {
        let queue = JobQueue::new(QueueConfig::default());
        let id = queue.submit("t", eventful()).expect("submit");
        let (claimed, scenario) = queue.try_claim().expect("claim");

        let waiter = {
            let queue = queue.clone();
            std::thread::spawn(move || {
                queue.wait_events(id, 0, Duration::from_secs(5)).expect("job exists")
            })
        };
        let mut sim = unitherm_cluster::Simulation::try_new(scenario).expect("valid");
        struct Tee {
            queue: JobQueue,
            id: JobId,
        }
        impl unitherm_obs::EventSink for Tee {
            fn record(&mut self, rec: &EventRecord) {
                self.queue.append_event(self.id, *rec);
            }
        }
        sim.attach_journal(Box::new(Tee { queue: queue.clone(), id: claimed }));
        let report = sim.run();
        queue.complete(claimed, report);

        let (events, _done) = waiter.join().expect("waiter");
        assert!(!events.is_empty(), "run emits at least the terminal events");
        let (tail, done) = queue
            .wait_events(id, queue.events(id).unwrap().len(), Duration::from_millis(10))
            .unwrap();
        assert!(tail.is_empty());
        assert!(done, "completed job reports events_done");
    }

    #[test]
    fn metrics_aggregate_across_done_jobs() {
        let queue = JobQueue::new(QueueConfig::default());
        for _ in 0..2 {
            let id = queue.submit("t", tiny()).expect("submit");
            let (claimed, scenario) = queue.try_claim().expect("claim");
            assert_eq!(claimed, id);
            let report = unitherm_cluster::Simulation::try_new(scenario).expect("valid").run();
            queue.complete(claimed, report);
        }
        let total = queue.counters_total();
        assert!(total.samples >= 2, "two finished runs contribute samples: {total:?}");
        let stats = queue.stats();
        assert_eq!((stats.submitted, stats.completed, stats.failed), (2, 2, 0));
    }
}
