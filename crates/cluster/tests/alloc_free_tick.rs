//! Allocation regression test for the cluster hot path.
//!
//! The tick loop is the substrate every figure reproduction and sweep runs
//! on; a stray per-tick allocation is a silent throughput regression. This
//! harness installs a counting `#[global_allocator]` and asserts that
//! steady-state `Simulation::tick` — including the 4 Hz sampling path —
//! performs zero heap allocations once the simulation is warmed up.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use unitherm_cluster::scenario::{Scenario, WorkloadSpec};
use unitherm_cluster::scheme::FanScheme;
use unitherm_cluster::sim::Simulation;
use unitherm_core::control_array::Policy;

/// Counts every allocation and reallocation going through the global
/// allocator (deallocations are free to happen — dropping a pre-reserved
/// buffer is not a hot-path cost).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn warmed(scenario: Scenario) -> Simulation {
    let mut sim = Simulation::new(scenario);
    // Past the spin-up transient and through many sampling ticks, so every
    // lazily-initialized path (sensor caches, controller windows) has run.
    for _ in 0..500 {
        sim.tick();
    }
    sim
}

#[test]
fn steady_state_tick_is_allocation_free() {
    let mut sim = warmed(
        Scenario::new("alloc-burn")
            .with_nodes(4)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_recording(false)
            .with_max_time(1e9),
    );
    let n = allocations_during(|| {
        for _ in 0..1000 {
            sim.tick();
        }
    });
    assert_eq!(n, 0, "steady-state tick allocated {n} times over 1000 ticks");
    // The zero-allocation window must not be an artifact of observability
    // sitting idle: the ring sinks and counters were live the whole time.
    let report = sim.into_report();
    let counters = report.counters_total();
    assert!(counters.samples > 0, "sampling path ran during the window");
    assert!(
        counters.events_emitted > 0,
        "dynamic-fan control under burn must emit events through the ring sink"
    );
    assert!(
        report.nodes.iter().any(|node| !node.events.is_empty()),
        "ring sinks captured events with zero heap allocations"
    );
}

#[test]
fn recording_run_stays_within_reserved_capacity() {
    // With series recording on, the recorders must append into the
    // capacity reserved at build time instead of growing per sample.
    let mut sim = warmed(
        Scenario::new("alloc-recorded")
            .with_nodes(2)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_max_time(300.0),
    );
    let n = allocations_during(|| {
        for _ in 0..1000 {
            sim.tick();
        }
    });
    assert_eq!(n, 0, "recording tick loop allocated {n} times over 1000 ticks");
}

#[test]
fn disabled_recording_skips_recorder_allocations_at_build() {
    // A recording-disabled run must not pay recorder heap at construction:
    // no metric-name strings, no pre-reserved series or event buffers. Pin
    // it by comparing identical builds that differ only in the recording
    // flag — the enabled build reserves several buffers per node (5 named
    // series plus the freq-event log), the disabled build none of them.
    let nodes = 8;
    let build = |record: bool| {
        Scenario::new("alloc-recorder-gate")
            .with_nodes(nodes)
            .with_workload(WorkloadSpec::CpuBurn)
            .with_fan(FanScheme::dynamic(Policy::MODERATE, 100))
            .with_recording(record)
            .with_max_time(3600.0)
    };
    let disabled = allocations_during(|| {
        std::hint::black_box(Simulation::new(build(false)));
    });
    let enabled = allocations_during(|| {
        std::hint::black_box(Simulation::new(build(true)));
    });
    assert!(
        enabled >= disabled + 6 * nodes as u64,
        "recording-on build must reserve recorder buffers that the \
         recording-off build skips (enabled {enabled}, disabled {disabled})"
    );
}
