//! Regression tests for scenario validation of deserialized configs.
//!
//! Scenario JSON files construct configs field-by-field, bypassing every
//! constructor assertion in the workspace. Two bug classes are pinned here:
//!
//! 1. A sampling period shorter than the physics tick used to floor
//!    `ticks_per_sample` to zero, silently disabling the whole control
//!    path (no samples → no controller ever runs).
//! 2. Config blocks reachable only through scenario files (failsafe,
//!    feedforward, tDVFS daemon tuning, CPUSPEED governor) were never
//!    validated after deserialization, so impossible tunings reached the
//!    daemons as-is.
//!
//! Every case must surface as a `ScenarioError` data error from
//! `Scenario::validate`, not as a panic deep inside a daemon.

use unitherm_cluster::scenario::Scenario;

fn validate_json(json: &str) -> Result<(), String> {
    let scenario: Scenario = serde_json::from_str(json).expect("scenario JSON deserializes");
    scenario.validate().map_err(|e| e.message().to_string())
}

#[test]
fn sampling_faster_than_tick_is_rejected() {
    // Builder path.
    let mut s = Scenario::new("fast-sampling");
    s.sample_period_s = 0.01; // dt_s defaults to 0.05
    let err = s.validate().expect_err("sub-tick sampling must be rejected");
    assert!(err.message().contains("sampling cannot outpace the tick"), "{err}");

    // JSON path: same flaw arriving from a scenario file.
    let err = validate_json(r#"{"name": "fast-sampling", "sample_period_s": 0.01}"#)
        .expect_err("sub-tick sampling from JSON must be rejected");
    assert!(err.contains("sampling cannot outpace the tick"), "{err}");

    // Sampling every tick is the legal lower bound.
    let mut s = Scenario::new("per-tick-sampling");
    s.sample_period_s = s.dt_s;
    s.validate().expect("sample_period_s == dt_s is valid");
}

#[test]
fn bad_failsafe_from_json_is_a_data_error() {
    // Release above panic would make the watchdog latch forever; the
    // constructor asserts this, but JSON bypasses the constructor.
    let err = validate_json(
        r#"{
            "name": "bad-failsafe",
            "failsafe": {
                "max_stale_samples": 20,
                "panic_temp_c": 60.0,
                "release_temp_c": 65.0
            }
        }"#,
    )
    .expect_err("inverted failsafe temperatures must be rejected");
    assert!(err.contains("release temperature must be below panic temperature"), "{err}");

    let err = validate_json(
        r#"{
            "name": "bad-failsafe",
            "failsafe": {
                "max_stale_samples": 0,
                "panic_temp_c": 65.0,
                "release_temp_c": 55.0
            }
        }"#,
    )
    .expect_err("zero stale budget must be rejected");
    assert!(err.contains("need a stale budget of at least 1 sample"), "{err}");
}

#[test]
fn bad_feedforward_from_json_is_a_data_error() {
    let controller = serde_json::to_string(&unitherm_core::controller::ControllerConfig::default())
        .expect("serialize controller config");
    let json = format!(
        r#"{{
            "name": "bad-feedforward",
            "fan": {{"DynamicFeedforward": {{
                "policy": 50,
                "max_duty": 100,
                "config": {controller},
                "feedforward": {{
                    "gain_c_per_util": -1.0,
                    "deadband_util": 0.25,
                    "samples_per_round": 1
                }}
            }}}}
        }}"#
    );
    let err = validate_json(&json).expect_err("negative feedforward gain must be rejected");
    assert!(err.contains("gain must be non-negative"), "{err}");
}

#[test]
fn bad_tdvfs_daemon_tuning_from_json_is_a_data_error() {
    // The non-controller half of TdvfsConfig (daemon tuning) used to skip
    // validation entirely: only `config.controller` was checked.
    let cfg = unitherm_core::tdvfs::TdvfsConfig { consecutive_rounds: 0, ..Default::default() };
    let tdvfs = serde_json::to_string(&cfg).expect("serialize tdvfs config");
    let json = format!(
        r#"{{
            "name": "bad-tdvfs",
            "dvfs": {{"Tdvfs": {{"policy": 50, "config": {tdvfs}}}}}
        }}"#
    );
    let err = validate_json(&json).expect_err("zero confirmation rounds must be rejected");
    assert!(err.contains("need at least one confirmation round"), "{err}");
}

#[test]
fn bad_cpuspeed_governor_from_json_is_a_data_error() {
    let err = validate_json(
        r#"{
            "name": "bad-governor",
            "dvfs": {"CpuSpeed": {"config": {
                "interval_s": 0.0,
                "up_threshold": 0.85,
                "down_threshold": 0.5
            }}}
        }"#,
    )
    .expect_err("non-positive governor interval must be rejected");
    assert!(err.contains("interval must be positive"), "{err}");

    let err = validate_json(
        r#"{
            "name": "bad-governor",
            "dvfs": {"CpuSpeed": {"config": {
                "interval_s": 1.0,
                "up_threshold": 0.5,
                "down_threshold": 0.85
            }}}
        }"#,
    )
    .expect_err("inverted governor thresholds must be rejected");
    assert!(err.contains("down threshold must be below up threshold"), "{err}");
}
